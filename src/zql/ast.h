/// \file ast.h
/// \brief Parse-level representation of a ZQL query (Chapter 3): one
/// ZqlRow per table row with Name / X / Y / Z (Z2, …) / Constraints / Viz /
/// Process entries.

#ifndef ZV_ZQL_AST_H_
#define ZV_ZQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "tasks/primitives.h"
#include "viz/viz_spec.h"

namespace zv::zql {

// ---------------------------------------------------------------------------
// Axis (X / Y) column
// ---------------------------------------------------------------------------

/// \brief One concrete axis assignment: a single attribute, or several
/// composed with the Polaris table algebra (§3.2): '+' concatenates series
/// on one axis, '*' (×) crosses attributes into a composite axis.
struct AxisValue {
  enum class Compose { kNone, kPlus, kCross };
  std::vector<std::string> attrs;
  Compose compose = Compose::kNone;

  static AxisValue Single(std::string attr) {
    return {{std::move(attr)}, Compose::kNone};
  }

  /// "profit+sales" / "product*state" / "year".
  std::string Label() const;

  bool operator==(const AxisValue&) const = default;
};

/// \brief An X or Y column entry.
struct AxisEntry {
  enum class Kind {
    kNone,     ///< blank (user-input rows)
    kLiteral,  ///< 'year' or 'profit'+'sales'
    kDeclare,  ///< y1 <- {'profit','sales'} or x1 <- M
    kReuse,    ///< x1
    kDerived,  ///< y1 <- _   (bind to a derived visual component, §3.6)
    kOrderBy,  ///< u1 ->     (ordering key for f2=f1.order rows)
  };
  Kind kind = Kind::kNone;
  AxisValue literal;
  std::string var;                 ///< kDeclare / kReuse / kDerived / kOrderBy
  std::vector<AxisValue> set;      ///< kDeclare with an inline set
  std::string named_set;           ///< kDeclare over a registered set (e.g. M)
};

// ---------------------------------------------------------------------------
// Z column(s)
// ---------------------------------------------------------------------------

/// \brief One concrete slice: attribute + value ('product'.'chair').
struct ZValue {
  std::string attr;
  Value value;
  bool operator==(const ZValue&) const = default;
  std::string Label() const { return attr + "." + value.ToString(); }
};

/// \brief Attribute part of a Z set term.
struct AttrSpec {
  enum class Kind { kLiteral, kAll, kAllExcept, kList };
  Kind kind = Kind::kLiteral;
  std::vector<std::string> names;  ///< kLiteral: [0]; kAllExcept/kList
};

/// \brief Value part of a Z set term.
struct ValueSpec {
  enum class Kind { kLiteral, kAll, kAllExcept, kList, kDerived };
  Kind kind = Kind::kLiteral;
  std::vector<Value> values;  ///< kLiteral: [0]; kAllExcept/kList
};

/// \brief A set expression over (attribute, value) slices — evaluated at
/// execution time because `*` needs the data dictionary and `v.range` needs
/// process outputs (§3.7).
struct ZSetExpr {
  enum class Kind {
    kAttrDotValue,  ///< attrspec.valuespec
    kVarRange,      ///< v2.range
    kNamedSet,      ///< P (registered value set with an implied attribute)
    kOp,            ///< union '|', intersect '&', difference '\'
  };
  Kind kind = Kind::kAttrDotValue;
  AttrSpec attr;
  ValueSpec value;
  std::string var;  ///< kVarRange / kNamedSet
  char op = '|';
  std::unique_ptr<ZSetExpr> lhs, rhs;
};

/// \brief A Z (or Z2, Z3, …) column entry.
struct ZEntry {
  enum class Kind {
    kNone,
    kLiteral,  ///< 'product'.'chair'
    kDeclare,  ///< v1 <- setexpr   or   z1.v1 <- setexpr
    kReuse,    ///< v1
    kDerived,  ///< v2 <- 'product'._  (or v2 <- _._)
    kOrderBy,  ///< u1 ->
  };
  Kind kind = Kind::kNone;
  ZValue literal;
  std::vector<std::string> vars;  ///< lhs names: [v1] or [z1, v1]
  std::shared_ptr<ZSetExpr> set;  ///< kDeclare
  std::string derived_attr;       ///< kDerived: fixed attr ('' = any)
};

// ---------------------------------------------------------------------------
// Viz column
// ---------------------------------------------------------------------------

struct VizEntry {
  enum class Kind { kNone, kLiteral, kDeclare, kReuse };
  Kind kind = Kind::kNone;
  VizSpec literal;
  std::string var;
  std::vector<VizSpec> set;
};

// ---------------------------------------------------------------------------
// Name column
// ---------------------------------------------------------------------------

struct NameEntry {
  std::string name;
  bool output = false;      ///< *f1
  bool user_input = false;  ///< -f1

  /// Derivation (f3=f1+f2 and friends, §3.6).
  enum class Derive {
    kNone,
    kPlus,       ///< f3=f1+f2: concatenation
    kMinus,      ///< f3=f1-f2: list difference
    kIntersect,  ///< f3=f1^f2
    kIndex,      ///< f2=f1[i]     (1-based)
    kSlice,      ///< f2=f1[i:j]   (1-based, inclusive)
    kRange,      ///< f2=f1.range  (dedup)
    kOrder,      ///< f2=f1.order  (reorder by -> axis variables)
  };
  Derive derive = Derive::kNone;
  std::string source_a, source_b;  ///< operand component names
  int64_t index_a = 0, index_b = 0;
};

// ---------------------------------------------------------------------------
// Process column
// ---------------------------------------------------------------------------

/// \brief Objective expression inside a mechanism: a functional-primitive
/// call, optionally wrapped in inner reducers (min_v / max_v / sum_v, §3.8).
struct ProcessExpr {
  enum class Kind { kCall, kReduce };
  Kind kind = Kind::kCall;

  // kCall: T(f1), D(f1, f2), or a user-defined function of components.
  std::string func;
  std::vector<std::string> args;  ///< component names

  // kReduce
  enum class Reduce { kMin, kMax, kSum };
  Reduce reduce = Reduce::kMin;
  std::vector<std::string> reduce_vars;
  std::unique_ptr<ProcessExpr> child;
};

/// \brief One task in the Process column.
struct ProcessDecl {
  std::vector<std::string> outputs;

  enum class Kind { kMechanism, kRepresentative };
  Kind kind = Kind::kMechanism;

  // kMechanism
  Mechanism mech = Mechanism::kArgMin;
  std::vector<std::string> iter_vars;
  MechanismFilter filter;
  std::shared_ptr<ProcessExpr> expr;

  // kRepresentative: R(k, v..., f)
  int64_t repr_k = 0;
  std::vector<std::string> repr_vars;
  std::string repr_component;
};

// ---------------------------------------------------------------------------
// Rows and queries
// ---------------------------------------------------------------------------

struct ZqlRow {
  NameEntry name;
  AxisEntry x, y;
  std::vector<ZEntry> zs;    ///< Z, Z2, Z3 … (may be empty)
  std::string constraints;   ///< raw SQL-style boolean text ('' = none)
  VizEntry viz;
  std::vector<ProcessDecl> processes;
  int line = 0;  ///< 1-based row number for diagnostics
};

struct ZqlQuery {
  std::vector<ZqlRow> rows;

  /// Names of components flagged for output, in row order.
  std::vector<std::string> OutputNames() const {
    std::vector<std::string> out;
    for (const auto& row : rows) {
      if (row.name.output) out.push_back(row.name.name);
    }
    return out;
  }
};

}  // namespace zv::zql

#endif  // ZV_ZQL_AST_H_
