#include "zql/scheduler.h"

#include <algorithm>
#include <utility>

#include "common/cancel.h"
#include "common/clock.h"
#include "engine/shared_scan.h"

namespace zv::zql::exec {

namespace {

constexpr size_t kDrainAll = static_cast<size_t>(-1);

/// Tags an operator span with its plan coordinates, mirroring what the
/// EXPLAIN rendering shows for the same step — so a traced query's
/// operator spans line up with its plan (tests/trace_test.cc matches them
/// step for step).
void AnnotateStep(TraceScope& scope, const PlanStep& step,
                  const ZqlQuery& query) {
  if (scope.span() == nullptr) return;
  scope.SetInt("stage", step.stage);
  if (step.row >= 0) {
    scope.SetInt("row", step.row);
    scope.SetStr("name", query.rows[static_cast<size_t>(step.row)].name.name);
  }
  if (step.decl >= 0) scope.SetInt("decl", step.decl);
}

}  // namespace

PipelineScheduler::PipelineScheduler(const PhysicalPlan& plan,
                                     const ZqlQuery& query, ExecState* st)
    : plan_(plan), query_(query), st_(st) {
  cancel_flag_ = CurrentCancelFlag();
  // Resolve the scan strategy once per query against the table's chunk
  // catalog. Cross-query batching engages for any non-empty chunked table
  // (the queue is chunk-parallel on its own, so it supersedes the
  // per-query shard pool); otherwise sharding engages when the plan wants
  // >1 worker and the table splits into >=2 chunks; otherwise the plain
  // unsharded path runs.
  if (st->db != nullptr) {
    Result<ChunkMap> map = st->db->GetChunkMap(st->table_name);
    if (map.ok() && map.value().num_chunks() >= 1 &&
        st->opts->batch_scans != nullptr) {
      batch_queue_ = st->opts->batch_scans;
    } else if (map.ok() && map.value().num_chunks() >= 2 &&
               plan.shard_workers > 1) {
      chunk_map_ = map.value();
      shard_workers_ = plan.shard_workers;
      sharded_ = true;
    }
  }
}

PipelineScheduler::~PipelineScheduler() {
  abandon_.store(true, std::memory_order_relaxed);
  if (fetch_thread_.joinable()) {
    jobs_->Close();
    // Every dispatched statement yields exactly one FetchItem (a result,
    // an error, or a placeholder), so popping once per unrouted fetch is
    // guaranteed to terminate and unblocks a worker stuck on the bounded
    // results queue.
    while (!in_flight_.empty()) {
      FetchItem item;
      if (!results_->Pop(&item)) break;
      in_flight_.pop_front();
    }
    fetch_thread_.join();
  }
  // The shard pool outlives the fetch thread (which may be mid-
  // ExecuteSharded): every dispatched chunk yields exactly one item — on
  // abandon the workers answer with kCancelled items — so the fetch
  // thread's merge loop always completes and the join above terminates.
  // Only then is it safe to close the job queue and reap the workers.
  if (!shard_threads_.empty()) {
    chunk_jobs_->Close();
    for (std::thread& t : shard_threads_) t.join();
  }
}

Status PipelineScheduler::Run() {
  ScoreResult pending_score;
  for (const PlanStep& step : plan_.steps) {
    ZV_RETURN_NOT_OK(CheckCancelled());
    switch (step.kind) {
      case PlanStep::Kind::kFetch: {
        const ZqlRow& row = query_.rows[static_cast<size_t>(step.row)];
        TraceScope span(st_->trace, st_->trace_span, "FetchOp");
        AnnotateStep(span, step, query_);
        ZV_RETURN_NOT_OK(PlanRowFetches(
            row, static_cast<size_t>(step.row), st_, &buffer_));
        break;
      }
      case PlanStep::Kind::kFlush:
        ZV_RETURN_NOT_OK(StepFlush());
        break;
      case PlanStep::Kind::kMaterialize: {
        const ZqlRow& row = query_.rows[static_cast<size_t>(step.row)];
        TraceScope span(st_->trace, st_->trace_span, "MaterializeOp");
        AnnotateStep(span, step, query_);
        ZV_RETURN_NOT_OK(
            StepMaterialize(row, static_cast<size_t>(step.row)));
        break;
      }
      case PlanStep::Kind::kScore: {
        const ZqlRow& row = query_.rows[static_cast<size_t>(step.row)];
        const ProcessDecl& decl =
            row.processes[static_cast<size_t>(step.decl)];
        TraceScope span(st_->trace, st_->trace_span, "ScoreOp");
        AnnotateStep(span, step, query_);
        const auto t0 = SteadyNow();
        pending_score = ScoreResult();
        const Status scored = ScoreProcess(decl, st_, &pending_score);
        st_->stats.compute_ms += MsSince(t0);
        span.SetInt("scores",
                    static_cast<int64_t>(pending_score.scores.size()));
        ZV_RETURN_NOT_OK(scored);
        break;
      }
      case PlanStep::Kind::kReduce: {
        const ZqlRow& row = query_.rows[static_cast<size_t>(step.row)];
        const ProcessDecl& decl =
            row.processes[static_cast<size_t>(step.decl)];
        TraceScope span(st_->trace, st_->trace_span, "ReduceOp");
        AnnotateStep(span, step, query_);
        const auto t0 = SteadyNow();
        const Status reduced =
            ReduceProcess(decl, std::move(pending_score), st_);
        st_->stats.compute_ms += MsSince(t0);
        ZV_RETURN_NOT_OK(reduced);
        break;
      }
      case PlanStep::Kind::kOutput: {
        TraceScope span(st_->trace, st_->trace_span, "OutputOp");
        AnnotateStep(span, step, query_);
        ZV_RETURN_NOT_OK(DrainUpTo(kDrainAll));
        break;
      }
    }
  }
  return Status::OK();
}

Status PipelineScheduler::StepFlush() {
  if (buffer_.empty()) return Status::OK();
  ZV_RETURN_NOT_OK(CheckCancelled());
  if (st_->opts->sql_trace != nullptr) {
    for (const PendingFetch& pf : buffer_) {
      st_->opts->sql_trace->push_back(pf.stmt.ToSql());
    }
  }
  const bool batched = st_->opts->optimization != OptLevel::kNoOpt;
  std::vector<sql::SelectStatement> stmts;
  stmts.reserve(buffer_.size());
  for (const PendingFetch& pf : buffer_) stmts.push_back(pf.stmt);

  if (plan_.pipelined) {
    // Hand the batch to the fetch thread and keep walking the plan — the
    // results come back through the bounded queue at drain points. The
    // scan itself is traced on the fetch thread ("FetchBatch", track 1).
    StartWorker();
    for (PendingFetch& pf : buffer_) in_flight_.push_back(std::move(pf));
    buffer_.clear();
    jobs_->Push({std::move(stmts), batched});
    return Status::OK();
  }

  // Staged: execute and route the whole batch before anything downstream
  // runs — the serial oracle the pipelined schedule is checked against.
  TraceScope flush_span(st_->trace, st_->trace_span, "Flush");
  flush_span.SetInt("statements", static_cast<int64_t>(stmts.size()));
  flush_span.SetBool("batched", batched);
  const auto t0 = SteadyNow();
  std::vector<PendingFetch> pending = std::move(buffer_);
  buffer_.clear();
  Status first_error = Status::OK();
  double scan_ms = 0;
  uint64_t chunks_scanned = 0;
  double shard_ms = 0;
  uint64_t batched_scans = 0;
  uint64_t scans_shared = 0;
  RunBatch(
      stmts, batched,
      [&](size_t i, Result<ResultSet> rs) {
        if (!rs.ok()) {
          first_error = rs.status();
          return false;
        }
        first_error = RouteFetch(pending[i], rs.value(), st_);
        return first_error.ok();
      },
      &scan_ms, &chunks_scanned, &shard_ms, &batched_scans, &scans_shared,
      flush_span.span(), /*track=*/0);
  st_->stats.fetch_ms += scan_ms;
  st_->stats.exec_ms += MsSince(t0);
  st_->stats.chunks_scanned += chunks_scanned;
  st_->stats.shard_ms += shard_ms;
  st_->stats.batched_scans += batched_scans;
  st_->stats.scans_shared += scans_shared;
  return first_error;
}

Status PipelineScheduler::StepMaterialize(const ZqlRow& row, size_t row_tag) {
  if (IsLocalRow(row)) {
    // User-input and derived components read other components' final
    // visuals, so everything dispatched must be routed first.
    ZV_RETURN_NOT_OK(DrainUpTo(kDrainAll));
    ZV_RETURN_NOT_OK(MaterializeLocal(row, st_));
  } else {
    // Route this row's (and earlier rows') fetches; scans of later rows
    // keep running on the fetch thread underneath the scoring that
    // follows this step.
    ZV_RETURN_NOT_OK(DrainUpTo(row_tag));
  }
  MarkReady(row, st_);
  return Status::OK();
}

Status PipelineScheduler::DrainUpTo(size_t limit_tag) {
  while (!in_flight_.empty() && in_flight_.front().row_tag <= limit_tag) {
    FetchItem item;
    if (!results_->Pop(&item)) {
      return Status::Internal("fetch pipeline closed with fetches in flight");
    }
    PendingFetch pf = std::move(in_flight_.front());
    in_flight_.pop_front();
    st_->stats.fetch_ms += item.scan_ms;
    st_->stats.chunks_scanned += item.chunks_scanned;
    st_->stats.shard_ms += item.shard_ms;
    st_->stats.batched_scans += item.batched_scans;
    st_->stats.scans_shared += item.scans_shared;
    if (!item.result.ok()) return item.result.status();
    const auto t0 = SteadyNow();
    const Status routed = RouteFetch(pf, item.result.value(), st_);
    st_->stats.exec_ms += item.scan_ms + MsSince(t0);
    ZV_RETURN_NOT_OK(routed);
  }
  return Status::OK();
}

void PipelineScheduler::StartWorker() {
  if (fetch_thread_.joinable()) return;
  // Jobs can never pile up past the flush count; the results bound is the
  // actual pipeline depth (how far the fetch thread may run ahead).
  jobs_ = std::make_unique<BoundedQueue<FetchJob>>(plan_.steps.size() + 1);
  results_ = std::make_unique<BoundedQueue<FetchItem>>(
      std::max<size_t>(1, st_->opts->pipeline_depth));
  fetch_thread_ = std::thread([this] { FetchWorkerMain(); });
}

void PipelineScheduler::FetchWorkerMain() {
  // Mirror the coordinator's cancellation context so backend scans poll
  // the same token (RunBlocked checks it at block boundaries).
  CancelScope scope(cancel_flag_);
  FetchJob job;
  while (jobs_->Pop(&job)) {
    size_t produced = 0;
    if (!abandon_.load(std::memory_order_relaxed)) {
      // One span per dispatched batch, on the fetch thread's timeline lane
      // — the pipelined counterpart of the staged "Flush" span.
      TraceScope batch_span(st_->trace, st_->trace_span, "FetchBatch",
                            /*track=*/1);
      batch_span.SetInt("statements", static_cast<int64_t>(job.stmts.size()));
      batch_span.SetBool("batched", job.batched);
      double scan_total = 0;
      double scan_last = 0;
      uint64_t chunks_total = 0;
      uint64_t chunks_last = 0;
      double shard_total = 0;
      double shard_last = 0;
      uint64_t batched_total = 0;
      uint64_t batched_last = 0;
      uint64_t shared_total = 0;
      uint64_t shared_last = 0;
      RunBatch(
          job.stmts, job.batched,
          [&](size_t, Result<ResultSet> rs) {
            const bool ok = rs.ok();
            FetchItem item;
            item.result = std::move(rs);
            item.scan_ms = scan_total - scan_last;
            scan_last = scan_total;
            item.chunks_scanned = chunks_total - chunks_last;
            chunks_last = chunks_total;
            item.shard_ms = shard_total - shard_last;
            shard_last = shard_total;
            item.batched_scans = batched_total - batched_last;
            batched_last = batched_total;
            item.scans_shared = shared_total - shared_last;
            shared_last = shared_total;
            results_->Push(std::move(item));
            ++produced;
            // Stop at the first failed statement (matching the staged
            // schedule, which never scans past an error) and on
            // cancellation/teardown; skipped statements get placeholders.
            return ok && !abandon_.load(std::memory_order_relaxed) &&
                   !CancellationRequested();
          },
          &scan_total, &chunks_total, &shard_total, &batched_total,
          &shared_total, batch_span.span(), /*track=*/1);
    }
    // Exactly one item per statement, always: statements skipped by an
    // early stop yield placeholders so the coordinator's accounting (one
    // pop per dispatched fetch) never blocks.
    for (size_t i = produced; i < job.stmts.size(); ++i) {
      FetchItem item;
      item.result = Status(StatusCode::kCancelled, "query cancelled");
      results_->Push(std::move(item));
    }
  }
}

void PipelineScheduler::RunBatch(
    const std::vector<sql::SelectStatement>& stmts, bool batched,
    const std::function<bool(size_t, Result<ResultSet>)>& sink,
    double* scan_ms, uint64_t* chunks_scanned, double* shard_ms,
    uint64_t* batched_scans, uint64_t* scans_shared, TraceSpan* span_parent,
    int track) {
  if (batch_queue_ != nullptr) {
    RunBatchShared(stmts, batched, sink, scan_ms, chunks_scanned,
                   batched_scans, scans_shared, span_parent, track);
    return;
  }
  if (!sharded_) {
    st_->db->ScanBatch(stmts, batched, sink, scan_ms);
    return;
  }
  // Sharded execution of the batch. Accounting mirrors ScanBatch exactly:
  // batched = one round trip for the whole batch, counted up front even if
  // an early stop skips statements; unbatched = one round trip each.
  StartShardPool();
  if (batched) st_->db->AccountRequest(stmts.size());
  for (size_t i = 0; i < stmts.size(); ++i) {
    if (!batched) st_->db->AccountRequest(1);
    const auto t0 = SteadyNow();
    Result<ResultSet> rs =
        ExecuteSharded(stmts[i], chunks_scanned, shard_ms, span_parent, track);
    if (scan_ms != nullptr) *scan_ms += MsSince(t0);
    if (!sink(i, std::move(rs))) return;
  }
}

void PipelineScheduler::RunBatchShared(
    const std::vector<sql::SelectStatement>& stmts, bool batched,
    const std::function<bool(size_t, Result<ResultSet>)>& sink,
    double* scan_ms, uint64_t* chunks_scanned, uint64_t* batched_scans,
    uint64_t* scans_shared, TraceSpan* span_parent, int track) {
  // Accounting mirrors ScanBatch exactly: batched = one round trip for
  // the whole flush, counted up front; unbatched = one per statement,
  // stopped by an early sink exit. The shared pass changes how rows are
  // *selected*, never what a round trip means.
  if (batched) st_->db->AccountRequest(stmts.size());
  std::vector<const sql::SelectStatement*> ptrs;
  ptrs.reserve(stmts.size());
  for (const sql::SelectStatement& stmt : stmts) ptrs.push_back(&stmt);
  const auto t0 = SteadyNow();
  BatchScanQueue::Selection sel;
  {
    // The group-commit span covers the whole SelectRows stay — window
    // hold, queueing, and the covering pass — while pass_ms is the pass's
    // own wall time; the difference is time spent waiting to be grouped.
    TraceScope pass_span(st_->trace, span_parent, "SharedScanPass", track);
    sel = batch_queue_->SelectRows(st_->db, st_->table_name, ptrs);
    pass_span.SetInt("statements", static_cast<int64_t>(stmts.size()));
    pass_span.SetBool("shared", sel.shared);
    pass_span.SetInt("chunks", static_cast<int64_t>(sel.chunks_scanned));
    pass_span.SetDouble("pass_ms", sel.scan_ms);
  }
  if (scan_ms != nullptr) *scan_ms += MsSince(t0);
  if (chunks_scanned != nullptr) *chunks_scanned += sel.chunks_scanned;
  if (batched_scans != nullptr) *batched_scans += stmts.size();
  if (scans_shared != nullptr && sel.shared) *scans_shared += stmts.size();
  for (size_t i = 0; i < stmts.size(); ++i) {
    if (!batched) st_->db->AccountRequest(1);
    if (!sel.status.ok()) {
      if (!sink(i, sel.status)) return;
      continue;
    }
    // Same split as the sharded path: the pass selected the rows, the
    // table-size-pure blocked runner aggregates them — so the bytes can
    // not depend on who shared the pass.
    const auto tf = SteadyNow();
    Result<ResultSet> rs = st_->db->FinishChunkScan(stmts[i], sel.rows[i]);
    if (scan_ms != nullptr) *scan_ms += MsSince(tf);
    if (!sink(i, std::move(rs))) return;
  }
}

Result<ResultSet> PipelineScheduler::ExecuteSharded(
    const sql::SelectStatement& stmt, uint64_t* chunks_scanned,
    double* shard_ms, TraceSpan* span_parent, int track) {
  TraceScope pass_span(st_->trace, span_parent, "ChunkScanPass", track);
  ZV_ASSIGN_OR_RETURN(std::unique_ptr<ChunkScanner> scanner,
                      st_->db->PrepareChunkScan(stmt));
  const size_t chunks = chunk_map_.num_chunks();
  pass_span.SetInt("chunks", static_cast<int64_t>(chunks));
  pass_span.SetInt("workers",
                   static_cast<int64_t>(std::min(shard_workers_, chunks)));
  for (size_t c = 0; c < chunks; ++c) {
    const auto [begin, end] = chunk_map_.chunk_range(c);
    chunk_jobs_->Push({scanner.get(), c, begin, end});
  }
  // Collect exactly one item per chunk (the workers' guarantee), slotting
  // by chunk index — the positional merge that makes the concatenated row
  // list identical to a serial scan's.
  std::vector<ChunkItem> slots(chunks);
  for (size_t received = 0; received < chunks; ++received) {
    ChunkItem item;
    if (!chunk_results_->Pop(&item)) {
      return Status::Internal("shard pool closed with chunks in flight");
    }
    slots[item.chunk] = std::move(item);
  }
  // First error by chunk index — the failure a serial scan, which visits
  // rows in ascending order, would have hit first.
  size_t total_rows = 0;
  for (const ChunkItem& slot : slots) {
    ZV_RETURN_NOT_OK(slot.status);
    total_rows += slot.rows.size();
  }
  std::vector<uint32_t> rows;
  rows.reserve(total_rows);
  for (ChunkItem& slot : slots) {
    rows.insert(rows.end(), slot.rows.begin(), slot.rows.end());
    if (shard_ms != nullptr) *shard_ms += slot.scan_ms;
  }
  if (chunks_scanned != nullptr) *chunks_scanned += chunks;
  pass_span.SetInt("rows", static_cast<int64_t>(total_rows));
  return st_->db->FinishChunkScan(stmt, rows);
}

void PipelineScheduler::StartShardPool() {
  if (!shard_threads_.empty()) return;
  const size_t chunks = chunk_map_.num_chunks();
  chunk_jobs_ = std::make_unique<BoundedQueue<ChunkJob>>(chunks);
  chunk_results_ = std::make_unique<BoundedQueue<ChunkItem>>(chunks);
  const size_t workers = std::min(shard_workers_, chunks);
  shard_threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    shard_threads_.emplace_back([this] { ShardWorkerMain(); });
  }
}

void PipelineScheduler::ShardWorkerMain() {
  // Same mirroring as the fetch thread: chunk scans poll the coordinator's
  // token inside ScanRange, so cancellation reaches every shard worker.
  CancelScope scope(cancel_flag_);
  ChunkJob job;
  while (chunk_jobs_->Pop(&job)) {
    ChunkItem item;
    item.chunk = job.chunk;
    const auto t0 = SteadyNow();
    if (abandon_.load(std::memory_order_relaxed) || CancellationRequested()) {
      item.status = Status(StatusCode::kCancelled, "query cancelled");
    } else {
      item.status = job.scanner->ScanRange(job.begin, job.end, &item.rows);
    }
    item.scan_ms = MsSince(t0);
    // Never silent: every claimed chunk answers, so ExecuteSharded's
    // accounting (one pop per dispatched chunk) always terminates.
    chunk_results_->Push(std::move(item));
  }
}

}  // namespace zv::zql::exec
