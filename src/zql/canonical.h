/// \file canonical.h
/// \brief Canonical serialization of a ZQL AST — deterministic, re-parseable
/// ZQL text.
///
/// This is the cache identity of a query (server::QueryFingerprint hashes
/// it), replacing whitespace-normalized source text: a ZqlBuilder-built
/// query and its hand-typed textual equivalent serialize identically, so
/// they share one ResultCache entry. It is also the wire form of the typed
/// protocol's query payload (src/api/), which makes three properties
/// load-bearing:
///
///  1. *Re-parseable*: ParseQuery(CanonicalText(q)) succeeds for any query
///     the parser or builder can produce.
///  2. *Idempotent*: CanonicalText(ParseQuery(CanonicalText(q))) ==
///     CanonicalText(q), byte for byte (tests/zql_builder_test.cc locks
///     this over the full grammar).
///  3. *Faithful*: every result-relevant AST field round-trips — doubles
///     serialize with full round-trip precision (CanonicalDouble), so two
///     queries differing only in the 17th digit of a threshold do NOT
///     collide on one cache entry.
///
/// Not covered: `ZqlRow::line` (diagnostics only) and attribute/value
/// strings containing a single quote (the ZQL lexer has no escape syntax —
/// such queries cannot be written in text either).

#ifndef ZV_ZQL_CANONICAL_H_
#define ZV_ZQL_CANONICAL_H_

#include <string>

#include "zql/ast.h"

namespace zv::zql {

/// Serializes the full query: one header line (`name | x | y | z ... |
/// constraints | viz | process`, with as many z columns as the widest row)
/// followed by one line per row.
std::string CanonicalText(const ZqlQuery& query);

/// Cell-level serializers, exposed for the builder and tests.
std::string CanonicalAxisEntry(const AxisEntry& entry);
std::string CanonicalZEntry(const ZEntry& entry);
std::string CanonicalZSetExpr(const ZSetExpr& expr);
std::string CanonicalVizEntry(const VizEntry& entry);
std::string CanonicalNameEntry(const NameEntry& entry);
std::string CanonicalProcessCell(const std::vector<ProcessDecl>& decls);

}  // namespace zv::zql

#endif  // ZV_ZQL_CANONICAL_H_
