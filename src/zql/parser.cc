#include "zql/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace zv::zql {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdent(std::string_view s) {
  if (s.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!IsIdentChar(c)) return false;
  }
  return true;
}

/// Parses a literal token: 'quoted' -> string, bare number -> int/double,
/// bare ident -> string (the paper writes {USA, Canada} unquoted).
Result<Value> ParseValueToken(std::string_view raw) {
  std::string s = Trim(raw);
  if (s.empty()) return Status::ParseError("empty value");
  if (s.front() == '\'' ) {
    if (s.size() < 2 || s.back() != '\'') {
      return Status::ParseError("unterminated quoted value: " + s);
    }
    return Value::Str(s.substr(1, s.size() - 2));
  }
  char* end = nullptr;
  const double d = std::strtod(s.c_str(), &end);
  if (end == s.c_str() + s.size() && end != s.c_str()) {
    if (s.find('.') == std::string::npos &&
        s.find('e') == std::string::npos &&
        s.find('E') == std::string::npos) {
      return Value::Int(static_cast<int64_t>(d));
    }
    return Value::Double(d);
  }
  if (IsIdent(s)) return Value::Str(s);
  return Status::ParseError("bad value token: " + s);
}

/// Parses a quoted attribute name, or a bare identifier.
Result<std::string> ParseAttrToken(std::string_view raw) {
  std::string s = Trim(raw);
  if (s.size() >= 2 && s.front() == '\'' && s.back() == '\'') {
    return s.substr(1, s.size() - 2);
  }
  if (IsIdent(s)) return s;
  return Status::ParseError("bad attribute token: " + s);
}

/// Strips one level of balanced outer parentheses (repeatedly).
std::string StripParens(std::string s) {
  while (true) {
    s = Trim(s);
    if (s.size() < 2 || s.front() != '(' || s.back() != ')') return s;
    // Ensure the closing paren matches the opening one.
    int depth = 0;
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '(') ++depth;
      else if (s[i] == ')') {
        --depth;
        if (depth == 0 && i + 1 != s.size()) return s;
      }
    }
    s = s.substr(1, s.size() - 2);
  }
}

/// Finds the position of "<-" at paren/quote depth 0, or npos.
size_t FindArrow(std::string_view s) {
  int depth = 0;
  bool quote = false;
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    const char c = s[i];
    if (quote) {
      if (c == '\'') quote = false;
      continue;
    }
    if (c == '\'') quote = true;
    else if (c == '(' || c == '{' || c == '[') ++depth;
    else if (c == ')' || c == '}' || c == ']') --depth;
    else if (depth == 0 && c == '<' && s[i + 1] == '-') return i;
  }
  return std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Axis entries
// ---------------------------------------------------------------------------

Result<AxisValue> ParseAxisValue(const std::string& raw) {
  std::string s = Trim(raw);
  AxisValue out;
  // Split on '+' or '*' at top level.
  char compose = 0;
  int depth = 0;
  bool quote = false;
  size_t start = 0;
  std::vector<std::string> parts;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quote) {
      if (c == '\'') quote = false;
      continue;
    }
    if (c == '\'') quote = true;
    else if (c == '(' || c == '{') ++depth;
    else if (c == ')' || c == '}') --depth;
    else if (depth == 0 && (c == '+' || c == '*')) {
      if (compose != 0 && compose != c) {
        return Status::ParseError("mixed +/* axis composition: " + s);
      }
      compose = c;
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  parts.push_back(s.substr(start));
  for (const std::string& p : parts) {
    ZV_ASSIGN_OR_RETURN(std::string attr, ParseAttrToken(p));
    out.attrs.push_back(std::move(attr));
  }
  out.compose = compose == '+'   ? AxisValue::Compose::kPlus
                : compose == '*' ? AxisValue::Compose::kCross
                                 : AxisValue::Compose::kNone;
  return out;
}

}  // namespace

std::string AxisValue::Label() const {
  const char* sep = compose == Compose::kPlus ? "+" : "*";
  std::string out;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i) out += sep;
    out += attrs[i];
  }
  return out;
}

Result<AxisEntry> ParseAxisEntry(const std::string& text) {
  AxisEntry entry;
  std::string s = Trim(text);
  if (s.empty() || s == "-") {
    entry.kind = AxisEntry::Kind::kNone;
    return entry;
  }
  // Ordering key: "u1 ->".
  if (EndsWith(s, "->")) {
    entry.kind = AxisEntry::Kind::kOrderBy;
    entry.var = Trim(s.substr(0, s.size() - 2));
    if (!IsIdent(entry.var)) {
      return Status::ParseError("bad ordering variable: " + s);
    }
    return entry;
  }
  const size_t arrow = FindArrow(s);
  if (arrow != std::string::npos) {
    entry.var = Trim(s.substr(0, arrow));
    if (!IsIdent(entry.var)) {
      return Status::ParseError("bad axis variable name: " + entry.var);
    }
    std::string rhs = Trim(s.substr(arrow + 2));
    if (rhs == "_") {
      entry.kind = AxisEntry::Kind::kDerived;
      return entry;
    }
    entry.kind = AxisEntry::Kind::kDeclare;
    rhs = StripParens(rhs);
    if (rhs.size() >= 2 && rhs.front() == '{' && rhs.back() == '}') {
      for (const std::string& item :
           SplitTopLevel(rhs.substr(1, rhs.size() - 2), ',')) {
        ZV_ASSIGN_OR_RETURN(AxisValue v, ParseAxisValue(item));
        entry.set.push_back(std::move(v));
      }
      return entry;
    }
    if (IsIdent(rhs)) {
      entry.named_set = rhs;
      return entry;
    }
    return Status::ParseError("bad axis set: " + rhs);
  }
  // Composite with embedded declaration: 'product' * (x1 <- {...}).
  {
    int depth = 0;
    bool quote = false;
    for (size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (quote) {
        if (c == '\'') quote = false;
        continue;
      }
      if (c == '\'') quote = true;
      else if (c == '(') ++depth;
      else if (c == ')') --depth;
      else if (depth == 0 && (c == '*' || c == '+')) {
        std::string lhs = Trim(s.substr(0, i));
        std::string rhs = Trim(s.substr(i + 1));
        if (StartsWith(rhs, "(") && FindArrow(StripParens(rhs)) !=
                                         std::string_view::npos) {
          ZV_ASSIGN_OR_RETURN(std::string base, ParseAttrToken(lhs));
          const std::string inner = StripParens(rhs);
          const size_t a = FindArrow(inner);
          entry.kind = AxisEntry::Kind::kDeclare;
          entry.var = Trim(inner.substr(0, a));
          // Accept "x1 <- {...}" and "x1 in {...}" styles.
          std::string set_text = StripParens(Trim(inner.substr(a + 2)));
          if (set_text.size() < 2 || set_text.front() != '{' ||
              set_text.back() != '}') {
            return Status::ParseError("bad composite axis set: " + set_text);
          }
          for (const std::string& item : SplitTopLevel(
                   set_text.substr(1, set_text.size() - 2), ',')) {
            ZV_ASSIGN_OR_RETURN(std::string attr, ParseAttrToken(item));
            AxisValue v;
            v.attrs = {base, attr};
            v.compose = c == '*' ? AxisValue::Compose::kCross
                                 : AxisValue::Compose::kPlus;
            entry.set.push_back(std::move(v));
          }
          return entry;
        }
        break;
      }
    }
  }
  if (IsIdent(s)) {
    entry.kind = AxisEntry::Kind::kReuse;
    entry.var = s;
    return entry;
  }
  entry.kind = AxisEntry::Kind::kLiteral;
  ZV_ASSIGN_OR_RETURN(entry.literal, ParseAxisValue(s));
  return entry;
}

// ---------------------------------------------------------------------------
// Z entries
// ---------------------------------------------------------------------------

namespace {

Result<AttrSpec> ParseAttrSpec(const std::string& raw) {
  AttrSpec spec;
  std::string s = Trim(raw);
  if (s == "*") {
    spec.kind = AttrSpec::Kind::kAll;
    return spec;
  }
  s = StripParens(s);
  if (s == "*") {
    spec.kind = AttrSpec::Kind::kAll;
    return spec;
  }
  // (* \ {..}) or (* - {..})
  if (StartsWith(s, "*")) {
    std::string rest = Trim(s.substr(1));
    if (rest.empty()) {
      spec.kind = AttrSpec::Kind::kAll;
      return spec;
    }
    if (rest[0] != '\\' && rest[0] != '-') {
      return Status::ParseError("bad attribute spec: " + raw);
    }
    rest = StripParens(Trim(rest.substr(1)));
    spec.kind = AttrSpec::Kind::kAllExcept;
    if (rest.size() >= 2 && rest.front() == '{' && rest.back() == '}') {
      rest = rest.substr(1, rest.size() - 2);
    }
    for (const std::string& item : SplitTopLevel(rest, ',')) {
      ZV_ASSIGN_OR_RETURN(std::string attr, ParseAttrToken(item));
      spec.names.push_back(std::move(attr));
    }
    return spec;
  }
  if (s.size() >= 2 && s.front() == '{' && s.back() == '}') {
    spec.kind = AttrSpec::Kind::kList;
    for (const std::string& item :
         SplitTopLevel(s.substr(1, s.size() - 2), ',')) {
      ZV_ASSIGN_OR_RETURN(std::string attr, ParseAttrToken(item));
      spec.names.push_back(std::move(attr));
    }
    return spec;
  }
  spec.kind = AttrSpec::Kind::kLiteral;
  ZV_ASSIGN_OR_RETURN(std::string attr, ParseAttrToken(s));
  spec.names.push_back(std::move(attr));
  return spec;
}

Result<ValueSpec> ParseValueSpec(const std::string& raw) {
  ValueSpec spec;
  std::string s = Trim(raw);
  if (s == "_") {
    spec.kind = ValueSpec::Kind::kDerived;
    return spec;
  }
  if (s == "*") {
    spec.kind = ValueSpec::Kind::kAll;
    return spec;
  }
  s = StripParens(s);
  if (s == "*") {
    spec.kind = ValueSpec::Kind::kAll;
    return spec;
  }
  if (StartsWith(s, "*")) {
    std::string rest = Trim(s.substr(1));
    if (rest.empty()) {
      spec.kind = ValueSpec::Kind::kAll;
      return spec;
    }
    if (rest[0] != '\\' && rest[0] != '-') {
      return Status::ParseError("bad value spec: " + raw);
    }
    rest = StripParens(Trim(rest.substr(1)));
    spec.kind = ValueSpec::Kind::kAllExcept;
    if (rest.size() >= 2 && rest.front() == '{' && rest.back() == '}') {
      rest = rest.substr(1, rest.size() - 2);
    }
    for (const std::string& item : SplitTopLevel(rest, ',')) {
      ZV_ASSIGN_OR_RETURN(Value v, ParseValueToken(item));
      spec.values.push_back(std::move(v));
    }
    return spec;
  }
  if (s.size() >= 2 && s.front() == '{' && s.back() == '}') {
    spec.kind = ValueSpec::Kind::kList;
    for (const std::string& item :
         SplitTopLevel(s.substr(1, s.size() - 2), ',')) {
      ZV_ASSIGN_OR_RETURN(Value v, ParseValueToken(item));
      spec.values.push_back(std::move(v));
    }
    return spec;
  }
  spec.kind = ValueSpec::Kind::kLiteral;
  ZV_ASSIGN_OR_RETURN(Value v, ParseValueToken(s));
  spec.values.push_back(std::move(v));
  return spec;
}

/// Splits "attrpart.valuepart" at the top-level '.' separating the two —
/// the last depth-0 '.' that is not inside quotes and not part of ".range".
size_t FindAttrValueDot(std::string_view s) {
  int depth = 0;
  bool quote = false;
  size_t best = std::string_view::npos;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quote) {
      if (c == '\'') quote = false;
      continue;
    }
    if (c == '\'') quote = true;
    else if (c == '(' || c == '{') ++depth;
    else if (c == ')' || c == '}') --depth;
    else if (depth == 0 && c == '.') best = i;
  }
  return best;
}

Result<std::unique_ptr<ZSetExpr>> ParseZSetExpr(const std::string& raw);

Result<std::unique_ptr<ZSetExpr>> ParseZSetTerm(const std::string& raw) {
  std::string s = Trim(raw);
  // Parenthesized subexpression: recurse only if stripping makes progress —
  // '(...)..' shapes like "(* \ {..}).*" are attr/value specs, not nested
  // set expressions.
  if (!s.empty() && s.front() == '(') {
    const std::string stripped = StripParens(s);
    if (stripped != s) return ParseZSetExpr(stripped);
  }
  if (EndsWith(s, ".range")) {
    std::string var = Trim(s.substr(0, s.size() - 6));
    if (!IsIdent(var)) return Status::ParseError("bad .range variable: " + s);
    auto e = std::make_unique<ZSetExpr>();
    e->kind = ZSetExpr::Kind::kVarRange;
    e->var = std::move(var);
    return e;
  }
  const size_t dot = FindAttrValueDot(s);
  if (dot == std::string_view::npos) {
    // Bare identifier: a registered named value set (e.g. P, OA).
    if (IsIdent(s)) {
      auto e = std::make_unique<ZSetExpr>();
      e->kind = ZSetExpr::Kind::kNamedSet;
      e->var = s;
      return e;
    }
    return Status::ParseError("bad Z set term: " + s);
  }
  auto e = std::make_unique<ZSetExpr>();
  e->kind = ZSetExpr::Kind::kAttrDotValue;
  ZV_ASSIGN_OR_RETURN(e->attr, ParseAttrSpec(s.substr(0, dot)));
  ZV_ASSIGN_OR_RETURN(e->value, ParseValueSpec(s.substr(dot + 1)));
  return e;
}

Result<std::unique_ptr<ZSetExpr>> ParseZSetExpr(const std::string& raw) {
  std::string s = Trim(raw);
  // Split at top-level set operators | & \ (left-associative).
  int depth = 0;
  bool quote = false;
  std::vector<std::string> terms;
  std::vector<char> ops;
  size_t start = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quote) {
      if (c == '\'') quote = false;
      continue;
    }
    if (c == '\'') quote = true;
    else if (c == '(' || c == '{') ++depth;
    else if (c == ')' || c == '}') --depth;
    else if (depth == 0 && (c == '|' || c == '&' || c == '\\')) {
      terms.push_back(s.substr(start, i - start));
      ops.push_back(c);
      start = i + 1;
    }
  }
  terms.push_back(s.substr(start));
  ZV_ASSIGN_OR_RETURN(auto acc, ParseZSetTerm(terms[0]));
  for (size_t i = 0; i < ops.size(); ++i) {
    ZV_ASSIGN_OR_RETURN(auto rhs, ParseZSetTerm(terms[i + 1]));
    auto node = std::make_unique<ZSetExpr>();
    node->kind = ZSetExpr::Kind::kOp;
    node->op = ops[i];
    node->lhs = std::move(acc);
    node->rhs = std::move(rhs);
    acc = std::move(node);
  }
  return acc;
}

}  // namespace

Result<ZEntry> ParseZEntry(const std::string& text) {
  ZEntry entry;
  std::string s = Trim(text);
  if (s.empty() || s == "-") {
    entry.kind = ZEntry::Kind::kNone;
    return entry;
  }
  if (EndsWith(s, "->")) {
    entry.kind = ZEntry::Kind::kOrderBy;
    entry.vars = {Trim(s.substr(0, s.size() - 2))};
    if (!IsIdent(entry.vars[0])) {
      return Status::ParseError("bad ordering variable: " + s);
    }
    return entry;
  }
  const size_t arrow = FindArrow(s);
  if (arrow != std::string_view::npos) {
    // lhs: v1 or z1.v1
    for (const std::string& part :
         Split(Trim(s.substr(0, arrow)), '.')) {
      const std::string name = Trim(part);
      if (!IsIdent(name)) {
        return Status::ParseError("bad Z variable: " + name);
      }
      entry.vars.push_back(name);
    }
    if (entry.vars.empty() || entry.vars.size() > 2) {
      return Status::ParseError("Z declares 1 or 2 variables: " + s);
    }
    std::string rhs = Trim(s.substr(arrow + 2));
    // Derived binding: 'product'._  or  _ (bind to derived component).
    if (rhs == "_") {
      entry.kind = ZEntry::Kind::kDerived;
      return entry;
    }
    if (EndsWith(rhs, "._")) {
      ZV_ASSIGN_OR_RETURN(entry.derived_attr,
                          ParseAttrToken(rhs.substr(0, rhs.size() - 2)));
      entry.kind = ZEntry::Kind::kDerived;
      return entry;
    }
    entry.kind = ZEntry::Kind::kDeclare;
    ZV_ASSIGN_OR_RETURN(auto set, ParseZSetExpr(rhs));
    entry.set = std::shared_ptr<ZSetExpr>(std::move(set));
    return entry;
  }
  if (IsIdent(s)) {
    entry.kind = ZEntry::Kind::kReuse;
    entry.vars = {s};
    return entry;
  }
  // Literal 'product'.'chair'.
  const size_t dot = FindAttrValueDot(s);
  if (dot == std::string_view::npos) {
    return Status::ParseError("bad Z entry: " + s);
  }
  entry.kind = ZEntry::Kind::kLiteral;
  ZV_ASSIGN_OR_RETURN(entry.literal.attr, ParseAttrToken(s.substr(0, dot)));
  ZV_ASSIGN_OR_RETURN(entry.literal.value, ParseValueToken(s.substr(dot + 1)));
  return entry;
}

// ---------------------------------------------------------------------------
// Viz entries
// ---------------------------------------------------------------------------

Result<VizEntry> ParseVizEntry(const std::string& text) {
  VizEntry entry;
  std::string s = Trim(text);
  if (s.empty() || s == "-") {
    entry.kind = VizEntry::Kind::kNone;
    return entry;
  }
  const size_t arrow = FindArrow(s);
  if (arrow == std::string_view::npos) {
    if (IsIdent(s) && !ChartTypeFromString(s).ok()) {
      entry.kind = VizEntry::Kind::kReuse;
      entry.var = s;
      return entry;
    }
    entry.kind = VizEntry::Kind::kLiteral;
    ZV_ASSIGN_OR_RETURN(entry.literal, ParseVizSpec(s));
    return entry;
  }
  entry.kind = VizEntry::Kind::kDeclare;
  entry.var = Trim(s.substr(0, arrow));
  if (!IsIdent(entry.var)) {
    return Status::ParseError("bad viz variable: " + entry.var);
  }
  std::string rhs = Trim(s.substr(arrow + 2));
  // Form 1: {bar, dotplot}.(summ)
  if (!rhs.empty() && rhs.front() == '{') {
    const size_t close = rhs.find('}');
    if (close == std::string::npos) {
      return Status::ParseError("bad viz set: " + rhs);
    }
    std::string types = rhs.substr(1, close - 1);
    std::string summ = Trim(rhs.substr(close + 1));
    if (StartsWith(summ, ".")) summ = Trim(summ.substr(1));
    for (const std::string& t : SplitTopLevel(types, ',')) {
      ZV_ASSIGN_OR_RETURN(VizSpec spec,
                          ParseVizSpec(Trim(t) + (summ.empty() ? "" : "." + summ)));
      entry.set.push_back(spec);
    }
    return entry;
  }
  // Form 2: bar.{(summ1), (summ2)}
  const size_t brace = rhs.find(".{");
  if (brace != std::string::npos && EndsWith(rhs, "}")) {
    const std::string type = Trim(rhs.substr(0, brace));
    const std::string body = rhs.substr(brace + 2, rhs.size() - brace - 3);
    for (const std::string& summ : SplitTopLevel(body, ',')) {
      ZV_ASSIGN_OR_RETURN(VizSpec spec, ParseVizSpec(type + "." + Trim(summ)));
      entry.set.push_back(spec);
    }
    return entry;
  }
  // Fallback: single-element set.
  ZV_ASSIGN_OR_RETURN(VizSpec spec, ParseVizSpec(rhs));
  entry.set.push_back(spec);
  return entry;
}

// ---------------------------------------------------------------------------
// Name entries
// ---------------------------------------------------------------------------

Result<NameEntry> ParseNameEntry(const std::string& text) {
  NameEntry entry;
  std::string s = Trim(text);
  if (s.empty()) return Status::ParseError("Name column cannot be empty");
  if (s[0] == '*') {
    entry.output = true;
    s = Trim(s.substr(1));
  } else if (s[0] == '-') {
    entry.user_input = true;
    s = Trim(s.substr(1));
  }
  const size_t eq = s.find('=');
  if (eq == std::string::npos) {
    if (!IsIdent(s)) return Status::ParseError("bad component name: " + s);
    entry.name = s;
    return entry;
  }
  entry.name = Trim(s.substr(0, eq));
  if (!IsIdent(entry.name)) {
    return Status::ParseError("bad component name: " + entry.name);
  }
  std::string rhs = Trim(s.substr(eq + 1));
  // f1.range / f1.order
  if (EndsWith(rhs, ".range") || EndsWith(rhs, ".order")) {
    entry.derive = EndsWith(rhs, ".range") ? NameEntry::Derive::kRange
                                           : NameEntry::Derive::kOrder;
    entry.source_a = Trim(rhs.substr(0, rhs.size() - 6));
    if (!IsIdent(entry.source_a)) {
      return Status::ParseError("bad derivation source: " + rhs);
    }
    return entry;
  }
  // f1[i] / f1[i:j]
  if (EndsWith(rhs, "]")) {
    const size_t open = rhs.find('[');
    if (open == std::string::npos) {
      return Status::ParseError("bad index derivation: " + rhs);
    }
    entry.source_a = Trim(rhs.substr(0, open));
    if (!IsIdent(entry.source_a)) {
      return Status::ParseError("bad derivation source: " + rhs);
    }
    std::string body = rhs.substr(open + 1, rhs.size() - open - 2);
    const size_t colon = body.find(':');
    if (colon == std::string::npos) {
      entry.derive = NameEntry::Derive::kIndex;
      entry.index_a = std::strtoll(Trim(body).c_str(), nullptr, 10);
    } else {
      entry.derive = NameEntry::Derive::kSlice;
      entry.index_a = std::strtoll(Trim(body.substr(0, colon)).c_str(),
                                   nullptr, 10);
      entry.index_b = std::strtoll(Trim(body.substr(colon + 1)).c_str(),
                                   nullptr, 10);
    }
    return entry;
  }
  // f1+f2 / f1-f2 / f1^f2
  for (char op : {'+', '-', '^'}) {
    const size_t pos = rhs.find(op);
    if (pos == std::string::npos) continue;
    entry.derive = op == '+'   ? NameEntry::Derive::kPlus
                   : op == '-' ? NameEntry::Derive::kMinus
                               : NameEntry::Derive::kIntersect;
    entry.source_a = Trim(rhs.substr(0, pos));
    entry.source_b = Trim(rhs.substr(pos + 1));
    if (!IsIdent(entry.source_a) || !IsIdent(entry.source_b)) {
      return Status::ParseError("bad derivation operands: " + rhs);
    }
    return entry;
  }
  return Status::ParseError("bad name derivation: " + rhs);
}

// ---------------------------------------------------------------------------
// Process entries
// ---------------------------------------------------------------------------

namespace {

Result<std::vector<std::string>> ParseVarList(const std::string& raw) {
  std::vector<std::string> out;
  for (const std::string& part : SplitTopLevel(StripParens(raw), ',')) {
    const std::string v = Trim(part);
    if (!IsIdent(v)) return Status::ParseError("bad variable name: " + v);
    out.push_back(v);
  }
  return out;
}

/// Parses "mech_v1,v2" prefix: returns vars consumed and advances *pos past
/// them.
Result<std::vector<std::string>> ParseSubscriptVars(const std::string& s,
                                                    size_t* pos) {
  std::vector<std::string> vars;
  size_t i = *pos;
  // Skip the '_' or read parenthesized list.
  while (i < s.size() && s[i] == ' ') ++i;
  if (i < s.size() && s[i] == '(') {
    int depth = 0;
    size_t start = i;
    for (; i < s.size(); ++i) {
      if (s[i] == '(') ++depth;
      else if (s[i] == ')') {
        if (--depth == 0) {
          ++i;
          break;
        }
      }
    }
    ZV_ASSIGN_OR_RETURN(vars, ParseVarList(s.substr(start, i - start)));
    *pos = i;
    return vars;
  }
  if (i < s.size() && s[i] == '_') ++i;
  // Read comma-separated identifiers.
  while (true) {
    while (i < s.size() && s[i] == ' ') ++i;
    size_t start = i;
    while (i < s.size() && IsIdentChar(s[i])) ++i;
    if (i == start) break;
    vars.push_back(s.substr(start, i - start));
    size_t j = i;
    while (j < s.size() && s[j] == ' ') ++j;
    if (j < s.size() && s[j] == ',') {
      i = j + 1;
      continue;
    }
    break;
  }
  *pos = i;
  if (vars.empty()) return Status::ParseError("expected iteration variables");
  return vars;
}

Result<MechanismFilter> ParseFilter(const std::string& body) {
  MechanismFilter filter;
  std::string s = Trim(body);
  if (s.empty()) return filter;
  if (s[0] == 'k') {
    const size_t eq = s.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("bad k filter: " + body);
    }
    const std::string v = ToLower(Trim(s.substr(eq + 1)));
    if (v == "inf" || v == "infinity" || v == "all") {
      // k = ∞: sort everything; leave k unset.
      return filter;
    }
    filter.k = std::strtoll(v.c_str(), nullptr, 10);
    if (*filter.k <= 0) return Status::ParseError("bad k value: " + body);
    return filter;
  }
  if (s[0] == 't') {
    size_t i = 1;
    while (i < s.size() && s[i] == ' ') ++i;
    if (i >= s.size() || (s[i] != '>' && s[i] != '<')) {
      return Status::ParseError("bad t filter: " + body);
    }
    const char op = s[i];
    const double v = std::strtod(s.substr(i + 1).c_str(), nullptr);
    if (op == '>') filter.t_above = v;
    else filter.t_below = v;
    return filter;
  }
  return Status::ParseError("bad filter: " + body);
}

Result<std::unique_ptr<ProcessExpr>> ParseProcessExpr(const std::string& raw) {
  std::string s = Trim(raw);
  if (s.empty()) return Status::ParseError("empty process expression");
  // Inner reducer?
  for (const auto& [kw, kind] :
       {std::pair<const char*, ProcessExpr::Reduce>{"min",
                                                    ProcessExpr::Reduce::kMin},
        {"max", ProcessExpr::Reduce::kMax},
        {"sum", ProcessExpr::Reduce::kSum}}) {
    const size_t len = std::string(kw).size();
    if (StartsWith(s, kw) && s.size() > len &&
        (s[len] == '_' || s[len] == '(')) {
      // Distinguish reducer min_v from a call min(...)? Reducers always use
      // '_'; calls named min/max/sum are not supported.
      if (s[len] == '_') {
        auto e = std::make_unique<ProcessExpr>();
        e->kind = ProcessExpr::Kind::kReduce;
        e->reduce = kind;
        size_t pos = len;
        ZV_ASSIGN_OR_RETURN(e->reduce_vars, ParseSubscriptVars(s, &pos));
        ZV_ASSIGN_OR_RETURN(e->child, ParseProcessExpr(s.substr(pos)));
        return e;
      }
    }
  }
  // Function call: NAME(args).
  const size_t open = s.find('(');
  if (open == std::string::npos || !EndsWith(s, ")")) {
    return Status::ParseError("bad process expression: " + s);
  }
  auto e = std::make_unique<ProcessExpr>();
  e->kind = ProcessExpr::Kind::kCall;
  e->func = Trim(s.substr(0, open));
  if (!IsIdent(e->func)) {
    return Status::ParseError("bad process function name: " + e->func);
  }
  const std::string body = s.substr(open + 1, s.size() - open - 2);
  for (const std::string& arg : SplitTopLevel(body, ',')) {
    const std::string a = Trim(arg);
    if (!IsIdent(a)) return Status::ParseError("bad process argument: " + a);
    e->args.push_back(a);
  }
  return e;
}

Result<ProcessDecl> ParseProcessDecl(const std::string& raw) {
  ProcessDecl decl;
  std::string s = StripParens(Trim(raw));
  // outvars <- rhs   (also accepts "outvars IN rhs", Table 7.1 style)
  size_t arrow = FindArrow(s);
  size_t rhs_start;
  if (arrow != std::string_view::npos) {
    rhs_start = arrow + 2;
  } else {
    const size_t in_pos = s.find(" IN ");
    if (in_pos == std::string::npos) {
      return Status::ParseError("process must bind outputs with '<-': " + s);
    }
    arrow = in_pos;
    rhs_start = in_pos + 4;
  }
  ZV_ASSIGN_OR_RETURN(decl.outputs, ParseVarList(s.substr(0, arrow)));
  std::string rhs = Trim(s.substr(rhs_start));

  // R(k, v..., f)
  if ((StartsWith(rhs, "R(") || StartsWith(rhs, "R ("))) {
    decl.kind = ProcessDecl::Kind::kRepresentative;
    const size_t open = rhs.find('(');
    if (!EndsWith(rhs, ")")) return Status::ParseError("bad R call: " + rhs);
    const std::string body = rhs.substr(open + 1, rhs.size() - open - 2);
    std::vector<std::string> parts = SplitTopLevel(body, ',');
    if (parts.size() < 3) {
      return Status::ParseError("R takes (k, vars..., component): " + rhs);
    }
    decl.repr_k = std::strtoll(Trim(parts[0]).c_str(), nullptr, 10);
    if (decl.repr_k <= 0) return Status::ParseError("bad R k: " + rhs);
    decl.repr_component = Trim(parts.back());
    for (size_t i = 1; i + 1 < parts.size(); ++i) {
      ZV_ASSIGN_OR_RETURN(auto vars, ParseVarList(parts[i]));
      for (auto& v : vars) decl.repr_vars.push_back(std::move(v));
    }
    return decl;
  }

  // Mechanism.
  decl.kind = ProcessDecl::Kind::kMechanism;
  size_t pos = 0;
  if (StartsWith(rhs, "argmin")) {
    decl.mech = Mechanism::kArgMin;
    pos = 6;
  } else if (StartsWith(rhs, "argmax")) {
    decl.mech = Mechanism::kArgMax;
    pos = 6;
  } else if (StartsWith(rhs, "argany")) {
    decl.mech = Mechanism::kArgAny;
    pos = 6;
  } else {
    return Status::ParseError("unknown process mechanism: " + rhs);
  }
  ZV_ASSIGN_OR_RETURN(decl.iter_vars, ParseSubscriptVars(rhs, &pos));
  // Optional [filter].
  while (pos < rhs.size() && rhs[pos] == ' ') ++pos;
  if (pos < rhs.size() && rhs[pos] == '[') {
    const size_t close = rhs.find(']', pos);
    if (close == std::string::npos) {
      return Status::ParseError("unterminated filter: " + rhs);
    }
    ZV_ASSIGN_OR_RETURN(decl.filter,
                        ParseFilter(rhs.substr(pos + 1, close - pos - 1)));
    pos = close + 1;
  }
  ZV_ASSIGN_OR_RETURN(auto expr, ParseProcessExpr(rhs.substr(pos)));
  decl.expr = std::shared_ptr<ProcessExpr>(std::move(expr));
  if (decl.outputs.size() != decl.iter_vars.size()) {
    return Status::ParseError(StrFormat(
        "process declares %zu outputs for %zu iteration variables",
        decl.outputs.size(), decl.iter_vars.size()));
  }
  return decl;
}

}  // namespace

Result<std::vector<ProcessDecl>> ParseProcessCell(const std::string& text) {
  std::vector<ProcessDecl> out;
  const std::string s = Trim(text);
  if (s.empty() || s == "-") return out;
  // Top-level commas separate processes (Table 3.21), but they also appear
  // inside output-variable lists and mechanism subscripts ("x2, y2 <-
  // argmax_x1,y1[...] ..."), so accumulate fragments until a complete
  // declaration parses.
  std::vector<std::string> fragments = SplitTopLevel(s, ',');
  std::string pending;
  Status last_error = Status::OK();
  for (const std::string& frag : fragments) {
    const std::string piece = pending.empty() ? frag : pending + "," + frag;
    const std::string stripped = StripParens(Trim(piece));
    if (FindArrow(stripped) != std::string_view::npos ||
        stripped.find(" IN ") != std::string::npos) {
      Result<ProcessDecl> decl = ParseProcessDecl(piece);
      if (decl.ok()) {
        out.push_back(std::move(decl).value());
        pending.clear();
        last_error = Status::OK();
        continue;
      }
      last_error = decl.status();
    }
    pending = piece;
  }
  if (!pending.empty()) {
    if (!last_error.ok()) return last_error;
    return Status::ParseError("dangling process fragment: " + pending);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Full query
// ---------------------------------------------------------------------------

namespace {

enum class ColumnRole { kName, kX, kY, kZ, kZ2, kZ3, kConstraints, kViz,
                        kProcess };

std::optional<ColumnRole> RoleFromHeader(const std::string& cell) {
  const std::string s = ToLower(Trim(cell));
  if (s == "name") return ColumnRole::kName;
  if (s == "x") return ColumnRole::kX;
  if (s == "y") return ColumnRole::kY;
  if (s == "z" || s == "z1") return ColumnRole::kZ;
  // Any number of additional Z columns: z2, z3, ... (all handled alike).
  if (s.size() >= 2 && s[0] == 'z' &&
      s.find_first_not_of("0123456789", 1) == std::string::npos) {
    return ColumnRole::kZ2;
  }
  if (s == "constraints") return ColumnRole::kConstraints;
  if (s == "viz") return ColumnRole::kViz;
  if (s == "process") return ColumnRole::kProcess;
  return std::nullopt;
}

/// Wraps a cell parser's flat error with its source position and offending
/// token: "line L, column C near 'tok': message". Cell parser messages end
/// with ": <offending text>" by convention; when that text can be located
/// inside the cell, the column points at it exactly, otherwise at the
/// cell's first non-blank character.
Status CellError(const Status& inner, int line_no, size_t line_indent,
                 const std::string& cell, size_t cell_offset,
                 ParseDiagnostic* diag) {
  const std::string& msg = inner.message();
  std::string token;
  const size_t colon = msg.rfind(": ");
  if (colon != std::string::npos) token = Trim(msg.substr(colon + 2));
  if (token.empty()) token = Trim(cell);
  size_t col = cell_offset;
  size_t lead = 0;
  while (lead < cell.size() && (cell[lead] == ' ' || cell[lead] == '\t')) {
    ++lead;
  }
  col += lead;
  if (!token.empty()) {
    const size_t at = cell.find(token);
    if (at != std::string::npos) col = cell_offset + at;
  }
  const int column = static_cast<int>(line_indent + col) + 1;  // 1-based
  if (diag != nullptr) {
    diag->line = line_no;
    diag->column = column;
    diag->token = token;
    diag->message = msg;
  }
  return Status::ParseError(StrFormat("line %d, column %d near '%s': %s",
                                      line_no, column, token.c_str(),
                                      msg.c_str()));
}

/// Query-level error (no specific cell): position is the start of the line.
Status RowError(std::string message, int line_no, ParseDiagnostic* diag) {
  if (diag != nullptr) {
    diag->line = line_no;
    diag->column = 1;
    diag->token.clear();
    diag->message = message;
  }
  if (line_no > 0) {
    return Status::ParseError(
        StrFormat("line %d: %s", line_no, message.c_str()));
  }
  return Status::ParseError(std::move(message));
}

}  // namespace

Result<ZqlQuery> ParseQuery(const std::string& text, ParseDiagnostic* diag) {
  ZqlQuery query;
  std::vector<ColumnRole> layout = {
      ColumnRole::kName, ColumnRole::kX,   ColumnRole::kY,
      ColumnRole::kZ,    ColumnRole::kConstraints, ColumnRole::kViz,
      ColumnRole::kProcess};

  int line_no = 0;
  bool saw_row = false;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    const std::string line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const size_t line_indent = raw_line.find_first_not_of(" \t\r");
    std::vector<std::pair<std::string, size_t>> cells =
        SplitTopLevelWithOffsets(line, '|');

    // Header detection: every cell names a column role.
    if (!saw_row) {
      std::vector<ColumnRole> maybe;
      bool all_roles = true;
      for (const auto& [cell, offset] : cells) {
        auto role = RoleFromHeader(cell);
        if (!role.has_value()) {
          all_roles = false;
          break;
        }
        maybe.push_back(*role);
      }
      if (all_roles && maybe.size() >= 2) {
        layout = std::move(maybe);
        continue;
      }
    }
    saw_row = true;

    ZqlRow row;
    row.line = line_no;
    for (size_t i = 0; i < cells.size() && i < layout.size(); ++i) {
      const std::string& cell = cells[i].first;
      const size_t offset = cells[i].second;
      auto cell_error = [&](const Status& inner) {
        return CellError(inner, line_no, line_indent, cell, offset, diag);
      };
      switch (layout[i]) {
        case ColumnRole::kName: {
          Result<NameEntry> r = ParseNameEntry(cell);
          if (!r.ok()) return cell_error(r.status());
          row.name = std::move(r).value();
          break;
        }
        case ColumnRole::kX: {
          Result<AxisEntry> r = ParseAxisEntry(cell);
          if (!r.ok()) return cell_error(r.status());
          row.x = std::move(r).value();
          break;
        }
        case ColumnRole::kY: {
          Result<AxisEntry> r = ParseAxisEntry(cell);
          if (!r.ok()) return cell_error(r.status());
          row.y = std::move(r).value();
          break;
        }
        case ColumnRole::kZ:
        case ColumnRole::kZ2:
        case ColumnRole::kZ3: {
          Result<ZEntry> r = ParseZEntry(cell);
          if (!r.ok()) return cell_error(r.status());
          row.zs.push_back(std::move(r).value());
          break;
        }
        case ColumnRole::kConstraints:
          row.constraints = Trim(cell);
          break;
        case ColumnRole::kViz: {
          Result<VizEntry> r = ParseVizEntry(cell);
          if (!r.ok()) return cell_error(r.status());
          row.viz = std::move(r).value();
          break;
        }
        case ColumnRole::kProcess: {
          Result<std::vector<ProcessDecl>> r = ParseProcessCell(cell);
          if (!r.ok()) return cell_error(r.status());
          row.processes = std::move(r).value();
          break;
        }
      }
    }
    if (row.name.name.empty()) {
      return RowError("missing component name", line_no, diag);
    }
    query.rows.push_back(std::move(row));
  }
  if (query.rows.empty()) return RowError("empty ZQL query", 0, diag);
  return query;
}

}  // namespace zv::zql
