/// \file operators.h
/// \brief The typed operator layer of the ZQL physical plan (§6): the
/// execution-state container plus the four operator families the scheduler
/// drives. This is an internal engine header — the public surface is
/// zql/executor.h; the plan *shape* lives in zql/plan.h.
///
///  - FetchOp       (PlanRowFetches): resolves a row's variable slots,
///    materializes its visualization identities, and lowers them into
///    batched SQL statements (PendingFetch) against the backend.
///  - MaterializeOp (RouteFetch / MaterializeLocal / MarkReady): routes a
///    scanned ResultSet back into the visualizations it covers, assembles
///    user-input and derived components, and publishes components to
///    downstream operators.
///  - ScoreOp       (ScoreProcess): evaluates one Process declaration's
///    objective over its flattened iteration domain — ScoringContext batch
///    scans, top-k pruned scans, ParallelFor fan-out, or the serial loop
///    for user functions — producing a score per combination.
///  - ReduceOp      (ReduceProcess): applies the mechanism/filter to the
///    scores and binds the declaration's output variables.
///
/// Operators communicate only through ExecState (variables, components,
/// stats) and the PendingFetch hand-off, which is what lets the scheduler
/// overlap them: a fetch thread runs FetchOp's scans while the coordinator
/// thread materializes and scores earlier rows. Every operator is
/// deterministic given ExecState, so the schedule cannot change results.

#ifndef ZV_ZQL_OPERATORS_H_
#define ZV_ZQL_OPERATORS_H_

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/database.h"
#include "sql/ast.h"
#include "tasks/series_cache.h"
#include "viz/visualization.h"
#include "zql/ast.h"
#include "zql/executor.h"

namespace zv::zql::exec {

/// A value bound to an axis variable: an axis (X/Y) attribute combination,
/// a Z slice, or a Viz spec.
using VarValue = std::variant<AxisValue, ZValue, VizSpec>;

/// \brief A group of variables declared together; tuples are traversed in a
/// consistent order wherever any of the variables is used (§3.7).
struct VarDomain {
  std::vector<std::string> names;
  std::vector<std::vector<VarValue>> tuples;

  int PosOf(const std::string& name) const {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
  size_t size() const { return tuples.size(); }
};

/// \brief A named visual component: the flattened, row-major enumeration of
/// the Cartesian product of its variable domains, one visualization each.
struct Component {
  std::string name;
  std::vector<std::shared_ptr<VarDomain>> domains;
  std::vector<size_t> strides;
  std::vector<Visualization> visuals;
  bool ready = false;

  size_t size() const { return visuals.size(); }
};

/// \brief One batched SQL fetch plus the routing needed to split its result
/// into the visualizations it covers. Holds shared ownership of its target
/// component, so an in-flight fetch keeps the component alive on its own —
/// operator lifetimes are self-contained (no executor-side pinning).
struct PendingFetch {
  sql::SelectStatement stmt;
  std::shared_ptr<Component> comp;
  VizSpec spec;
  std::vector<std::string> x_attrs;
  /// Z predicates equal for every member (WHERE attr = value).
  std::vector<ZValue> fixed_z;
  /// Z attributes that vary across members (selected + grouped + IN-listed).
  std::vector<std::string> varying_z_attrs;
  /// For each varying attribute, the distinct values to fetch.
  std::vector<std::vector<Value>> varying_z_values;
  bool aggregated = true;
  /// True when a binned x axis (spec.x_bin) was pushed into the statement
  /// as an engine-side GROUP BY over bin edges (sql::SelectStatement::
  /// group_bins); routing then skips the client-side binner.
  bool bin_pushed = false;
  struct Member {
    size_t position;
    std::string z_key;
    AxisValue y;
  };
  std::vector<Member> members;
  /// y attribute -> result column display name.
  std::map<std::string, std::string> y_columns;
  /// Plan-order index of the row this fetch belongs to — the scheduler's
  /// drain key: a MaterializeOp for row r waits only for fetches tagged
  /// <= r, which is what lets later rows' scans keep running underneath.
  size_t row_tag = 0;
};

/// \brief Mutable execution state shared by every operator of one query.
/// Mutated only from the coordinating thread, in plan order.
struct ExecState {
  Database* db = nullptr;
  std::string table_name;
  const ZqlOptions* opts = nullptr;
  const std::map<std::string, Visualization>* user_inputs = nullptr;
  std::shared_ptr<Table> table;

  std::map<std::string, std::shared_ptr<VarDomain>> vars;
  std::map<std::string, std::shared_ptr<Component>> comps;
  ZqlStats stats;

  /// Per-query trace (ZqlOptions::trace; null when tracing is off) and
  /// the "execute" span operator spans parent under. Wired by the
  /// executor before the scheduler runs and immutable afterwards — the
  /// fetch thread and shard workers read them concurrently, the Trace
  /// itself synchronizes span creation.
  Trace* trace = nullptr;
  TraceSpan* trace_span = nullptr;

  /// Batch-scoring state for the process declaration currently being
  /// evaluated (see ScoreProcess). Read-only while the parallel scoring
  /// loop runs; reset afterwards.
  std::shared_ptr<const ScoringContext> scoring_ctx;
  std::map<const Visualization*, size_t> scoring_index;
  /// Contexts already built (or fetched from the cross-query cache) during
  /// this query, by content fingerprint — the within-query dedupe level.
  std::map<std::string, std::shared_ptr<const ScoringContext>> query_contexts;

  /// Snapshots the table and wires the immutable query inputs.
  Status Init(Database* db_in, std::string table_name_in,
              const ZqlOptions& opts_in,
              const std::map<std::string, Visualization>& user_inputs_in);
};

// ---------------------------------------------------------------------------
// FetchOp
// ---------------------------------------------------------------------------

/// Plans one fetch row: resolves its slots against ExecState's variable
/// bindings, materializes the component's visualization identities, groups
/// them into batched SQL statements, and appends the resulting
/// PendingFetches (tagged `row_tag`) to *out. Registers the component.
Status PlanRowFetches(const ZqlRow& row, size_t row_tag, ExecState* st,
                      std::vector<PendingFetch>* out);

// ---------------------------------------------------------------------------
// MaterializeOp
// ---------------------------------------------------------------------------

/// Assembles a component that needs no backend scan: a registered
/// user-input visualization (`-f` rows) or a §3.6 derivation over already
/// materialized components (+, -, ^, [i], [i:j], .range, .order).
Status MaterializeLocal(const ZqlRow& row, ExecState* st);

/// Routes one scanned ResultSet into the visualizations its fetch covers,
/// applying client-side statistical transformations (binning, box-plot
/// summarization).
Status RouteFetch(const PendingFetch& pf, const ResultSet& rs, ExecState* st);

/// Publishes the row's component to downstream operators.
void MarkReady(const ZqlRow& row, ExecState* st);

// ---------------------------------------------------------------------------
// ScoreOp / ReduceOp
// ---------------------------------------------------------------------------

/// The hand-off between ScoreOp and ReduceOp for one Process declaration.
struct ScoreResult {
  /// Iteration domains, deduplicated in declaration order.
  std::vector<std::shared_ptr<VarDomain>> doms;
  /// kMechanism: one score per flattened combination.
  std::vector<double> scores;
  /// kRepresentative: the chosen combination indices.
  std::vector<size_t> chosen;
};

/// Scores decl's objective over its iteration domain (or runs the
/// representative clustering). Adds pure scoring time to stats.score_ms.
Status ScoreProcess(const ProcessDecl& decl, ExecState* st, ScoreResult* out);

/// Applies the mechanism/filter to the scores (kMechanism) or takes the
/// chosen set (kRepresentative) and binds decl's output variables.
Status ReduceProcess(const ProcessDecl& decl, ScoreResult&& scored,
                     ExecState* st);

}  // namespace zv::zql::exec

#endif  // ZV_ZQL_OPERATORS_H_
