#include "zql/executor.h"

#include <chrono>

#include "common/cancel.h"
#include "common/clock.h"
#include "tasks/simd.h"
#include "zql/operators.h"
#include "zql/parser.h"
#include "zql/plan.h"
#include "zql/scheduler.h"

namespace zv::zql {

const char* OptLevelToString(OptLevel level) {
  switch (level) {
    case OptLevel::kNoOpt:
      return "NoOpt";
    case OptLevel::kIntraLine:
      return "Intra-Line";
    case OptLevel::kIntraTask:
      return "Intra-Task";
    case OptLevel::kInterTask:
      return "Inter-Task";
  }
  return "?";
}

// ===========================================================================
// Public API
// ===========================================================================
//
// Execution = lower the query into a physical plan (zql/plan.h), then walk
// it with the scheduler (zql/scheduler.h) over the operator layer
// (zql/operators.h). The staged schedule reproduces the historical
// phase-at-a-time executor exactly; the pipelined schedule (default)
// overlaps backend scans with materialization and scoring without changing
// a single byte of the result.

ZqlExecutor::ZqlExecutor(Database* db, std::string table, ZqlOptions options)
    : db_(db), table_name_(std::move(table)), options_(std::move(options)) {}

void ZqlExecutor::SetUserInput(const std::string& name, Visualization viz) {
  user_inputs_[name] = std::move(viz);
}

Result<ZqlResult> ZqlExecutor::Execute(const ZqlQuery& query) {
  const auto t0 = SteadyNow();
  const uint64_t q0 = db_->queries_executed();
  const uint64_t r0 = db_->requests_made();
  const uint64_t c0 = db_->container_conversions();

  exec::ExecState state;
  ZV_RETURN_NOT_OK(state.Init(db_, table_name_, options_, user_inputs_));
  // The "execute" span covers plan building through the last routed fetch;
  // operator spans nest under it. Ends on every exit path (RAII), so a
  // failed query still carries the spans up to its failure point.
  TraceScope exec_scope(options_.trace, options_.trace_parent, "execute");
  state.trace = options_.trace;
  state.trace_span = exec_scope.span();
  ZV_ASSIGN_OR_RETURN(PhysicalPlan plan, BuildPhysicalPlan(query, options_));
  exec_scope.SetStr("optimization", OptLevelToString(plan.optimization));
  exec_scope.SetBool("pipelined", plan.pipelined);
  exec_scope.SetInt("stages", plan.num_stages);
  {
    exec::PipelineScheduler scheduler(plan, query, &state);
    ZV_RETURN_NOT_OK(scheduler.Run());
  }

  // A cancelled token must never yield an OK result: void ParallelFor
  // consumers (k-means in R tasks, outlier scans) stop early when
  // cancelled and would otherwise hand back partially-scored data.
  ZV_RETURN_NOT_OK(CheckCancelled());

  ZqlResult result;
  for (const auto& row : query.rows) {
    if (!row.name.output) continue;
    auto it = state.comps.find(row.name.name);
    if (it == state.comps.end() || !it->second->ready) {
      return Status::Internal("output component never materialized: " +
                              row.name.name);
    }
    result.outputs.push_back({row.name.name, it->second->visuals});
  }
  result.stats = state.stats;
  result.stats.sql_queries = db_->queries_executed() - q0;
  result.stats.sql_requests = db_->requests_made() - r0;
  result.stats.container_conversions = db_->container_conversions() - c0;
  result.stats.simd_width = simd::ActiveWidth();
  result.stats.total_ms = MsSince(t0);
  return result;
}

Result<ZqlResult> ZqlExecutor::ExecuteText(const std::string& text) {
  ZV_ASSIGN_OR_RETURN(ZqlQuery query, ParseQuery(text));
  return Execute(query);
}

}  // namespace zv::zql
