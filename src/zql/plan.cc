#include "zql/plan.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <set>
#include <thread>

#include "common/strings.h"
#include "zql/canonical.h"
#include "zql/explain.h"

namespace zv::zql {

namespace {

// --- dependency analysis (pure; mirrors the executor's runtime rules) ------

void CollectRangeVars(const ZSetExpr& e, std::set<std::string>* out) {
  switch (e.kind) {
    case ZSetExpr::Kind::kVarRange:
      out->insert(e.var);
      break;
    case ZSetExpr::Kind::kOp:
      CollectRangeVars(*e.lhs, out);
      CollectRangeVars(*e.rhs, out);
      break;
    default:
      break;
  }
}

void CollectConstraintRangeVars(const std::string& text,
                                std::set<std::string>* out) {
  // Find ident.range tokens.
  for (size_t i = 0; i + 6 <= text.size(); ++i) {
    if (text.compare(i, 6, ".range") != 0) continue;
    size_t start = i;
    while (start > 0 && (std::isalnum(static_cast<unsigned char>(
                             text[start - 1])) ||
                         text[start - 1] == '_')) {
      --start;
    }
    if (start < i) out->insert(text.substr(start, i - start));
  }
}

/// Variables a row consumes from earlier rows: axis/Z/viz reuse and
/// order-by references, Z-set .range references, constraints ranges, and
/// process iteration/reducer variables the row does not declare itself.
std::set<std::string> RowVarDeps(const ZqlRow& row) {
  std::set<std::string> deps;
  auto axis = [&deps](const AxisEntry& e) {
    if (e.kind == AxisEntry::Kind::kReuse ||
        e.kind == AxisEntry::Kind::kOrderBy) {
      deps.insert(e.var);
    }
  };
  axis(row.x);
  axis(row.y);
  for (const ZEntry& z : row.zs) {
    if (z.kind == ZEntry::Kind::kReuse || z.kind == ZEntry::Kind::kOrderBy) {
      deps.insert(z.vars[0]);
    } else if (z.kind == ZEntry::Kind::kDeclare && z.set) {
      CollectRangeVars(*z.set, &deps);
    }
  }
  if (row.viz.kind == VizEntry::Kind::kReuse) deps.insert(row.viz.var);
  CollectConstraintRangeVars(row.constraints, &deps);
  // Process iteration variables that are not declared by this row itself.
  std::set<std::string> own;
  auto own_axis = [&own](const AxisEntry& e) {
    if (e.kind == AxisEntry::Kind::kDeclare ||
        e.kind == AxisEntry::Kind::kDerived) {
      own.insert(e.var);
    }
  };
  own_axis(row.x);
  own_axis(row.y);
  for (const ZEntry& z : row.zs) {
    if (z.kind == ZEntry::Kind::kDeclare || z.kind == ZEntry::Kind::kDerived) {
      for (const auto& v : z.vars) own.insert(v);
    }
  }
  if (row.viz.kind == VizEntry::Kind::kDeclare) own.insert(row.viz.var);
  for (const ProcessDecl& p : row.processes) {
    for (const auto& v : p.iter_vars) {
      if (!own.count(v)) deps.insert(v);
    }
    for (const auto& v : p.repr_vars) {
      if (!own.count(v)) deps.insert(v);
    }
    // Inner reducer variables.
    std::vector<const ProcessExpr*> stack;
    if (p.expr) stack.push_back(p.expr.get());
    while (!stack.empty()) {
      const ProcessExpr* e = stack.back();
      stack.pop_back();
      if (e->kind == ProcessExpr::Kind::kReduce) {
        for (const auto& v : e->reduce_vars) {
          if (!own.count(v)) deps.insert(v);
        }
        if (e->child) stack.push_back(e->child.get());
      }
    }
    for (const auto& o : p.outputs) own.insert(o);
  }
  return deps;
}

/// Components a row reads: derivation sources and process-call arguments.
std::set<std::string> RowCompDeps(const ZqlRow& row) {
  std::set<std::string> deps;
  if (!row.name.source_a.empty()) deps.insert(row.name.source_a);
  if (!row.name.source_b.empty()) deps.insert(row.name.source_b);
  for (const ProcessDecl& p : row.processes) {
    if (!p.repr_component.empty()) deps.insert(p.repr_component);
    std::vector<const ProcessExpr*> stack;
    if (p.expr) stack.push_back(p.expr.get());
    while (!stack.empty()) {
      const ProcessExpr* e = stack.back();
      stack.pop_back();
      if (e->kind == ProcessExpr::Kind::kCall) {
        for (const auto& a : e->args) deps.insert(a);
      } else if (e->child) {
        stack.push_back(e->child.get());
      }
    }
  }
  deps.erase(row.name.name);  // a row's own component is fine
  return deps;
}

/// Variables a row binds without needing any task output: axis/viz
/// declarations always, Z declarations only when their set expression's
/// .range references are themselves resolved (`bound`) or statically
/// declared earlier in the wave (`wave_declares`).
std::set<std::string> RowStaticDeclares(
    const ZqlRow& row, const std::set<std::string>& bound,
    const std::set<std::string>& wave_declares) {
  std::set<std::string> out;
  auto axis = [&out](const AxisEntry& e) {
    if (e.kind == AxisEntry::Kind::kDeclare) out.insert(e.var);
  };
  axis(row.x);
  axis(row.y);
  if (row.viz.kind == VizEntry::Kind::kDeclare) out.insert(row.viz.var);
  for (const ZEntry& z : row.zs) {
    if (z.kind != ZEntry::Kind::kDeclare || !z.set) continue;
    std::set<std::string> ranges;
    CollectRangeVars(*z.set, &ranges);
    bool static_ok = true;
    for (const std::string& v : ranges) {
      if (!bound.count(v) && !wave_declares.count(v)) {
        static_ok = false;
        break;
      }
    }
    if (static_ok) {
      for (const std::string& v : z.vars) out.insert(v);
    }
  }
  return out;
}

/// Every variable a row's execution eventually binds: planning-time
/// declarations (axis/Z/viz declares + derived bindings) and task outputs.
std::set<std::string> RowAllBindings(const ZqlRow& row) {
  std::set<std::string> out;
  auto axis = [&out](const AxisEntry& e) {
    if (e.kind == AxisEntry::Kind::kDeclare ||
        e.kind == AxisEntry::Kind::kDerived) {
      out.insert(e.var);
    }
  };
  axis(row.x);
  axis(row.y);
  for (const ZEntry& z : row.zs) {
    if (z.kind == ZEntry::Kind::kDeclare || z.kind == ZEntry::Kind::kDerived) {
      for (const auto& v : z.vars) out.insert(v);
    }
  }
  if (row.viz.kind == VizEntry::Kind::kDeclare) out.insert(row.viz.var);
  for (const ProcessDecl& p : row.processes) {
    for (const auto& o : p.outputs) out.insert(o);
  }
  return out;
}

/// The Inter-Task wavefront: batches every row whose dependencies are
/// satisfied — or statically declared by an earlier row of the same wave —
/// into one wave (Figure 5.1's maximal batching). Mirrors the executor's
/// runtime selection exactly, so the plan's waves are the waves that run.
Result<std::vector<std::vector<int>>> ComputeWaves(const ZqlQuery& query) {
  std::set<std::string> bound;  // variables bound by completed waves
  std::set<std::string> ready;  // components materialized by completed waves
  std::vector<int> remaining;
  for (size_t i = 0; i < query.rows.size(); ++i) {
    remaining.push_back(static_cast<int>(i));
  }
  std::vector<std::vector<int>> waves;
  while (!remaining.empty()) {
    std::vector<int> wave;
    std::set<std::string> wave_comps;
    std::set<std::string> wave_declares;
    std::vector<int> next;
    for (int ri : remaining) {
      const ZqlRow& row = query.rows[static_cast<size_t>(ri)];
      bool ok = true;
      for (const std::string& v : RowVarDeps(row)) {
        if (!bound.count(v) && !wave_declares.count(v)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (const std::string& c : RowCompDeps(row)) {
          if (!ready.count(c) && !wave_comps.count(c)) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        wave.push_back(ri);
        wave_comps.insert(row.name.name);
        for (const std::string& v :
             RowStaticDeclares(row, bound, wave_declares)) {
          wave_declares.insert(v);
        }
      } else {
        next.push_back(ri);
      }
    }
    if (wave.empty()) {
      return Status::InvalidArgument(StrFormat(
          "unresolvable ZQL dependencies at row %d",
          query.rows[static_cast<size_t>(remaining[0])].line));
    }
    for (int ri : wave) {
      const ZqlRow& row = query.rows[static_cast<size_t>(ri)];
      for (const std::string& v : RowAllBindings(row)) bound.insert(v);
      ready.insert(row.name.name);
    }
    waves.push_back(std::move(wave));
    remaining = std::move(next);
  }
  return waves;
}

/// Step emission with flush-delimited stage numbering: a flush closes the
/// current stage's fetch section; the next FetchOp opens a new stage.
class PlanEmitter {
 public:
  explicit PlanEmitter(PhysicalPlan* plan) : plan_(plan) {}

  void Fetch(int row) {
    if (flush_pending_ && emitted_in_stage_) {
      ++stage_;
      emitted_in_stage_ = false;
    }
    flush_pending_ = false;
    Emit({PlanStep::Kind::kFetch, row, -1, stage_});
  }
  void Flush() {
    plan_->steps.push_back({PlanStep::Kind::kFlush, -1, -1, stage_});
    flush_pending_ = true;
  }
  void Materialize(int row) {
    Emit({PlanStep::Kind::kMaterialize, row, -1, stage_});
  }
  void Process(int row, const ZqlRow& r) {
    for (size_t d = 0; d < r.processes.size(); ++d) {
      Emit({PlanStep::Kind::kScore, row, static_cast<int>(d), stage_});
      Emit({PlanStep::Kind::kReduce, row, static_cast<int>(d), stage_});
    }
  }
  void Output() {
    plan_->num_stages = emitted_in_stage_ ? stage_ + 1 : stage_;
    plan_->steps.push_back(
        {PlanStep::Kind::kOutput, -1, -1, plan_->num_stages});
  }

 private:
  void Emit(PlanStep step) {
    plan_->steps.push_back(step);
    emitted_in_stage_ = true;
  }

  PhysicalPlan* plan_;
  int stage_ = 0;
  bool emitted_in_stage_ = false;
  bool flush_pending_ = false;
};

}  // namespace

size_t ResolveShardWorkers(const ZqlOptions& options) {
  if (options.shards > 0) return options.shards;
  if (const char* env = std::getenv("ZV_SHARDS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<size_t>(v);
  }
  // Shard workers are threads: defaulting past the core count only pays
  // off when chunk scans wait on a remote store, which callers opt into
  // explicitly (opts.shards / ZV_SHARDS). A CPU-bound local scan sharded
  // wider than the machine just buys row-id materialization overhead.
  const unsigned cores = std::thread::hardware_concurrency();
  return cores == 0 ? 1 : std::min<size_t>(4, cores);
}

Result<PhysicalPlan> BuildPhysicalPlan(const ZqlQuery& query,
                                       const ZqlOptions& options) {
  PhysicalPlan plan;
  plan.optimization = options.optimization;
  plan.pipelined = options.pipelined_execution;
  plan.shard_workers = ResolveShardWorkers(options);
  plan.shared_scans = options.batch_scans != nullptr;
  PlanEmitter emit(&plan);

  if (options.optimization == OptLevel::kInterTask) {
    ZV_ASSIGN_OR_RETURN(std::vector<std::vector<int>> waves,
                        ComputeWaves(query));
    plan.wave_of_row.assign(query.rows.size(), 0);
    for (size_t w = 0; w < waves.size(); ++w) {
      for (int ri : waves[w]) {
        plan.wave_of_row[static_cast<size_t>(ri)] = static_cast<int>(w);
        if (!IsLocalRow(query.rows[static_cast<size_t>(ri)])) emit.Fetch(ri);
      }
      emit.Flush();
      for (int ri : waves[w]) {
        const ZqlRow& row = query.rows[static_cast<size_t>(ri)];
        emit.Materialize(ri);
        emit.Process(ri, row);
      }
    }
  } else {
    // Sequential levels: flush before user-input/derived rows (their
    // sources must be materialized), after every row at NoOpt/Intra-Line,
    // and before any row's tasks run (Intra-Task batches the fetches of
    // consecutive task-less rows into the next task row's request).
    for (size_t i = 0; i < query.rows.size(); ++i) {
      const ZqlRow& row = query.rows[i];
      const int ri = static_cast<int>(i);
      if (IsLocalRow(row)) {
        emit.Flush();
      } else {
        emit.Fetch(ri);
      }
      const bool flush_now =
          options.optimization == OptLevel::kNoOpt ||
          options.optimization == OptLevel::kIntraLine ||
          !row.processes.empty() || i + 1 == query.rows.size();
      if (flush_now) emit.Flush();
      emit.Materialize(ri);
      emit.Process(ri, row);
    }
  }
  emit.Output();
  return plan;
}

std::string PhysicalPlan::Render(const ZqlQuery& query,
                                 size_t table_chunks) const {
  std::string out = StrFormat(
      "physical plan: opt=%s, %s, %d stage%s\n", OptLevelToString(optimization),
      pipelined ? "pipelined (fetch/score overlap)" : "staged", num_stages,
      num_stages == 1 ? "" : "s");
  int printed_stage = -1;
  for (const PlanStep& step : steps) {
    if (step.kind == PlanStep::Kind::kFlush) continue;
    if (step.kind == PlanStep::Kind::kOutput) {
      std::vector<std::string> names;
      for (const std::string& n : query.OutputNames()) names.push_back("*" + n);
      out += StrFormat("%-15s%s\n", "OutputOp",
                       names.empty() ? "(no outputs)" : Join(names, ", ").c_str());
      continue;
    }
    if (step.stage != printed_stage) {
      printed_stage = step.stage;
      out += StrFormat("stage %d:\n", printed_stage);
    }
    const ZqlRow& row = query.rows[static_cast<size_t>(step.row)];
    const std::string name = CanonicalNameEntry(row.name);
    switch (step.kind) {
      case PlanStep::Kind::kFetch: {
        std::string detail = optimization == OptLevel::kNoOpt
                                 ? "one scan per viz"
                                 : "batched scan";
        // The fan-out the scheduler will use: sharding engages only when
        // workers > 1 and the table splits into at least two chunks.
        if (shard_workers > 1 && table_chunks >= 2) {
          detail += StrFormat(", chunks=%zu, shards=%zu", table_chunks,
                              std::min(shard_workers, table_chunks));
        }
        // Row selection goes through the cross-query batch queue; whether
        // a pass is actually shared depends on run-time co-tenancy.
        if (shared_scans) detail += ", shared-scan";
        out += StrFormat("  %-15s%s  [%s]\n", "FetchOp", name.c_str(),
                         detail.c_str());
        break;
      }
      case PlanStep::Kind::kMaterialize:
        out += StrFormat("  %-15s%s%s\n", "MaterializeOp", name.c_str(),
                         row.name.user_input
                             ? "  [user input]"
                             : (row.name.derive != NameEntry::Derive::kNone
                                    ? "  [derived]"
                                    : ""));
        break;
      case PlanStep::Kind::kScore: {
        const ProcessDecl& decl =
            row.processes[static_cast<size_t>(step.decl)];
        const std::string note = DescribeTaskScoring(decl);
        out += StrFormat("  %-15s%s: %s%s\n", "ScoreOp", name.c_str(),
                         CanonicalProcessCell({decl}).c_str(),
                         note.empty() ? "" : ("  [" + note + "]").c_str());
        break;
      }
      case PlanStep::Kind::kReduce: {
        const ProcessDecl& decl =
            row.processes[static_cast<size_t>(step.decl)];
        out += StrFormat("  %-15s%s -> {%s}\n", "ReduceOp", name.c_str(),
                         Join(decl.outputs, ", ").c_str());
        break;
      }
      default:
        break;
    }
  }
  return out;
}

}  // namespace zv::zql
