#include "zql/canonical.h"

#include <algorithm>
#include <cstdlib>

#include "common/json.h"
#include "common/strings.h"

namespace zv::zql {

namespace {

/// Quoted attribute: the form every attr position accepts.
std::string QuotedAttr(const std::string& attr) { return "'" + attr + "'"; }

/// Doubles in ZQL *value* position must contain no '.' — the grammar splits
/// attr.value at the last top-level dot, so `'price'.3.5` is ambiguous.
/// Render as integer-mantissa × 10^exp ("3.5" -> "35e-1"): strtod maps the
/// same decimal back to the identical double, and the 'e' keeps a re-parse
/// from degrading to Int.
std::string DotlessDouble(double d) {
  std::string s = CanonicalDouble(d);
  const size_t dot = s.find('.');
  if (dot == std::string::npos) return s;  // "1e+20" style — already safe
  const size_t epos = s.find_first_of("eE");
  std::string mant = epos == std::string::npos ? s : s.substr(0, epos);
  long exp = epos == std::string::npos
                 ? 0
                 : std::strtol(s.c_str() + epos + 1, nullptr, 10);
  const size_t dpos = mant.find('.');
  exp -= static_cast<long>(mant.size() - dpos - 1);
  mant.erase(dpos, 1);
  // Strip redundant leading zeros ("0.1" -> mant "01"), keeping one digit.
  const size_t first = mant[0] == '-' ? 1 : 0;
  size_t keep = first;
  while (keep + 1 < mant.size() && mant[keep] == '0') ++keep;
  mant.erase(first, keep - first);
  return mant + "e" + std::to_string(exp);
}

/// A literal Value in ZQL text. Ints stay bare (re-parse as Int), doubles
/// use the dotless form above, strings are quoted.
std::string CanonicalValue(const Value& v) {
  if (v.is_null()) return "NULL";  // unreachable from parsed queries
  if (v.is_int()) return std::to_string(v.AsInt());
  if (v.is_double()) return DotlessDouble(v.AsDouble());
  return "'" + v.AsString() + "'";
}

std::string CanonicalAxisValue(const AxisValue& v) {
  const char* sep = v.compose == AxisValue::Compose::kCross ? "*" : "+";
  std::string out;
  for (size_t i = 0; i < v.attrs.size(); ++i) {
    if (i) out += sep;
    out += QuotedAttr(v.attrs[i]);
  }
  return out;
}

std::string CanonicalAttrSpec(const AttrSpec& spec) {
  switch (spec.kind) {
    case AttrSpec::Kind::kLiteral:
      return QuotedAttr(spec.names.empty() ? "" : spec.names[0]);
    case AttrSpec::Kind::kAll:
      return "*";
    case AttrSpec::Kind::kAllExcept: {
      std::vector<std::string> quoted;
      for (const std::string& n : spec.names) quoted.push_back(QuotedAttr(n));
      // Built additively (not one chained operator+ expression): GCC 12's
      // -Wrestrict trips a known false positive on the temporaries.
      std::string out = "(* \\ {";
      out += Join(quoted, ", ");
      out += "})";
      return out;
    }
    case AttrSpec::Kind::kList: {
      std::vector<std::string> quoted;
      for (const std::string& n : spec.names) quoted.push_back(QuotedAttr(n));
      std::string out = "{";
      out += Join(quoted, ", ");
      out += "}";
      return out;
    }
  }
  return "*";
}

std::string CanonicalValueSpec(const ValueSpec& spec) {
  switch (spec.kind) {
    case ValueSpec::Kind::kLiteral:
      return CanonicalValue(spec.values.empty() ? Value::Null()
                                                : spec.values[0]);
    case ValueSpec::Kind::kAll:
      return "*";
    case ValueSpec::Kind::kAllExcept: {
      std::vector<std::string> vals;
      for (const Value& v : spec.values) vals.push_back(CanonicalValue(v));
      std::string out = "(* \\ {";
      out += Join(vals, ", ");
      out += "})";
      return out;
    }
    case ValueSpec::Kind::kList: {
      std::vector<std::string> vals;
      for (const Value& v : spec.values) vals.push_back(CanonicalValue(v));
      std::string out = "{";
      out += Join(vals, ", ");
      out += "}";
      return out;
    }
    case ValueSpec::Kind::kDerived:
      return "_";
  }
  return "*";
}

/// Normalizes a constraints cell outside single-quoted literals: whitespace
/// runs collapse to one space, and a space next to a punctuation token
/// (=<>!(),) is dropped entirely — "location = 'US'" and "location='US'"
/// tokenize identically in the SQL lexer, so they must share a fingerprint.
std::string CollapseWhitespace(const std::string& s) {
  auto is_punct = [](char c) {
    return c == '=' || c == '<' || c == '>' || c == '!' || c == '(' ||
           c == ')' || c == ',';
  };
  std::string out;
  bool in_quote = false;
  bool pending = false;
  for (char c : Trim(s)) {
    if (in_quote) {
      out += c;
      if (c == '\'') in_quote = false;
      continue;
    }
    if (c == ' ' || c == '\t') {
      pending = !out.empty();
      continue;
    }
    if (pending) {
      if (!is_punct(out.back()) && !is_punct(c)) out += ' ';
      pending = false;
    }
    out += c;
    if (c == '\'') in_quote = true;
  }
  return out;
}

std::string CanonicalProcessExpr(const ProcessExpr& expr) {
  if (expr.kind == ProcessExpr::Kind::kReduce) {
    const char* kw = expr.reduce == ProcessExpr::Reduce::kMin   ? "min"
                     : expr.reduce == ProcessExpr::Reduce::kMax ? "max"
                                                                : "sum";
    std::string out = std::string(kw) + "_" + Join(expr.reduce_vars, ",");
    out += " ";
    out += expr.child != nullptr ? CanonicalProcessExpr(*expr.child) : "";
    return out;
  }
  return expr.func + "(" + Join(expr.args, ", ") + ")";
}

std::string CanonicalProcessDecl(const ProcessDecl& decl) {
  std::string out = Join(decl.outputs, ", ") + " <- ";
  if (decl.kind == ProcessDecl::Kind::kRepresentative) {
    out += "R(" + std::to_string(decl.repr_k);
    for (const std::string& v : decl.repr_vars) out += ", " + v;
    out += ", " + decl.repr_component + ")";
    return out;
  }
  out += decl.mech == Mechanism::kArgMin   ? "argmin"
         : decl.mech == Mechanism::kArgMax ? "argmax"
                                           : "argany";
  out += "_";
  out += Join(decl.iter_vars, ",");
  if (decl.filter.k.has_value()) {
    out += "[k=";
    out += std::to_string(*decl.filter.k);
    out += "]";
  } else if (decl.filter.t_above.has_value()) {
    out += "[t > ";
    out += CanonicalDouble(*decl.filter.t_above);
    out += "]";
  } else if (decl.filter.t_below.has_value()) {
    out += "[t < ";
    out += CanonicalDouble(*decl.filter.t_below);
    out += "]";
  }
  out += " ";
  out += decl.expr != nullptr ? CanonicalProcessExpr(*decl.expr) : "";
  return out;
}

}  // namespace

std::string CanonicalZSetExpr(const ZSetExpr& expr) {
  switch (expr.kind) {
    case ZSetExpr::Kind::kAttrDotValue:
      return CanonicalAttrSpec(expr.attr) + "." + CanonicalValueSpec(expr.value);
    case ZSetExpr::Kind::kVarRange:
      return expr.var + ".range";
    case ZSetExpr::Kind::kNamedSet:
      return expr.var;
    case ZSetExpr::Kind::kOp: {
      // Every op node is parenthesized: a bare depth-0 '|' would read as
      // the row's cell separator, and explicit grouping makes the
      // serialization structural (associativity never re-derived).
      const std::string lhs =
          expr.lhs != nullptr ? CanonicalZSetExpr(*expr.lhs) : "";
      const std::string rhs =
          expr.rhs != nullptr ? CanonicalZSetExpr(*expr.rhs) : "";
      return "(" + lhs + " " + std::string(1, expr.op) + " " + rhs + ")";
    }
  }
  return "";
}

std::string CanonicalNameEntry(const NameEntry& entry) {
  std::string out;
  if (entry.output) out += "*";
  if (entry.user_input) out += "-";
  out += entry.name;
  switch (entry.derive) {
    case NameEntry::Derive::kNone:
      break;
    case NameEntry::Derive::kPlus:
      out += "=" + entry.source_a + "+" + entry.source_b;
      break;
    case NameEntry::Derive::kMinus:
      out += "=" + entry.source_a + "-" + entry.source_b;
      break;
    case NameEntry::Derive::kIntersect:
      out += "=" + entry.source_a + "^" + entry.source_b;
      break;
    case NameEntry::Derive::kIndex:
      out += "=" + entry.source_a + "[" + std::to_string(entry.index_a) + "]";
      break;
    case NameEntry::Derive::kSlice:
      out += "=" + entry.source_a + "[" + std::to_string(entry.index_a) + ":" +
             std::to_string(entry.index_b) + "]";
      break;
    case NameEntry::Derive::kRange:
      out += "=" + entry.source_a + ".range";
      break;
    case NameEntry::Derive::kOrder:
      out += "=" + entry.source_a + ".order";
      break;
  }
  return out;
}

std::string CanonicalAxisEntry(const AxisEntry& entry) {
  switch (entry.kind) {
    case AxisEntry::Kind::kNone:
      return "";
    case AxisEntry::Kind::kLiteral:
      return CanonicalAxisValue(entry.literal);
    case AxisEntry::Kind::kDeclare: {
      if (!entry.named_set.empty()) return entry.var + " <- " + entry.named_set;
      std::vector<std::string> items;
      for (const AxisValue& v : entry.set) items.push_back(CanonicalAxisValue(v));
      return entry.var + " <- {" + Join(items, ", ") + "}";
    }
    case AxisEntry::Kind::kReuse:
      return entry.var;
    case AxisEntry::Kind::kDerived:
      return entry.var + " <- _";
    case AxisEntry::Kind::kOrderBy:
      return entry.var + " ->";
  }
  return "";
}

std::string CanonicalZEntry(const ZEntry& entry) {
  switch (entry.kind) {
    case ZEntry::Kind::kNone:
      return "";
    case ZEntry::Kind::kLiteral:
      return QuotedAttr(entry.literal.attr) + "." +
             CanonicalValue(entry.literal.value);
    case ZEntry::Kind::kDeclare:
      return Join(entry.vars, ".") + " <- " +
             (entry.set != nullptr ? CanonicalZSetExpr(*entry.set) : "");
    case ZEntry::Kind::kReuse:
      return entry.vars.empty() ? "" : entry.vars[0];
    case ZEntry::Kind::kDerived:
      if (entry.derived_attr.empty()) return Join(entry.vars, ".") + " <- _";
      return Join(entry.vars, ".") + " <- " + QuotedAttr(entry.derived_attr) +
             "._";
    case ZEntry::Kind::kOrderBy:
      return (entry.vars.empty() ? "" : entry.vars[0]) + " ->";
  }
  return "";
}

std::string CanonicalVizEntry(const VizEntry& entry) {
  switch (entry.kind) {
    case VizEntry::Kind::kNone:
      return "";
    case VizEntry::Kind::kLiteral:
      return entry.literal.ToString();
    case VizEntry::Kind::kDeclare: {
      if (entry.set.size() == 1) {
        return entry.var + " <- " + entry.set[0].ToString();
      }
      std::vector<std::string> specs;
      for (const VizSpec& s : entry.set) specs.push_back(s.ToString());
      return entry.var + " <- {" + Join(specs, ", ") + "}";
    }
    case VizEntry::Kind::kReuse:
      return entry.var;
  }
  return "";
}

std::string CanonicalProcessCell(const std::vector<ProcessDecl>& decls) {
  if (decls.empty()) return "";
  if (decls.size() == 1) return CanonicalProcessDecl(decls[0]);
  std::vector<std::string> parts;
  for (const ProcessDecl& d : decls) {
    std::string part = "(";
    part += CanonicalProcessDecl(d);
    part += ")";
    parts.push_back(std::move(part));
  }
  return Join(parts, ", ");
}

std::string CanonicalText(const ZqlQuery& query) {
  size_t z_cols = 1;
  for (const ZqlRow& row : query.rows) {
    z_cols = std::max(z_cols, row.zs.size());
  }
  std::string out = "name | x | y";
  for (size_t i = 0; i < z_cols; ++i) {
    out += i == 0 ? " | z" : " | z" + std::to_string(i + 1);
  }
  out += " | constraints | viz | process\n";
  for (const ZqlRow& row : query.rows) {
    std::vector<std::string> cells;
    cells.push_back(CanonicalNameEntry(row.name));
    cells.push_back(CanonicalAxisEntry(row.x));
    cells.push_back(CanonicalAxisEntry(row.y));
    for (size_t i = 0; i < z_cols; ++i) {
      cells.push_back(i < row.zs.size() ? CanonicalZEntry(row.zs[i]) : "");
    }
    cells.push_back(CollapseWhitespace(row.constraints));
    cells.push_back(CanonicalVizEntry(row.viz));
    cells.push_back(CanonicalProcessCell(row.processes));
    std::string line = Join(cells, " | ");
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace zv::zql
