/// \file scheduler.h
/// \brief Executes a physical plan (zql/plan.h) over the operator layer
/// (zql/operators.h) in one of two schedules:
///
///  - *staged* (the oracle): every flush runs to completion — all buffered
///    statements execute and route — before any downstream operator runs.
///    This is exactly the pre-plan executor's behavior.
///  - *pipelined*: a flush hands its statement batch to a dedicated fetch
///    thread, which drives the backend's streaming ScanBatch entry point
///    and pushes each ResultSet through a bounded hand-off queue. The
///    coordinator keeps walking the plan; a MaterializeOp drains (routes)
///    only the fetches tagged at or before its own row, so scoring of an
///    already-materialized row overlaps the backend scan of later rows.
///
/// Determinism contract: everything except the backend scan — routing,
/// derivations, scoring, reduction, variable binding — runs on the
/// coordinating thread in plan order under both schedules, and a scan's
/// ResultSet does not depend on when it executes (the query holds one
/// table snapshot). Results are therefore byte-identical across schedules
/// and across ZV_THREADS (tests/pipeline_test.cc). Errors surface as the
/// first failing statement in dispatch order, same as staged execution;
/// cancellation is polled at every step, per scanned statement on the
/// fetch thread, and per scored combination.

#ifndef ZV_ZQL_SCHEDULER_H_
#define ZV_ZQL_SCHEDULER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/status.h"
#include "zql/operators.h"
#include "zql/plan.h"

namespace zv::zql::exec {

class PipelineScheduler {
 public:
  /// `plan`, `query`, and `st` must outlive the scheduler. The scheduler
  /// captures the calling thread's cancellation token (common/cancel.h)
  /// and mirrors it onto the fetch thread.
  PipelineScheduler(const PhysicalPlan& plan, const ZqlQuery& query,
                    ExecState* st);
  ~PipelineScheduler();

  PipelineScheduler(const PipelineScheduler&) = delete;
  PipelineScheduler& operator=(const PipelineScheduler&) = delete;

  /// Walks the plan's steps to completion (or first error). After an OK
  /// return every fetch is routed and every component is final.
  Status Run();

 private:
  /// One scanned statement coming back from the fetch thread. Exactly one
  /// item is produced per dispatched statement, always — on cancellation
  /// the remaining statements of a batch yield kCancelled placeholders —
  /// so the coordinator can account for every dispatch.
  struct FetchItem {
    Result<ResultSet> result = Status::Internal("unset");
    double scan_ms = 0;
  };
  /// One flush's statement batch, handed to the fetch thread.
  struct FetchJob {
    std::vector<sql::SelectStatement> stmts;
    bool batched = true;  ///< one request for the batch vs one per statement
  };

  Status StepFlush();
  Status StepMaterialize(const ZqlRow& row, size_t row_tag);

  /// Routes completed fetches in dispatch order until none remain whose
  /// row_tag is <= `limit_tag` (SIZE_MAX = drain everything outstanding).
  Status DrainUpTo(size_t limit_tag);

  void FetchWorkerMain();
  void StartWorker();

  const PhysicalPlan& plan_;
  const ZqlQuery& query_;
  ExecState* st_;

  /// Planned statements not yet dispatched (current batch).
  std::vector<PendingFetch> buffer_;
  /// Dispatched statements not yet routed, in dispatch order (FIFO).
  std::deque<PendingFetch> in_flight_;

  // Pipelined-mode machinery. Queues are sized so the fetch thread can run
  // only pipeline_depth results ahead of the coordinator (back-pressure).
  std::unique_ptr<BoundedQueue<FetchJob>> jobs_;
  std::unique_ptr<BoundedQueue<FetchItem>> results_;
  std::thread fetch_thread_;
  /// The coordinator's cancel flag, mirrored onto the fetch thread.
  const std::atomic<bool>* cancel_flag_ = nullptr;
  /// Tells the fetch thread to stop scanning (teardown after an error).
  std::atomic<bool> abandon_{false};
};

}  // namespace zv::zql::exec

#endif  // ZV_ZQL_SCHEDULER_H_
