/// \file scheduler.h
/// \brief Executes a physical plan (zql/plan.h) over the operator layer
/// (zql/operators.h) in one of two schedules:
///
///  - *staged* (the oracle): every flush runs to completion — all buffered
///    statements execute and route — before any downstream operator runs.
///    This is exactly the pre-plan executor's behavior.
///  - *pipelined*: a flush hands its statement batch to a dedicated fetch
///    thread, which drives the backend's streaming ScanBatch entry point
///    and pushes each ResultSet through a bounded hand-off queue. The
///    coordinator keeps walking the plan; a MaterializeOp drains (routes)
///    only the fetches tagged at or before its own row, so scoring of an
///    already-materialized row overlaps the backend scan of later rows.
///
/// Under either schedule a flush's statements may additionally be
/// *sharded* (docs/architecture.md "Sharded execution"): when the plan
/// asks for >1 shard worker and the table's ChunkMap splits into >=2
/// chunks, each statement is compiled once (Database::PrepareChunkScan)
/// and its chunks fan out to a pool of shard workers whose per-chunk
/// row lists come back through a bounded queue tagged by chunk index,
/// merge positionally, and finish through the shared blocked aggregation
/// (FinishChunkScan) — so the ResultSet bytes match the unsharded scan at
/// any ZV_SHARDS / chunk size.
///
/// When the options carry a BatchScanQueue (docs/architecture.md "Batched
/// execution"), a flush's row selection is instead routed through the
/// cross-query shared-scan coordinator (engine/shared_scan.h): the whole
/// flush joins one chunk-parallel pass, possibly alongside other queries'
/// statements, and each statement still finishes through the same
/// FinishChunkScan aggregation — so what a pass happens to share never
/// shows up in the bytes.
///
/// Determinism contract: everything except the backend scan — routing,
/// derivations, scoring, reduction, variable binding — runs on the
/// coordinating thread in plan order under both schedules, and a scan's
/// ResultSet does not depend on when it executes (the query holds one
/// table snapshot). Results are therefore byte-identical across schedules
/// and across ZV_THREADS (tests/pipeline_test.cc) and across shard
/// settings (tests/shard_test.cc). Errors surface as the first failing
/// statement in dispatch order — and within a sharded statement, as the
/// lowest failing chunk index, mirroring a serial scan's row order;
/// cancellation is polled at every step, per scanned statement on the
/// fetch thread, per chunk range on every shard worker, and per scored
/// combination.

#ifndef ZV_ZQL_SCHEDULER_H_
#define ZV_ZQL_SCHEDULER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/status.h"
#include "engine/chunk_map.h"
#include "zql/operators.h"
#include "zql/plan.h"

namespace zv::zql::exec {

class PipelineScheduler {
 public:
  /// `plan`, `query`, and `st` must outlive the scheduler. The scheduler
  /// captures the calling thread's cancellation token (common/cancel.h)
  /// and mirrors it onto the fetch thread.
  PipelineScheduler(const PhysicalPlan& plan, const ZqlQuery& query,
                    ExecState* st);
  ~PipelineScheduler();

  PipelineScheduler(const PipelineScheduler&) = delete;
  PipelineScheduler& operator=(const PipelineScheduler&) = delete;

  /// Walks the plan's steps to completion (or first error). After an OK
  /// return every fetch is routed and every component is final.
  Status Run();

 private:
  /// One scanned statement coming back from the fetch thread. Exactly one
  /// item is produced per dispatched statement, always — on cancellation
  /// the remaining statements of a batch yield kCancelled placeholders —
  /// so the coordinator can account for every dispatch.
  struct FetchItem {
    Result<ResultSet> result = Status::Internal("unset");
    double scan_ms = 0;
    /// Sharded-scan deltas for this statement (0 when unsharded).
    uint64_t chunks_scanned = 0;
    double shard_ms = 0;
    /// Shared-scan deltas for this statement (0 when batching is off).
    uint64_t batched_scans = 0;
    uint64_t scans_shared = 0;
  };
  /// One flush's statement batch, handed to the fetch thread.
  struct FetchJob {
    std::vector<sql::SelectStatement> stmts;
    bool batched = true;  ///< one request for the batch vs one per statement
  };
  /// One chunk sub-scan, handed to a shard worker. The scanner is owned by
  /// ExecuteSharded's frame, which outlives the chunk (it blocks until
  /// every dispatched chunk's item is back).
  struct ChunkJob {
    const ChunkScanner* scanner = nullptr;
    size_t chunk = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
  };
  /// A chunk's surviving rows (ascending), tagged for positional merge.
  /// Exactly one item comes back per dispatched chunk, always — workers
  /// answer cancellation/teardown with kCancelled items, never silence.
  struct ChunkItem {
    size_t chunk = 0;
    Status status = Status::OK();
    std::vector<uint32_t> rows;
    double scan_ms = 0;
  };

  Status StepFlush();
  Status StepMaterialize(const ZqlRow& row, size_t row_tag);

  /// Routes completed fetches in dispatch order until none remain whose
  /// row_tag is <= `limit_tag` (SIZE_MAX = drain everything outstanding).
  Status DrainUpTo(size_t limit_tag);

  /// Executes one flush's statement batch and feeds results to `sink` —
  /// contract identical to Database::ScanBatch (which it delegates to when
  /// sharding is inactive). Sharded: per statement, compile once, fan the
  /// chunks out to the shard pool, merge positionally, aggregate through
  /// FinishChunkScan; accounting mirrors ScanBatch via AccountRequest so
  /// sql_queries/sql_requests deltas are unchanged. Runs on the
  /// coordinator (staged) or the fetch thread (pipelined) — never both.
  /// `span_parent`/`track` locate this batch's trace spans (per chunk-scan
  /// pass, per shared-scan pass) in the query's span tree; null parent
  /// with tracing off records nothing.
  void RunBatch(const std::vector<sql::SelectStatement>& stmts, bool batched,
                const std::function<bool(size_t, Result<ResultSet>)>& sink,
                double* scan_ms, uint64_t* chunks_scanned, double* shard_ms,
                uint64_t* batched_scans, uint64_t* scans_shared,
                TraceSpan* span_parent, int track);
  /// The cross-query batched form of RunBatch (engaged when the options
  /// carry a BatchScanQueue and the table has a chunk map): the whole
  /// flush goes to the queue in one SelectRows call — so its statements
  /// always share one pass, possibly joined by other queries' — and each
  /// statement finishes through FinishChunkScan on the calling thread,
  /// with AccountRequest mirroring ScanBatch's round-trip accounting.
  void RunBatchShared(
      const std::vector<sql::SelectStatement>& stmts, bool batched,
      const std::function<bool(size_t, Result<ResultSet>)>& sink,
      double* scan_ms, uint64_t* chunks_scanned, uint64_t* batched_scans,
      uint64_t* scans_shared, TraceSpan* span_parent, int track);
  Result<ResultSet> ExecuteSharded(const sql::SelectStatement& stmt,
                                   uint64_t* chunks_scanned, double* shard_ms,
                                   TraceSpan* span_parent, int track);

  void FetchWorkerMain();
  void StartWorker();
  void ShardWorkerMain();
  void StartShardPool();

  const PhysicalPlan& plan_;
  const ZqlQuery& query_;
  ExecState* st_;

  /// Planned statements not yet dispatched (current batch).
  std::vector<PendingFetch> buffer_;
  /// Dispatched statements not yet routed, in dispatch order (FIFO).
  std::deque<PendingFetch> in_flight_;

  // Pipelined-mode machinery. Queues are sized so the fetch thread can run
  // only pipeline_depth results ahead of the coordinator (back-pressure).
  std::unique_ptr<BoundedQueue<FetchJob>> jobs_;
  std::unique_ptr<BoundedQueue<FetchItem>> results_;
  std::thread fetch_thread_;
  /// The coordinator's cancel flag, mirrored onto the fetch thread and
  /// every shard worker.
  const std::atomic<bool>* cancel_flag_ = nullptr;
  /// Tells the fetch thread and shard workers to stop scanning (teardown
  /// after an error).
  std::atomic<bool> abandon_{false};

  // Sharded-scan machinery (resolved in the constructor; inactive unless
  // the plan wants >1 worker and the table has >=2 chunks). The chunk map
  // is copied in, pinning the partitioning for this query even if the
  // backend's map is rebuilt. Queues are sized to the chunk count so a
  // full fan-out can never wedge on its own results.
  /// Cross-query shared-scan batching (resolved in the constructor:
  /// ZqlOptions::batch_scans when the table has a non-empty chunk map).
  /// Takes precedence over the per-query shard pool — the queue has its
  /// own chunk-parallel workers.
  BatchScanQueue* batch_queue_ = nullptr;

  bool sharded_ = false;
  ChunkMap chunk_map_;
  size_t shard_workers_ = 0;
  std::unique_ptr<BoundedQueue<ChunkJob>> chunk_jobs_;
  std::unique_ptr<BoundedQueue<ChunkItem>> chunk_results_;
  std::vector<std::thread> shard_threads_;
};

}  // namespace zv::zql::exec

#endif  // ZV_ZQL_SCHEDULER_H_
