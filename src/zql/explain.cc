#include "zql/explain.h"

#include <cctype>
#include <map>
#include <set>

#include "common/strings.h"
#include "tasks/simd.h"

namespace zv::zql {

namespace {

void CollectRangeVars(const ZSetExpr& e, std::set<std::string>* out) {
  switch (e.kind) {
    case ZSetExpr::Kind::kVarRange:
      out->insert(e.var);
      break;
    case ZSetExpr::Kind::kOp:
      CollectRangeVars(*e.lhs, out);
      CollectRangeVars(*e.rhs, out);
      break;
    default:
      break;
  }
}

void CollectConstraintRangeVars(const std::string& text,
                                std::set<std::string>* out) {
  for (size_t i = 0; i + 6 <= text.size(); ++i) {
    if (text.compare(i, 6, ".range") != 0) continue;
    size_t start = i;
    while (start > 0 &&
           (std::isalnum(static_cast<unsigned char>(text[start - 1])) ||
            text[start - 1] == '_')) {
      --start;
    }
    if (start < i) out->insert(text.substr(start, i - start));
  }
}

void CollectExprComponents(const ProcessExpr& e, std::set<std::string>* out) {
  if (e.kind == ProcessExpr::Kind::kCall) {
    for (const auto& a : e.args) out->insert(a);
  } else if (e.child) {
    CollectExprComponents(*e.child, out);
  }
}

void CollectExprFuncs(const ProcessExpr& e, std::set<std::string>* out) {
  if (e.kind == ProcessExpr::Kind::kCall) {
    out->insert(e.func);
  } else if (e.child) {
    CollectExprFuncs(*e.child, out);
  }
}

}  // namespace

/// How the default task library scores this declaration: D() calls go
/// through the shared ScoringContext (one alignment pass, parallel scan),
/// and an argmin[k=n] over a bare D(f, g) additionally takes the top-k
/// pruned scan with early-terminating kernels. Anything calling a
/// non-default function is scored serially, one pair at a time.
///
/// The trailing cache verdict says how the serving layer's ContextCache
/// treats the declaration: ScoringContext-scored tasks are
/// "context-cacheable" (their alignment matrices are deduplicated within
/// the query and shared across queries/sessions by content fingerprint);
/// user functions bypass the context machinery entirely. EXPLAIN is
/// static, so it reports cacheability — hit/miss counts land in ZqlStats
/// (contexts_reused) at run time.
std::string DescribeTaskScoring(const ProcessDecl& p) {
  if (p.kind == ProcessDecl::Kind::kRepresentative) {
    return StrFormat("R k=%lld: k-means medoids",
                     static_cast<long long>(p.repr_k));
  }
  std::set<std::string> funcs;
  if (p.expr) CollectExprFuncs(*p.expr, &funcs);
  bool user_fn = false;
  for (const std::string& f : funcs) user_fn |= f != "T" && f != "D";
  if (user_fn) return "user fn: serial per-pair scoring, context cache bypassed";
  if (funcs.count("D")) {
    std::string out = "D: ScoringContext batch scan";
    const bool bare_d = p.expr->kind == ProcessExpr::Kind::kCall &&
                        p.expr->args.size() == 2;
    if (bare_d && p.mech == Mechanism::kArgMin && p.filter.k.has_value() &&
        !p.filter.t_above.has_value() && !p.filter.t_below.has_value()) {
      out += StrFormat(", top-k pruned k=%lld",
                       static_cast<long long>(*p.filter.k));
    }
    // The active distance-kernel tier (tasks/simd.h runtime dispatch) —
    // constant per process, but EXPLAIN consumers comparing latency across
    // machines need to know which kernel produced the numbers.
    out += StrFormat(", kernel=%s", simd::LevelName(simd::ActiveLevel()));
    out += ", context-cacheable";
    return out;
  }
  if (funcs.count("T")) return "T: parallel trend scan";
  return "";
}

Result<QueryPlan> ExplainQuery(const ZqlQuery& query) {
  QueryPlan plan;
  plan.rows.reserve(query.rows.size());

  for (const ZqlRow& row : query.rows) {
    QueryPlan::RowInfo info;
    info.name = row.name.name;
    info.has_task = !row.processes.empty();
    info.derived = row.name.derive != NameEntry::Derive::kNone;
    info.user_input = row.name.user_input;

    std::set<std::string> consumes, declares, comps;
    auto axis = [&](const AxisEntry& e) {
      if (e.kind == AxisEntry::Kind::kReuse ||
          e.kind == AxisEntry::Kind::kOrderBy) {
        consumes.insert(e.var);
      } else if (e.kind == AxisEntry::Kind::kDeclare ||
                 e.kind == AxisEntry::Kind::kDerived) {
        declares.insert(e.var);
      }
    };
    axis(row.x);
    axis(row.y);
    for (const ZEntry& z : row.zs) {
      switch (z.kind) {
        case ZEntry::Kind::kReuse:
        case ZEntry::Kind::kOrderBy:
          consumes.insert(z.vars[0]);
          break;
        case ZEntry::Kind::kDeclare:
          for (const auto& v : z.vars) declares.insert(v);
          if (z.set) CollectRangeVars(*z.set, &consumes);
          break;
        case ZEntry::Kind::kDerived:
          for (const auto& v : z.vars) declares.insert(v);
          break;
        default:
          break;
      }
    }
    if (row.viz.kind == VizEntry::Kind::kReuse) consumes.insert(row.viz.var);
    else if (row.viz.kind == VizEntry::Kind::kDeclare)
      declares.insert(row.viz.var);
    CollectConstraintRangeVars(row.constraints, &consumes);

    if (!row.name.source_a.empty()) comps.insert(row.name.source_a);
    if (!row.name.source_b.empty()) comps.insert(row.name.source_b);

    for (const ProcessDecl& p : row.processes) {
      for (const auto& v : p.iter_vars) {
        if (!declares.count(v)) consumes.insert(v);
      }
      for (const auto& v : p.repr_vars) {
        if (!declares.count(v)) consumes.insert(v);
      }
      if (!p.repr_component.empty()) comps.insert(p.repr_component);
      if (p.expr) CollectExprComponents(*p.expr, &comps);
      for (const auto& o : p.outputs) info.task_outputs.push_back(o);
      info.task_scoring.push_back(DescribeTaskScoring(p));
    }
    comps.erase(row.name.name);

    info.consumes_vars.assign(consumes.begin(), consumes.end());
    info.declares_vars.assign(declares.begin(), declares.end());
    info.consumes_components.assign(comps.begin(), comps.end());
    plan.rows.push_back(std::move(info));
  }

  // Wavefront schedule: a row is placed in the earliest wave where all
  // consumed variables are statically declared (any wave <= current) or
  // produced by a task in a strictly earlier wave, and all consumed
  // components come from the same or earlier waves.
  std::map<std::string, int> var_available_after;  // wave index
  std::map<std::string, int> comp_available_in;
  std::vector<int> assigned(plan.rows.size(), -1);
  int wave = 0;
  size_t placed = 0;
  while (placed < plan.rows.size()) {
    bool progress = false;
    // Statically declared vars of rows placed in this wave become usable
    // within the wave itself (Figure 5.1's f2-independent-of-t1 property).
    for (size_t i = 0; i < plan.rows.size(); ++i) {
      if (assigned[i] >= 0) continue;
      bool ok = true;
      for (const std::string& v : plan.rows[i].consumes_vars) {
        auto it = var_available_after.find(v);
        if (it == var_available_after.end() || it->second > wave) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (const std::string& c : plan.rows[i].consumes_components) {
          auto it = comp_available_in.find(c);
          if (it == comp_available_in.end() || it->second > wave) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) continue;
      assigned[i] = wave;
      plan.rows[i].wave = wave;
      comp_available_in[plan.rows[i].name] = wave;
      for (const std::string& v : plan.rows[i].declares_vars) {
        var_available_after[v] = wave;  // usable within the wave
      }
      for (const std::string& v : plan.rows[i].task_outputs) {
        var_available_after[v] = wave + 1;  // usable after the task runs
      }
      progress = true;
      ++placed;
    }
    if (!progress) {
      return Status::InvalidArgument(
          "unresolvable ZQL dependencies (circular or undefined variables)");
    }
    ++wave;
  }
  plan.num_waves = wave;
  return plan;
}

std::string QueryPlan::ToString() const {
  std::string out =
      StrFormat("query tree (%d wave%s):\n", num_waves,
                num_waves == 1 ? "" : "s");
  for (const RowInfo& row : rows) {
    out += StrFormat("  %-6s [wave %d]%s%s", row.name.c_str(), row.wave,
                     row.derived ? " derived" : "",
                     row.user_input ? " user-input" : "");
    if (!row.consumes_vars.empty()) {
      out += " <- vars{" + Join(row.consumes_vars, ", ") + "}";
    }
    if (!row.consumes_components.empty()) {
      out += " <- comps{" + Join(row.consumes_components, ", ") + "}";
    }
    if (row.has_task) {
      out += "  task -> {" + Join(row.task_outputs, ", ") + "}";
      std::vector<std::string> notes;
      for (const std::string& note : row.task_scoring) {
        if (!note.empty()) notes.push_back(note);
      }
      if (!notes.empty()) out += " [" + Join(notes, "; ") + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace zv::zql
