/// \file parser.h
/// \brief Parser for the textual ZQL table format.
///
/// One row per line, columns separated by '|', mirroring the paper's
/// tables. Example (Table 2.1):
///
///   *f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum')) |
///
/// Default column order is Name | X | Y | Z | Constraints | Viz | Process;
/// an optional header row (cells drawn from name/x/y/z/z2/z3/constraints/
/// viz/process) reorders or extends the layout, e.g. to add a Z2 column
/// (Table 3.8). Lines starting with '#' are comments.

#ifndef ZV_ZQL_PARSER_H_
#define ZV_ZQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "zql/ast.h"

namespace zv::zql {

/// \brief Where and why a parse failed — the structured form behind the
/// error message, consumed by the typed API's error payload (src/api/).
struct ParseDiagnostic {
  int line = 0;         ///< 1-based source line (0 = unknown)
  int column = 0;       ///< 1-based column of the offending token (or cell)
  std::string token;    ///< offending token text, best effort (may be empty)
  std::string message;  ///< the underlying cell parser's message
};

/// Parses a full query (multiple lines). On error the Status message reads
/// "line L, column C near '<token>': <message>"; pass `diag` to also get
/// the pieces individually.
Result<ZqlQuery> ParseQuery(const std::string& text,
                            ParseDiagnostic* diag = nullptr);

/// Cell-level parsers, exposed for tests.
Result<NameEntry> ParseNameEntry(const std::string& text);
Result<AxisEntry> ParseAxisEntry(const std::string& text);
Result<ZEntry> ParseZEntry(const std::string& text);
Result<VizEntry> ParseVizEntry(const std::string& text);
Result<std::vector<ProcessDecl>> ParseProcessCell(const std::string& text);

}  // namespace zv::zql

#endif  // ZV_ZQL_PARSER_H_
