/// \file builder.h
/// \brief ZqlBuilder — fluent, programmatic construction of the ZQL AST.
///
/// The typed front door to the engine: C++ callers (front-end adapters,
/// tests, benches) assemble queries structurally instead of concatenating
/// ZQL text, skip the parser entirely, and still share cache entries with
/// text-submitted equivalents (both fingerprint through
/// zql::CanonicalText). Table 2.1 of the paper becomes:
///
///   ZqlQuery q = ZqlBuilder()
///       .Row("f1").Output()
///           .X("year").Y("sales")
///           .ZDeclare("v1", ZSet::All("product"))
///           .Where("location='US'")
///           .Viz("bar.(y=agg('sum'))")
///       .Build().ValueOrDie();
///
/// Fluent methods never fail mid-chain: malformed pieces (bad viz spec,
/// output/iterator arity mismatch, empty set) are recorded and surface as
/// the Build() error, so call sites stay linear.

#ifndef ZV_ZQL_BUILDER_H_
#define ZV_ZQL_BUILDER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "zql/ast.h"

namespace zv::zql {

/// \brief Value-semantics wrapper over a ZSetExpr tree (the Z column's set
/// algebra). Compose with Union / Intersect / Minus, mirroring ZQL's
/// `|`, `&`, `\`.
class ZSet {
 public:
  /// 'attr'.* — every value of the attribute.
  static ZSet All(std::string attr);
  /// 'attr'.v — a single slice.
  static ZSet One(std::string attr, Value value);
  static ZSet One(std::string attr, std::string value) {
    return One(std::move(attr), Value::Str(std::move(value)));
  }
  /// 'attr'.{v1, v2, ...}.
  static ZSet Values(std::string attr, std::vector<Value> values);
  /// 'attr'.(* \ {v1, ...}).
  static ZSet AllExcept(std::string attr, std::vector<Value> values);
  /// v.range — the values a process output ranged over (§3.7).
  static ZSet Range(std::string var);
  /// A registered named value set (NamedSets::value_sets).
  static ZSet Named(std::string name);

  ZSet Union(ZSet other) const { return Op('|', std::move(other)); }
  ZSet Intersect(ZSet other) const { return Op('&', std::move(other)); }
  ZSet Minus(ZSet other) const { return Op('\\', std::move(other)); }

  std::shared_ptr<ZSetExpr> expr() const { return expr_; }

 private:
  ZSet Op(char op, ZSet rhs) const;
  std::shared_ptr<ZSetExpr> expr_;
};

/// \brief One Process-column task under construction. Reading order matches
/// ZQL: outputs, mechanism + iteration variables, optional filter,
/// objective expression (reducers outermost-first, then the call).
///
///   ProcessBuilder({"v2"}).ArgMin({"v1"}).K(3).Call("D", {"f1", "f2"})
///     ==  v2 <- argmin_v1[k=3] D(f1, f2)
class ProcessBuilder {
 public:
  explicit ProcessBuilder(std::vector<std::string> outputs);

  ProcessBuilder& ArgMin(std::vector<std::string> iter_vars);
  ProcessBuilder& ArgMax(std::vector<std::string> iter_vars);
  ProcessBuilder& ArgAny(std::vector<std::string> iter_vars);

  ProcessBuilder& K(int64_t k);       ///< [k=n]
  ProcessBuilder& Above(double t);    ///< [t > v]
  ProcessBuilder& Below(double t);    ///< [t < v]

  /// Wraps the (eventual) call in an inner reducer; repeated calls nest
  /// outermost-first: MinOver({"v2"}).Call(...) == min_v2 CALL.
  ProcessBuilder& MinOver(std::vector<std::string> vars);
  ProcessBuilder& MaxOver(std::vector<std::string> vars);
  ProcessBuilder& SumOver(std::vector<std::string> vars);

  /// The leaf objective: T(f), D(f, g), or a user function of components.
  ProcessBuilder& Call(std::string func, std::vector<std::string> args);

  /// Representative task: R(k, vars..., component). Exclusive with the
  /// mechanism/filter/call methods.
  ProcessBuilder& Representative(int64_t k, std::vector<std::string> vars,
                                 std::string component);

  /// Finalizes; validates arity (|outputs| == |iter_vars|) and completeness.
  Result<ProcessDecl> BuildDecl() const;

 private:
  ProcessBuilder& Mech(Mechanism mech, std::vector<std::string> iter_vars);
  ProcessBuilder& Reduce(ProcessExpr::Reduce r, std::vector<std::string> vars);

  ProcessDecl decl_;
  std::vector<std::pair<ProcessExpr::Reduce, std::vector<std::string>>>
      reducers_;
  std::shared_ptr<ProcessExpr> call_;
  bool has_mechanism_ = false;
  bool is_representative_ = false;
  Status error_;
};

class ZqlBuilder;

/// \brief Fluent builder for one ZqlRow. Obtained from ZqlBuilder::Row();
/// also forwards Row()/Build() so chains read top-to-bottom like the table.
class RowBuilder {
 public:
  // --- Name column ---------------------------------------------------------
  RowBuilder& Output();     ///< *name — emit this component in the result
  RowBuilder& UserInput();  ///< -name — bound to a user-drawn sketch

  RowBuilder& DerivePlus(std::string a, std::string b);       ///< f3=f1+f2
  RowBuilder& DeriveMinus(std::string a, std::string b);      ///< f3=f1-f2
  RowBuilder& DeriveIntersect(std::string a, std::string b);  ///< f3=f1^f2
  RowBuilder& DeriveIndex(std::string src, int64_t i);        ///< f2=f1[i]
  RowBuilder& DeriveSlice(std::string src, int64_t i, int64_t j);
  RowBuilder& DeriveRange(std::string src);                   ///< f2=f1.range
  RowBuilder& DeriveOrder(std::string src);                   ///< f2=f1.order

  // --- X / Y columns -------------------------------------------------------
  RowBuilder& X(std::string attr);  ///< literal single attribute
  /// Literal composed axis: attrs joined with '+' (concatenate) or '*'
  /// (cross), e.g. XComposed({"profit","sales"}, AxisValue::Compose::kPlus).
  RowBuilder& XComposed(std::vector<std::string> attrs, AxisValue::Compose c);
  RowBuilder& XDeclare(std::string var, std::vector<std::string> attrs);
  RowBuilder& XDeclareNamed(std::string var, std::string set_name);
  RowBuilder& XReuse(std::string var);
  RowBuilder& XDerived(std::string var);  ///< x1 <- _
  RowBuilder& XOrderBy(std::string var);  ///< u1 ->

  RowBuilder& Y(std::string attr);
  RowBuilder& YComposed(std::vector<std::string> attrs, AxisValue::Compose c);
  RowBuilder& YDeclare(std::string var, std::vector<std::string> attrs);
  RowBuilder& YDeclareNamed(std::string var, std::string set_name);
  RowBuilder& YReuse(std::string var);
  RowBuilder& YDerived(std::string var);
  RowBuilder& YOrderBy(std::string var);

  // --- Z columns (repeat for Z2, Z3, ...) ----------------------------------
  RowBuilder& Z(std::string attr, Value value);  ///< literal slice
  RowBuilder& Z(std::string attr, std::string value) {
    return Z(std::move(attr), Value::Str(std::move(value)));
  }
  RowBuilder& ZDeclare(std::string var, ZSet set);
  /// Two-variable form: z1.v1 <- set (binds attribute and value variables).
  RowBuilder& ZDeclare(std::string attr_var, std::string value_var, ZSet set);
  RowBuilder& ZReuse(std::string var);
  /// v2 <- 'attr'._ (attr == "" for the unconstrained v2 <- _).
  RowBuilder& ZDerived(std::string var, std::string attr = "");
  RowBuilder& ZOrderBy(std::string var);

  // --- Constraints / Viz ---------------------------------------------------
  RowBuilder& Where(std::string constraints);
  RowBuilder& Viz(VizSpec spec);
  RowBuilder& Viz(const std::string& spec_text);  ///< "bar.(y=agg('sum'))"
  RowBuilder& VizDeclare(std::string var, std::vector<VizSpec> set);
  RowBuilder& VizReuse(std::string var);

  // --- Process column ------------------------------------------------------
  RowBuilder& Process(const ProcessBuilder& process);

  // --- Chain back to the query builder -------------------------------------
  RowBuilder& Row(std::string name);
  Result<ZqlQuery> Build() const;

 private:
  friend class ZqlBuilder;
  RowBuilder(ZqlBuilder* owner, size_t index) : owner_(owner), index_(index) {}

  RowBuilder& Fail(std::string message);
  ZqlRow& row();
  static AxisEntry MakeDeclare(std::string var,
                               std::vector<std::string> attrs);

  ZqlBuilder* owner_;
  size_t index_;  ///< into the owner's query_.rows (stable across growth)
};

/// \brief Builds a ZqlQuery row by row. See the file comment for the shape.
class ZqlBuilder {
 public:
  ZqlBuilder();
  ~ZqlBuilder();
  ZqlBuilder(const ZqlBuilder&) = delete;
  ZqlBuilder& operator=(const ZqlBuilder&) = delete;

  /// Starts a new row named `name`. The returned builder stays valid for
  /// the ZqlBuilder's lifetime.
  RowBuilder& Row(std::string name);

  /// Returns the assembled query, or the first error recorded by any
  /// fluent call. The builder may keep being extended afterwards.
  Result<ZqlQuery> Build() const;

 private:
  friend class RowBuilder;
  void RecordError(Status status);

  ZqlQuery query_;
  std::vector<std::unique_ptr<RowBuilder>> row_builders_;
  Status error_;
};

}  // namespace zv::zql

#endif  // ZV_ZQL_BUILDER_H_
