/// \file plan.h
/// \brief Physical execution plans: the plan builder lowers a ZQL query
/// into an ordered graph of typed operator steps — FetchOp, MaterializeOp,
/// ScoreOp, ReduceOp, OutputOp — partitioned into flush-delimited stages.
///
/// The plan is *structural*: which rows fetch, where the batch boundaries
/// (flushes) fall under the configured optimization level, which rows the
/// Inter-Task wavefront groups together, and which Process declarations
/// score and reduce where. Cardinalities (Z-set sizes, statement counts)
/// are data-dependent and resolved when the operators run — the plan is
/// buildable without touching the backend, which is what lets EXPLAIN
/// render it and the serving layer ship it over the wire without
/// executing.
///
/// The scheduler (zql/scheduler.h) interprets the step list in order; the
/// *pipelined* schedule additionally overlaps FetchOp's backend scans with
/// downstream MaterializeOp/ScoreOp work, which the step ordering makes
/// safe: a MaterializeOp waits only for fetches of rows at or before its
/// own, so scans of later rows proceed underneath scoring.

#ifndef ZV_ZQL_PLAN_H_
#define ZV_ZQL_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "zql/ast.h"
#include "zql/executor.h"

namespace zv::zql {

/// True for rows that materialize without a backend fetch — user-input
/// (`-f`) and derived (§3.6) components. The plan builder emits no FetchOp
/// for them, and the scheduler's MaterializeOp assembles them locally;
/// both layers must agree, so the predicate lives here.
inline bool IsLocalRow(const ZqlRow& row) {
  return row.name.user_input || row.name.derive != NameEntry::Derive::kNone;
}

/// \brief One operator step of the physical plan.
struct PlanStep {
  enum class Kind {
    kFetch,        ///< FetchOp: plan row's SQL statements into the batch
    kFlush,        ///< batch boundary: dispatch buffered statements
    kMaterialize,  ///< MaterializeOp: route row's results / build derived
    kScore,        ///< ScoreOp: evaluate one Process declaration
    kReduce,       ///< ReduceOp: apply mechanism, bind output variables
    kOutput,       ///< OutputOp: final drain + collect *-flagged components
  };
  Kind kind;
  int row = -1;   ///< index into ZqlQuery::rows (kFetch/kMaterialize/kScore/kReduce)
  int decl = -1;  ///< Process declaration index within the row (kScore/kReduce)
  int stage = 0;  ///< flush-delimited stage (rendering + progress grouping)
};

/// \brief The physical plan for one query under one option set.
struct PhysicalPlan {
  OptLevel optimization = OptLevel::kInterTask;
  bool pipelined = true;
  int num_stages = 0;
  std::vector<PlanStep> steps;
  /// kInterTask: wavefront wave per row; sequential levels leave it empty.
  std::vector<int> wave_of_row;
  /// Requested shard worker count (ZqlOptions::shards with ZV_SHARDS
  /// resolved; always >= 1). Still structural: whether sharding actually
  /// engages depends on the table's chunk count, which the scheduler
  /// resolves at run time — a plan never touches data.
  size_t shard_workers = 1;
  /// True when the option set routes row selection through a cross-query
  /// BatchScanQueue (ZqlOptions::batch_scans). Structural, like
  /// shard_workers: whether a given flush actually shares its pass with
  /// another query is decided by co-tenancy at run time.
  bool shared_scans = false;

  /// EXPLAIN rendering: the operator tree, one line per operator, grouped
  /// by stage, with each ScoreOp annotated with its scoring path (batch
  /// ScoringContext scan / top-k pruned / serial user function). `query`
  /// must be the query the plan was built from. `table_chunks` — the
  /// target table's ChunkMap size, when the caller has a backend to ask —
  /// annotates each FetchOp with its fan-out (`chunks=K, shards=N`); 0
  /// (unknown, or a single-chunk table) renders the unsharded form.
  std::string Render(const ZqlQuery& query, size_t table_chunks = 0) const;
};

/// Effective shard worker count: options.shards when positive, else the
/// ZV_SHARDS environment variable, else min(4, hardware concurrency).
size_t ResolveShardWorkers(const ZqlOptions& options);

/// Lowers `query` into its physical plan under `options`. Pure — consults
/// no data. For Inter-Task optimization this computes the wavefront
/// schedule and fails with kInvalidArgument on unresolvable dependencies
/// (circular or undefined variables), naming the first stuck row.
Result<PhysicalPlan> BuildPhysicalPlan(const ZqlQuery& query,
                                       const ZqlOptions& options);

}  // namespace zv::zql

#endif  // ZV_ZQL_PLAN_H_
