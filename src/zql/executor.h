/// \file executor.h
/// \brief The ZQL engine (Chapter 5): compiles each row's visual component
/// into SQL aggregation queries against a Database backend, batches them
/// according to the configured optimization level, and evaluates Process
/// column tasks over the fetched visualizations.
///
/// Execution is plan-driven: the query is first lowered into a physical
/// plan of typed operators (zql/plan.h — FetchOp, MaterializeOp, ScoreOp,
/// ReduceOp, OutputOp) and then run by a scheduler (zql/scheduler.h) that
/// is either staged (every flush completes before anything downstream
/// runs) or pipelined (backend scans overlap materialization and scoring;
/// see ZqlOptions::pipelined_execution). Both schedules produce
/// byte-identical results.
///
/// Optimization levels (§5.2):
///  - kNoOpt:     one SQL query *and* one request per visualization — the
///                naive compiler of §5.1.
///  - kIntraLine: per row, one SQL query covering all Z values and Y
///                attributes (z added to SELECT/GROUP BY, WHERE z IN …),
///                issued as one request per row.
///  - kIntraTask: additionally batches the queries of consecutive task-less
///                rows together with the next task row into one request.
///  - kInterTask: builds the query dependency tree (Figure 5.1) and batches
///                every row whose dependencies are satisfied into wavefront
///                requests — the maximal batching that respects
///                dependencies.

#ifndef ZV_ZQL_EXECUTOR_H_
#define ZV_ZQL_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "tasks/context_cache.h"
#include "tasks/primitives.h"
#include "viz/visualization.h"
#include "zql/ast.h"

namespace zv {
class BatchScanQueue;      // engine/shared_scan.h
class ScoringContextPool;  // tasks/context_pool.h
class Trace;               // common/trace.h
struct TraceSpan;          // common/trace.h
}  // namespace zv

namespace zv::zql {

enum class OptLevel { kNoOpt, kIntraLine, kIntraTask, kInterTask };

const char* OptLevelToString(OptLevel level);

/// \brief Sets that ZQL text can reference by bare name: attribute sets
/// (e.g. M = all measures, Table 3.24) and value sets with an implied
/// attribute (e.g. P = a user-specified set of products, Table 5.1).
struct NamedSets {
  std::map<std::string, std::vector<std::string>> attr_sets;
  struct ValueSet {
    std::string attr;
    std::vector<Value> values;
  };
  std::map<std::string, ValueSet> value_sets;
};

/// User-defined Process function: receives the visualizations bound to its
/// arguments and returns a score (treated as a black box, §3.8). Never
/// called concurrently — expressions containing user functions (or custom
/// TaskLibrary hooks) are scored serially; only the default, stateless
/// primitives ride the ZV_THREADS pool.
using UserProcessFn =
    std::function<double(const std::vector<const Visualization*>&)>;

struct ZqlOptions {
  OptLevel optimization = OptLevel::kInterTask;
  TaskLibrary tasks = TaskLibrary::Default();
  NamedSets named_sets;
  std::map<std::string, UserProcessFn> user_functions;
  /// When set, every issued SQL statement is appended here in execution
  /// order (one entry per statement; batch boundaries are not marked) —
  /// the observable form of the §5.1 ZQL→SQL translation.
  std::vector<std::string>* sql_trace = nullptr;
  /// Top-k pruned scoring for `argmin[k=n] D(f, g)` process declarations
  /// scored through a ScoringContext: candidates whose partial distance
  /// already exceeds the current k-th best are abandoned mid-kernel. A pure
  /// optimization — selected visualizations are byte-identical with the
  /// flag off (topk_test.cc asserts it); exposed so tests and benches can
  /// compare against the full scan.
  bool topk_pruning = true;
  /// When set, Process-declaration ScoringContexts are shared across
  /// queries (and sessions) through this cache, keyed by content
  /// fingerprint (see tasks/context_cache.h) — the serving layer wires the
  /// QueryService's cache in here. Within one query, identical scoring
  /// sets are always deduplicated, cache or no cache. Reuse is a pure
  /// optimization: fingerprints cover identity, data, and configuration,
  /// so a reused context scores bit-identically to a rebuilt one.
  ContextCache* context_cache = nullptr;
  /// Pipelined execution of the physical plan (see zql/plan.h): backend
  /// scans run on a dedicated fetch thread feeding a bounded hand-off
  /// queue, so scoring of an already-materialized row overlaps the scan of
  /// the next one. A pure scheduling change: routing and scoring still run
  /// on the calling thread in plan order, so results are byte-identical to
  /// the staged path at any ZV_THREADS (tests/pipeline_test.cc locks
  /// this); off = the staged oracle, which executes every flush to
  /// completion before anything downstream runs.
  bool pipelined_execution = true;
  /// Capacity of the fetch->materialize hand-off queue: how many scanned
  /// ResultSets the fetch thread may run ahead of the consumer before it
  /// blocks (memory bound per in-flight query).
  size_t pipeline_depth = 4;
  /// Sharded scan fan-out (docs/architecture.md "Sharded execution"): when
  /// the effective value is >1 and the table's ChunkMap has >=2 chunks,
  /// each FetchOp statement is compiled once and its chunks are scanned by
  /// a pool of min(shards, chunks) shard workers, the per-chunk row lists
  /// merged positionally before the shared blocked aggregation runs. 0
  /// resolves the ZV_SHARDS environment variable (default: min(4,
  /// hardware concurrency) — wider-than-the-machine fan-out only pays
  /// when chunk scans wait on a remote store); 1 disables sharding. A pure execution strategy: results are byte-identical at
  /// any setting (tests/shard_test.cc locks the matrix).
  size_t shards = 0;
  /// Cross-query shared-scan batching (docs/architecture.md "Batched
  /// execution"): when set, every flush's row selection is routed through
  /// this queue (engine/shared_scan.h), which coalesces compatible
  /// statements from concurrently executing queries over the same backend
  /// and table into one shared chunk pass — the serving layer wires the
  /// QueryService's queue in here. Selection stays in the scan and
  /// aggregation in the table-size-pure blocked runner, so results are
  /// byte-identical to the unbatched schedules regardless of which
  /// queries happen to share a pass (tests/batch_test.cc locks the
  /// matrix). Ignored for tables without a chunk map.
  BatchScanQueue* batch_scans = nullptr;
  /// Single-flight ScoringContext construction across concurrent queries
  /// (tasks/context_pool.h): when set, context acquisition goes through
  /// the pool, which lets the first query for a fingerprint build while
  /// identical concurrent requests wait and share the result, layered in
  /// front of the optional context_cache. Reuse is bit-exact for the same
  /// reason the cache's is: fingerprints cover identity, data, and
  /// configuration.
  ScoringContextPool* context_pool = nullptr;
  /// Binning pushdown: viz specs that bin the x axis aggregate inside the
  /// backend scan (GROUP BY the bin's lower edge) instead of fetching
  /// every raw row and binning client-side — fetched volume drops from
  /// O(rows) to O(bins). Bin edges, ordering, and aggregate semantics
  /// match the client-side binner exactly; for float-valued measures the
  /// summation *order* differs (blocked scan order vs fetched-row order),
  /// so sums can differ in final ulps between on and off. Each setting is
  /// individually deterministic across threads/shards/schedules/batching,
  /// and integer measures are exact either way (tests/batch_test.cc locks
  /// on/off identity on integer data). Box-plot specs always bin
  /// client-side (they need the raw rows).
  bool binning_pushdown = true;
  /// Per-query execution tracing (common/trace.h): when set, the executor
  /// records a span tree under `trace_parent` (null = the trace root) —
  /// one "execute" span holding one span per plan operator
  /// (FetchOp/MaterializeOp/ScoreOp/ReduceOp/OutputOp, names matching the
  /// EXPLAIN rendering), plus per-batch scan spans ("Flush"/"FetchBatch"),
  /// per chunk-scan pass ("ChunkScanPass"), and per shared-scan
  /// group-commit pass ("SharedScanPass"). A pure observer: spans never
  /// influence scheduling, results are byte-identical with tracing on or
  /// off (tests/trace_test.cc locks the matrix), and the serving layer
  /// keeps trace state out of QueryFingerprint and every cache.
  Trace* trace = nullptr;
  TraceSpan* trace_parent = nullptr;
};

/// \brief Execution instrumentation for the Chapter 7 experiments.
/// Counts are exact when the executor has the backend to itself; under a
/// QueryService, sql_queries/sql_requests are deltas of the *shared*
/// backend counters, so concurrent queries' statements can interleave
/// into each other's deltas (monitoring noise only — results are
/// unaffected, and cached stats replay the first execution's values).
struct ZqlStats {
  uint64_t sql_queries = 0;   ///< SELECT statements issued
  uint64_t sql_requests = 0;  ///< backend round trips
  /// Candidates abandoned mid-kernel by top-k pruned scoring (a subset of
  /// the scored combinations; 0 when pruning is off or never applicable).
  uint64_t scores_pruned = 0;
  /// Result-cache verdicts, filled by the serving layer (QueryService): a
  /// hit means this ZqlResult was served from the ResultCache without
  /// executing; a miss means it executed and was (re)inserted. Both stay 0
  /// when the executor runs outside a service.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// ScoringContexts reused instead of rebuilt: within-query dedupe (two
  /// Process declarations sharing one (x, y, z, normalization) candidate
  /// set) plus cross-query ContextCache hits.
  uint64_t contexts_reused = 0;
  double total_ms = 0;
  double exec_ms = 0;     ///< flush time: backend scans + result routing
  double compute_ms = 0;  ///< Process column (task processor) time
  /// Per-stage breakdown across the operator pipeline. fetch_ms is pure
  /// backend scan time (statement execution + simulated request latency,
  /// a subset of exec_ms); score_ms is pure combination-scoring time
  /// (including ScoringContext assembly, a subset of compute_ms). Under
  /// pipelined execution the stages overlap in wall time, so
  /// fetch_ms + score_ms may exceed total_ms — the gap between
  /// (fetch_ms + score_ms) and total_ms is the overlap won.
  double fetch_ms = 0;
  double score_ms = 0;
  /// Sharded-scan instrumentation: chunk sub-scans executed by the shard
  /// worker pool, and the cumulative time those workers spent scanning
  /// (summed across workers, so under parallel fan-out shard_ms exceeds
  /// the wall time the scans took — the ratio is the fan-out won). Both
  /// stay 0 when sharding is off or the table fits in one chunk.
  uint64_t chunks_scanned = 0;
  double shard_ms = 0;
  /// Shared-scan batching instrumentation (ZqlOptions::batch_scans):
  /// batched_scans counts this query's statements whose row selection ran
  /// through the cross-query batch queue; scans_shared is the subset whose
  /// scan pass also carried statements from other concurrent queries — the
  /// redundant table passes actually eliminated. Both stay 0 when batching
  /// is off (or the table has no chunk map).
  uint64_t batched_scans = 0;
  uint64_t scans_shared = 0;
  /// Active distance-kernel vector width in doubles (tasks/simd.h dispatch:
  /// 1 = scalar fallback, 4 = AVX2). Constant for a process unless ZV_SIMD
  /// overrides it; recorded per query so wire consumers can attribute
  /// latency to the kernel tier that produced it.
  uint64_t simd_width = 1;
  /// Adaptive Roaring container representation changes (array/bitmap/
  /// run/inverted/all transitions) during this query, sampled as a delta of
  /// the backend's process-wide counter — same interleaving caveat as
  /// sql_queries. Stays 0 on backends without a bitmap index.
  uint64_t container_conversions = 0;
};

struct ZqlOutput {
  std::string name;
  std::vector<Visualization> visuals;
};

struct ZqlResult {
  std::vector<ZqlOutput> outputs;
  ZqlStats stats;

  /// Convenience: the visuals of the output named `name` (nullptr if none).
  const ZqlOutput* Find(const std::string& name) const {
    for (const auto& o : outputs) {
      if (o.name == name) return &o;
    }
    return nullptr;
  }
};

/// \brief Executes ZQL queries against one table of one backend.
///
/// Thread-compatible (no internal synchronization); create one per thread.
class ZqlExecutor {
 public:
  /// `db` must outlive the executor; `table` must be registered in it.
  ZqlExecutor(Database* db, std::string table, ZqlOptions options = {});

  /// Registers a user-drawn input visualization for a `-fN` row (§2,
  /// Table 2.2).
  void SetUserInput(const std::string& name, Visualization viz);

  Result<ZqlResult> Execute(const ZqlQuery& query);

  /// Parses and executes ZQL text.
  Result<ZqlResult> ExecuteText(const std::string& text);

  const ZqlOptions& options() const { return options_; }

 private:
  Database* db_;
  std::string table_name_;
  ZqlOptions options_;
  std::map<std::string, Visualization> user_inputs_;
};

}  // namespace zv::zql

#endif  // ZV_ZQL_EXECUTOR_H_
