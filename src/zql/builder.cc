#include "zql/builder.h"

#include "common/strings.h"
#include "viz/viz_spec.h"

namespace zv::zql {

// ---------------------------------------------------------------------------
// ZSet
// ---------------------------------------------------------------------------

namespace {

std::shared_ptr<ZSetExpr> AttrValueExpr(std::string attr, ValueSpec value) {
  auto e = std::make_shared<ZSetExpr>();
  e->kind = ZSetExpr::Kind::kAttrDotValue;
  e->attr.kind = AttrSpec::Kind::kLiteral;
  e->attr.names = {std::move(attr)};
  e->value = std::move(value);
  return e;
}

/// Deep copy: ZSet composition must not alias subtrees between the operand
/// sets and the composed set (ZSetExpr::lhs/rhs are unique_ptr).
std::unique_ptr<ZSetExpr> CloneExpr(const ZSetExpr& e) {
  auto out = std::make_unique<ZSetExpr>();
  out->kind = e.kind;
  out->attr = e.attr;
  out->value = e.value;
  out->var = e.var;
  out->op = e.op;
  if (e.lhs != nullptr) out->lhs = CloneExpr(*e.lhs);
  if (e.rhs != nullptr) out->rhs = CloneExpr(*e.rhs);
  return out;
}

}  // namespace

ZSet ZSet::All(std::string attr) {
  ZSet s;
  ValueSpec v;
  v.kind = ValueSpec::Kind::kAll;
  s.expr_ = AttrValueExpr(std::move(attr), std::move(v));
  return s;
}

ZSet ZSet::One(std::string attr, Value value) {
  ZSet s;
  ValueSpec v;
  v.kind = ValueSpec::Kind::kLiteral;
  v.values = {std::move(value)};
  s.expr_ = AttrValueExpr(std::move(attr), std::move(v));
  return s;
}

ZSet ZSet::Values(std::string attr, std::vector<Value> values) {
  ZSet s;
  ValueSpec v;
  v.kind = ValueSpec::Kind::kList;
  v.values = std::move(values);
  s.expr_ = AttrValueExpr(std::move(attr), std::move(v));
  return s;
}

ZSet ZSet::AllExcept(std::string attr, std::vector<Value> values) {
  ZSet s;
  ValueSpec v;
  v.kind = ValueSpec::Kind::kAllExcept;
  v.values = std::move(values);
  s.expr_ = AttrValueExpr(std::move(attr), std::move(v));
  return s;
}

ZSet ZSet::Range(std::string var) {
  ZSet s;
  auto e = std::make_shared<ZSetExpr>();
  e->kind = ZSetExpr::Kind::kVarRange;
  e->var = std::move(var);
  s.expr_ = std::move(e);
  return s;
}

ZSet ZSet::Named(std::string name) {
  ZSet s;
  auto e = std::make_shared<ZSetExpr>();
  e->kind = ZSetExpr::Kind::kNamedSet;
  e->var = std::move(name);
  s.expr_ = std::move(e);
  return s;
}

ZSet ZSet::Op(char op, ZSet rhs) const {
  ZSet s;
  auto e = std::make_shared<ZSetExpr>();
  e->kind = ZSetExpr::Kind::kOp;
  e->op = op;
  if (expr_ != nullptr) e->lhs = CloneExpr(*expr_);
  if (rhs.expr_ != nullptr) e->rhs = CloneExpr(*rhs.expr_);
  s.expr_ = std::move(e);
  return s;
}

// ---------------------------------------------------------------------------
// ProcessBuilder
// ---------------------------------------------------------------------------

ProcessBuilder::ProcessBuilder(std::vector<std::string> outputs) {
  decl_.outputs = std::move(outputs);
}

ProcessBuilder& ProcessBuilder::Mech(Mechanism mech,
                                     std::vector<std::string> iter_vars) {
  if (has_mechanism_ && error_.ok()) {
    error_ = Status::InvalidArgument("process already has a mechanism");
  }
  has_mechanism_ = true;
  decl_.kind = ProcessDecl::Kind::kMechanism;
  decl_.mech = mech;
  decl_.iter_vars = std::move(iter_vars);
  return *this;
}

ProcessBuilder& ProcessBuilder::ArgMin(std::vector<std::string> iter_vars) {
  return Mech(Mechanism::kArgMin, std::move(iter_vars));
}
ProcessBuilder& ProcessBuilder::ArgMax(std::vector<std::string> iter_vars) {
  return Mech(Mechanism::kArgMax, std::move(iter_vars));
}
ProcessBuilder& ProcessBuilder::ArgAny(std::vector<std::string> iter_vars) {
  return Mech(Mechanism::kArgAny, std::move(iter_vars));
}

ProcessBuilder& ProcessBuilder::K(int64_t k) {
  if (k <= 0 && error_.ok()) {
    error_ = Status::InvalidArgument("filter k must be positive");
  }
  decl_.filter.k = k;
  return *this;
}
ProcessBuilder& ProcessBuilder::Above(double t) {
  decl_.filter.t_above = t;
  return *this;
}
ProcessBuilder& ProcessBuilder::Below(double t) {
  decl_.filter.t_below = t;
  return *this;
}

ProcessBuilder& ProcessBuilder::Reduce(ProcessExpr::Reduce r,
                                       std::vector<std::string> vars) {
  reducers_.emplace_back(r, std::move(vars));
  return *this;
}
ProcessBuilder& ProcessBuilder::MinOver(std::vector<std::string> vars) {
  return Reduce(ProcessExpr::Reduce::kMin, std::move(vars));
}
ProcessBuilder& ProcessBuilder::MaxOver(std::vector<std::string> vars) {
  return Reduce(ProcessExpr::Reduce::kMax, std::move(vars));
}
ProcessBuilder& ProcessBuilder::SumOver(std::vector<std::string> vars) {
  return Reduce(ProcessExpr::Reduce::kSum, std::move(vars));
}

ProcessBuilder& ProcessBuilder::Call(std::string func,
                                     std::vector<std::string> args) {
  if (call_ != nullptr && error_.ok()) {
    error_ = Status::InvalidArgument("process already has an objective call");
  }
  auto e = std::make_shared<ProcessExpr>();
  e->kind = ProcessExpr::Kind::kCall;
  e->func = std::move(func);
  e->args = std::move(args);
  call_ = std::move(e);
  return *this;
}

ProcessBuilder& ProcessBuilder::Representative(int64_t k,
                                               std::vector<std::string> vars,
                                               std::string component) {
  if (k <= 0 && error_.ok()) {
    error_ = Status::InvalidArgument("R(k, ...) requires k > 0");
  }
  is_representative_ = true;
  decl_.kind = ProcessDecl::Kind::kRepresentative;
  decl_.repr_k = k;
  decl_.repr_vars = std::move(vars);
  decl_.repr_component = std::move(component);
  return *this;
}

Result<ProcessDecl> ProcessBuilder::BuildDecl() const {
  ZV_RETURN_NOT_OK(error_);
  if (decl_.outputs.empty()) {
    return Status::InvalidArgument("process declares no outputs");
  }
  ProcessDecl decl = decl_;
  if (is_representative_) return decl;
  if (!has_mechanism_) {
    return Status::InvalidArgument(
        "process needs a mechanism (ArgMin/ArgMax/ArgAny) or Representative");
  }
  if (call_ == nullptr) {
    return Status::InvalidArgument("process needs an objective Call()");
  }
  if (decl.outputs.size() != decl.iter_vars.size()) {
    return Status::InvalidArgument(StrFormat(
        "process declares %zu outputs for %zu iteration variables",
        decl.outputs.size(), decl.iter_vars.size()));
  }
  // Assemble the expression: reducers nest outermost-first around the call.
  std::unique_ptr<ProcessExpr> expr;
  {
    auto leaf = std::make_unique<ProcessExpr>();
    leaf->kind = ProcessExpr::Kind::kCall;
    leaf->func = call_->func;
    leaf->args = call_->args;
    expr = std::move(leaf);
  }
  for (auto it = reducers_.rbegin(); it != reducers_.rend(); ++it) {
    auto node = std::make_unique<ProcessExpr>();
    node->kind = ProcessExpr::Kind::kReduce;
    node->reduce = it->first;
    node->reduce_vars = it->second;
    node->child = std::move(expr);
    expr = std::move(node);
  }
  decl.expr = std::shared_ptr<ProcessExpr>(std::move(expr));
  return decl;
}

// ---------------------------------------------------------------------------
// RowBuilder
// ---------------------------------------------------------------------------

ZqlRow& RowBuilder::row() { return owner_->query_.rows[index_]; }

RowBuilder& RowBuilder::Fail(std::string message) {
  owner_->RecordError(Status::InvalidArgument(std::move(message)));
  return *this;
}

RowBuilder& RowBuilder::Output() {
  row().name.output = true;
  return *this;
}

RowBuilder& RowBuilder::UserInput() {
  row().name.user_input = true;
  return *this;
}

namespace {

void SetDerive(NameEntry* name, NameEntry::Derive d, std::string a,
               std::string b = "", int64_t i = 0, int64_t j = 0) {
  name->derive = d;
  name->source_a = std::move(a);
  name->source_b = std::move(b);
  name->index_a = i;
  name->index_b = j;
}

}  // namespace

RowBuilder& RowBuilder::DerivePlus(std::string a, std::string b) {
  SetDerive(&row().name, NameEntry::Derive::kPlus, std::move(a), std::move(b));
  return *this;
}
RowBuilder& RowBuilder::DeriveMinus(std::string a, std::string b) {
  SetDerive(&row().name, NameEntry::Derive::kMinus, std::move(a),
            std::move(b));
  return *this;
}
RowBuilder& RowBuilder::DeriveIntersect(std::string a, std::string b) {
  SetDerive(&row().name, NameEntry::Derive::kIntersect, std::move(a),
            std::move(b));
  return *this;
}
RowBuilder& RowBuilder::DeriveIndex(std::string src, int64_t i) {
  SetDerive(&row().name, NameEntry::Derive::kIndex, std::move(src), "", i);
  return *this;
}
RowBuilder& RowBuilder::DeriveSlice(std::string src, int64_t i, int64_t j) {
  SetDerive(&row().name, NameEntry::Derive::kSlice, std::move(src), "", i, j);
  return *this;
}
RowBuilder& RowBuilder::DeriveRange(std::string src) {
  SetDerive(&row().name, NameEntry::Derive::kRange, std::move(src));
  return *this;
}
RowBuilder& RowBuilder::DeriveOrder(std::string src) {
  SetDerive(&row().name, NameEntry::Derive::kOrder, std::move(src));
  return *this;
}

AxisEntry RowBuilder::MakeDeclare(std::string var,
                                  std::vector<std::string> attrs) {
  AxisEntry e;
  e.kind = AxisEntry::Kind::kDeclare;
  e.var = std::move(var);
  for (std::string& a : attrs) {
    e.set.push_back(AxisValue::Single(std::move(a)));
  }
  return e;
}

RowBuilder& RowBuilder::X(std::string attr) {
  row().x.kind = AxisEntry::Kind::kLiteral;
  row().x.literal = AxisValue::Single(std::move(attr));
  return *this;
}
RowBuilder& RowBuilder::XComposed(std::vector<std::string> attrs,
                                  AxisValue::Compose c) {
  if (attrs.size() < 2) return Fail("composed axis needs >= 2 attributes");
  row().x.kind = AxisEntry::Kind::kLiteral;
  row().x.literal = {std::move(attrs), c};
  return *this;
}
RowBuilder& RowBuilder::XDeclare(std::string var,
                                 std::vector<std::string> attrs) {
  if (attrs.empty()) return Fail("axis declaration needs attributes");
  row().x = MakeDeclare(std::move(var), std::move(attrs));
  return *this;
}
RowBuilder& RowBuilder::XDeclareNamed(std::string var, std::string set_name) {
  row().x.kind = AxisEntry::Kind::kDeclare;
  row().x.var = std::move(var);
  row().x.named_set = std::move(set_name);
  return *this;
}
RowBuilder& RowBuilder::XReuse(std::string var) {
  row().x.kind = AxisEntry::Kind::kReuse;
  row().x.var = std::move(var);
  return *this;
}
RowBuilder& RowBuilder::XDerived(std::string var) {
  row().x.kind = AxisEntry::Kind::kDerived;
  row().x.var = std::move(var);
  return *this;
}
RowBuilder& RowBuilder::XOrderBy(std::string var) {
  row().x.kind = AxisEntry::Kind::kOrderBy;
  row().x.var = std::move(var);
  return *this;
}

RowBuilder& RowBuilder::Y(std::string attr) {
  row().y.kind = AxisEntry::Kind::kLiteral;
  row().y.literal = AxisValue::Single(std::move(attr));
  return *this;
}
RowBuilder& RowBuilder::YComposed(std::vector<std::string> attrs,
                                  AxisValue::Compose c) {
  if (attrs.size() < 2) return Fail("composed axis needs >= 2 attributes");
  row().y.kind = AxisEntry::Kind::kLiteral;
  row().y.literal = {std::move(attrs), c};
  return *this;
}
RowBuilder& RowBuilder::YDeclare(std::string var,
                                 std::vector<std::string> attrs) {
  if (attrs.empty()) return Fail("axis declaration needs attributes");
  row().y = MakeDeclare(std::move(var), std::move(attrs));
  return *this;
}
RowBuilder& RowBuilder::YDeclareNamed(std::string var, std::string set_name) {
  row().y.kind = AxisEntry::Kind::kDeclare;
  row().y.var = std::move(var);
  row().y.named_set = std::move(set_name);
  return *this;
}
RowBuilder& RowBuilder::YReuse(std::string var) {
  row().y.kind = AxisEntry::Kind::kReuse;
  row().y.var = std::move(var);
  return *this;
}
RowBuilder& RowBuilder::YDerived(std::string var) {
  row().y.kind = AxisEntry::Kind::kDerived;
  row().y.var = std::move(var);
  return *this;
}
RowBuilder& RowBuilder::YOrderBy(std::string var) {
  row().y.kind = AxisEntry::Kind::kOrderBy;
  row().y.var = std::move(var);
  return *this;
}

RowBuilder& RowBuilder::Z(std::string attr, Value value) {
  ZEntry e;
  e.kind = ZEntry::Kind::kLiteral;
  e.literal = {std::move(attr), std::move(value)};
  row().zs.push_back(std::move(e));
  return *this;
}
RowBuilder& RowBuilder::ZDeclare(std::string var, ZSet set) {
  if (set.expr() == nullptr) return Fail("Z declaration needs a set");
  ZEntry e;
  e.kind = ZEntry::Kind::kDeclare;
  e.vars = {std::move(var)};
  e.set = set.expr();
  row().zs.push_back(std::move(e));
  return *this;
}
RowBuilder& RowBuilder::ZDeclare(std::string attr_var, std::string value_var,
                                 ZSet set) {
  if (set.expr() == nullptr) return Fail("Z declaration needs a set");
  ZEntry e;
  e.kind = ZEntry::Kind::kDeclare;
  e.vars = {std::move(attr_var), std::move(value_var)};
  e.set = set.expr();
  row().zs.push_back(std::move(e));
  return *this;
}
RowBuilder& RowBuilder::ZReuse(std::string var) {
  ZEntry e;
  e.kind = ZEntry::Kind::kReuse;
  e.vars = {std::move(var)};
  row().zs.push_back(std::move(e));
  return *this;
}
RowBuilder& RowBuilder::ZDerived(std::string var, std::string attr) {
  ZEntry e;
  e.kind = ZEntry::Kind::kDerived;
  e.vars = {std::move(var)};
  e.derived_attr = std::move(attr);
  row().zs.push_back(std::move(e));
  return *this;
}
RowBuilder& RowBuilder::ZOrderBy(std::string var) {
  ZEntry e;
  e.kind = ZEntry::Kind::kOrderBy;
  e.vars = {std::move(var)};
  row().zs.push_back(std::move(e));
  return *this;
}

RowBuilder& RowBuilder::Where(std::string constraints) {
  row().constraints = Trim(constraints);
  return *this;
}

RowBuilder& RowBuilder::Viz(VizSpec spec) {
  row().viz.kind = VizEntry::Kind::kLiteral;
  row().viz.literal = spec;
  return *this;
}
RowBuilder& RowBuilder::Viz(const std::string& spec_text) {
  Result<VizSpec> spec = ParseVizSpec(spec_text);
  if (!spec.ok()) {
    owner_->RecordError(spec.status());
    return *this;
  }
  return Viz(std::move(spec).value());
}
RowBuilder& RowBuilder::VizDeclare(std::string var, std::vector<VizSpec> set) {
  if (set.empty()) return Fail("viz declaration needs at least one spec");
  row().viz.kind = VizEntry::Kind::kDeclare;
  row().viz.var = std::move(var);
  row().viz.set = std::move(set);
  return *this;
}
RowBuilder& RowBuilder::VizReuse(std::string var) {
  row().viz.kind = VizEntry::Kind::kReuse;
  row().viz.var = std::move(var);
  return *this;
}

RowBuilder& RowBuilder::Process(const ProcessBuilder& process) {
  Result<ProcessDecl> decl = process.BuildDecl();
  if (!decl.ok()) {
    owner_->RecordError(decl.status());
    return *this;
  }
  row().processes.push_back(std::move(decl).value());
  return *this;
}

RowBuilder& RowBuilder::Row(std::string name) {
  return owner_->Row(std::move(name));
}

Result<ZqlQuery> RowBuilder::Build() const { return owner_->Build(); }

// ---------------------------------------------------------------------------
// ZqlBuilder
// ---------------------------------------------------------------------------

ZqlBuilder::ZqlBuilder() = default;
ZqlBuilder::~ZqlBuilder() = default;

RowBuilder& ZqlBuilder::Row(std::string name) {
  ZqlRow row;
  row.name.name = std::move(name);
  row.line = static_cast<int>(query_.rows.size()) + 1;
  query_.rows.push_back(std::move(row));
  row_builders_.push_back(std::unique_ptr<RowBuilder>(
      new RowBuilder(this, query_.rows.size() - 1)));
  return *row_builders_.back();
}

void ZqlBuilder::RecordError(Status status) {
  if (error_.ok()) error_ = std::move(status);
}

namespace {

/// The ZQL lexer has no escape syntax: a single quote inside an attribute
/// or string value cannot be serialized into canonical text, so such a
/// query would be unparseable on the wire — or worse, collide with a
/// structurally different query's fingerprint. Reject at Build().
Status CheckQuotable(const std::string& s, const char* what) {
  if (s.find('\'') != std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("%s contains a single quote (not representable in ZQL "
                  "text): %s",
                  what, s.c_str()));
  }
  return Status::OK();
}

Status CheckValue(const Value& v, const char* what) {
  if (v.is_string()) return CheckQuotable(v.AsString(), what);
  return Status::OK();
}

Status CheckZSetExpr(const ZSetExpr& e) {
  for (const std::string& n : e.attr.names) {
    ZV_RETURN_NOT_OK(CheckQuotable(n, "Z set attribute"));
  }
  for (const Value& v : e.value.values) {
    ZV_RETURN_NOT_OK(CheckValue(v, "Z set value"));
  }
  if (e.lhs != nullptr) ZV_RETURN_NOT_OK(CheckZSetExpr(*e.lhs));
  if (e.rhs != nullptr) ZV_RETURN_NOT_OK(CheckZSetExpr(*e.rhs));
  return Status::OK();
}

Status CheckAxisEntry(const AxisEntry& e) {
  for (const std::string& a : e.literal.attrs) {
    ZV_RETURN_NOT_OK(CheckQuotable(a, "axis attribute"));
  }
  for (const AxisValue& v : e.set) {
    for (const std::string& a : v.attrs) {
      ZV_RETURN_NOT_OK(CheckQuotable(a, "axis attribute"));
    }
  }
  return Status::OK();
}

Status CheckRowQuotable(const ZqlRow& row) {
  ZV_RETURN_NOT_OK(CheckAxisEntry(row.x));
  ZV_RETURN_NOT_OK(CheckAxisEntry(row.y));
  for (const ZEntry& z : row.zs) {
    ZV_RETURN_NOT_OK(CheckQuotable(z.literal.attr, "Z attribute"));
    ZV_RETURN_NOT_OK(CheckValue(z.literal.value, "Z value"));
    ZV_RETURN_NOT_OK(CheckQuotable(z.derived_attr, "Z attribute"));
    if (z.set != nullptr) ZV_RETURN_NOT_OK(CheckZSetExpr(*z.set));
  }
  return Status::OK();
}

}  // namespace

Result<ZqlQuery> ZqlBuilder::Build() const {
  ZV_RETURN_NOT_OK(error_);
  if (query_.rows.empty()) {
    return Status::InvalidArgument("query has no rows");
  }
  for (const ZqlRow& row : query_.rows) {
    if (row.name.name.empty()) {
      return Status::InvalidArgument("row with empty component name");
    }
    ZV_RETURN_NOT_OK(CheckRowQuotable(row));
  }
  return query_;
}

}  // namespace zv::zql
