/// \file explain.h
/// \brief Query analysis without execution: the dependency structure the
/// Inter-Task optimizer exploits, rendered as the paper's Figure-5.1 query
/// tree, plus the wavefront schedule it induces.

#ifndef ZV_ZQL_EXPLAIN_H_
#define ZV_ZQL_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "zql/ast.h"

namespace zv::zql {

/// \brief Static analysis of one ZQL query.
struct QueryPlan {
  struct RowInfo {
    std::string name;
    bool has_task = false;
    bool derived = false;
    bool user_input = false;
    /// Variables this row's visual component consumes / produces.
    std::vector<std::string> consumes_vars;
    std::vector<std::string> declares_vars;
    /// Variables produced by this row's tasks.
    std::vector<std::string> task_outputs;
    /// One note per Process declaration describing how the default task
    /// library will score it: batch ScoringContext vs. serial per-pair
    /// calls, and whether the top-k pruned scan applies (argmin[k=n] over
    /// a bare D(f, g)). A custom TaskLibrary downgrades batch paths to
    /// per-pair at run time; EXPLAIN reports the default-library plan.
    std::vector<std::string> task_scoring;
    /// Components referenced (by tasks or derivations).
    std::vector<std::string> consumes_components;
    /// Inter-Task wave this row's fetch lands in (0-based).
    int wave = 0;
  };
  std::vector<RowInfo> rows;
  int num_waves = 0;

  /// Figure-5.1-style rendering: one line per node with its parents, e.g.
  ///   f2 [wave 0] <- v1
  ///   t1(f1) -> v2
  std::string ToString() const;
};

/// Analyzes dependencies and computes the Inter-Task wavefront schedule.
/// Pure: consults no data, so Z-set cardinalities are unknown — only the
/// dependency structure is reported.
Result<QueryPlan> ExplainQuery(const ZqlQuery& query);

/// One-line description of how the default task library will score a
/// Process declaration (batch ScoringContext scan / top-k pruned / serial
/// user function / R k-means) plus its context-cacheability verdict.
/// Shared EXPLAIN vocabulary: QueryPlan task annotations and the physical
/// plan's ScoreOp lines (zql/plan.h) both use it.
std::string DescribeTaskScoring(const ProcessDecl& decl);

}  // namespace zv::zql

#endif  // ZV_ZQL_EXPLAIN_H_
