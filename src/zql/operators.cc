#include "zql/operators.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <set>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "sql/parser.h"
#include "tasks/context_pool.h"
#include "tasks/topk.h"
#include "viz/binning.h"

namespace zv::zql::exec {

namespace {

/// One slot of a row plan: either a fixed value or (domain, tuple position).
struct Slot {
  bool used = false;
  bool fixed = false;
  VarValue value;  // fixed
  std::shared_ptr<VarDomain> domain;
  int pos = -1;  // position of the variable inside the domain tuple
};

std::string JoinKey(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& p : parts) {
    out += p;
    out += '\x1f';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Set evaluation
// ---------------------------------------------------------------------------

Result<std::vector<std::string>> AttrsOf(const AttrSpec& spec,
                                         const ExecState& st) {
  switch (spec.kind) {
    case AttrSpec::Kind::kLiteral:
    case AttrSpec::Kind::kList:
      return spec.names;
    case AttrSpec::Kind::kAll:
    case AttrSpec::Kind::kAllExcept: {
      std::vector<std::string> out;
      for (const ColumnDef& c : st.table->schema().columns()) {
        if (c.type != ColumnType::kCategorical) continue;
        bool excluded = false;
        for (const std::string& e : spec.names) excluded |= e == c.name;
        if (!excluded) out.push_back(c.name);
      }
      return out;
    }
  }
  return Status::Internal("bad attr spec");
}

Result<std::vector<Value>> ValuesOfAttr(const std::string& attr,
                                        const ValueSpec& spec,
                                        const ExecState& st) {
  if (spec.kind == ValueSpec::Kind::kLiteral ||
      spec.kind == ValueSpec::Kind::kList) {
    return spec.values;
  }
  const int col = st.table->schema().Find(attr);
  if (col < 0) return Status::NotFound("unknown Z attribute: " + attr);
  if (st.table->column_type(static_cast<size_t>(col)) !=
      ColumnType::kCategorical) {
    return Status::Unsupported(
        "Z iteration over non-categorical attribute: " + attr);
  }
  std::vector<Value> out;
  const size_t c = static_cast<size_t>(col);
  for (size_t code = 0; code < st.table->DictSize(c); ++code) {
    const Value& v = st.table->DictValue(c, static_cast<int32_t>(code));
    if (spec.kind == ValueSpec::Kind::kAllExcept) {
      bool excluded = false;
      for (const Value& e : spec.values) excluded |= e == v;
      if (excluded) continue;
    }
    out.push_back(v);
  }
  return out;
}

std::vector<ZValue> DedupZ(const std::vector<ZValue>& in) {
  std::vector<ZValue> out;
  for (const ZValue& z : in) {
    if (std::find(out.begin(), out.end(), z) == out.end()) out.push_back(z);
  }
  return out;
}

Result<std::vector<ZValue>> EvalZSet(const ZSetExpr& e, const ExecState& st) {
  switch (e.kind) {
    case ZSetExpr::Kind::kAttrDotValue: {
      std::vector<ZValue> out;
      ZV_ASSIGN_OR_RETURN(std::vector<std::string> attrs,
                          AttrsOf(e.attr, st));
      for (const std::string& attr : attrs) {
        ZV_ASSIGN_OR_RETURN(std::vector<Value> values,
                            ValuesOfAttr(attr, e.value, st));
        for (Value& v : values) out.push_back({attr, std::move(v)});
      }
      return out;
    }
    case ZSetExpr::Kind::kVarRange: {
      auto it = st.vars.find(e.var);
      if (it == st.vars.end()) {
        return Status::NotFound("unknown variable: " + e.var + ".range");
      }
      const VarDomain& d = *it->second;
      const int pos = d.PosOf(e.var);
      std::vector<ZValue> out;
      for (const auto& tuple : d.tuples) {
        const VarValue& v = tuple[static_cast<size_t>(pos)];
        if (!std::holds_alternative<ZValue>(v)) {
          return Status::TypeMismatch(e.var +
                                      ".range used on a non-Z variable");
        }
        out.push_back(std::get<ZValue>(v));
      }
      return DedupZ(out);
    }
    case ZSetExpr::Kind::kNamedSet: {
      auto it = st.opts->named_sets.value_sets.find(e.var);
      if (it == st.opts->named_sets.value_sets.end()) {
        return Status::NotFound("unknown named set: " + e.var);
      }
      std::vector<ZValue> out;
      for (const Value& v : it->second.values) {
        out.push_back({it->second.attr, v});
      }
      return out;
    }
    case ZSetExpr::Kind::kOp: {
      ZV_ASSIGN_OR_RETURN(std::vector<ZValue> lhs, EvalZSet(*e.lhs, st));
      ZV_ASSIGN_OR_RETURN(std::vector<ZValue> rhs, EvalZSet(*e.rhs, st));
      std::vector<ZValue> out;
      if (e.op == '|') {
        out = lhs;
        for (const ZValue& z : rhs) {
          if (std::find(out.begin(), out.end(), z) == out.end()) {
            out.push_back(z);
          }
        }
      } else if (e.op == '&') {
        for (const ZValue& z : lhs) {
          if (std::find(rhs.begin(), rhs.end(), z) != rhs.end()) {
            out.push_back(z);
          }
        }
        out = DedupZ(out);
      } else {  // '\'
        for (const ZValue& z : lhs) {
          if (std::find(rhs.begin(), rhs.end(), z) == rhs.end()) {
            out.push_back(z);
          }
        }
        out = DedupZ(out);
      }
      return out;
    }
  }
  return Status::Internal("bad Z set expression");
}

// ---------------------------------------------------------------------------
// Slot resolution
// ---------------------------------------------------------------------------

std::shared_ptr<VarDomain> RegisterDomain(
    const std::vector<std::string>& names,
    std::vector<std::vector<VarValue>> tuples, ExecState* st) {
  auto dom = std::make_shared<VarDomain>();
  dom->names = names;
  dom->tuples = std::move(tuples);
  for (const std::string& n : names) st->vars[n] = dom;
  return dom;
}

Result<Slot> ResolveAxisEntry(const AxisEntry& e, ExecState* st) {
  Slot slot;
  switch (e.kind) {
    case AxisEntry::Kind::kNone:
    case AxisEntry::Kind::kOrderBy:
      return slot;
    case AxisEntry::Kind::kLiteral:
      slot.used = true;
      slot.fixed = true;
      slot.value = e.literal;
      return slot;
    case AxisEntry::Kind::kDeclare: {
      std::vector<AxisValue> set = e.set;
      if (!e.named_set.empty()) {
        auto it = st->opts->named_sets.attr_sets.find(e.named_set);
        if (it == st->opts->named_sets.attr_sets.end()) {
          return Status::NotFound("unknown named attribute set: " +
                                  e.named_set);
        }
        for (const std::string& a : it->second) {
          set.push_back(AxisValue::Single(a));
        }
      }
      if (set.empty()) {
        return Status::InvalidArgument("empty axis set for " + e.var);
      }
      std::vector<std::vector<VarValue>> tuples;
      for (AxisValue& v : set) tuples.push_back({VarValue(std::move(v))});
      slot.used = true;
      slot.domain = RegisterDomain({e.var}, std::move(tuples), st);
      slot.pos = 0;
      return slot;
    }
    case AxisEntry::Kind::kReuse: {
      auto it = st->vars.find(e.var);
      if (it == st->vars.end()) {
        return Status::NotFound("unknown axis variable: " + e.var);
      }
      slot.used = true;
      slot.domain = it->second;
      slot.pos = slot.domain->PosOf(e.var);
      return slot;
    }
    case AxisEntry::Kind::kDerived:
      return Status::InvalidArgument(
          "derived binding (<- _) requires a derived component row");
  }
  return slot;
}

Result<Slot> ResolveZEntry(const ZEntry& e, ExecState* st) {
  Slot slot;
  switch (e.kind) {
    case ZEntry::Kind::kNone:
    case ZEntry::Kind::kOrderBy:
      return slot;
    case ZEntry::Kind::kLiteral:
      slot.used = true;
      slot.fixed = true;
      slot.value = e.literal;
      return slot;
    case ZEntry::Kind::kDeclare: {
      ZV_ASSIGN_OR_RETURN(std::vector<ZValue> zset, EvalZSet(*e.set, *st));
      // z1.v1 declarations bind the attribute to z1 and the value pair to
      // v1; single declarations bind the pair to the variable.
      std::vector<std::vector<VarValue>> tuples;
      for (ZValue& z : zset) {
        std::vector<VarValue> tuple;
        if (e.vars.size() == 2) {
          tuple.push_back(VarValue(AxisValue::Single(z.attr)));
        }
        tuple.push_back(VarValue(std::move(z)));
        tuples.push_back(std::move(tuple));
      }
      if (tuples.empty()) {
        return Status::InvalidArgument("empty Z set for " +
                                       Join(e.vars, "."));
      }
      slot.used = true;
      slot.domain = RegisterDomain(e.vars, std::move(tuples), st);
      slot.pos = static_cast<int>(e.vars.size()) - 1;
      return slot;
    }
    case ZEntry::Kind::kReuse: {
      auto it = st->vars.find(e.vars[0]);
      if (it == st->vars.end()) {
        return Status::NotFound("unknown Z variable: " + e.vars[0]);
      }
      slot.used = true;
      slot.domain = it->second;
      slot.pos = slot.domain->PosOf(e.vars[0]);
      return slot;
    }
    case ZEntry::Kind::kDerived:
      return Status::InvalidArgument(
          "derived binding (<- _) requires a derived component row");
  }
  return slot;
}

Result<Slot> ResolveVizEntry(const VizEntry& e, ExecState* st) {
  Slot slot;
  switch (e.kind) {
    case VizEntry::Kind::kNone:
      return slot;
    case VizEntry::Kind::kLiteral:
      slot.used = true;
      slot.fixed = true;
      slot.value = e.literal;
      return slot;
    case VizEntry::Kind::kDeclare: {
      std::vector<std::vector<VarValue>> tuples;
      for (const VizSpec& s : e.set) tuples.push_back({VarValue(s)});
      if (tuples.empty()) {
        return Status::InvalidArgument("empty viz set for " + e.var);
      }
      slot.used = true;
      slot.domain = RegisterDomain({e.var}, std::move(tuples), st);
      slot.pos = 0;
      return slot;
    }
    case VizEntry::Kind::kReuse: {
      auto it = st->vars.find(e.var);
      if (it == st->vars.end()) {
        return Status::NotFound("unknown viz variable: " + e.var);
      }
      slot.used = true;
      slot.domain = it->second;
      slot.pos = slot.domain->PosOf(e.var);
      return slot;
    }
  }
  return slot;
}

/// Substitutes `v.range` occurrences in constraints text with literal
/// value lists, e.g. `product IN (v2.range)` -> `product IN ('a', 'b')`.
Result<std::string> SubstituteRanges(const std::string& text,
                                     const ExecState& st) {
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    // Find next ident.range.
    size_t best = std::string::npos, best_start = 0;
    for (size_t j = i; j + 6 <= text.size(); ++j) {
      if (text.compare(j, 6, ".range") != 0) continue;
      size_t start = j;
      while (start > i && (std::isalnum(static_cast<unsigned char>(
                               text[start - 1])) ||
                           text[start - 1] == '_')) {
        --start;
      }
      if (start < j) {
        best = j;
        best_start = start;
        break;
      }
    }
    if (best == std::string::npos) {
      out += text.substr(i);
      break;
    }
    out += text.substr(i, best_start - i);
    const std::string var = text.substr(best_start, best - best_start);
    auto it = st.vars.find(var);
    if (it == st.vars.end()) {
      return Status::NotFound("unknown variable in constraints: " + var);
    }
    const VarDomain& d = *it->second;
    const int pos = d.PosOf(var);
    std::vector<std::string> rendered;
    std::set<std::string> seen;
    for (const auto& tuple : d.tuples) {
      const VarValue& v = tuple[static_cast<size_t>(pos)];
      if (!std::holds_alternative<ZValue>(v)) {
        return Status::TypeMismatch(var + ".range is not a value set");
      }
      const Value& val = std::get<ZValue>(v).value;
      std::string lit =
          val.is_string() ? "'" + val.AsString() + "'" : val.ToString();
      if (seen.insert(lit).second) rendered.push_back(std::move(lit));
    }
    out += Join(rendered, ", ");
    i = best + 6;
  }
  return out;
}

/// Applies rules-of-thumb defaults to a viz spec (§3.5).
Status ResolveSpecDefaults(const AxisValue& xv, const AxisValue& yv,
                           VizSpec* spec, const ExecState& st) {
  const int xc = st.table->schema().Find(xv.attrs[0]);
  const int yc = st.table->schema().Find(yv.attrs[0]);
  if (xc < 0) return Status::NotFound("unknown X attribute: " + xv.attrs[0]);
  if (yc < 0) return Status::NotFound("unknown Y attribute: " + yv.attrs[0]);
  const VizSpec def =
      DefaultVizSpec(st.table->column_type(static_cast<size_t>(xc)),
                     st.table->column_type(static_cast<size_t>(yc)));
  if (spec->chart == ChartType::kAuto) {
    spec->chart = def.chart;
    if (spec->y_agg == sql::AggFunc::kNone) spec->y_agg = def.y_agg;
  } else if (spec->y_agg == sql::AggFunc::kNone &&
             (spec->chart == ChartType::kBar ||
              spec->chart == ChartType::kLine ||
              spec->chart == ChartType::kDotPlot)) {
    spec->y_agg = def.y_agg;
  }
  // Binned x axes keep their y_agg: it applies per bin — engine-side when
  // the binning pushdown is active (BuildStatement), else in
  // viz/binning.cc over the raw fetch.
  return Status::OK();
}

Status BuildStatement(PendingFetch* pf, const std::string& constraints,
                      const ExecState& st) {
  sql::SelectStatement& stmt = pf->stmt;
  stmt.table = st.table_name;
  const bool binned = pf->spec.x_bin > 0;
  // Binning pushdown: a binned single-attribute numeric x axis can group
  // in the engine — GROUP BY the bin edge (SelectStatement::group_bins)
  // instead of fetching every raw row and re-aggregating client-side in
  // viz/binning.cc. Box charts always fetch raw (the five-number summary
  // needs every point), and categorical/composite x axes keep the client
  // binner, which knows how to skip non-numeric labels.
  bool push_bin = false;
  if (binned && st.opts->binning_pushdown &&
      pf->spec.chart != ChartType::kBox && pf->x_attrs.size() == 1) {
    const int xc = st.table->schema().Find(pf->x_attrs[0]);
    push_bin = xc >= 0 && st.table->column_type(static_cast<size_t>(xc)) !=
                              ColumnType::kCategorical;
  }
  pf->bin_pushed = push_bin;
  const bool aggregated = (pf->aggregated && !binned) || push_bin;
  // The client binner treats an unaggregated y as SUM-per-bin; the pushed
  // statement must aggregate the same way.
  const sql::AggFunc eff_agg =
      push_bin && pf->spec.y_agg == sql::AggFunc::kNone ? sql::AggFunc::kSum
                                                        : pf->spec.y_agg;

  for (const std::string& xa : pf->x_attrs) stmt.items.push_back({xa, {}});
  for (const std::string& za : pf->varying_z_attrs) {
    stmt.items.push_back({za, {}});
  }
  // Distinct y attributes across members.
  std::vector<std::string> y_attrs;
  for (const auto& m : pf->members) {
    for (const std::string& a : m.y.attrs) {
      if (std::find(y_attrs.begin(), y_attrs.end(), a) == y_attrs.end()) {
        y_attrs.push_back(a);
      }
    }
  }
  for (const std::string& ya : y_attrs) {
    sql::SelectItem item;
    item.column = ya;
    item.agg = aggregated ? eff_agg : sql::AggFunc::kNone;
    pf->y_columns[ya] = item.DisplayName();
    stmt.items.push_back(std::move(item));
  }

  // WHERE: fixed z slots, IN-lists for varying z, plus constraints.
  std::vector<std::unique_ptr<sql::Expr>> conj;
  for (const ZValue& z : pf->fixed_z) {
    conj.push_back(sql::Expr::Compare(z.attr, sql::CompareOp::kEq, z.value));
  }
  for (size_t vi = 0; vi < pf->varying_z_attrs.size(); ++vi) {
    conj.push_back(
        sql::Expr::In(pf->varying_z_attrs[vi], pf->varying_z_values[vi]));
  }
  if (!constraints.empty()) {
    ZV_ASSIGN_OR_RETURN(auto expr, sql::ParseWhereExpr(constraints));
    conj.push_back(std::move(expr));
  }
  if (!conj.empty()) stmt.where = sql::Expr::And(std::move(conj));

  if (aggregated) {
    for (const std::string& xa : pf->x_attrs) stmt.group_by.push_back(xa);
    for (const std::string& za : pf->varying_z_attrs) {
      stmt.group_by.push_back(za);
    }
    if (push_bin) {
      // Bin width for the x key (position 0); z keys group plainly.
      stmt.group_bins.assign(stmt.group_by.size(), 0);
      stmt.group_bins[0] = pf->spec.x_bin;
    }
  }
  for (const std::string& za : pf->varying_z_attrs) {
    stmt.order_by.push_back({za, false});
  }
  for (const std::string& xa : pf->x_attrs) {
    stmt.order_by.push_back({xa, false});
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// ExecState
// ---------------------------------------------------------------------------

Status ExecState::Init(
    Database* db_in, std::string table_name_in, const ZqlOptions& opts_in,
    const std::map<std::string, Visualization>& user_inputs_in) {
  db = db_in;
  table_name = std::move(table_name_in);
  opts = &opts_in;
  user_inputs = &user_inputs_in;
  ZV_ASSIGN_OR_RETURN(table, db->GetTable(table_name));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FetchOp
// ---------------------------------------------------------------------------

Status PlanRowFetches(const ZqlRow& row, size_t row_tag, ExecState* st,
                      std::vector<PendingFetch>* out) {
  if (st->comps.count(row.name.name)) {
    return Status::AlreadyExists(StrFormat(
        "line %d: component '%s' is defined twice", row.line,
        row.name.name.c_str()));
  }
  ZV_ASSIGN_OR_RETURN(Slot x, ResolveAxisEntry(row.x, st));
  ZV_ASSIGN_OR_RETURN(Slot y, ResolveAxisEntry(row.y, st));
  ZV_ASSIGN_OR_RETURN(Slot viz, ResolveVizEntry(row.viz, st));
  std::vector<Slot> zslots;
  for (const ZEntry& z : row.zs) {
    ZV_ASSIGN_OR_RETURN(Slot s, ResolveZEntry(z, st));
    zslots.push_back(std::move(s));
  }
  if (!x.used || !y.used) {
    return Status::InvalidArgument(StrFormat(
        "line %d: rows must specify X and Y", row.line));
  }
  ZV_ASSIGN_OR_RETURN(std::string constraints,
                      SubstituteRanges(row.constraints, *st));

  auto comp = std::make_shared<Component>();
  comp->name = row.name.name;

  // Collect unique domains in column order.
  std::vector<const Slot*> slots = {&x, &y};
  for (const Slot& s : zslots) slots.push_back(&s);
  slots.push_back(&viz);
  for (const Slot* s : slots) {
    if (!s->used || s->fixed) continue;
    if (std::find(comp->domains.begin(), comp->domains.end(), s->domain) ==
        comp->domains.end()) {
      comp->domains.push_back(s->domain);
    }
  }
  size_t total = 1;
  for (const auto& d : comp->domains) total *= d->size();
  comp->strides.assign(comp->domains.size(), 1);
  for (size_t i = comp->domains.size(); i-- > 1;) {
    comp->strides[i - 1] = comp->strides[i] * comp->domains[i]->size();
  }

  // Resolve a slot's value under a flattened position.
  auto slot_value = [&](const Slot& s, size_t p) -> VarValue {
    if (s.fixed) return s.value;
    size_t di = 0;
    for (; di < comp->domains.size(); ++di) {
      if (comp->domains[di] == s.domain) break;
    }
    const size_t idx = (p / comp->strides[di]) % s.domain->size();
    return s.domain->tuples[idx][static_cast<size_t>(s.pos)];
  };

  const bool no_opt = st->opts->optimization == OptLevel::kNoOpt;

  // Materialize visualization identities and build fetch groups.
  comp->visuals.resize(total);
  std::map<std::string, PendingFetch> groups;
  for (size_t p = 0; p < total; ++p) {
    const AxisValue xv = std::get<AxisValue>(slot_value(x, p));
    const AxisValue yv = std::get<AxisValue>(slot_value(y, p));
    VizSpec spec;
    if (viz.used) spec = std::get<VizSpec>(slot_value(viz, p));
    std::vector<ZValue> zvals;
    std::vector<bool> z_fixed;
    std::vector<size_t> z_slot_idx;
    for (size_t si = 0; si < zslots.size(); ++si) {
      const Slot& s = zslots[si];
      if (!s.used) continue;
      zvals.push_back(std::get<ZValue>(slot_value(s, p)));
      z_fixed.push_back(s.fixed || s.domain->size() == 1 || no_opt);
      z_slot_idx.push_back(si);
    }
    ZV_RETURN_NOT_OK(ResolveSpecDefaults(xv, yv, &spec, *st));

    Visualization& v = comp->visuals[p];
    v.x_attr = xv.Label();
    v.y_attr = yv.Label();
    v.constraints = constraints;
    v.spec = spec;
    for (const ZValue& z : zvals) v.slices.push_back({z.attr, z.value});
    for (const std::string& attr : yv.attrs) v.series.push_back({attr, {}});

    // Group key: everything except varying z values and the y attrs.
    std::vector<std::string> key_parts = {xv.Label(), spec.ToString()};
    std::vector<std::string> varying_z_attrs;
    std::vector<ZValue> fixed_z;
    std::vector<size_t> varying_slots;
    std::vector<std::string> z_key_parts;
    for (size_t zi = 0; zi < zvals.size(); ++zi) {
      if (z_fixed[zi]) {
        key_parts.push_back(zvals[zi].Label());
        fixed_z.push_back(zvals[zi]);
      } else {
        key_parts.push_back("?" + zvals[zi].attr);
        varying_z_attrs.push_back(zvals[zi].attr);
        varying_slots.push_back(z_slot_idx[zi]);
        z_key_parts.push_back(zvals[zi].value.ToString());
      }
    }
    if (no_opt) {
      key_parts.push_back(std::to_string(p));  // no batching at all
    }
    const std::string key = JoinKey(key_parts);
    auto [it, inserted] = groups.try_emplace(key);
    PendingFetch& pf = it->second;
    if (inserted) {
      pf.comp = comp;
      pf.spec = spec;
      pf.x_attrs = xv.attrs;
      pf.fixed_z = std::move(fixed_z);
      pf.varying_z_attrs = varying_z_attrs;
      pf.aggregated = spec.y_agg != sql::AggFunc::kNone;
      pf.row_tag = row_tag;
      for (size_t si : varying_slots) {
        const Slot& s = zslots[si];
        std::vector<Value> values;
        for (const auto& tuple : s.domain->tuples) {
          const Value& zval =
              std::get<ZValue>(tuple[static_cast<size_t>(s.pos)]).value;
          if (std::find(values.begin(), values.end(), zval) == values.end()) {
            values.push_back(zval);
          }
        }
        pf.varying_z_values.push_back(std::move(values));
      }
    }
    pf.members.push_back({p, JoinKey(z_key_parts), yv});
  }

  // Build one SQL statement per group.
  for (auto& [key, pf] : groups) {
    ZV_RETURN_NOT_OK(BuildStatement(&pf, constraints, *st));
    out->push_back(std::move(pf));
  }
  st->comps[comp->name] = comp;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MaterializeOp: routing
// ---------------------------------------------------------------------------

Status RouteFetch(const PendingFetch& pf, const ResultSet& rs, ExecState* st) {
  (void)st;
  // Column indices.
  std::vector<int> x_cols, z_cols;
  for (const std::string& xa : pf.x_attrs) x_cols.push_back(rs.Find(xa));
  for (const std::string& za : pf.varying_z_attrs) {
    z_cols.push_back(rs.Find(za));
  }
  std::map<std::string, int> y_cols;
  for (const auto& [attr, display] : pf.y_columns) {
    y_cols[attr] = rs.Find(display);
  }
  // Members grouped by z key.
  std::map<std::string, std::vector<const PendingFetch::Member*>> by_key;
  for (const auto& m : pf.members) by_key[m.z_key].push_back(&m);

  for (const auto& row : rs.rows) {
    std::vector<std::string> z_parts;
    for (int zc : z_cols) {
      z_parts.push_back(row[static_cast<size_t>(zc)].ToString());
    }
    auto it = by_key.find(JoinKey(z_parts));
    if (it == by_key.end()) continue;  // over-fetched combination
    // x value (composite labels joined with '|').
    Value xv;
    if (x_cols.size() == 1) {
      xv = row[static_cast<size_t>(x_cols[0])];
    } else {
      std::string label;
      for (size_t i = 0; i < x_cols.size(); ++i) {
        if (i) label += "|";
        label += row[static_cast<size_t>(x_cols[i])].ToString();
      }
      xv = Value::Str(label);
    }
    for (const PendingFetch::Member* m : it->second) {
      Visualization& viz = pf.comp->visuals[m->position];
      viz.xs.push_back(xv);
      for (size_t si = 0; si < m->y.attrs.size(); ++si) {
        const int yc = y_cols.at(m->y.attrs[si]);
        viz.series[si].ys.push_back(
            row[static_cast<size_t>(yc)].AsDouble());
      }
    }
  }
  // Client-side statistical transformations: bin(w) binning and box-plot
  // five-number summarization (both operate on raw fetched points).
  const bool client_bin = pf.spec.x_bin > 0 && !pf.bin_pushed;
  if (client_bin || pf.spec.chart == ChartType::kBox) {
    std::set<size_t> positions;
    for (const auto& m : pf.members) positions.insert(m.position);
    for (size_t p : positions) {
      Visualization& viz = pf.comp->visuals[p];
      if (client_bin) viz = BinVisualization(viz);
      if (pf.spec.chart == ChartType::kBox && !pf.aggregated) {
        viz = BoxPlotSummarize(viz);
      }
    }
  }
  return Status::OK();
}

void MarkReady(const ZqlRow& row, ExecState* st) {
  auto it = st->comps.find(row.name.name);
  if (it != st->comps.end()) it->second->ready = true;
}

// ---------------------------------------------------------------------------
// MaterializeOp: user-input + derived components (§3.6)
// ---------------------------------------------------------------------------

namespace {

Result<Component*> GetReadyComp(const std::string& name, int line,
                                ExecState* st) {
  auto it = st->comps.find(name);
  if (it == st->comps.end() || !it->second->ready) {
    return Status::NotFound(StrFormat(
        "line %d: component '%s' is not available", line, name.c_str()));
  }
  return it->second.get();
}

Status BuildOrdered(const ZqlRow& row, Component* source, Component* out,
                    ExecState* st) {
  // Collect ordering variables (entries suffixed with ->).
  std::vector<std::string> order_vars;
  auto collect_axis = [&order_vars](const AxisEntry& e) {
    if (e.kind == AxisEntry::Kind::kOrderBy) order_vars.push_back(e.var);
  };
  collect_axis(row.x);
  collect_axis(row.y);
  for (const ZEntry& z : row.zs) {
    if (z.kind == ZEntry::Kind::kOrderBy) order_vars.push_back(z.vars[0]);
  }
  if (order_vars.empty()) {
    return Status::InvalidArgument(StrFormat(
        "line %d: .order requires ordering variables (v ->)", row.line));
  }
  // All ordering vars must come from a single domain (declared together).
  std::shared_ptr<VarDomain> dom;
  for (const std::string& v : order_vars) {
    auto it = st->vars.find(v);
    if (it == st->vars.end()) {
      return Status::NotFound("unknown ordering variable: " + v);
    }
    if (dom && dom != it->second) {
      return Status::Unsupported(
          "ordering variables must be declared together");
    }
    dom = it->second;
  }
  // Match each ordered tuple to source visualizations.
  auto matches = [&](const Visualization& v,
                     const std::vector<VarValue>& tuple) {
    for (const std::string& var : order_vars) {
      const VarValue& want = tuple[static_cast<size_t>(dom->PosOf(var))];
      bool ok = false;
      if (std::holds_alternative<AxisValue>(want)) {
        const std::string label = std::get<AxisValue>(want).Label();
        ok = v.x_attr == label || v.y_attr == label;
      } else if (std::holds_alternative<ZValue>(want)) {
        const ZValue& z = std::get<ZValue>(want);
        for (const Slice& s : v.slices) {
          if (s.attribute == z.attr && s.value == z.value) {
            ok = true;
            break;
          }
        }
      } else {
        ok = v.spec == std::get<VizSpec>(want);
      }
      if (!ok) return false;
    }
    return true;
  };
  size_t matched_per_tuple = 0;
  bool uniform = true;
  for (const auto& tuple : dom->tuples) {
    size_t count = 0;
    for (const Visualization& v : source->visuals) {
      if (matches(v, tuple)) {
        out->visuals.push_back(v);
        ++count;
      }
    }
    if (matched_per_tuple == 0) matched_per_tuple = count;
    uniform &= count == matched_per_tuple;
  }
  // When the ordering is 1:1 the ordered component inherits the ordering
  // domain, so later rows can iterate it in sync.
  if (uniform && matched_per_tuple == 1 &&
      out->visuals.size() == dom->size()) {
    out->domains = {dom};
    out->strides = {1};
  }
  return Status::OK();
}

Status BuildDerived(const ZqlRow& row, ExecState* st) {
  const NameEntry& n = row.name;
  auto comp = std::make_shared<Component>();
  comp->name = n.name;

  ZV_ASSIGN_OR_RETURN(Component * a, GetReadyComp(n.source_a, row.line, st));
  Component* b = nullptr;
  if (!n.source_b.empty()) {
    ZV_ASSIGN_OR_RETURN(b, GetReadyComp(n.source_b, row.line, st));
  }

  auto contains = [](const std::vector<Visualization>& set,
                     const Visualization& v) {
    for (const auto& u : set) {
      if (u.SameSourceAs(v)) return true;
    }
    return false;
  };

  switch (n.derive) {
    case NameEntry::Derive::kPlus:
      comp->visuals = a->visuals;
      comp->visuals.insert(comp->visuals.end(), b->visuals.begin(),
                           b->visuals.end());
      break;
    case NameEntry::Derive::kMinus:
      for (const auto& v : a->visuals) {
        if (!contains(b->visuals, v)) comp->visuals.push_back(v);
      }
      break;
    case NameEntry::Derive::kIntersect:
      for (const auto& v : a->visuals) {
        if (contains(b->visuals, v)) comp->visuals.push_back(v);
      }
      break;
    case NameEntry::Derive::kIndex: {
      const int64_t i = n.index_a;
      if (i < 1 || static_cast<size_t>(i) > a->visuals.size()) {
        return Status::OutOfRange(StrFormat(
            "line %d: index %lld out of range", row.line,
            static_cast<long long>(i)));
      }
      comp->visuals = {a->visuals[static_cast<size_t>(i - 1)]};
      break;
    }
    case NameEntry::Derive::kSlice: {
      int64_t lo = std::max<int64_t>(1, n.index_a);
      int64_t hi = std::min<int64_t>(
          static_cast<int64_t>(a->visuals.size()), n.index_b);
      for (int64_t i = lo; i <= hi; ++i) {
        comp->visuals.push_back(a->visuals[static_cast<size_t>(i - 1)]);
      }
      break;
    }
    case NameEntry::Derive::kRange:
      for (const auto& v : a->visuals) {
        if (!contains(comp->visuals, v)) comp->visuals.push_back(v);
      }
      break;
    case NameEntry::Derive::kOrder: {
      ZV_RETURN_NOT_OK(BuildOrdered(row, a, comp.get(), st));
      break;
    }
    case NameEntry::Derive::kNone:
      return Status::Internal("BuildDerived on non-derived row");
  }

  // Derived variable bindings (§3.6): the axis columns may declare
  // variables that iterate over the derived component's visualizations.
  std::vector<std::string> derived_names;
  struct Proj {
    enum class Kind { kX, kY, kZ } kind;
    std::string attr;  // kZ: fixed attribute ('' = first slice)
  };
  std::vector<Proj> projs;
  if (row.x.kind == AxisEntry::Kind::kDerived) {
    derived_names.push_back(row.x.var);
    projs.push_back({Proj::Kind::kX, ""});
  }
  if (row.y.kind == AxisEntry::Kind::kDerived) {
    derived_names.push_back(row.y.var);
    projs.push_back({Proj::Kind::kY, ""});
  }
  for (const ZEntry& z : row.zs) {
    if (z.kind != ZEntry::Kind::kDerived) continue;
    derived_names.push_back(z.vars[0]);
    projs.push_back({Proj::Kind::kZ, z.derived_attr});
  }
  if (!derived_names.empty()) {
    std::vector<std::vector<VarValue>> tuples;
    for (const Visualization& v : comp->visuals) {
      std::vector<VarValue> tuple;
      for (const Proj& proj : projs) {
        switch (proj.kind) {
          case Proj::Kind::kX:
            tuple.push_back(VarValue(AxisValue::Single(v.x_attr)));
            break;
          case Proj::Kind::kY:
            tuple.push_back(VarValue(AxisValue::Single(v.y_attr)));
            break;
          case Proj::Kind::kZ: {
            const Slice* found = nullptr;
            for (const Slice& s : v.slices) {
              if (proj.attr.empty() || s.attribute == proj.attr) {
                found = &s;
                break;
              }
            }
            if (found == nullptr) {
              return Status::NotFound(StrFormat(
                  "line %d: derived Z binding: no slice on '%s'", row.line,
                  proj.attr.c_str()));
            }
            tuple.push_back(VarValue(ZValue{found->attribute, found->value}));
            break;
          }
        }
      }
      tuples.push_back(std::move(tuple));
    }
    comp->domains = {RegisterDomain(derived_names, std::move(tuples), st)};
    comp->strides = {1};
  }
  st->comps[comp->name] = comp;
  return Status::OK();
}

}  // namespace

Status MaterializeLocal(const ZqlRow& row, ExecState* st) {
  if (st->comps.count(row.name.name)) {
    return Status::AlreadyExists(StrFormat(
        "line %d: component '%s' is defined twice", row.line,
        row.name.name.c_str()));
  }
  if (row.name.user_input) {
    auto it = st->user_inputs->find(row.name.name);
    if (it == st->user_inputs->end()) {
      return Status::NotFound(StrFormat(
          "line %d: no user input registered for -%s", row.line,
          row.name.name.c_str()));
    }
    auto comp = std::make_shared<Component>();
    comp->name = row.name.name;
    comp->visuals = {it->second};
    st->comps[comp->name] = comp;
    return Status::OK();
  }
  return BuildDerived(row, st);
}

// ---------------------------------------------------------------------------
// ScoreOp / ReduceOp (§3.8)
// ---------------------------------------------------------------------------

namespace {

using Env = std::map<const VarDomain*, size_t>;

Result<const Visualization*> ResolveVisual(const std::string& comp_name,
                                           const Env& env, ExecState* st) {
  auto it = st->comps.find(comp_name);
  if (it == st->comps.end() || !it->second->ready) {
    return Status::NotFound("component not available in process: " +
                            comp_name);
  }
  const Component& c = *it->second;
  if (c.visuals.empty()) {
    return Status::InvalidArgument("component is empty: " + comp_name);
  }
  size_t p = 0;
  for (size_t di = 0; di < c.domains.size(); ++di) {
    auto env_it = env.find(c.domains[di].get());
    if (env_it != env.end()) {
      p += c.strides[di] * env_it->second;
    } else if (c.domains[di]->size() != 1) {
      return Status::InvalidArgument(
          StrFormat("component '%s' iterates over a variable not bound in "
                    "this process",
                    comp_name.c_str()));
    }
  }
  return &c.visuals[p];
}

Result<double> EvalExpr(const ProcessExpr& e, Env& env, ExecState* st) {
  if (e.kind == ProcessExpr::Kind::kReduce) {
    // Iterate the reducer's domains.
    std::vector<std::shared_ptr<VarDomain>> doms;
    for (const std::string& v : e.reduce_vars) {
      auto it = st->vars.find(v);
      if (it == st->vars.end()) {
        return Status::NotFound("unknown reducer variable: " + v);
      }
      if (std::find(doms.begin(), doms.end(), it->second) == doms.end()) {
        doms.push_back(it->second);
      }
    }
    size_t total = 1;
    for (const auto& d : doms) total *= d->size();
    if (total == 0) return Status::InvalidArgument("empty reducer domain");
    double acc = 0;
    bool first = true;
    for (size_t i = 0; i < total; ++i) {
      // A reducer hides an O(domain) scan inside one scored combination,
      // so the per-combination cancel polls alone could lag by the whole
      // inner loop; poll here too.
      ZV_RETURN_NOT_OK(CheckCancelled());
      size_t rem = i;
      for (size_t di = doms.size(); di-- > 0;) {
        env[doms[di].get()] = rem % doms[di]->size();
        rem /= doms[di]->size();
      }
      ZV_ASSIGN_OR_RETURN(double v, EvalExpr(*e.child, env, st));
      if (first) {
        acc = v;
        first = false;
      } else {
        switch (e.reduce) {
          case ProcessExpr::Reduce::kMin:
            acc = std::min(acc, v);
            break;
          case ProcessExpr::Reduce::kMax:
            acc = std::max(acc, v);
            break;
          case ProcessExpr::Reduce::kSum:
            acc += v;
            break;
        }
      }
    }
    for (const auto& d : doms) env.erase(d.get());
    return acc;
  }
  // Calls.
  if (e.func == "T") {
    if (e.args.size() != 1) {
      return Status::InvalidArgument("T takes one component");
    }
    ZV_ASSIGN_OR_RETURN(const Visualization* f,
                        ResolveVisual(e.args[0], env, st));
    return st->opts->tasks.trend(*f);
  }
  if (e.func == "D") {
    if (e.args.size() != 2) {
      return Status::InvalidArgument("D takes two components");
    }
    ZV_ASSIGN_OR_RETURN(const Visualization* f,
                        ResolveVisual(e.args[0], env, st));
    ZV_ASSIGN_OR_RETURN(const Visualization* g,
                        ResolveVisual(e.args[1], env, st));
    if (st->scoring_ctx != nullptr) {
      auto fi = st->scoring_index.find(f);
      auto gi = st->scoring_index.find(g);
      if (fi != st->scoring_index.end() && gi != st->scoring_index.end()) {
        return st->scoring_ctx->PairDistance(
            fi->second, gi->second, st->opts->tasks.default_options.metric);
      }
    }
    return st->opts->tasks.distance(*f, *g);
  }
  auto it = st->opts->user_functions.find(e.func);
  if (it == st->opts->user_functions.end()) {
    return Status::NotFound("unknown process function: " + e.func);
  }
  std::vector<const Visualization*> args;
  for (const std::string& a : e.args) {
    ZV_ASSIGN_OR_RETURN(const Visualization* f, ResolveVisual(a, env, st));
    args.push_back(f);
  }
  return it->second(args);
}

/// True when every call in the expression tree is a default primitive —
/// the precondition for scoring combinations on pool workers. User
/// process functions and custom trend/distance hooks may capture mutable
/// state and are never called concurrently.
bool ExprParallelSafe(const ProcessExpr& e, const ExecState& st) {
  if (e.kind == ProcessExpr::Kind::kReduce) {
    return e.child == nullptr || ExprParallelSafe(*e.child, st);
  }
  if (e.func == "T") return st.opts->tasks.trend_is_default;
  if (e.func == "D") return st.opts->tasks.distance_is_default;
  return false;  // user function: unknown thread-safety
}

/// Collects the component names appearing as D(f, g) arguments anywhere
/// in a process expression tree.
void CollectDComponents(const ProcessExpr& e, std::set<std::string>* out) {
  if (e.kind == ProcessExpr::Kind::kReduce) {
    if (e.child) CollectDComponents(*e.child, out);
    return;
  }
  if (e.func == "D") {
    for (const std::string& a : e.args) out->insert(a);
  }
}

/// Builds — or reuses — the shared ScoringContext for one process
/// declaration: every visualization of every component referenced by a
/// D() call is aligned and normalized exactly once, instead of once per
/// scored pair. Only active when the task library's distance is the
/// default one (a custom distance must keep being called per pair).
///
/// Reuse happens at two levels, both keyed by the content fingerprint of
/// the pool (identity + data + normalization/alignment):
///  - within this query: two Process declarations over the same candidate
///    set — e.g. an argmin and an argmax over one (x, y, z) config —
///    share one context instead of rebuilding it per declaration;
///  - across queries/sessions: ZqlOptions::context_cache, when wired by
///    the serving layer.
/// The pool (and therefore the row order the fingerprint covers) is
/// rebuilt deterministically here, so scoring_index maps this query's
/// Visualization pointers onto the cached context's rows.
void PrepareScoring(const ProcessDecl& decl, ExecState* st) {
  st->scoring_ctx.reset();
  st->scoring_index.clear();
  if (!st->opts->tasks.distance_is_default || decl.expr == nullptr) return;
  std::set<std::string> dcomps;
  CollectDComponents(*decl.expr, &dcomps);
  if (dcomps.empty()) return;
  std::vector<const Visualization*> pool;
  for (const std::string& name : dcomps) {
    auto it = st->comps.find(name);
    if (it == st->comps.end() || !it->second->ready) return;  // EvalExpr errors
    for (const Visualization& v : it->second->visuals) {
      if (st->scoring_index.emplace(&v, pool.size()).second) {
        pool.push_back(&v);
      }
    }
  }
  if (pool.empty()) return;
  const TaskOptions& topts = st->opts->tasks.default_options;
  const std::string key =
      ScoringSetFingerprint(pool, topts.normalization, topts.alignment);
  if (auto it = st->query_contexts.find(key); it != st->query_contexts.end()) {
    st->scoring_ctx = it->second;
    ++st->stats.contexts_reused;
    return;
  }
  if (st->opts->context_pool != nullptr) {
    // Single-flight across concurrent queries (tasks/context_pool.h): at
    // most one of N same-fingerprint queries builds; the rest share. The
    // pool probes and feeds the serving layer's cache itself.
    bool reused = false;
    auto ctx = st->opts->context_pool->GetOrBuild(
        key,
        [&]() -> std::shared_ptr<const ScoringContext> {
          if (CancellationRequested()) return nullptr;
          return std::make_shared<const ScoringContext>(
              pool, topts.normalization, topts.alignment);
        },
        &reused);
    if (ctx != nullptr) {
      st->scoring_ctx = std::move(ctx);
      st->query_contexts[key] = st->scoring_ctx;
      if (reused) ++st->stats.contexts_reused;
      return;
    }
    // Cancelled while waiting on another query's build: fall through to
    // the local build — the cancel surfaces at the next scoring poll.
  }
  if (st->opts->context_cache != nullptr) {
    if (auto cached = st->opts->context_cache->Get(key)) {
      st->scoring_ctx = std::move(cached);
      st->query_contexts[key] = st->scoring_ctx;
      ++st->stats.contexts_reused;
      return;
    }
  }
  auto ctx = std::make_shared<const ScoringContext>(
      pool, topts.normalization, topts.alignment);
  st->scoring_ctx = ctx;
  st->query_contexts[key] = ctx;
  if (st->opts->context_cache != nullptr) {
    st->opts->context_cache->Put(key, ctx);
  }
}

/// True when `decl` can take the top-k pruned scan: an argmin mechanism
/// with a [k=n] filter (and no threshold — thresholds need every exact
/// score), whose expression is a bare D(f, g) call scored through the
/// shared ScoringContext. argmax cannot prune at the kernel level: a
/// growing partial distance lower-bounds the final value, which proves
/// "too far" (argmin rejects) but never "not far enough" (argmax needs
/// an upper bound). Pruning with fewer than k candidates is vacuous, so
/// k >= total short-circuits to the plain scan.
bool PrunableTopK(const ProcessDecl& decl, size_t total, const ExecState& st) {
  if (!st.opts->topk_pruning || st.scoring_ctx == nullptr) return false;
  if (decl.kind != ProcessDecl::Kind::kMechanism ||
      decl.mech != Mechanism::kArgMin) {
    return false;
  }
  if (!decl.filter.k.has_value() || decl.filter.t_above.has_value() ||
      decl.filter.t_below.has_value()) {
    return false;
  }
  if (static_cast<size_t>(*decl.filter.k) >= total) return false;
  const ProcessExpr* e = decl.expr.get();
  return e != nullptr && e->kind == ProcessExpr::Kind::kCall &&
         e->func == "D" && e->args.size() == 2;
}

/// The top-k pruned scan: scores every combination like the plain loop,
/// but shares the running k-th best distance (SharedTopK's relaxed
/// atomic bound, which only ever tightens) across workers and hands it to
/// the early-termination kernels. Abandoned combinations record +inf in
/// their slot — each is provably outside the final top k, so
/// ApplyMechanism still selects exactly the candidates (in exactly the
/// order) the full scan would, at any ZV_THREADS.
/// Always runs under ParallelForStatus: PrunableTopK requires an active
/// ScoringContext (default distance) and a bare D(f, g) call, which is
/// exactly what makes ExprParallelSafe true — and ZV_THREADS=1 already
/// runs the loop inline on the calling thread.
Status ScorePrunedTopK(const ProcessDecl& decl,
                       const std::vector<std::shared_ptr<VarDomain>>& doms,
                       size_t total, std::vector<double>* scores,
                       ExecState* st) {
  const size_t k = std::min(total, static_cast<size_t>(*decl.filter.k));
  const DistanceMetric metric = st->opts->tasks.default_options.metric;
  SharedTopK topk(k, TopKOrder::kAscending);
  std::atomic<uint64_t> pruned{0};
  auto score_one = [&](size_t i) -> Status {
    // Per-combination cancellation poll: one DTW pair on a long series
    // can take milliseconds, so chunk-boundary checks alone would make
    // Cancel() latency proportional to the chunk size.
    ZV_RETURN_NOT_OK(CheckCancelled());
    Env env;
    size_t rem = i;
    for (size_t di = doms.size(); di-- > 0;) {
      env[doms[di].get()] = rem % doms[di]->size();
      rem /= doms[di]->size();
    }
    ZV_ASSIGN_OR_RETURN(const Visualization* f,
                        ResolveVisual(decl.expr->args[0], env, st));
    ZV_ASSIGN_OR_RETURN(const Visualization* g,
                        ResolveVisual(decl.expr->args[1], env, st));
    const auto fi = st->scoring_index.find(f);
    const auto gi = st->scoring_index.find(g);
    if (fi == st->scoring_index.end() || gi == st->scoring_index.end()) {
      // PrepareScoring pools every D() component, so this is unreachable;
      // score exactly rather than fail if it ever regresses.
      (*scores)[i] = st->opts->tasks.distance(*f, *g);
      topk.Offer((*scores)[i], i);
      return Status::OK();
    }
    const double bound = topk.bound();
    const double d = st->scoring_ctx->PairDistanceBounded(
        fi->second, gi->second, metric, bound);
    (*scores)[i] = d;
    // +inf under a finite bound = kernel abandoned; under an infinite
    // bound no abandonment is possible, so +inf is the exact distance
    // and still competes (and must not count as pruned).
    if (std::isinf(d) && !std::isinf(bound)) {
      pruned.fetch_add(1, std::memory_order_relaxed);
    } else {
      topk.Offer(d, i);
    }
    return Status::OK();
  };
  const Status scored = ParallelForStatus(total, score_one);
  st->stats.scores_pruned += pruned.load(std::memory_order_relaxed);
  return scored;
}

Status ScoreRepresentative(const ProcessDecl& decl, ExecState* st,
                           ScoreResult* out) {
  for (const std::string& v : decl.repr_vars) {
    auto it = st->vars.find(v);
    if (it == st->vars.end()) {
      return Status::NotFound("unknown R variable: " + v);
    }
    if (std::find(out->doms.begin(), out->doms.end(), it->second) ==
        out->doms.end()) {
      out->doms.push_back(it->second);
    }
  }
  if (decl.outputs.size() != decl.repr_vars.size()) {
    return Status::InvalidArgument(
        "R output count must match its variable count");
  }
  size_t total = 1;
  for (const auto& d : out->doms) total *= d->size();
  std::vector<const Visualization*> visuals;
  Env env;
  for (size_t i = 0; i < total; ++i) {
    size_t rem = i;
    for (size_t di = out->doms.size(); di-- > 0;) {
      env[out->doms[di].get()] = rem % out->doms[di]->size();
      rem /= out->doms[di]->size();
    }
    ZV_ASSIGN_OR_RETURN(const Visualization* f,
                        ResolveVisual(decl.repr_component, env, st));
    visuals.push_back(f);
  }
  out->chosen = st->opts->tasks.representatives(
      visuals, static_cast<size_t>(decl.repr_k));
  // The default representatives implementation runs k-means over void
  // ParallelFor, which stops early under cancellation — discard its
  // output rather than bind variables to a partial clustering.
  ZV_RETURN_NOT_OK(CheckCancelled());
  return Status::OK();
}

/// Binds output variables: the i-th output variable receives the i-th
/// iteration variable's values at the selected combinations (§3.8).
void BindOutputs(const std::vector<std::string>& iter_vars,
                 const std::vector<std::string>& outputs,
                 const std::vector<std::shared_ptr<VarDomain>>& doms,
                 const std::vector<size_t>& selected, ExecState* st) {
  std::vector<std::vector<VarValue>> tuples;
  for (size_t sel : selected) {
    std::vector<VarValue> tuple;
    size_t rem = sel;
    std::map<const VarDomain*, size_t> idx;
    for (size_t di = doms.size(); di-- > 0;) {
      idx[doms[di].get()] = rem % doms[di]->size();
      rem /= doms[di]->size();
    }
    for (const std::string& v : iter_vars) {
      const auto& dom = st->vars.at(v);
      const int pos = dom->PosOf(v);
      tuple.push_back(
          dom->tuples[idx.at(dom.get())][static_cast<size_t>(pos)]);
    }
    tuples.push_back(std::move(tuple));
  }
  RegisterDomain(outputs, std::move(tuples), st);
}

}  // namespace

Status ScoreProcess(const ProcessDecl& decl, ExecState* st, ScoreResult* out) {
  const auto t0 = SteadyNow();
  if (decl.kind == ProcessDecl::Kind::kRepresentative) {
    const Status s = ScoreRepresentative(decl, st, out);
    st->stats.score_ms += MsSince(t0);
    return s;
  }
  // Iteration domains, deduplicated in declaration order.
  for (const std::string& v : decl.iter_vars) {
    auto it = st->vars.find(v);
    if (it == st->vars.end()) {
      return Status::NotFound("unknown iteration variable: " + v);
    }
    if (std::find(out->doms.begin(), out->doms.end(), it->second) ==
        out->doms.end()) {
      out->doms.push_back(it->second);
    }
  }
  const std::vector<std::shared_ptr<VarDomain>>& doms = out->doms;
  size_t total = 1;
  for (const auto& d : doms) total *= d->size();
  if (total == 0) return Status::InvalidArgument("empty iteration domain");

  PrepareScoring(decl, st);
  // Score the flattened Cartesian domain. When every call in the
  // expression is a default primitive (stateless, thread-safe), fan the
  // combinations over the pool: shared state — vars, comps, the scoring
  // context — is read-only here and each combination writes only its own
  // scores[i] slot, so results are byte-identical at any ZV_THREADS and
  // errors surface as the lowest combination index, exactly like the
  // serial loop. Custom trend/distance implementations and user process
  // functions carry no thread-safety contract, so expressions using them
  // keep the serial loop.
  //
  // argmin[k=n] over a bare D(f, g) additionally takes the top-k pruned
  // scan (ScorePrunedTopK): same slots, same selected set, but candidates
  // provably outside the top k abandon their distance kernel early.
  std::vector<double>& scores = out->scores;
  scores.assign(total, 0.0);
  auto score_one = [&](size_t i) -> Status {
    ZV_RETURN_NOT_OK(CheckCancelled());  // per-combination cancel poll
    Env env;
    size_t rem = i;
    for (size_t di = doms.size(); di-- > 0;) {
      env[doms[di].get()] = rem % doms[di]->size();
      rem /= doms[di]->size();
    }
    ZV_ASSIGN_OR_RETURN(scores[i], EvalExpr(*decl.expr, env, st));
    return Status::OK();
  };
  Status scored = Status::OK();
  if (PrunableTopK(decl, total, *st)) {
    scored = ScorePrunedTopK(decl, doms, total, &scores, st);
  } else if (ExprParallelSafe(*decl.expr, *st)) {
    scored = ParallelForStatus(total, score_one);
  } else {
    for (size_t i = 0; i < total && scored.ok(); ++i) scored = score_one(i);
  }
  st->scoring_ctx.reset();
  st->scoring_index.clear();
  st->stats.score_ms += MsSince(t0);
  return scored;
}

Status ReduceProcess(const ProcessDecl& decl, ScoreResult&& scored,
                     ExecState* st) {
  if (decl.kind == ProcessDecl::Kind::kRepresentative) {
    BindOutputs(decl.repr_vars, decl.outputs, scored.doms, scored.chosen, st);
    return Status::OK();
  }
  const std::vector<size_t> selected =
      ApplyMechanism(decl.mech, scored.scores, decl.filter);
  BindOutputs(decl.iter_vars, decl.outputs, scored.doms, selected, st);
  return Status::OK();
}

}  // namespace zv::zql::exec
