#include "study/user_study.h"

#include <algorithm>

#include "common/rng.h"

namespace zv {

const char* StudyInterfaceToString(StudyInterface i) {
  switch (i) {
    case StudyInterface::kDragDrop:
      return "zenvisage drag-and-drop";
    case StudyInterface::kCustomBuilder:
      return "zenvisage custom query builder";
    case StudyInterface::kBaseline:
      return "baseline tool";
  }
  return "?";
}

namespace {

/// Expert score of candidate `rank` (0 = the true best), on the paper's
/// 0–5 scale normalized to [0, 1]: the best answer scores 1.0, runners-up
/// degrade toward ~0.35.
double QualityOfRank(size_t rank, size_t n) {
  (void)n;
  if (rank == 0) return 1.0;
  return 0.35 + 0.35 * std::exp(-(static_cast<double>(rank) - 1.0) / 4.0);
}

double PositiveNormal(Rng& rng, double mean, double sd) {
  return std::max(0.2, rng.Normal(mean, sd));
}

TaskOutcome SimulateBaseline(const StudyOptions& o, Rng& rng) {
  // The baseline populates all matching visualizations in alphanumeric
  // order (§8.1), which is uncorrelated with answer quality: the analyst
  // scans a random permutation of quality ranks, judges each through
  // perception noise, and keeps whichever *looked* best. The paper
  // observed exactly this failure mode: "participants selected suboptimal
  // answers before browsing through the entire list".
  TaskOutcome out;
  const size_t n = o.num_candidates;
  const size_t best_at = rng.Uniform(n);
  double best_perceived = -1, chosen_quality = 0;
  for (size_t i = 0; i < n; ++i) {
    out.seconds += PositiveNormal(rng, o.inspect_mean_s, o.inspect_sd_s);
    ++out.visualizations_examined;
    // The i-th scanned candidate's true rank: the best answer sits at a
    // uniformly random scan position; others are visited in some order of
    // distinct non-zero ranks (position used as a proxy permutation).
    const size_t rank = (i == best_at) ? 0 : (i < best_at ? i + 1 : i);
    const double quality = QualityOfRank(rank, n);
    const double perceived =
        quality + rng.Normal(0, o.perception_noise_sd);
    if (perceived > best_perceived) {
      best_perceived = perceived;
      chosen_quality = quality;
    }
    // Satisficing: once patience is exhausted and something that *looks*
    // good enough is in hand, the analyst stops.
    if (i >= o.baseline_patience && best_perceived >= o.satisfice_threshold &&
        rng.UniformDouble() < o.baseline_stop_prob) {
      break;
    }
  }
  out.accuracy = chosen_quality;
  return out;
}

TaskOutcome SimulateZenvisage(const StudyOptions& o, Rng& rng, bool custom) {
  TaskOutcome out;
  out.seconds += custom
                     ? PositiveNormal(rng, o.custom_compose_mean_s,
                                      o.custom_compose_sd_s)
                     : PositiveNormal(rng, o.dragdrop_compose_mean_s,
                                      o.dragdrop_compose_sd_s);
  // The system ranks candidates; the analyst inspects the top k and picks
  // what looks best. Because the true best (when recalled) arrives ranked
  // first among a handful of alternatives, perception noise rarely
  // displaces it — this asymmetry, not better eyes, is why accuracy rises.
  const double recall = custom ? o.custom_recall : o.dragdrop_recall;
  const size_t k = std::min(o.top_k_inspected, o.num_candidates);
  const bool best_in_topk = rng.UniformDouble() < recall;
  double best_perceived = -1, chosen_quality = 0;
  for (size_t i = 0; i < k; ++i) {
    out.seconds += PositiveNormal(rng, o.inspect_mean_s, o.inspect_sd_s);
    ++out.visualizations_examined;
    size_t rank;
    if (best_in_topk && i == 0) {
      rank = 0;  // ranked first by the similarity metric
    } else {
      rank = (custom ? 2 : 5) + rng.Uniform(custom ? 10 : 20);
    }
    const double quality = QualityOfRank(rank, o.num_candidates);
    // Ranked presentation anchors judgment: noise shrinks at the top of
    // the list, and an exact (custom builder) query makes the whole ranked
    // list trustworthy.
    const double noise_scale = custom ? 0.3 : (i == 0 ? 0.25 : 1.0);
    const double perceived =
        quality + rng.Normal(0, o.perception_noise_sd * noise_scale);
    if (perceived > best_perceived) {
      best_perceived = perceived;
      chosen_quality = quality;
    }
  }
  out.accuracy = chosen_quality;
  return out;
}

}  // namespace

std::vector<double> StudyResult::Times(StudyInterface i) const {
  std::vector<double> out;
  for (const TaskOutcome& t : outcomes[static_cast<size_t>(i)]) {
    out.push_back(t.seconds);
  }
  return out;
}

std::vector<double> StudyResult::Accuracies(StudyInterface i) const {
  std::vector<double> out;
  for (const TaskOutcome& t : outcomes[static_cast<size_t>(i)]) {
    out.push_back(t.accuracy);
  }
  return out;
}

StudyResult RunUserStudy(const StudyOptions& opts) {
  StudyResult result;
  result.outcomes.resize(3);
  result.participant_times.assign(3, {});
  Rng rng(opts.seed);
  // Within-subjects design (§8.1): every participant performs each task set
  // on every interface; interface order randomization is irrelevant to the
  // simulation since agents have no learning effect. Participants differ in
  // working speed, which dominates the between-subject time variance.
  for (size_t p = 0; p < opts.num_participants; ++p) {
    const double speed =
        std::max(0.4, rng.Normal(1.0, opts.participant_speed_sd));
    double sums[3] = {0, 0, 0};
    for (size_t t = 0; t < opts.tasks_per_participant; ++t) {
      TaskOutcome per_iface[3] = {
          SimulateZenvisage(opts, rng, /*custom=*/false),
          SimulateZenvisage(opts, rng, /*custom=*/true),
          SimulateBaseline(opts, rng),
      };
      for (size_t i = 0; i < 3; ++i) {
        per_iface[i].seconds *= speed;
        sums[i] += per_iface[i].seconds;
        result.outcomes[i].push_back(per_iface[i]);
      }
    }
    for (size_t i = 0; i < 3; ++i) {
      result.participant_times[i].push_back(
          sums[i] / static_cast<double>(opts.tasks_per_participant));
    }
  }
  // The paper's analysis unit: one mean completion time per participant per
  // interface (n = 12 each), one-way between-subjects ANOVA + Tukey HSD.
  result.anova = OneWayAnova(result.participant_times);
  result.tukey = TukeyHsd(result.participant_times);
  return result;
}

std::vector<std::pair<double, double>> AccuracyOverTime(
    const StudyResult& result, StudyInterface iface, double max_seconds,
    size_t steps) {
  std::vector<std::pair<double, double>> curve;
  const auto& tasks = result.outcomes[static_cast<size_t>(iface)];
  for (size_t s = 0; s <= steps; ++s) {
    const double t = max_seconds * static_cast<double>(s) /
                     static_cast<double>(steps);
    double acc = 0;
    for (const TaskOutcome& task : tasks) {
      if (task.seconds <= t) acc += task.accuracy;
    }
    curve.emplace_back(t, tasks.empty()
                              ? 0
                              : acc / static_cast<double>(tasks.size()));
  }
  return curve;
}

std::vector<ExperienceRow> ParticipantExperience() {
  // Table 8.1 verbatim: the simulated population is described as having the
  // same tool background mix.
  return {
      {"Excel, Google spreadsheet, Google Charts", 8},
      {"Tableau", 4},
      {"SQL, Databases", 6},
      {"Matlab, R, Python, Java", 8},
      {"Data mining tools such as weka, JNP", 2},
      {"Other tools like D3", 2},
  };
}

}  // namespace zv
