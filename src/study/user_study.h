/// \file user_study.h
/// \brief Chapter-8 user-study reproduction via analyst-agent simulation
/// (DESIGN.md §4, substitution 3).
///
/// The paper's result rests on a mechanism, not on who the 12 graduate
/// students were: the baseline tool forces a linear scan over
/// alphabetically-sorted candidate visualizations with per-visualization
/// perception cost and a satisficing stopping rule, while zenvisage ranks
/// candidates so analysts inspect only the top k after composing a query.
/// The simulation implements exactly that mechanism; the paper's own
/// statistical analysis (one-way ANOVA + Tukey HSD, Table 8.2) is then
/// re-run on the simulated completion times.

#ifndef ZV_STUDY_USER_STUDY_H_
#define ZV_STUDY_USER_STUDY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace zv {

/// The three interfaces compared in Chapter 8.
enum class StudyInterface { kDragDrop = 0, kCustomBuilder = 1, kBaseline = 2 };

const char* StudyInterfaceToString(StudyInterface i);

struct StudyOptions {
  size_t num_participants = 12;
  size_t tasks_per_participant = 4;
  /// Candidate visualizations per task (states/cities in the housing data).
  size_t num_candidates = 50;
  uint64_t seed = 99;

  // --- mechanism parameters (calibrated to §8.1's reported means) -------
  double inspect_mean_s = 3.6;     ///< per-visualization perception time
  double inspect_sd_s = 0.9;
  double dragdrop_compose_mean_s = 42;   ///< sketch + drag-drop time
  double dragdrop_compose_sd_s = 9;
  double custom_compose_mean_s = 82;     ///< ZQL table composition time
  double custom_compose_sd_s = 42;
  size_t top_k_inspected = 8;       ///< ranked results actually examined
  /// Probability the true best answer survives into zenvisage's top-k.
  double dragdrop_recall = 0.86;    ///< sketches are imprecise
  double custom_recall = 0.97;     ///< exact queries
  /// Baseline satisficing: after this many inspections the analyst starts
  /// accepting good-enough answers.
  size_t baseline_patience = 40;
  double baseline_stop_prob = 0.08; ///< per-candidate stop chance after that
  /// An answer whose *perceived* quality reaches this is "good enough".
  double satisfice_threshold = 0.9;
  /// Std-dev of the analyst's perception error when judging how well a
  /// visualization matches the task. This is what drives the baseline's
  /// accuracy loss: with dozens of similar-looking candidates, the manually
  /// chosen one is often not the expert-ranked best (§8.1 Finding 2).
  double perception_noise_sd = 0.28;
  /// Between-participant speed variability (multiplicative): some analysts
  /// simply work faster. This is what gives the baseline and custom-builder
  /// interfaces their large reported time sigmas (50.5 / 51.6).
  double participant_speed_sd = 0.25;
};

/// One simulated task execution.
struct TaskOutcome {
  double seconds = 0;
  double accuracy = 0;  ///< expert-score fraction in [0, 1]
  size_t visualizations_examined = 0;
};

struct StudyResult {
  /// Outcomes grouped by interface (index = StudyInterface).
  std::vector<std::vector<TaskOutcome>> outcomes;

  std::vector<double> Times(StudyInterface i) const;
  std::vector<double> Accuracies(StudyInterface i) const;

  /// Per-participant mean completion times (the paper's unit of analysis —
  /// 12 observations per interface), grouped by interface.
  std::vector<std::vector<double>> participant_times;

  AnovaResult anova;                       ///< on participant_times
  std::vector<TukeyComparison> tukey;      ///< Table 8.2
};

/// Runs the full simulated study.
StudyResult RunUserStudy(const StudyOptions& opts = {});

/// Fig 8.2: mean accuracy attained within a time budget, swept over
/// [0, max_seconds] in `steps` points. Tasks not finished by t contribute 0.
std::vector<std::pair<double, double>> AccuracyOverTime(
    const StudyResult& result, StudyInterface iface, double max_seconds,
    size_t steps);

/// Table 8.1: participants' prior experience with analytics tools — the
/// simulated population mirrors the paper's counts.
struct ExperienceRow {
  std::string tools;
  int count;
};
std::vector<ExperienceRow> ParticipantExperience();

}  // namespace zv

#endif  // ZV_STUDY_USER_STUDY_H_
