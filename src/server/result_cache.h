/// \file result_cache.h
/// \brief Sharded LRU of finished query results, keyed by QueryFingerprint.
///
/// Values are shared_ptr<const ZqlResult>: a hit hands the caller the same
/// immutable result object the first execution produced — zero-copy, safe
/// under concurrent readers, and immune to eviction races (the pointer
/// keeps the entry alive for whoever already holds it).
///
/// Invalidation is structural, not imperative: the fingerprint embeds the
/// dataset epoch, so a table mutation makes every old key unreachable
/// rather than requiring a scan-and-delete. Unreachable entries age out of
/// the LRU tail under byte pressure.

#ifndef ZV_SERVER_RESULT_CACHE_H_
#define ZV_SERVER_RESULT_CACHE_H_

#include <memory>
#include <string>

#include "common/lru_cache.h"
#include "zql/executor.h"

namespace zv::server {

/// Approximate resident bytes of a finished result (visual identities +
/// data vectors) — what a cache entry charges against the byte budget.
inline size_t ApproxResultBytes(const zql::ZqlResult& r) {
  size_t bytes = sizeof(r);
  for (const zql::ZqlOutput& out : r.outputs) {
    bytes += out.name.size() + sizeof(out);
    for (const Visualization& v : out.visuals) {
      bytes += sizeof(v);
      bytes += v.x_attr.size() + v.y_attr.size() + v.constraints.size();
      for (const Slice& s : v.slices) {
        bytes += sizeof(s) + s.attribute.size() + 16;
      }
      bytes += v.xs.size() * (sizeof(Value) + 8);
      for (const Series& s : v.series) {
        bytes += sizeof(s) + s.name.size() + s.ys.size() * sizeof(double);
      }
    }
  }
  return bytes;
}

/// \brief Thread-safe sharded LRU over finished results. One instance per
/// QueryService, shared by every session.
class ResultCache {
 public:
  explicit ResultCache(size_t max_bytes, size_t shards = 8)
      : cache_(max_bytes, shards) {}

  std::shared_ptr<const zql::ZqlResult> Get(const std::string& fingerprint) {
    return cache_.Get(fingerprint);
  }

  /// Opportunistic lookup (the Submit fast path): counts hits but not
  /// misses — a missing entry falls through to the worker, whose Get
  /// records the one authoritative miss.
  std::shared_ptr<const zql::ZqlResult> Probe(const std::string& fingerprint) {
    return cache_.Get(fingerprint, /*count_miss=*/false);
  }

  void Put(const std::string& fingerprint,
           std::shared_ptr<const zql::ZqlResult> result) {
    const size_t bytes = ApproxResultBytes(*result);
    cache_.Put(fingerprint, std::move(result), bytes);
  }

  void Clear() { cache_.Clear(); }
  size_t bytes() const { return cache_.bytes(); }
  size_t entries() const { return cache_.entries(); }
  uint64_t hits() const { return cache_.hits(); }
  uint64_t misses() const { return cache_.misses(); }
  uint64_t evictions() const { return cache_.evictions(); }
  size_t max_bytes_total() const { return cache_.max_bytes(); }

 private:
  ShardedLruCache<zql::ZqlResult> cache_;
};

}  // namespace zv::server

#endif  // ZV_SERVER_RESULT_CACHE_H_
