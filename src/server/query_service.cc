#include "server/query_service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/cancel.h"
#include "common/strings.h"
#include "engine/roaring_db.h"
#include "server/fingerprint.h"
#include "zql/canonical.h"
#include "zql/parser.h"

namespace zv::server {

namespace {

size_t EnvSize(const char* name, size_t def) {
  if (const char* env = std::getenv(name)) {
    const long long v = std::atoll(env);
    if (v >= 0) return static_cast<size_t>(v);
  }
  return def;
}

/// For knobs where 0 is nonsense (0 workers = every query hangs; 0 queue
/// slots = every Submit rejected) — and where atoll's 0-on-garbage would
/// silently produce exactly that. Falls back to the default instead.
size_t EnvSizePositive(const char* name, size_t def) {
  if (const char* env = std::getenv(name)) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return def;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// ZV_CACHE_MB split: results dominate by value-per-byte for an
/// interactive UI (a hit skips the whole query), contexts amortize the
/// alignment pass — 3/4 : 1/4.
size_t ResolveCacheBytes(size_t cache_mb) {
  const size_t mb = cache_mb == static_cast<size_t>(-1)
                        ? EnvSize("ZV_CACHE_MB", 64)
                        : cache_mb;
  return mb * (1ull << 20);
}

}  // namespace

/// \brief One submitted query, shared between its QueryHandle copies, the
/// session FIFO, the ready queue, and the executing worker. Immutable
/// after Submit() except for the mu-guarded resolution block.
struct QueryTask {
  SessionId session = 0;
  std::string dataset;
  zql::ZqlQuery query;  ///< the typed payload (parsed or builder-built)
  std::string fingerprint;
  std::shared_ptr<Database> db;  ///< snapshot: ReplaceDataset can't race us
  std::string table_name;
  std::map<std::string, Visualization> user_inputs;  ///< session snapshot
  std::optional<zql::OptLevel> opt_override;
  CancelToken token;

  /// The service's admission gauge, co-owned so the slot can be released
  /// from the handle even as the service shuts down.
  std::shared_ptr<std::atomic<int64_t>> queued_slot;

  std::mutex mu;
  std::condition_variable cv;
  bool queued_counted = false;  ///< still holds an admission-queue slot
  bool started = false;
  bool done = false;
  Status status;
  std::shared_ptr<const zql::ZqlResult> result;
  zql::ZqlStats stats;
};

namespace {

/// Releases the task's admission-queue slot. Exactly-once: guarded by
/// queued_counted under t.mu, so the handle's Cancel, the popping worker,
/// session drains, and shutdown can all race to it safely.
void ReleaseQueueSlotLocked(QueryTask& t) {
  if (t.queued_counted) {
    t.queued_counted = false;
    t.queued_slot->fetch_sub(1, std::memory_order_relaxed);
  }
}

void ReleaseQueueSlot(QueryTask& t) {
  std::lock_guard<std::mutex> lock(t.mu);
  ReleaseQueueSlotLocked(t);
}

/// Resolves `t` exactly once; later calls (a lost cancel/finish race) are
/// no-ops, so the first resolution wins.
void ResolveTask(QueryTask& t, Status status,
                 std::shared_ptr<const zql::ZqlResult> result,
                 const zql::ZqlStats& stats) {
  std::lock_guard<std::mutex> lock(t.mu);
  if (t.done) return;
  t.done = true;
  t.status = std::move(status);
  t.result = std::move(result);
  t.stats = stats;
  t.cv.notify_all();
}

}  // namespace

// ===========================================================================
// QueryHandle
// ===========================================================================

void QueryHandle::Cancel() {
  if (task_ == nullptr) return;
  task_->token.Cancel();
  // A query that never started needs no cooperation — resolve it here.
  // The worker that later pops it sees done and skips (counting it
  // cancelled); an already-started query resolves through its executor.
  std::lock_guard<std::mutex> lock(task_->mu);
  if (!task_->done && !task_->started) {
    task_->done = true;
    task_->status = Status::Cancelled("cancelled while queued");
    // Free the admission slot now — a dead queued entry must not keep
    // rejecting new submissions until a worker happens to pop it.
    ReleaseQueueSlotLocked(*task_);
    task_->cv.notify_all();
  }
}

Status QueryHandle::Wait() {
  if (task_ == nullptr) return Status::InvalidArgument("null query handle");
  std::unique_lock<std::mutex> lock(task_->mu);
  task_->cv.wait(lock, [&] { return task_->done; });
  return task_->status;
}

bool QueryHandle::done() const {
  if (task_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(task_->mu);
  return task_->done;
}

std::shared_ptr<const zql::ZqlResult> QueryHandle::result() const {
  if (task_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(task_->mu);
  return task_->result;
}

zql::ZqlStats QueryHandle::stats() const {
  if (task_ == nullptr) return {};
  std::lock_guard<std::mutex> lock(task_->mu);
  return task_->stats;
}

std::string QueryHandle::fingerprint() const {
  // Immutable after Submit — no lock needed.
  return task_ == nullptr ? std::string() : task_->fingerprint;
}

// ===========================================================================
// QueryService
// ===========================================================================

QueryService::QueryService(ServiceOptions options)
    : base_zql_(std::move(options.zql)),
      max_inflight_(options.max_inflight > 0
                        ? options.max_inflight
                        : EnvSizePositive("ZV_MAX_INFLIGHT", 4)),
      max_queue_(options.max_queue > 0
                     ? options.max_queue
                     : EnvSizePositive("ZV_MAX_QUEUE", 32)),
      result_cache_enabled_(options.result_cache),
      clock_(options.clock != nullptr ? options.clock : Clock::System()),
      result_cache_(ResolveCacheBytes(options.cache_mb) / 4 * 3),
      context_cache_(ResolveCacheBytes(options.cache_mb) / 4),
      context_pool_(&context_cache_),
      sessions_(clock_, options.session_ttl_ms) {
  base_zql_.sql_trace = nullptr;  // executors run concurrently
  if (result_cache_.max_bytes_total() == 0) result_cache_enabled_ = false;
  if (options.shared_scans) {
    BatchScanOptions bopts;
    bopts.window_ms = options.batch_window_ms;
    batch_scans_ = std::make_unique<BatchScanQueue>(bopts);
  }
  current_.resize(max_inflight_);
  workers_.reserve(max_inflight_);
  for (size_t i = 0; i < max_inflight_; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Resolve everything still waiting; cancel everything executing. No
    // handle is left unresolved, so handles may safely outlive us.
    for (const auto& task : ready_) {
      ResolveTask(*task, Status::Cancelled("service shutting down"), nullptr,
                  {});
      ReleaseQueueSlot(*task);
      cancelled_.fetch_add(1, std::memory_order_relaxed);
    }
    ready_.clear();
    for (const auto& session : sessions_.All()) {
      DrainSessionLocked(*session);
    }
    for (const auto& task : current_) {
      if (task != nullptr) task->token.Cancel();
    }
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

// --- Datasets --------------------------------------------------------------

Status QueryService::RegisterDataset(std::shared_ptr<Table> table,
                                     std::shared_ptr<Database> db) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (db == nullptr) {
    db = std::make_shared<RoaringDatabase>();
    ZV_RETURN_NOT_OK(db->RegisterTable(table));
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = table->name();
  if (datasets_.count(name)) {
    return Status::AlreadyExists("dataset already registered: " + name);
  }
  datasets_[name] = Dataset{std::move(table), std::move(db), 1};
  return Status::OK();
}

Status QueryService::ReplaceDataset(std::shared_ptr<Table> table,
                                    std::shared_ptr<Database> db) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (db == nullptr) {
    db = std::make_shared<RoaringDatabase>();
    ZV_RETURN_NOT_OK(db->RegisterTable(table));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(table->name());
  if (it == datasets_.end()) {
    return Status::NotFound("no such dataset: " + table->name());
  }
  it->second.table = std::move(table);
  it->second.db = std::move(db);
  ++it->second.epoch;  // every old fingerprint is now unreachable
  return Status::OK();
}

Result<uint64_t> QueryService::DatasetEpoch(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) return Status::NotFound("no such dataset: " + name);
  return it->second.epoch;
}

Result<std::shared_ptr<Database>> QueryService::DatasetDatabase(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) return Status::NotFound("no such dataset: " + name);
  return it->second.db;
}

Result<std::shared_ptr<Table>> QueryService::DatasetTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) return Status::NotFound("no such dataset: " + name);
  return it->second.table;
}

std::vector<std::string> QueryService::DatasetNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, d] : datasets_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

// --- Sessions --------------------------------------------------------------

Result<SessionId> QueryService::CreateSession() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Unavailable("service shutting down");
  sessions_.SweepExpired();  // expired sessions have no queued work
  return sessions_.Create()->id;
}

Status QueryService::EndSession(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto session = sessions_.Find(id);
  if (session == nullptr) {
    return Status::NotFound(StrFormat("unknown session %llu",
                                      static_cast<unsigned long long>(id)));
  }
  DrainSessionLocked(*session);
  sessions_.End(id);
  return Status::OK();
}

Status QueryService::SetUserInput(SessionId id, const std::string& name,
                                  Visualization viz) {
  std::lock_guard<std::mutex> lock(mu_);
  auto session = sessions_.Find(id);
  if (session == nullptr) {
    return Status::NotFound(StrFormat("unknown session %llu",
                                      static_cast<unsigned long long>(id)));
  }
  session->user_inputs[name] = std::move(viz);
  session->inputs_fingerprint = UserInputsFingerprint(session->user_inputs);
  sessions_.Touch(*session);
  return Status::OK();
}

size_t QueryService::ActiveSessions() {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.SweepExpired();
  return sessions_.size();
}

Status QueryService::TouchSession(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Unavailable("service shutting down");
  sessions_.SweepExpired();
  auto session = sessions_.Find(id);
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("unknown or expired session %llu",
                  static_cast<unsigned long long>(id)));
  }
  sessions_.Touch(*session);
  return Status::OK();
}

// --- Queries ---------------------------------------------------------------

Result<QueryHandle> QueryService::Submit(
    SessionId session_id, const std::string& dataset,
    const std::string& zql_text, std::optional<zql::OptLevel> optimization) {
  // Parse outside the service lock; the shared canonical path does the
  // rest. A parse failure is a property of the query, not the service —
  // it surfaces on the handle, exactly as execution errors do.
  Result<zql::ZqlQuery> parsed = zql::ParseQuery(zql_text);
  if (!parsed.ok()) {
    return SubmitParseError(session_id, dataset, parsed.status());
  }
  zql::ZqlQuery query = std::move(parsed).value();
  std::string canonical = zql::CanonicalText(query);
  return SubmitCanonical(session_id, dataset, std::move(query), canonical,
                         optimization);
}

Result<QueryHandle> QueryService::Submit(
    SessionId session_id, const std::string& dataset,
    const zql::ZqlQuery& query, std::optional<zql::OptLevel> optimization) {
  // Canonicalize outside the lock: this serialization is the cache
  // identity, shared by text- and builder-submitted queries.
  return SubmitCanonical(session_id, dataset, query,
                         zql::CanonicalText(query), optimization);
}

Result<QueryHandle> QueryService::SubmitParseError(SessionId session_id,
                                                   const std::string& dataset,
                                                   Status parse_error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Unavailable("service shutting down");
  sessions_.SweepExpired();
  auto session = sessions_.Find(session_id);
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("unknown or expired session %llu",
                  static_cast<unsigned long long>(session_id)));
  }
  if (datasets_.find(dataset) == datasets_.end()) {
    return Status::NotFound("unknown dataset: " + dataset);
  }
  sessions_.Touch(*session);
  ++session->queries_submitted;
  ++session->queries_completed;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  failed_.fetch_add(1, std::memory_order_relaxed);
  auto task = std::make_shared<QueryTask>();
  task->session = session_id;
  task->dataset = dataset;
  ResolveTask(*task, std::move(parse_error), nullptr, {});
  return QueryHandle(std::move(task));
}

Result<QueryHandle> QueryService::SubmitCanonical(
    SessionId session_id, const std::string& dataset, zql::ZqlQuery query,
    const std::string& canonical, std::optional<zql::OptLevel> optimization) {
  std::shared_ptr<QueryTask> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return Status::Unavailable("service shutting down");
    sessions_.SweepExpired();
    auto session = sessions_.Find(session_id);
    if (session == nullptr) {
      return Status::NotFound(
          StrFormat("unknown or expired session %llu",
                    static_cast<unsigned long long>(session_id)));
    }
    auto dit = datasets_.find(dataset);
    if (dit == datasets_.end()) {
      return Status::NotFound("unknown dataset: " + dataset);
    }
    const int64_t waiting =
        queued_count_->load(std::memory_order_relaxed);
    if (waiting >= static_cast<int64_t>(max_queue_)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(StrFormat(
          "admission control: %lld queries already waiting "
          "(ZV_MAX_QUEUE=%zu) — retry later",
          static_cast<long long>(waiting), max_queue_));
    }
    sessions_.Touch(*session);
    ++session->queries_submitted;
    submitted_.fetch_add(1, std::memory_order_relaxed);

    task = std::make_shared<QueryTask>();
    task->session = session_id;
    task->dataset = dataset;
    task->query = std::move(query);
    task->db = dit->second.db;
    task->table_name = dit->second.table->name();
    task->user_inputs = session->user_inputs;
    task->opt_override = optimization;
    const zql::OptLevel effective =
        optimization.value_or(base_zql_.optimization);
    task->fingerprint = QueryFingerprint(
        dataset, dit->second.epoch, dit->second.db->name(), effective,
        canonical, session->inputs_fingerprint);

    // Fast path: an *idle* session's repeat query is a shard-local hash
    // lookup — serve it here, consuming neither a queue slot nor a worker,
    // so a cached answer can never be rejected by admission control or
    // convoyed behind cold queries. Gated on the session being idle
    // because serving it early would otherwise reorder the session's
    // responses (per-session FIFO); queued tasks re-probe in RunTask.
    if (result_cache_enabled_ && !session->running) {
      const auto t0 = std::chrono::steady_clock::now();
      if (auto hit = result_cache_.Probe(task->fingerprint)) {
        zql::ZqlStats stats = hit->stats;
        stats.cache_hits = 1;
        stats.cache_misses = 0;
        stats.total_ms = MsSince(t0);
        completed_.fetch_add(1, std::memory_order_relaxed);
        ++session->queries_completed;
        ResolveTask(*task, Status::OK(), std::move(hit), stats);
        return QueryHandle(std::move(task));
      }
    }

    task->queued_slot = queued_count_;
    task->queued_counted = true;
    queued_count_->fetch_add(1, std::memory_order_relaxed);
    if (session->running) {
      session->fifo.push_back(task);  // per-session FIFO: wait for earlier
    } else {
      session->running = true;
      session->active = task;
      ready_.push_back(task);
      work_cv_.notify_one();
    }
  }
  return QueryHandle(std::move(task));
}

void QueryService::WorkerMain(size_t worker_index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !ready_.empty(); });
    if (stop_) return;
    std::shared_ptr<QueryTask> task = ready_.front();
    ready_.pop_front();
    ++in_flight_;
    current_[worker_index] = task;
    lock.unlock();

    bool skip = false;
    {
      std::lock_guard<std::mutex> tl(task->mu);
      ReleaseQueueSlotLocked(*task);  // no longer waiting (it's ours now)
      if (task->done) {
        skip = true;  // cancelled while queued; already resolved
      } else {
        task->started = true;
      }
    }
    if (skip) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
    } else {
      RunTask(task);
    }

    lock.lock();
    current_[worker_index] = nullptr;
    --in_flight_;
    AdvanceSessionLocked(task);
  }
}

void QueryService::RunTask(const std::shared_ptr<QueryTask>& task) {
  const auto t0 = std::chrono::steady_clock::now();
  if (result_cache_enabled_) {
    if (auto hit = result_cache_.Get(task->fingerprint)) {
      zql::ZqlStats stats = hit->stats;
      stats.cache_hits = 1;
      stats.cache_misses = 0;
      stats.total_ms = MsSince(t0);  // the lookup, not the original run
      completed_.fetch_add(1, std::memory_order_relaxed);
      ResolveTask(*task, Status::OK(), std::move(hit), stats);
      return;
    }
  }

  zql::ZqlOptions opts = base_zql_;
  if (context_cache_.max_bytes_total() > 0) {
    opts.context_cache = &context_cache_;
  }
  // The pool deduplicates in-flight builds even when the cache budget is
  // 0 (its cache probe just never hits).
  opts.context_pool = &context_pool_;
  if (batch_scans_ != nullptr) opts.batch_scans = batch_scans_.get();
  if (task->opt_override.has_value()) {
    opts.optimization = *task->opt_override;
  }
  zql::ZqlExecutor executor(task->db.get(), task->table_name, opts);
  for (const auto& [name, viz] : task->user_inputs) {
    executor.SetUserInput(name, viz);
  }

  CancelScope cancel_scope(task->token);
  Result<zql::ZqlResult> res = executor.Execute(task->query);
  if (!res.ok()) {
    auto& counter =
        res.status().code() == StatusCode::kCancelled ? cancelled_ : failed_;
    counter.fetch_add(1, std::memory_order_relaxed);
    ResolveTask(*task, res.status(), nullptr, {});
    return;
  }

  zql::ZqlResult result = std::move(res).value();
  contexts_reused_.fetch_add(result.stats.contexts_reused,
                             std::memory_order_relaxed);
  if (result_cache_enabled_) result.stats.cache_misses = 1;
  auto shared = std::make_shared<const zql::ZqlResult>(std::move(result));
  // A cancel that arrived after the last cancellation point must not
  // poison the cache with a result we'll report as kCancelled elsewhere —
  // it didn't: execution completed. Cache it; it is a full, valid result.
  if (result_cache_enabled_) {
    result_cache_.Put(task->fingerprint, shared);
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  ResolveTask(*task, Status::OK(), shared, shared->stats);
}

void QueryService::AdvanceSessionLocked(
    const std::shared_ptr<QueryTask>& finished) {
  auto session = sessions_.Find(finished->session);
  if (session == nullptr) return;  // ended while we executed
  sessions_.Touch(*session);
  ++session->queries_completed;
  session->active = nullptr;
  while (!session->fifo.empty()) {
    std::shared_ptr<QueryTask> next = session->fifo.front();
    session->fifo.pop_front();
    bool already_done;
    {
      std::lock_guard<std::mutex> tl(next->mu);
      already_done = next->done;
      if (already_done) ReleaseQueueSlotLocked(*next);
    }
    if (already_done) {  // cancelled while in the FIFO
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    session->active = next;
    ready_.push_back(next);
    work_cv_.notify_one();
    return;  // session keeps its running slot
  }
  session->running = false;
}

void QueryService::DrainSessionLocked(Session& session) {
  for (const auto& task : session.fifo) {
    ResolveTask(*task, Status::Cancelled("session ended"), nullptr, {});
    ReleaseQueueSlot(*task);
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  session.fifo.clear();
  if (session.active != nullptr) {
    // Executing (or sitting in ready_): cancel cooperatively; the worker
    // resolves it and finds the session gone.
    session.active->token.Cancel();
    std::lock_guard<std::mutex> tl(session.active->mu);
    if (!session.active->done && !session.active->started) {
      session.active->done = true;
      session.active->status = Status::Cancelled("session ended");
      ReleaseQueueSlotLocked(*session.active);
      session.active->cv.notify_all();
    }
  }
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cache_hits = result_cache_.hits();
  s.cache_misses = result_cache_.misses();
  s.contexts_reused = contexts_reused_.load(std::memory_order_relaxed);
  if (batch_scans_ != nullptr) {
    s.batch_passes = batch_scans_->passes();
    s.batch_passes_shared = batch_scans_->shared_passes();
    s.batch_statements = batch_scans_->statements_served();
  }
  s.result_cache_bytes = result_cache_.bytes();
  s.result_cache_entries = result_cache_.entries();
  s.context_cache_bytes = context_cache_.bytes();
  s.context_cache_entries = context_cache_.entries();
  const int64_t waiting = queued_count_->load(std::memory_order_relaxed);
  s.queued = waiting > 0 ? static_cast<size_t>(waiting) : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.sessions = sessions_.size();
    s.in_flight = in_flight_;
  }
  return s;
}

}  // namespace zv::server
