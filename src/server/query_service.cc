#include "server/query_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/sync.h"
#include "common/strings.h"
#include "engine/roaring_db.h"
#include "server/fingerprint.h"
#include "zql/canonical.h"
#include "zql/parser.h"

namespace zv::server {

namespace {

size_t EnvSize(const char* name, size_t def) {
  if (const char* env = std::getenv(name)) {
    const long long v = std::atoll(env);
    if (v >= 0) return static_cast<size_t>(v);
  }
  return def;
}

/// For knobs where 0 is nonsense (0 workers = every query hangs; 0 queue
/// slots = every Submit rejected) — and where atoll's 0-on-garbage would
/// silently produce exactly that. Falls back to the default instead.
size_t EnvSizePositive(const char* name, size_t def) {
  if (const char* env = std::getenv(name)) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return def;
}

double EnvDouble(const char* name, double def) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env) return v;
  }
  return def;
}

/// ZV_CACHE_MB split: results dominate by value-per-byte for an
/// interactive UI (a hit skips the whole query), contexts amortize the
/// alignment pass — 3/4 : 1/4.
size_t ResolveCacheBytes(size_t cache_mb) {
  const size_t mb = cache_mb == static_cast<size_t>(-1)
                        ? EnvSize("ZV_CACHE_MB", 64)
                        : cache_mb;
  return mb * (1ull << 20);
}

}  // namespace

/// \brief One submitted query, shared between its QueryHandle copies, the
/// session FIFO, the ready queue, and the executing worker. Immutable
/// after Submit() except for the mu-guarded resolution block.
struct QueryTask {
  SessionId session = 0;
  std::string dataset;
  zql::ZqlQuery query;  ///< the typed payload (parsed or builder-built)
  std::string fingerprint;
  std::string canonical;  ///< canonical ZQL text (for the slow-query log)
  /// Submission instant — the epoch for queue-wait and submit→complete
  /// latency (and the owning Trace's epoch, when traced).
  std::chrono::steady_clock::time_point submit_tp;
  /// The query's span tree; null for untraced queries. Written by the
  /// executing worker, published by task resolution, then immutable.
  std::shared_ptr<Trace> trace;
  std::shared_ptr<Database> db;  ///< snapshot: ReplaceDataset can't race us
  std::string table_name;
  std::map<std::string, Visualization> user_inputs;  ///< session snapshot
  std::optional<zql::OptLevel> opt_override;
  CancelToken token;

  /// The service's admission gauge, co-owned so the slot can be released
  /// from the handle even as the service shuts down.
  std::shared_ptr<std::atomic<int64_t>> queued_slot;

  std::mutex mu;
  std::condition_variable cv;
  bool queued_counted = false;  ///< still holds an admission-queue slot
  bool started = false;
  bool done = false;
  Status status;
  std::shared_ptr<const zql::ZqlResult> result;
  zql::ZqlStats stats;
};

namespace {

/// Releases the task's admission-queue slot. Exactly-once: guarded by
/// queued_counted under t.mu, so the handle's Cancel, the popping worker,
/// session drains, and shutdown can all race to it safely.
void ReleaseQueueSlotLocked(QueryTask& t) {
  if (t.queued_counted) {
    t.queued_counted = false;
    t.queued_slot->fetch_sub(1, std::memory_order_relaxed);
  }
}

void ReleaseQueueSlot(QueryTask& t) {
  std::lock_guard<std::mutex> lock(t.mu);
  ReleaseQueueSlotLocked(t);
}

/// Resolves `t` exactly once; later calls (a lost cancel/finish race) are
/// no-ops, so the first resolution wins.
void ResolveTask(QueryTask& t, Status status,
                 std::shared_ptr<const zql::ZqlResult> result,
                 const zql::ZqlStats& stats) {
  std::lock_guard<std::mutex> lock(t.mu);
  if (t.done) return;
  t.done = true;
  t.status = std::move(status);
  t.result = std::move(result);
  t.stats = stats;
  t.cv.notify_all();
}

}  // namespace

// ===========================================================================
// QueryHandle
// ===========================================================================

void QueryHandle::Cancel() {
  if (task_ == nullptr) return;
  task_->token.Cancel();
  // A query that never started needs no cooperation — resolve it here.
  // The worker that later pops it sees done and skips (counting it
  // cancelled); an already-started query resolves through its executor.
  std::lock_guard<std::mutex> lock(task_->mu);
  if (!task_->done && !task_->started) {
    task_->done = true;
    task_->status = Status::Cancelled("cancelled while queued");
    // Free the admission slot now — a dead queued entry must not keep
    // rejecting new submissions until a worker happens to pop it.
    ReleaseQueueSlotLocked(*task_);
    task_->cv.notify_all();
  }
}

Status QueryHandle::Wait() {
  if (task_ == nullptr) return Status::InvalidArgument("null query handle");
  std::unique_lock<std::mutex> lock(task_->mu);
  task_->cv.wait(lock, [&] { return task_->done; });
  return task_->status;
}

bool QueryHandle::done() const {
  if (task_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(task_->mu);
  return task_->done;
}

std::shared_ptr<const zql::ZqlResult> QueryHandle::result() const {
  if (task_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(task_->mu);
  return task_->result;
}

zql::ZqlStats QueryHandle::stats() const {
  if (task_ == nullptr) return {};
  std::lock_guard<std::mutex> lock(task_->mu);
  return task_->stats;
}

std::string QueryHandle::fingerprint() const {
  // Immutable after Submit — no lock needed.
  return task_ == nullptr ? std::string() : task_->fingerprint;
}

std::shared_ptr<const Trace> QueryHandle::trace() const {
  if (task_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(task_->mu);
  // Gated on resolution: the tree is still being written until then (the
  // ResolveTask handshake orders those writes before this read).
  return task_->done ? task_->trace : nullptr;
}

// ===========================================================================
// QueryService
// ===========================================================================

QueryService::QueryService(ServiceOptions options)
    : base_zql_(std::move(options.zql)),
      max_inflight_(options.max_inflight > 0
                        ? options.max_inflight
                        : EnvSizePositive("ZV_MAX_INFLIGHT", 4)),
      max_queue_(options.max_queue > 0
                     ? options.max_queue
                     : EnvSizePositive("ZV_MAX_QUEUE", 32)),
      result_cache_enabled_(options.result_cache),
      clock_(options.clock != nullptr ? options.clock : Clock::System()),
      trace_all_(options.trace_all >= 0 ? options.trace_all != 0
                                        : EnvSize("ZV_TRACE", 0) != 0),
      slow_query_ms_(std::isnan(options.slow_query_ms)
                         ? EnvDouble("ZV_SLOW_QUERY_MS", 100)
                         : options.slow_query_ms),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : MetricsRegistry::Global()),
      result_cache_(ResolveCacheBytes(options.cache_mb) / 4 * 3),
      context_cache_(ResolveCacheBytes(options.cache_mb) / 4),
      context_pool_(&context_cache_),
      sessions_(clock_, options.session_ttl_ms) {
  base_zql_.sql_trace = nullptr;  // executors run concurrently
  // Traces are per-task (QueryTask::trace); a caller-provided shared span
  // tree would interleave concurrent queries' spans.
  base_zql_.trace = nullptr;
  base_zql_.trace_parent = nullptr;
  m_latency_ = metrics_->GetHistogram("zv_query_latency_ms");
  m_queue_wait_ = metrics_->GetHistogram("zv_queue_wait_ms");
  m_fetch_ = metrics_->GetHistogram("zv_fetch_stage_ms");
  m_score_ = metrics_->GetHistogram("zv_score_stage_ms");
  m_shard_ = metrics_->GetHistogram("zv_shard_scan_ms");
  c_submitted_ = metrics_->GetCounter("zv_queries_submitted");
  c_completed_ = metrics_->GetCounter("zv_queries_completed");
  c_failed_ = metrics_->GetCounter("zv_queries_failed");
  c_cancelled_ = metrics_->GetCounter("zv_queries_cancelled");
  c_rejected_ = metrics_->GetCounter("zv_queries_rejected");
  c_cache_hits_ = metrics_->GetCounter("zv_result_cache_hits");
  c_cache_misses_ = metrics_->GetCounter("zv_result_cache_misses");
  c_ctx_reused_ = metrics_->GetCounter("zv_context_cache_reused");
  if (result_cache_.max_bytes_total() == 0) result_cache_enabled_ = false;
  if (options.shared_scans) {
    BatchScanOptions bopts;
    bopts.window_ms = options.batch_window_ms;
    bopts.metrics = metrics_;
    batch_scans_ = std::make_unique<BatchScanQueue>(bopts);
  }
  current_.resize(max_inflight_);
  workers_.reserve(max_inflight_);
  for (size_t i = 0; i < max_inflight_; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Resolve everything still waiting; cancel everything executing. No
    // handle is left unresolved, so handles may safely outlive us.
    for (const auto& task : ready_) {
      ResolveTask(*task, Status::Cancelled("service shutting down"), nullptr,
                  {});
      ReleaseQueueSlot(*task);
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      c_cancelled_->Increment();
    }
    ready_.clear();
    for (const auto& session : sessions_.All()) {
      DrainSessionLocked(*session);
    }
    for (const auto& task : current_) {
      if (task != nullptr) task->token.Cancel();
    }
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

// --- Datasets --------------------------------------------------------------

Status QueryService::RegisterDataset(std::shared_ptr<Table> table,
                                     std::shared_ptr<Database> db) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (db == nullptr) {
    db = std::make_shared<RoaringDatabase>();
    ZV_RETURN_NOT_OK(db->RegisterTable(table));
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = table->name();
  if (datasets_.count(name)) {
    return Status::AlreadyExists("dataset already registered: " + name);
  }
  datasets_[name] = Dataset{std::move(table), std::move(db), 1};
  return Status::OK();
}

Status QueryService::ReplaceDataset(std::shared_ptr<Table> table,
                                    std::shared_ptr<Database> db) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (db == nullptr) {
    db = std::make_shared<RoaringDatabase>();
    ZV_RETURN_NOT_OK(db->RegisterTable(table));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(table->name());
  if (it == datasets_.end()) {
    return Status::NotFound("no such dataset: " + table->name());
  }
  it->second.table = std::move(table);
  it->second.db = std::move(db);
  ++it->second.epoch;  // every old fingerprint is now unreachable
  return Status::OK();
}

Result<uint64_t> QueryService::DatasetEpoch(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) return Status::NotFound("no such dataset: " + name);
  return it->second.epoch;
}

Result<std::shared_ptr<Database>> QueryService::DatasetDatabase(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) return Status::NotFound("no such dataset: " + name);
  return it->second.db;
}

Result<std::shared_ptr<Table>> QueryService::DatasetTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) return Status::NotFound("no such dataset: " + name);
  return it->second.table;
}

std::vector<std::string> QueryService::DatasetNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  // zv-lint: order-independent — sorted before returning.
  for (const auto& [name, d] : datasets_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

// --- Sessions --------------------------------------------------------------

Result<SessionId> QueryService::CreateSession() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Unavailable("service shutting down");
  sessions_.SweepExpired();  // expired sessions have no queued work
  return sessions_.Create()->id;
}

Status QueryService::EndSession(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto session = sessions_.Find(id);
  if (session == nullptr) {
    return Status::NotFound(StrFormat("unknown session %llu",
                                      static_cast<unsigned long long>(id)));
  }
  DrainSessionLocked(*session);
  sessions_.End(id);
  return Status::OK();
}

Status QueryService::SetUserInput(SessionId id, const std::string& name,
                                  Visualization viz) {
  std::lock_guard<std::mutex> lock(mu_);
  auto session = sessions_.Find(id);
  if (session == nullptr) {
    return Status::NotFound(StrFormat("unknown session %llu",
                                      static_cast<unsigned long long>(id)));
  }
  session->user_inputs[name] = std::move(viz);
  session->inputs_fingerprint = UserInputsFingerprint(session->user_inputs);
  sessions_.Touch(*session);
  return Status::OK();
}

size_t QueryService::ActiveSessions() {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.SweepExpired();
  return sessions_.size();
}

Status QueryService::TouchSession(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Unavailable("service shutting down");
  sessions_.SweepExpired();
  auto session = sessions_.Find(id);
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("unknown or expired session %llu",
                  static_cast<unsigned long long>(id)));
  }
  sessions_.Touch(*session);
  return Status::OK();
}

// --- Queries ---------------------------------------------------------------

Result<QueryHandle> QueryService::Submit(
    SessionId session_id, const std::string& dataset,
    const std::string& zql_text, std::optional<zql::OptLevel> optimization,
    bool trace) {
  // Parse outside the service lock; the shared canonical path does the
  // rest. A parse failure is a property of the query, not the service —
  // it surfaces on the handle, exactly as execution errors do.
  Result<zql::ZqlQuery> parsed = zql::ParseQuery(zql_text);
  if (!parsed.ok()) {
    return SubmitParseError(session_id, dataset, parsed.status());
  }
  zql::ZqlQuery query = std::move(parsed).value();
  std::string canonical = zql::CanonicalText(query);
  return SubmitCanonical(session_id, dataset, std::move(query), canonical,
                         optimization, trace);
}

Result<QueryHandle> QueryService::Submit(
    SessionId session_id, const std::string& dataset,
    const zql::ZqlQuery& query, std::optional<zql::OptLevel> optimization,
    bool trace) {
  // Canonicalize outside the lock: this serialization is the cache
  // identity, shared by text- and builder-submitted queries.
  return SubmitCanonical(session_id, dataset, query,
                         zql::CanonicalText(query), optimization, trace);
}

Result<QueryHandle> QueryService::SubmitParseError(SessionId session_id,
                                                   const std::string& dataset,
                                                   Status parse_error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Unavailable("service shutting down");
  sessions_.SweepExpired();
  auto session = sessions_.Find(session_id);
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("unknown or expired session %llu",
                  static_cast<unsigned long long>(session_id)));
  }
  if (datasets_.find(dataset) == datasets_.end()) {
    return Status::NotFound("unknown dataset: " + dataset);
  }
  sessions_.Touch(*session);
  ++session->queries_submitted;
  ++session->queries_completed;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  failed_.fetch_add(1, std::memory_order_relaxed);
  c_submitted_->Increment();
  c_failed_->Increment();
  auto task = std::make_shared<QueryTask>();
  task->session = session_id;
  task->dataset = dataset;
  ResolveTask(*task, std::move(parse_error), nullptr, {});
  return QueryHandle(std::move(task));
}

Result<QueryHandle> QueryService::SubmitCanonical(
    SessionId session_id, const std::string& dataset, zql::ZqlQuery query,
    const std::string& canonical, std::optional<zql::OptLevel> optimization,
    bool trace) {
  std::shared_ptr<QueryTask> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return Status::Unavailable("service shutting down");
    sessions_.SweepExpired();
    auto session = sessions_.Find(session_id);
    if (session == nullptr) {
      return Status::NotFound(
          StrFormat("unknown or expired session %llu",
                    static_cast<unsigned long long>(session_id)));
    }
    auto dit = datasets_.find(dataset);
    if (dit == datasets_.end()) {
      return Status::NotFound("unknown dataset: " + dataset);
    }
    const int64_t waiting =
        queued_count_->load(std::memory_order_relaxed);
    if (waiting >= static_cast<int64_t>(max_queue_)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      c_rejected_->Increment();
      return Status::Unavailable(StrFormat(
          "admission control: %lld queries already waiting "
          "(ZV_MAX_QUEUE=%zu) — retry later",
          static_cast<long long>(waiting), max_queue_));
    }
    sessions_.Touch(*session);
    ++session->queries_submitted;
    submitted_.fetch_add(1, std::memory_order_relaxed);
    c_submitted_->Increment();

    task = std::make_shared<QueryTask>();
    task->session = session_id;
    task->dataset = dataset;
    task->query = std::move(query);
    task->db = dit->second.db;
    task->table_name = dit->second.table->name();
    task->user_inputs = session->user_inputs;
    task->opt_override = optimization;
    task->canonical = canonical;
    const zql::OptLevel effective =
        optimization.value_or(base_zql_.optimization);
    task->fingerprint = QueryFingerprint(
        dataset, dit->second.epoch, dit->second.db->name(), effective,
        canonical, session->inputs_fingerprint);
    task->submit_tp = SteadyNow();
    if (trace || trace_all_) {
      // The trace epoch is the submission instant: span offsets measure
      // time since submit, including the admission queue wait.
      task->trace = std::make_shared<Trace>();
      task->trace->root()->SetStr("dataset", dataset);
      task->trace->root()->SetStr("fingerprint", task->fingerprint);
    }

    // Fast path: an *idle* session's repeat query is a shard-local hash
    // lookup — serve it here, consuming neither a queue slot nor a worker,
    // so a cached answer can never be rejected by admission control or
    // convoyed behind cold queries. Gated on the session being idle
    // because serving it early would otherwise reorder the session's
    // responses (per-session FIFO); queued tasks re-probe in RunTask.
    if (result_cache_enabled_ && !session->running) {
      const auto t0 = SteadyNow();
      std::shared_ptr<const zql::ZqlResult> hit;
      {
        TraceScope lookup(task->trace.get(), nullptr, "cache_lookup");
        hit = result_cache_.Probe(task->fingerprint);
        lookup.SetBool("hit", hit != nullptr);
      }
      if (hit != nullptr) {
        zql::ZqlStats stats = hit->stats;
        stats.cache_hits = 1;
        stats.cache_misses = 0;
        stats.total_ms = MsSince(t0);
        completed_.fetch_add(1, std::memory_order_relaxed);
        c_completed_->Increment();
        c_cache_hits_->Increment();
        ++session->queries_completed;
        RecordCompletion(*task, Status::OK(), stats,
                         MsSince(task->submit_tp));
        ResolveTask(*task, Status::OK(), std::move(hit), stats);
        return QueryHandle(std::move(task));
      }
    }

    task->queued_slot = queued_count_;
    task->queued_counted = true;
    queued_count_->fetch_add(1, std::memory_order_relaxed);
    if (session->running) {
      session->fifo.push_back(task);  // per-session FIFO: wait for earlier
    } else {
      session->running = true;
      session->active = task;
      ready_.push_back(task);
      work_cv_.notify_one();
    }
  }
  return QueryHandle(std::move(task));
}

void QueryService::WorkerMain(size_t worker_index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !ready_.empty(); });
    if (stop_) return;
    std::shared_ptr<QueryTask> task = ready_.front();
    ready_.pop_front();
    ++in_flight_;
    current_[worker_index] = task;
    {
      ScopedUnlock unlocked(lock);  // run the task outside the service lock
      bool skip = false;
      {
        std::lock_guard<std::mutex> tl(task->mu);
        ReleaseQueueSlotLocked(*task);  // no longer waiting (it's ours now)
        if (task->done) {
          skip = true;  // cancelled while queued; already resolved
        } else {
          task->started = true;
        }
      }
      if (skip) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        c_cancelled_->Increment();
      } else {
        RunTask(task);
      }
    }
    current_[worker_index] = nullptr;
    --in_flight_;
    AdvanceSessionLocked(task);
  }
}

void QueryService::RunTask(const std::shared_ptr<QueryTask>& task) {
  const auto t0 = SteadyNow();
  Trace* trace = task->trace.get();
  // Admission wait: everything between Submit and this worker picking the
  // task up (the trace epoch is the submission instant, so the span runs
  // from 0 to now).
  const double wait_ms = MsBetween(task->submit_tp, t0);
  m_queue_wait_->Record(wait_ms);
  if (trace != nullptr) {
    trace->Add(nullptr, "queue_wait", 0.0, wait_ms);
  }
  if (result_cache_enabled_) {
    std::shared_ptr<const zql::ZqlResult> hit;
    {
      TraceScope lookup(trace, nullptr, "cache_lookup");
      hit = result_cache_.Get(task->fingerprint);
      lookup.SetBool("hit", hit != nullptr);
    }
    if (hit != nullptr) {
      zql::ZqlStats stats = hit->stats;
      stats.cache_hits = 1;
      stats.cache_misses = 0;
      stats.total_ms = MsSince(t0);  // the lookup, not the original run
      completed_.fetch_add(1, std::memory_order_relaxed);
      c_completed_->Increment();
      c_cache_hits_->Increment();
      RecordCompletion(*task, Status::OK(), stats, MsSince(task->submit_tp));
      ResolveTask(*task, Status::OK(), std::move(hit), stats);
      return;
    }
  }

  zql::ZqlOptions opts = base_zql_;
  opts.trace = trace;
  opts.trace_parent = nullptr;  // operator spans nest under the root
  if (context_cache_.max_bytes_total() > 0) {
    opts.context_cache = &context_cache_;
  }
  // The pool deduplicates in-flight builds even when the cache budget is
  // 0 (its cache probe just never hits).
  opts.context_pool = &context_pool_;
  if (batch_scans_ != nullptr) opts.batch_scans = batch_scans_.get();
  if (task->opt_override.has_value()) {
    opts.optimization = *task->opt_override;
  }
  zql::ZqlExecutor executor(task->db.get(), task->table_name, opts);
  for (const auto& [name, viz] : task->user_inputs) {
    executor.SetUserInput(name, viz);
  }

  CancelScope cancel_scope(task->token);
  Result<zql::ZqlResult> res = executor.Execute(task->query);
  if (!res.ok()) {
    const bool was_cancel = res.status().code() == StatusCode::kCancelled;
    auto& counter = was_cancel ? cancelled_ : failed_;
    counter.fetch_add(1, std::memory_order_relaxed);
    (was_cancel ? c_cancelled_ : c_failed_)->Increment();
    RecordCompletion(*task, res.status(), {}, MsSince(task->submit_tp));
    ResolveTask(*task, res.status(), nullptr, {});
    return;
  }

  zql::ZqlResult result = std::move(res).value();
  contexts_reused_.fetch_add(result.stats.contexts_reused,
                             std::memory_order_relaxed);
  c_ctx_reused_->Increment(result.stats.contexts_reused);
  if (result_cache_enabled_) {
    result.stats.cache_misses = 1;
    c_cache_misses_->Increment();
  }
  // Stage histograms: pure scan and scoring time per executed query (the
  // shard histogram only when the shard pool actually scanned chunks).
  m_fetch_->Record(result.stats.fetch_ms);
  m_score_->Record(result.stats.score_ms);
  if (result.stats.chunks_scanned > 0) {
    m_shard_->Record(result.stats.shard_ms);
  }
  auto shared = std::make_shared<const zql::ZqlResult>(std::move(result));
  // A cancel that arrived after the last cancellation point must not
  // poison the cache with a result we'll report as kCancelled elsewhere —
  // it didn't: execution completed. Cache it; it is a full, valid result.
  if (result_cache_enabled_) {
    result_cache_.Put(task->fingerprint, shared);
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  c_completed_->Increment();
  RecordCompletion(*task, Status::OK(), shared->stats,
                   MsSince(task->submit_tp));
  ResolveTask(*task, Status::OK(), shared, shared->stats);
}

void QueryService::RecordCompletion(QueryTask& task, const Status& status,
                                    const zql::ZqlStats& stats,
                                    double total_ms) {
  // Submit → resolve, cache hits and errors included — the latency a
  // client actually observed.
  m_latency_->Record(total_ms);
  if (task.trace != nullptr) {
    // Close the root span; the caller publishes it via ResolveTask, after
    // which the tree is immutable.
    task.trace->root()->duration_ms = task.trace->NowMs();
  }
  if (slow_query_ms_ < 0 || total_ms < slow_query_ms_) return;
  slow_queries_.fetch_add(1, std::memory_order_relaxed);
  SlowQuery entry;
  entry.session = task.session;
  entry.dataset = task.dataset;
  entry.zql = task.canonical;
  entry.fingerprint = task.fingerprint;
  entry.status = status;
  entry.stats = stats;
  entry.total_ms = total_ms;
  entry.trace = task.trace;
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_ring_.push_back(std::move(entry));
  if (slow_ring_.size() > kSlowRingCapacity) slow_ring_.pop_front();
}

std::vector<QueryService::SlowQuery> QueryService::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return std::vector<SlowQuery>(slow_ring_.rbegin(), slow_ring_.rend());
}

void QueryService::AdvanceSessionLocked(
    const std::shared_ptr<QueryTask>& finished) {
  auto session = sessions_.Find(finished->session);
  if (session == nullptr) return;  // ended while we executed
  sessions_.Touch(*session);
  ++session->queries_completed;
  session->active = nullptr;
  while (!session->fifo.empty()) {
    std::shared_ptr<QueryTask> next = session->fifo.front();
    session->fifo.pop_front();
    bool already_done;
    {
      std::lock_guard<std::mutex> tl(next->mu);
      already_done = next->done;
      if (already_done) ReleaseQueueSlotLocked(*next);
    }
    if (already_done) {  // cancelled while in the FIFO
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      c_cancelled_->Increment();
      continue;
    }
    session->active = next;
    ready_.push_back(next);
    work_cv_.notify_one();
    return;  // session keeps its running slot
  }
  session->running = false;
}

void QueryService::DrainSessionLocked(Session& session) {
  for (const auto& task : session.fifo) {
    ResolveTask(*task, Status::Cancelled("session ended"), nullptr, {});
    ReleaseQueueSlot(*task);
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    c_cancelled_->Increment();
  }
  session.fifo.clear();
  if (session.active != nullptr) {
    // Executing (or sitting in ready_): cancel cooperatively; the worker
    // resolves it and finds the session gone.
    session.active->token.Cancel();
    std::lock_guard<std::mutex> tl(session.active->mu);
    if (!session.active->done && !session.active->started) {
      session.active->done = true;
      session.active->status = Status::Cancelled("session ended");
      ReleaseQueueSlotLocked(*session.active);
      session.active->cv.notify_all();
    }
  }
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cache_hits = result_cache_.hits();
  s.cache_misses = result_cache_.misses();
  s.contexts_reused = contexts_reused_.load(std::memory_order_relaxed);
  if (batch_scans_ != nullptr) {
    s.batch_passes = batch_scans_->passes();
    s.batch_passes_shared = batch_scans_->shared_passes();
    s.batch_statements = batch_scans_->statements_served();
  }
  s.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  s.result_cache_bytes = result_cache_.bytes();
  s.result_cache_entries = result_cache_.entries();
  s.context_cache_bytes = context_cache_.bytes();
  s.context_cache_entries = context_cache_.entries();
  const int64_t waiting = queued_count_->load(std::memory_order_relaxed);
  s.queued = waiting > 0 ? static_cast<size_t>(waiting) : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.sessions = sessions_.size();
    s.in_flight = in_flight_;
  }
  return s;
}

}  // namespace zv::server
