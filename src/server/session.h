/// \file session.h
/// \brief Per-session serving state: identity, TTL bookkeeping, registered
/// user-input sketches, and the per-session FIFO of submitted queries.
///
/// zenvisage is interactive: one front-end user = one session, issuing a
/// stream of queries as they explore. The serving contract is:
///  - queries *within* a session execute in submission order (a user's
///    later gesture never observes state from before their earlier one);
///  - queries *across* sessions run concurrently up to the service's
///    in-flight bound;
///  - idle sessions expire after a TTL, reclaiming their sketch state.
///
/// SessionManager is intentionally NOT self-locking: every method must be
/// called with the owning QueryService's mutex held. The service has one
/// lock covering sessions + queues + admission counters, so session-FIFO
/// transitions and admission decisions are a single atomic step — the
/// alternative (per-manager locks) invites lock-order cycles between the
/// queue and the session table for no contention win at query granularity.

#ifndef ZV_SERVER_SESSION_H_
#define ZV_SERVER_SESSION_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "viz/visualization.h"

namespace zv::server {

using SessionId = uint64_t;

struct QueryTask;  // defined in query_service.cc

/// \brief One interactive client. All fields are guarded by the owning
/// QueryService's mutex.
struct Session {
  SessionId id = 0;
  int64_t last_active_ms = 0;

  /// User-drawn input visualizations (`-f1` rows, §2) registered on this
  /// session; snapshotted into each submitted task.
  std::map<std::string, Visualization> user_inputs;
  /// Content hash of user_inputs, folded into every query fingerprint.
  /// Maintained by SetUserInput so Submit doesn't rehash sketch data.
  std::string inputs_fingerprint;

  /// FIFO of tasks waiting on this session's in-order guarantee. The task
  /// currently occupying the session's running slot is not in here — it is
  /// `active` (sitting in the service ready queue or executing).
  std::deque<std::shared_ptr<QueryTask>> fifo;
  bool running = false;
  std::shared_ptr<QueryTask> active;

  uint64_t queries_submitted = 0;
  uint64_t queries_completed = 0;
};

/// \brief Session table with TTL eviction. Externally synchronized (see
/// file comment).
class SessionManager {
 public:
  /// `clock` must outlive the manager; `ttl_ms <= 0` disables expiry.
  SessionManager(Clock* clock, int64_t ttl_ms)
      : clock_(clock), ttl_ms_(ttl_ms) {}

  std::shared_ptr<Session> Create() {
    auto s = std::make_shared<Session>();
    s->id = next_id_++;
    s->last_active_ms = clock_->NowMs();
    sessions_[s->id] = s;
    return s;
  }

  /// nullptr when the id is unknown or the session has expired.
  std::shared_ptr<Session> Find(SessionId id) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return nullptr;
    if (Expired(*it->second)) {
      sessions_.erase(it);
      return nullptr;
    }
    return it->second;
  }

  bool End(SessionId id) { return sessions_.erase(id) > 0; }

  /// Evicts every expired session; returns how many were evicted.
  /// Invariant: an evicted session can never hold unresolved work —
  /// Expired() refuses sessions with a running slot or a non-empty FIFO,
  /// so eviction is purely a bookkeeping cleanup.
  size_t SweepExpired() {
    size_t evicted = 0;
    // zv-lint: order-independent — pure eviction sweep; each erase
    // decision depends only on the session itself.
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (Expired(*it->second)) {
        it = sessions_.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
    return evicted;
  }

  void Touch(Session& s) { s.last_active_ms = clock_->NowMs(); }

  size_t size() const { return sessions_.size(); }
  int64_t ttl_ms() const { return ttl_ms_; }

  /// All live sessions (for stats / shutdown drains), in ascending id
  /// order so consumers never observe hash order.
  std::vector<std::shared_ptr<Session>> All() const {
    std::vector<std::shared_ptr<Session>> out;
    out.reserve(sessions_.size());
    // zv-lint: order-independent — sorted by id before returning.
    for (const auto& [id, s] : sessions_) out.push_back(s);
    std::sort(out.begin(), out.end(),
              [](const std::shared_ptr<Session>& a,
                 const std::shared_ptr<Session>& b) { return a->id < b->id; });
    return out;
  }

 private:
  bool Expired(const Session& s) const {
    // A session with queued or running work is live by definition — its
    // last_active stamp refreshes when the work completes.
    if (s.running || !s.fifo.empty()) return false;
    return ttl_ms_ > 0 && clock_->NowMs() - s.last_active_ms > ttl_ms_;
  }

  Clock* clock_;
  const int64_t ttl_ms_;
  SessionId next_id_ = 1;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;
};

}  // namespace zv::server

#endif  // ZV_SERVER_SESSION_H_
