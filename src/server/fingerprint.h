/// \file fingerprint.h
/// \brief Canonicalized query fingerprints — the ResultCache key.
///
/// Two requests must share a cache entry exactly when they would produce
/// byte-identical results. The fingerprint therefore covers every
/// result-relevant coordinate:
///  - the canonical *AST* serialization (zql::CanonicalText of the parsed
///    or builder-built query), so cosmetic retyping, reordered whitespace,
///    AND a ZqlBuilder-built equivalent of typed text all share one entry;
///  - the dataset name AND its epoch — any table mutation bumps the epoch,
///    so a stale entry's key simply stops being generated and can never be
///    served again (it ages out of the LRU);
///  - the effective optimization level and backend name;
///  - a content hash of the session's registered user-input sketches, since
///    `-f1` rows bind data that exists nowhere in the table. Sessions with
///    no sketches hash to the same empty token, so their entries are shared
///    service-wide.

#ifndef ZV_SERVER_FINGERPRINT_H_
#define ZV_SERVER_FINGERPRINT_H_

#include <cstdint>
#include <map>
#include <string>

#include "viz/visualization.h"
#include "zql/executor.h"

namespace zv::server {

/// Whitespace-normalized ZQL: per line, leading/trailing whitespace is
/// trimmed and internal runs of spaces/tabs collapse to one space — except
/// inside single-quoted literals, which are preserved verbatim. Blank
/// lines are dropped. No longer the cache-key path (QueryService now keys
/// on zql::CanonicalText of the AST); kept for text-level tooling that
/// wants normalization without a full parse.
std::string CanonicalZql(const std::string& text);

/// Content hash of a session's registered user-input visualizations
/// (name binding + identity + data). Empty map hashes to "".
std::string UserInputsFingerprint(
    const std::map<std::string, Visualization>& inputs);

/// The ResultCache key for one request.
std::string QueryFingerprint(const std::string& dataset, uint64_t epoch,
                             const std::string& backend,
                             zql::OptLevel optimization,
                             const std::string& canonical_zql,
                             const std::string& user_inputs_fp);

}  // namespace zv::server

#endif  // ZV_SERVER_FINGERPRINT_H_
