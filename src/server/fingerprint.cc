#include "server/fingerprint.h"

#include "common/hash.h"
#include "tasks/context_cache.h"

namespace zv::server {

std::string CanonicalZql(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::string line;
  auto flush_line = [&] {
    // Trim trailing whitespace (leading/internal handled during the scan).
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t')) {
      line.pop_back();
    }
    if (!line.empty()) {
      out += line;
      out += '\n';
    }
    line.clear();
  };
  bool in_quote = false;
  bool pending_space = false;  // a collapsed whitespace run awaits a token
  for (char c : text) {
    if (c == '\n') {
      in_quote = false;  // ZQL string literals do not span lines
      pending_space = false;
      flush_line();
      continue;
    }
    if (in_quote) {
      line += c;
      if (c == '\'') in_quote = false;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!line.empty()) pending_space = true;  // drop leading whitespace
      continue;
    }
    if (pending_space) {
      line += ' ';
      pending_space = false;
    }
    line += c;
    if (c == '\'') in_quote = true;
  }
  flush_line();
  return out;
}

std::string UserInputsFingerprint(
    const std::map<std::string, Visualization>& inputs) {
  if (inputs.empty()) return "";
  Fingerprint128 fp;
  fp.U64(inputs.size());
  for (const auto& [name, viz] : inputs) {  // std::map: deterministic order
    fp.Str(name);
    // Identity + data, via the same content hash the ContextCache uses
    // (the norm/align arguments only need to be fixed, not meaningful).
    const Visualization* v = &viz;
    fp.Str(ScoringSetFingerprint({v}, Normalization::kZScore,
                                 Alignment::kZeroFill));
  }
  return fp.Hex();
}

std::string QueryFingerprint(const std::string& dataset, uint64_t epoch,
                             const std::string& backend,
                             zql::OptLevel optimization,
                             const std::string& canonical_zql,
                             const std::string& user_inputs_fp) {
  Fingerprint128 fp;
  fp.Str(dataset);
  fp.U64(epoch);
  fp.Str(backend);
  fp.U64(static_cast<uint64_t>(optimization));
  fp.Str(canonical_zql);
  fp.Str(user_inputs_fp);
  return fp.Hex();
}

}  // namespace zv::server
