/// \file query_service.h
/// \brief The interactive serving layer: one QueryService owns named
/// datasets and serves ZQL requests from many concurrent sessions.
///
/// The engine underneath (PR 1 parallel scoring, PR 2 top-k pruning) makes
/// one query fast; this layer makes the *system* responsive under the
/// paper's actual workload — a front end firing a query per user gesture,
/// re-issuing near-identical queries dozens of times per minute:
///
///  - SessionManager (session.h): per-session sketch state and TTL
///    eviction, with a per-session FIFO guarantee (a session's queries
///    execute in submission order; different sessions run concurrently).
///  - ResultCache (result_cache.h): sharded LRU over finished results,
///    keyed by canonicalized query fingerprint + dataset epoch. Any table
///    mutation bumps the epoch, so a stale entry can never be served.
///  - ContextCache (tasks/context_cache.h): ScoringContext alignment
///    matrices shared across queries and sessions by content fingerprint —
///    the dominant setup cost of repeat exploration becomes a hash lookup.
///  - Async execution: Submit() returns a QueryHandle immediately; the
///    query runs on one of max_inflight service workers (each of which
///    still fans its scoring loops over the ZV_THREADS pool). Cancel()
///    flips a cooperative CancelToken observed at ParallelFor chunk
///    boundaries and per scored combination; a cancelled query returns
///    kCancelled and leaves the service healthy.
///  - Admission control: at most max_inflight queries execute and at most
///    max_queue wait; past that Submit() returns kUnavailable immediately
///    instead of queueing unboundedly (fail fast beats convoying an
///    interactive UI).
///  - Shared scans (engine/shared_scan.h): concurrent queries over the
///    same dataset snapshot coalesce their row-selection passes into one
///    chunk-parallel scan (docs/architecture.md "Batched execution"),
///    byte-identically to per-query scans.
///  - ScoringContextPool (tasks/context_pool.h): single-flight context
///    builds across the workers, feeding the ContextCache.
///
/// Knobs (constructor options override; 0 / unset falls back to env):
///   ZV_CACHE_MB          total cache budget, MB (default 64; 3/4 results,
///                        1/4 contexts; 0 disables both caches)
///   ZV_MAX_INFLIGHT      concurrent executing queries (default 4)
///   ZV_MAX_QUEUE         waiting queries before kUnavailable (default 32)
///   ZV_BATCH_WINDOW_MS   shared-scan group-commit window (default 0:
///                        coalesce only work already waiting)
///   ZV_TRACE             1 = trace every query (default 0: only queries
///                        that ask, via Submit's trace flag / wire field)
///   ZV_SLOW_QUERY_MS     slow-query log threshold, ms (default 100;
///                        negative disables the log)
///
/// Observability (docs/architecture.md "Observability"): every query can
/// carry a TraceSpan tree (common/trace.h) through the scheduler and scan
/// layers, the service records latency histograms and counters into a
/// MetricsRegistry (common/metrics.h), and queries slower than
/// ZV_SLOW_QUERY_MS land in a bounded slow-query ring (SlowQueries()).
/// All of it is pure observation: results are byte-identical with tracing
/// on or off, and no trace or metric state enters QueryFingerprint or any
/// cache.

#ifndef ZV_SERVER_QUERY_SERVICE_H_
#define ZV_SERVER_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/database.h"
#include "engine/shared_scan.h"
#include "server/result_cache.h"
#include "server/session.h"
#include "tasks/context_cache.h"
#include "tasks/context_pool.h"
#include "zql/executor.h"

namespace zv::server {

struct ServiceOptions {
  /// Base executor configuration (task library, optimization level, named
  /// sets, …) applied to every query. sql_trace is ignored (executors run
  /// concurrently; a shared trace pointer would race).
  zql::ZqlOptions zql;
  /// 0 = resolve from ZV_MAX_INFLIGHT (default 4).
  size_t max_inflight = 0;
  /// 0 = resolve from ZV_MAX_QUEUE (default 32).
  size_t max_queue = 0;
  /// Total cache budget in MB; SIZE_MAX = resolve from ZV_CACHE_MB
  /// (default 64). 0 disables both the result and the context cache.
  size_t cache_mb = static_cast<size_t>(-1);
  /// Serve repeat queries from the ResultCache (tests disable this to
  /// isolate ContextCache effects while keeping the budget).
  bool result_cache = true;
  /// Route concurrent queries' row selections through one shared scan
  /// pass (engine/shared_scan.h); false = a private scan per query.
  bool shared_scans = true;
  /// Shared-scan group-commit window, ms; negative = resolve from
  /// ZV_BATCH_WINDOW_MS (default 0 — never delay a lone query).
  double batch_window_ms = -1;
  /// Idle sessions expire after this long; <= 0 never expires.
  int64_t session_ttl_ms = 10 * 60 * 1000;
  /// Time source for TTLs (tests inject ManualClock); null = system.
  Clock* clock = nullptr;
  /// Trace every query, not just those whose Submit asks; negative =
  /// resolve from ZV_TRACE (default off).
  int trace_all = -1;
  /// Queries slower than this (submit → resolve, ms) enter the slow-query
  /// ring; NaN = resolve from ZV_SLOW_QUERY_MS (default 100). Negative
  /// disables the log.
  double slow_query_ms = std::numeric_limits<double>::quiet_NaN();
  /// Where the service records its histograms and counters; null =
  /// MetricsRegistry::Global(). Tests and benches inject a private
  /// registry so concurrent services never bleed into each other.
  MetricsRegistry* metrics = nullptr;
};

/// Monitoring snapshot (see QueryService::stats()).
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;   ///< finished OK (including cache hits)
  uint64_t failed = 0;      ///< finished with a non-cancel error
  uint64_t cancelled = 0;   ///< cancelled before or during execution
  uint64_t rejected = 0;    ///< refused by admission control
  uint64_t cache_hits = 0;  ///< ResultCache
  uint64_t cache_misses = 0;
  uint64_t contexts_reused = 0;  ///< ScoringContext dedupe + cache hits
  uint64_t batch_passes = 0;         ///< shared-scan passes executed
  uint64_t batch_passes_shared = 0;  ///< …that carried >1 query's work
  uint64_t batch_statements = 0;     ///< statements served by those passes
  uint64_t slow_queries = 0;  ///< queries that crossed ZV_SLOW_QUERY_MS
  size_t sessions = 0;
  size_t in_flight = 0;
  size_t queued = 0;
  size_t result_cache_bytes = 0;
  size_t result_cache_entries = 0;
  size_t context_cache_bytes = 0;
  size_t context_cache_entries = 0;
};

struct QueryTask;  // internal; defined in query_service.cc

/// \brief Future-like handle to one submitted query. Copyable; all copies
/// observe the same execution. Outliving the service is safe: the service
/// resolves every outstanding handle (kCancelled) before it destructs.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const { return task_ != nullptr; }

  /// Requests cooperative cancellation: a queued query resolves
  /// kCancelled immediately; an executing one stops at its next
  /// cancellation point (chunk boundary / scored combination / row
  /// boundary). Idempotent; never blocks on the query.
  void Cancel();

  /// Blocks until the query resolves; returns its final status.
  Status Wait();

  bool done() const;

  /// The finished result (null until done, and on error). Shared with the
  /// ResultCache: treat as immutable.
  std::shared_ptr<const zql::ZqlResult> result() const;

  /// Per-call stats: on a cache hit, cache_hits = 1 and total_ms is the
  /// lookup time; on a miss, the executing run's stats with
  /// cache_misses = 1.
  zql::ZqlStats stats() const;

  /// The ResultCache key this query was filed under (hash of the canonical
  /// AST serialization + dataset epoch + backend + opt level + session
  /// sketches). Stable across handle copies; empty for a handle that was
  /// resolved before fingerprinting (e.g. a parse error).
  std::string fingerprint() const;

  /// The query's span tree: null until the query resolves (the tree is
  /// still being written) and for untraced queries. Immutable once
  /// returned; shared with the service's slow-query ring.
  std::shared_ptr<const Trace> trace() const;

 private:
  friend class QueryService;
  explicit QueryHandle(std::shared_ptr<QueryTask> task)
      : task_(std::move(task)) {}

  std::shared_ptr<QueryTask> task_;
};

/// \brief The serving facade. Thread-safe; create one per process (or per
/// tenant) and share it across sessions.
class QueryService {
 public:
  explicit QueryService(ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// --- Datasets ---------------------------------------------------------

  /// Registers `table` under its own name, backed by `db` (a fresh
  /// RoaringDatabase when null). Fails on duplicate names.
  Status RegisterDataset(std::shared_ptr<Table> table,
                         std::shared_ptr<Database> db = nullptr);

  /// Atomically replaces the dataset of the same name and bumps its epoch:
  /// queries already executing keep their snapshot; every later query sees
  /// the new table, and no cached result from the old epoch can be served.
  Status ReplaceDataset(std::shared_ptr<Table> table,
                        std::shared_ptr<Database> db = nullptr);

  Result<uint64_t> DatasetEpoch(const std::string& name) const;
  Result<std::shared_ptr<Database>> DatasetDatabase(
      const std::string& name) const;
  Result<std::shared_ptr<Table>> DatasetTable(const std::string& name) const;
  std::vector<std::string> DatasetNames() const;

  /// --- Sessions ---------------------------------------------------------

  Result<SessionId> CreateSession();

  /// Ends the session now: queued queries resolve kCancelled, an executing
  /// one is cancelled cooperatively.
  Status EndSession(SessionId id);

  /// Registers a user-drawn input visualization (`-name` rows) on the
  /// session; snapshotted into subsequently submitted queries and folded
  /// into their cache fingerprints.
  Status SetUserInput(SessionId id, const std::string& name,
                      Visualization viz);

  /// Sweeps expired sessions, then returns the live count.
  size_t ActiveSessions();

  /// Validates `id` exactly the way Submit does — shutdown gate, TTL
  /// sweep, lookup — and refreshes its activity timestamp. The session
  /// check for request paths that do not execute (wire EXPLAIN), so both
  /// request kinds share one lifecycle semantics.
  Status TouchSession(SessionId id);

  /// --- Queries ----------------------------------------------------------

  /// Enqueues `zql_text` against `dataset` for `session`. Returns
  /// kUnavailable under overload, kNotFound for unknown session/dataset.
  /// Parse and execution errors surface on the handle, not here. A thin
  /// wrapper: parses the text and forwards to the typed overload below, so
  /// both entry points share one fingerprint space (a retyped query and
  /// its builder-built equivalent hit the same cache entry).
  /// `trace` requests a span tree for this query (QueryHandle::trace());
  /// ZV_TRACE / ServiceOptions::trace_all traces regardless.
  Result<QueryHandle> Submit(SessionId session, const std::string& dataset,
                             const std::string& zql_text,
                             std::optional<zql::OptLevel> optimization = {},
                             bool trace = false);

  /// Typed entry point: enqueues an already-built AST (from ZqlBuilder or a
  /// prior parse) — no text round trip. The cache key is the canonical AST
  /// serialization (zql::CanonicalText). The snapshot copies the row
  /// structure but *shares* the set/process expression nodes
  /// (shared_ptr<ZSetExpr> / shared_ptr<ProcessExpr>): dropping the
  /// caller's query is always safe, but mutating those shared nodes after
  /// Submit races with the executing worker and desynchronizes the
  /// already-computed fingerprint — build a fresh query per variant
  /// instead (ZqlBuilder makes that cheap).
  Result<QueryHandle> Submit(SessionId session, const std::string& dataset,
                             const zql::ZqlQuery& query,
                             std::optional<zql::OptLevel> optimization = {},
                             bool trace = false);

  ServiceStats stats() const;

  /// --- Observability ----------------------------------------------------

  /// One slow-query ring entry (queries whose submit → resolve time
  /// crossed the threshold, cache hits and errors included).
  struct SlowQuery {
    SessionId session = 0;
    std::string dataset;
    std::string zql;  ///< canonical text (empty for parse errors)
    std::string fingerprint;
    Status status;
    zql::ZqlStats stats;
    double total_ms = 0;
    /// The query's span tree when it was traced; null otherwise.
    std::shared_ptr<const Trace> trace;
  };

  /// The last (up to) kSlowRingCapacity slow queries, most recent first.
  std::vector<SlowQuery> SlowQueries() const;
  static constexpr size_t kSlowRingCapacity = 32;

  /// The registry this service records into (never null).
  MetricsRegistry* metrics() const { return metrics_; }
  bool trace_all() const { return trace_all_; }
  double slow_query_ms() const { return slow_query_ms_; }

  /// The base ZqlOptions every query executes under (modulo the per-query
  /// `optimization` override) — the configuration EXPLAIN plans against.
  const zql::ZqlOptions& zql_options() const { return base_zql_; }

  size_t max_inflight() const { return max_inflight_; }
  size_t max_queue() const { return max_queue_; }
  size_t cache_bytes() const { return result_cache_.max_bytes_total(); }

 private:
  struct Dataset {
    std::shared_ptr<Table> table;
    std::shared_ptr<Database> db;
    uint64_t epoch = 1;
  };

  void WorkerMain(size_t worker_index);
  void RunTask(const std::shared_ptr<QueryTask>& task);
  /// Shared Submit body: `canonical` is the query's canonical AST
  /// serialization (already computed so the text path canonicalizes once).
  Result<QueryHandle> SubmitCanonical(
      SessionId session, const std::string& dataset, zql::ZqlQuery query,
      const std::string& canonical, std::optional<zql::OptLevel> optimization,
      bool trace);
  /// Closes out one resolved query: latency histogram, the slow-query
  /// ring, and the trace root span's duration.
  void RecordCompletion(QueryTask& task, const Status& status,
                        const zql::ZqlStats& stats, double total_ms);
  /// Admits a query whose parse already failed: the error surfaces on the
  /// returned handle (kNotFound still surfaces here for a dead session or
  /// dataset, matching the typed path).
  Result<QueryHandle> SubmitParseError(SessionId session,
                                       const std::string& dataset,
                                       Status parse_error);
  /// Moves the session's next runnable task to the ready queue (or clears
  /// its running slot). Requires mu_.
  void AdvanceSessionLocked(const std::shared_ptr<QueryTask>& finished);
  /// Resolves every queued task of `session` with kCancelled and cancels
  /// its executing one, if any. Requires mu_.
  void DrainSessionLocked(Session& session);

  zql::ZqlOptions base_zql_;
  size_t max_inflight_ = 4;
  size_t max_queue_ = 32;
  bool result_cache_enabled_ = true;
  Clock* clock_;
  bool trace_all_ = false;
  double slow_query_ms_ = 100;

  /// Metrics, resolved once at construction (see ServiceOptions::metrics).
  MetricsRegistry* metrics_ = nullptr;
  Histogram* m_latency_ = nullptr;     ///< zv_query_latency_ms
  Histogram* m_queue_wait_ = nullptr;  ///< zv_queue_wait_ms
  Histogram* m_fetch_ = nullptr;       ///< zv_fetch_stage_ms
  Histogram* m_score_ = nullptr;       ///< zv_score_stage_ms
  Histogram* m_shard_ = nullptr;       ///< zv_shard_scan_ms
  Counter* c_submitted_ = nullptr;
  Counter* c_completed_ = nullptr;
  Counter* c_failed_ = nullptr;
  Counter* c_cancelled_ = nullptr;
  Counter* c_rejected_ = nullptr;
  Counter* c_cache_hits_ = nullptr;    ///< zv_result_cache_hits
  Counter* c_cache_misses_ = nullptr;  ///< zv_result_cache_misses
  Counter* c_ctx_reused_ = nullptr;    ///< zv_context_cache_reused

  /// Slow-query ring (most recent at the back), its own lock so a slow
  /// burst never contends with the scheduling mutex.
  mutable std::mutex slow_mu_;
  std::deque<SlowQuery> slow_ring_;
  std::atomic<uint64_t> slow_queries_{0};

  ResultCache result_cache_;
  ContextCache context_cache_;
  /// Single-flight ScoringContext builds across workers (wraps the cache).
  ScoringContextPool context_pool_;
  /// Cross-query shared-scan coordinator; null when shared_scans is off.
  /// Destroyed after the workers join (dtor body), so no caller can still
  /// be blocked in SelectRows when it goes down.
  std::unique_ptr<BatchScanQueue> batch_scans_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  bool stop_ = false;
  std::unordered_map<std::string, Dataset> datasets_;
  SessionManager sessions_;
  std::deque<std::shared_ptr<QueryTask>> ready_;
  /// Waiting queries (ready_ + session fifos, not yet started) — the
  /// admission-control gauge. Shared with every task (each holds the
  /// pointer) so QueryHandle::Cancel can release a dead queued entry's
  /// slot immediately instead of leaving it counted until a worker pops
  /// it; tasks therefore never need a back-pointer into the service.
  std::shared_ptr<std::atomic<int64_t>> queued_count_ =
      std::make_shared<std::atomic<int64_t>>(0);
  size_t in_flight_ = 0;  ///< currently executing
  std::vector<std::shared_ptr<QueryTask>> current_;  ///< per-worker slot
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> contexts_reused_{0};
};

}  // namespace zv::server

#endif  // ZV_SERVER_QUERY_SERVICE_H_
