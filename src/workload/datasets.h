/// \file datasets.h
/// \brief Deterministic synthetic dataset generators standing in for the
/// paper's evaluation data (DESIGN.md §4, substitution 2):
///
///  - sales:   the synthetic product-sales dataset (§7: 10M rows; product,
///             size, weight, city, country, category, month, year, profit,
///             revenue — plus `sales` and `location`, which the paper's ZQL
///             examples use throughout Chapters 2–5),
///  - census:  census-income-like (300K x 40),
///  - airline: airline-delay-like (15M x 29),
///  - housing: Zillow-housing-like (245K x 15) for the user study chapter.
///
/// All generators plant recoverable structure: per-entity latent trends
/// (increasing / decreasing / seasonal / flat / anomalous), cross-region
/// divergences (products up in US but down in UK — Table 2.3/5.1), and
/// sales-vs-profit discrepancies (Table 3.23), so the similarity, outlier,
/// and discrepancy queries in examples, tests, and benches have planted
/// ground truth to find.

#ifndef ZV_WORKLOAD_DATASETS_H_
#define ZV_WORKLOAD_DATASETS_H_

#include <memory>

#include "storage/table.h"

namespace zv {

struct SalesDataOptions {
  size_t num_rows = 200000;
  size_t num_products = 50;
  size_t num_categories = 8;
  size_t num_cities = 40;
  size_t num_countries = 8;  ///< country[0]="US", country[1]="UK"
  int year_min = 2010;
  int year_max = 2019;
  uint64_t seed = 7;

  /// Fraction of products with opposite sales trends in US vs UK.
  double divergent_fraction = 0.2;
  /// Fraction of products whose profit trend opposes their sales trend.
  double discrepant_fraction = 0.3;
  /// Fraction of products with anomalous (outlier) shapes.
  double outlier_fraction = 0.05;
};

/// Builds the synthetic sales table named "sales".
std::shared_ptr<Table> MakeSalesTable(const SalesDataOptions& opts = {});

struct CensusDataOptions {
  size_t num_rows = 50000;   ///< paper: 300000
  size_t num_attributes = 40;
  uint64_t seed = 11;
};

/// Census-income-like table "census": ~36 categorical attributes of varying
/// cardinality plus a few numeric measures (income, age, hours).
std::shared_ptr<Table> MakeCensusTable(const CensusDataOptions& opts = {});

struct AirlineDataOptions {
  size_t num_rows = 200000;  ///< paper: 15M
  size_t num_airports = 60;
  size_t num_carriers = 12;
  int year_min = 2000;
  int year_max = 2008;
  uint64_t seed = 13;
  /// Fraction of airports whose average delays trend upward over years
  /// (the planted answers for the Table 7.1 query).
  double increasing_delay_fraction = 0.25;
};

/// Airline-delay-like table "airline" with 29 attributes echoing the
/// stat-computing.org ASA dataset layout.
std::shared_ptr<Table> MakeAirlineTable(const AirlineDataOptions& opts = {});

struct HousingDataOptions {
  size_t num_rows = 60000;  ///< paper: ~245K
  size_t num_states = 25;
  size_t num_counties = 120;
  size_t num_cities = 300;
  int year_min = 2004;
  int year_max = 2015;
  uint64_t seed = 17;
};

/// Zillow-like housing table "housing": state/county/city geography with
/// sold price, listing price, turnover and foreclosure rates per month.
std::shared_ptr<Table> MakeHousingTable(const HousingDataOptions& opts = {});

}  // namespace zv

#endif  // ZV_WORKLOAD_DATASETS_H_
