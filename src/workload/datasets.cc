#include "workload/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"

namespace zv {

namespace {

constexpr double kTau = 6.283185307179586;

/// Latent per-entity series shape used to plant recoverable trends.
struct TrendProfile {
  double slope = 0;       ///< linear component per normalized time
  double season_amp = 0;  ///< seasonal amplitude
  double season_phase = 0;
  double base = 1;        ///< base level
  bool anomalous = false; ///< sharp spike shape (outlier search target)
  double spike_at = 0.5;  ///< position of the spike in normalized time

  double Eval(double t01, double month01) const {
    double v = base * (1.0 + slope * (t01 - 0.5));
    v += season_amp * std::sin(kTau * month01 + season_phase);
    if (anomalous) {
      const double d = (t01 - spike_at) / 0.08;
      v += 2.5 * base * std::exp(-d * d);
    }
    return std::max(v, 0.05);
  }
};

TrendProfile RandomProfile(Rng& rng) {
  TrendProfile p;
  p.base = rng.UniformDouble(0.5, 2.0);
  p.slope = rng.UniformDouble(-1.2, 1.2);
  p.season_amp = rng.UniformDouble(0.0, 0.35);
  p.season_phase = rng.UniformDouble(0, kTau);
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Sales
// ---------------------------------------------------------------------------

std::shared_ptr<Table> MakeSalesTable(const SalesDataOptions& opts) {
  Rng rng(opts.seed);
  const size_t P = std::max<size_t>(1, opts.num_products);

  // Latent product structure.
  std::vector<TrendProfile> sales_profile(P);
  std::vector<double> profit_sign(P, 1.0);   // +1: follows sales
  std::vector<bool> divergent(P, false);     // US up / UK down
  for (size_t i = 0; i < P; ++i) {
    sales_profile[i] = RandomProfile(rng);
    if (rng.UniformDouble() < opts.outlier_fraction) {
      sales_profile[i].anomalous = true;
      sales_profile[i].spike_at = rng.UniformDouble(0.2, 0.8);
    }
    if (rng.UniformDouble() < opts.discrepant_fraction) {
      profit_sign[i] = -1.0;
    }
    if (rng.UniformDouble() < opts.divergent_fraction) {
      divergent[i] = true;
      sales_profile[i].slope = std::fabs(sales_profile[i].slope) + 0.4;
    }
  }

  Schema schema({
      {"product", ColumnType::kCategorical},
      {"category", ColumnType::kCategorical},
      {"size", ColumnType::kCategorical},
      {"weight", ColumnType::kDouble},
      {"city", ColumnType::kCategorical},
      {"country", ColumnType::kCategorical},
      {"location", ColumnType::kCategorical},  // alias used by the examples
      {"month", ColumnType::kCategorical},
      {"year", ColumnType::kCategorical},
      {"sales", ColumnType::kDouble},
      {"profit", ColumnType::kDouble},
      {"revenue", ColumnType::kDouble},
  });
  TableBuilder builder("sales", schema);

  const int years = opts.year_max - opts.year_min + 1;
  static const char* kSizes[] = {"small", "medium", "large"};

  for (size_t r = 0; r < opts.num_rows; ++r) {
    const size_t p = rng.Uniform(P);
    const int year = opts.year_min + static_cast<int>(rng.Uniform(years));
    const int month = 1 + static_cast<int>(rng.Uniform(12));
    const size_t country = rng.Uniform(opts.num_countries);
    const size_t city = rng.Uniform(opts.num_cities);
    const size_t category = p % opts.num_categories;

    const double t01 =
        (static_cast<double>(year - opts.year_min) + (month - 1) / 12.0) /
        std::max(1, years - 1);
    const double month01 = (month - 1) / 12.0;

    TrendProfile prof = sales_profile[p];
    // Divergent products: invert the trend for the UK (country index 1).
    if (divergent[p] && country == 1) prof.slope = -prof.slope;

    const double level = prof.Eval(t01, month01);
    const double sales = 100.0 * level * (1.0 + 0.15 * rng.Normal());
    // Profit follows or opposes the sales trend.
    TrendProfile pprof = prof;
    pprof.slope *= profit_sign[p];
    const double profit =
        40.0 * pprof.Eval(t01, month01) * (1.0 + 0.2 * rng.Normal());

    builder.AppendCategorical(0, Value::Str("product" + std::to_string(p)));
    builder.AppendCategorical(
        1, Value::Str("category" + std::to_string(category)));
    builder.AppendCategorical(2, Value::Str(kSizes[p % 3]));
    builder.AppendDouble(3, 5.0 + 95.0 * rng.UniformDouble());
    builder.AppendCategorical(4, Value::Str("city" + std::to_string(city)));
    const std::string cname = country == 0   ? "US"
                              : country == 1 ? "UK"
                                             : "country" + std::to_string(country);
    builder.AppendCategorical(5, Value::Str(cname));
    builder.AppendCategorical(6, Value::Str(cname));
    builder.AppendCategorical(7, Value::Int(month));
    builder.AppendCategorical(8, Value::Int(year));
    builder.AppendDouble(9, sales);
    builder.AppendDouble(10, profit);
    builder.AppendDouble(11, sales * rng.UniformDouble(1.1, 1.6));
    builder.CommitRow();
  }
  return builder.Finish();
}

// ---------------------------------------------------------------------------
// Census
// ---------------------------------------------------------------------------

std::shared_ptr<Table> MakeCensusTable(const CensusDataOptions& opts) {
  Rng rng(opts.seed);
  const size_t num_cat = opts.num_attributes >= 4 ? opts.num_attributes - 4 : 1;

  std::vector<ColumnDef> defs;
  std::vector<size_t> cardinalities;
  for (size_t i = 0; i < num_cat; ++i) {
    defs.push_back({"attr" + std::to_string(i), ColumnType::kCategorical});
    // Varying cardinality, echoing census categorical domains (2..51).
    cardinalities.push_back(2 + (i * 7) % 50);
  }
  defs.push_back({"age", ColumnType::kInt});
  defs.push_back({"hours_per_week", ColumnType::kInt});
  defs.push_back({"income", ColumnType::kDouble});
  defs.push_back({"capital_gains", ColumnType::kDouble});
  TableBuilder builder("census", Schema(defs));

  std::vector<ZipfSampler> samplers;
  samplers.reserve(num_cat);
  for (size_t i = 0; i < num_cat; ++i) {
    samplers.emplace_back(cardinalities[i], 0.8);
  }
  for (size_t r = 0; r < opts.num_rows; ++r) {
    for (size_t i = 0; i < num_cat; ++i) {
      builder.AppendCategorical(
          i, Value::Str("v" + std::to_string(samplers[i].Sample(rng))));
    }
    const int64_t age = 17 + static_cast<int64_t>(rng.Uniform(73));
    builder.AppendInt(num_cat + 0, age);
    builder.AppendInt(num_cat + 1, 10 + static_cast<int64_t>(rng.Uniform(70)));
    builder.AppendDouble(num_cat + 2,
                         20000 + 1000.0 * static_cast<double>(age) +
                             15000.0 * rng.Normal());
    builder.AppendDouble(num_cat + 3,
                         rng.UniformDouble() < 0.9
                             ? 0.0
                             : rng.UniformDouble(100, 50000));
    builder.CommitRow();
  }
  return builder.Finish();
}

// ---------------------------------------------------------------------------
// Airline
// ---------------------------------------------------------------------------

std::shared_ptr<Table> MakeAirlineTable(const AirlineDataOptions& opts) {
  Rng rng(opts.seed);
  const size_t A = std::max<size_t>(2, opts.num_airports);

  // Latent per-airport delay behaviour.
  std::vector<TrendProfile> dep_profile(A), weather_profile(A);
  for (size_t i = 0; i < A; ++i) {
    dep_profile[i] = RandomProfile(rng);
    weather_profile[i] = RandomProfile(rng);
    if (rng.UniformDouble() < opts.increasing_delay_fraction) {
      dep_profile[i].slope = std::fabs(dep_profile[i].slope) + 0.5;
      weather_profile[i].slope = std::fabs(weather_profile[i].slope) + 0.3;
    }
  }

  // 29 attributes mirroring the ASA airline data layout.
  Schema schema({
      {"year", ColumnType::kCategorical},
      {"month", ColumnType::kCategorical},
      {"day_of_month", ColumnType::kCategorical},
      {"day_of_week", ColumnType::kCategorical},
      {"dep_time", ColumnType::kInt},
      {"crs_dep_time", ColumnType::kInt},
      {"arr_time", ColumnType::kInt},
      {"crs_arr_time", ColumnType::kInt},
      {"carrier", ColumnType::kCategorical},
      {"flight_num", ColumnType::kInt},
      {"tail_num", ColumnType::kCategorical},
      {"actual_elapsed", ColumnType::kInt},
      {"crs_elapsed", ColumnType::kInt},
      {"air_time", ColumnType::kInt},
      {"arr_delay", ColumnType::kDouble},
      {"dep_delay", ColumnType::kDouble},
      {"origin", ColumnType::kCategorical},
      {"dest", ColumnType::kCategorical},
      {"distance", ColumnType::kInt},
      {"taxi_in", ColumnType::kInt},
      {"taxi_out", ColumnType::kInt},
      {"cancelled", ColumnType::kCategorical},
      {"cancellation_code", ColumnType::kCategorical},
      {"diverted", ColumnType::kCategorical},
      {"carrier_delay", ColumnType::kDouble},
      {"weather_delay", ColumnType::kDouble},
      {"nas_delay", ColumnType::kDouble},
      {"security_delay", ColumnType::kDouble},
      {"late_aircraft_delay", ColumnType::kDouble},
  });
  TableBuilder builder("airline", schema);

  const int years = opts.year_max - opts.year_min + 1;
  auto airport_name = [](size_t i) {
    // AAA, AAB, ... three-letter codes.
    std::string s(3, 'A');
    s[0] = static_cast<char>('A' + (i / 676) % 26);
    s[1] = static_cast<char>('A' + (i / 26) % 26);
    s[2] = static_cast<char>('A' + i % 26);
    return s;
  };

  for (size_t r = 0; r < opts.num_rows; ++r) {
    const int year = opts.year_min + static_cast<int>(rng.Uniform(years));
    const int month = 1 + static_cast<int>(rng.Uniform(12));
    const int day = 1 + static_cast<int>(rng.Uniform(28));
    const size_t origin = rng.Uniform(A);
    size_t dest = rng.Uniform(A - 1);
    if (dest >= origin) ++dest;
    const size_t carrier = rng.Uniform(opts.num_carriers);

    const double t01 = static_cast<double>(year - opts.year_min) /
                       std::max(1, years - 1);
    const double month01 = (month - 1) / 12.0;
    const double dep_delay =
        20.0 * dep_profile[origin].Eval(t01, month01) - 10.0 +
        8.0 * rng.Normal();
    const double weather_delay = std::max(
        0.0, 6.0 * weather_profile[origin].Eval(t01, month01) - 4.0 +
                 3.0 * rng.Normal());
    const double arr_delay = dep_delay + 5.0 * rng.Normal();
    const int dep_sched = 600 + static_cast<int>(rng.Uniform(1000));
    const int elapsed = 60 + static_cast<int>(rng.Uniform(300));

    builder.AppendCategorical(0, Value::Int(year));
    builder.AppendCategorical(1, Value::Int(month));
    builder.AppendCategorical(2, Value::Int(day));
    builder.AppendCategorical(3, Value::Int(1 + (day % 7)));
    builder.AppendInt(4, dep_sched + static_cast<int>(dep_delay));
    builder.AppendInt(5, dep_sched);
    builder.AppendInt(6, dep_sched + elapsed + static_cast<int>(arr_delay));
    builder.AppendInt(7, dep_sched + elapsed);
    builder.AppendCategorical(8, Value::Str("C" + std::to_string(carrier)));
    builder.AppendInt(9, 100 + static_cast<int64_t>(rng.Uniform(5000)));
    builder.AppendCategorical(
        10, Value::Str("N" + std::to_string(rng.Uniform(2000))));
    builder.AppendInt(11, elapsed + static_cast<int>(arr_delay - dep_delay));
    builder.AppendInt(12, elapsed);
    builder.AppendInt(13, elapsed - 20);
    builder.AppendDouble(14, arr_delay);
    builder.AppendDouble(15, dep_delay);
    builder.AppendCategorical(16, Value::Str(airport_name(origin)));
    builder.AppendCategorical(17, Value::Str(airport_name(dest)));
    builder.AppendInt(18, 100 + static_cast<int64_t>(rng.Uniform(3000)));
    builder.AppendInt(19, 2 + static_cast<int64_t>(rng.Uniform(20)));
    builder.AppendInt(20, 5 + static_cast<int64_t>(rng.Uniform(30)));
    const bool cancelled = rng.UniformDouble() < 0.02;
    builder.AppendCategorical(21, Value::Str(cancelled ? "1" : "0"));
    builder.AppendCategorical(
        22, Value::Str(cancelled ? std::string(1, static_cast<char>(
                                       'A' + rng.Uniform(4)))
                                 : "none"));
    builder.AppendCategorical(23,
                              Value::Str(rng.UniformDouble() < 0.01 ? "1" : "0"));
    builder.AppendDouble(24, std::max(0.0, arr_delay * rng.UniformDouble()));
    builder.AppendDouble(25, weather_delay);
    builder.AppendDouble(26, std::max(0.0, 2.0 * rng.Normal() + 2.0));
    builder.AppendDouble(27, rng.UniformDouble() < 0.99 ? 0.0 : 20.0);
    builder.AppendDouble(28, std::max(0.0, 5.0 * rng.Normal() + 3.0));
    builder.CommitRow();
  }
  return builder.Finish();
}

// ---------------------------------------------------------------------------
// Housing
// ---------------------------------------------------------------------------

std::shared_ptr<Table> MakeHousingTable(const HousingDataOptions& opts) {
  Rng rng(opts.seed);
  const size_t S = std::max<size_t>(2, opts.num_states);

  std::vector<TrendProfile> price_profile(S);
  std::vector<double> turnover_sign(S, 1.0);
  for (size_t i = 0; i < S; ++i) {
    price_profile[i] = RandomProfile(rng);
    // Most states: turnover follows price; some oppose (the Figure 6.5
    // scenario the agent investigates).
    if (rng.UniformDouble() < 0.25) turnover_sign[i] = -1.0;
  }

  Schema schema({
      {"state", ColumnType::kCategorical},
      {"county", ColumnType::kCategorical},
      {"city", ColumnType::kCategorical},
      {"zip", ColumnType::kCategorical},
      {"year", ColumnType::kCategorical},
      {"month", ColumnType::kCategorical},
      {"quarter", ColumnType::kCategorical},
      {"sold_price", ColumnType::kDouble},
      {"listing_price", ColumnType::kDouble},
      {"turnover_rate", ColumnType::kDouble},
      {"foreclosure_rate", ColumnType::kDouble},
      {"num_listings", ColumnType::kInt},
      {"num_sales", ColumnType::kInt},
      {"days_on_market", ColumnType::kInt},
      {"price_per_sqft", ColumnType::kDouble},
  });
  TableBuilder builder("housing", schema);

  const int years = opts.year_max - opts.year_min + 1;
  for (size_t r = 0; r < opts.num_rows; ++r) {
    const size_t state = rng.Uniform(S);
    const size_t county = rng.Uniform(opts.num_counties);
    const size_t city = rng.Uniform(opts.num_cities);
    const int year = opts.year_min + static_cast<int>(rng.Uniform(years));
    const int month = 1 + static_cast<int>(rng.Uniform(12));
    const double t01 = (static_cast<double>(year - opts.year_min) +
                        (month - 1) / 12.0) /
                       std::max(1, years - 1);
    const double month01 = (month - 1) / 12.0;

    // 2008-style bust baked into the global level.
    double level = price_profile[state].Eval(t01, month01);
    const double bust = (year >= 2008 && year <= 2011) ? 0.8 : 1.0;
    const double sold = 250000.0 * level * bust * (1.0 + 0.1 * rng.Normal());
    TrendProfile tprof = price_profile[state];
    tprof.slope *= turnover_sign[state];
    const double turnover =
        std::clamp(0.05 * tprof.Eval(t01, month01) * (1 + 0.2 * rng.Normal()),
                   0.001, 0.5);
    const double foreclosure = std::clamp(
        0.02 * (2.0 - tprof.Eval(t01, month01)) * (1 + 0.3 * rng.Normal()),
        0.0005, 0.2);

    builder.AppendCategorical(0, Value::Str("state" + std::to_string(state)));
    builder.AppendCategorical(1,
                              Value::Str("county" + std::to_string(county)));
    builder.AppendCategorical(2, Value::Str("city" + std::to_string(city)));
    builder.AppendCategorical(
        3, Value::Str(StrFormat("%05zu", 1000 + city * 7 % 99000)));
    builder.AppendCategorical(4, Value::Int(year));
    builder.AppendCategorical(5, Value::Int(month));
    builder.AppendCategorical(6, Value::Int(1 + (month - 1) / 3));
    builder.AppendDouble(7, sold);
    builder.AppendDouble(8, sold * rng.UniformDouble(1.0, 1.15));
    builder.AppendDouble(9, turnover);
    builder.AppendDouble(10, foreclosure);
    builder.AppendInt(11, 10 + static_cast<int64_t>(rng.Uniform(500)));
    builder.AppendInt(12, 5 + static_cast<int64_t>(rng.Uniform(300)));
    builder.AppendInt(13, 10 + static_cast<int64_t>(rng.Uniform(200)));
    builder.AppendDouble(14, sold / rng.UniformDouble(800, 3000));
    builder.CommitRow();
  }
  return builder.Finish();
}

}  // namespace zv
