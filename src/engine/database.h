/// \file database.h
/// \brief Backend interface: execute SQL (text or AST) with request/query
/// accounting, mirroring the paper's Execution Engine (§6.2).
///
/// Two implementations exist:
///  - ScanDatabase   — full-scan predicate evaluation (PostgreSQL stand-in),
///  - RoaringDatabase — per-value Roaring bitmap indexes on categorical
///    columns (the paper's in-memory Roaring Bitmap Database).
///
/// A *query* is one SELECT statement. A *request* is one round-trip to the
/// backend and may carry many queries (ExecuteBatch) — this is the unit the
/// ZQL optimizer reduces and Figures 7.1/7.2 plot. An optional simulated
/// per-request latency models the client/server round-trip that exists in
/// the paper's deployment but not in this in-process build.

#ifndef ZV_ENGINE_DATABASE_H_
#define ZV_ENGINE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/result_set.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace zv {

/// \brief Abstract SQL execution backend with instrumentation.
class Database {
 public:
  virtual ~Database() = default;

  /// Human-readable backend name ("scan" / "roaring").
  virtual std::string name() const = 0;

  /// Registers a table; backends may build indexes here.
  virtual Status RegisterTable(std::shared_ptr<Table> table);

  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const {
    return catalog_.GetTable(name);
  }

  /// Parses and executes one SQL string (one request, one query).
  Result<ResultSet> ExecuteSql(const std::string& sql);

  /// Executes one statement (one request, one query).
  Result<ResultSet> Execute(const sql::SelectStatement& stmt);

  /// Executes a batch of statements in a single request.
  std::vector<Result<ResultSet>> ExecuteBatch(
      const std::vector<sql::SelectStatement>& stmts);

  /// Streaming batch scan — the entry point the ZQL FetchOp drives (shared
  /// by both backends; ExecuteBatch is a thin wrapper). Statements execute
  /// in order; `sink(i, result)` is invoked as each one completes, so a
  /// pipelined consumer can route/score statement i while statement i+1 is
  /// still scanning. `batched` selects the request accounting: true = the
  /// whole batch is one round trip (ExecuteBatch semantics; the simulated
  /// per-request latency is paid once), false = one round trip per
  /// statement (Execute semantics, the NoOpt compiler). A sink returning
  /// false stops the scan without executing the remaining statements
  /// (queries are still counted up front in batched mode, matching
  /// ExecuteBatch). When `scan_ms` is non-null it accumulates wall time
  /// spent inside the backend — statement execution plus request latency,
  /// excluding sink time.
  void ScanBatch(const std::vector<sql::SelectStatement>& stmts, bool batched,
                 const std::function<bool(size_t, Result<ResultSet>)>& sink,
                 double* scan_ms = nullptr);

  /// --- Instrumentation -------------------------------------------------
  /// Counters are atomic because one Database serves every session of a
  /// QueryService concurrently; relaxed order suffices — they are read
  /// for reporting, never for synchronization.
  uint64_t queries_executed() const {
    return queries_.load(std::memory_order_relaxed);
  }
  uint64_t requests_made() const {
    return requests_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    queries_.store(0, std::memory_order_relaxed);
    requests_.store(0, std::memory_order_relaxed);
  }

  /// Sleeps this long at the start of every request, emulating a
  /// client-server round trip (0 by default).
  void set_request_latency_micros(uint64_t micros) {
    request_latency_micros_ = micros;
  }
  uint64_t request_latency_micros() const { return request_latency_micros_; }

 protected:
  virtual Result<ResultSet> ExecuteInternal(
      const sql::SelectStatement& stmt) = 0;

  Catalog catalog_;

 private:
  void BeginRequest(size_t num_queries);

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> requests_{0};
  uint64_t request_latency_micros_ = 0;
};

}  // namespace zv

#endif  // ZV_ENGINE_DATABASE_H_
