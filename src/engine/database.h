/// \file database.h
/// \brief Backend interface: execute SQL (text or AST) with request/query
/// accounting, mirroring the paper's Execution Engine (§6.2).
///
/// Two implementations exist:
///  - ScanDatabase   — full-scan predicate evaluation (PostgreSQL stand-in),
///  - RoaringDatabase — per-value Roaring bitmap indexes on categorical
///    columns (the paper's in-memory Roaring Bitmap Database).
///
/// A *query* is one SELECT statement. A *request* is one round-trip to the
/// backend and may carry many queries (ExecuteBatch) — this is the unit the
/// ZQL optimizer reduces and Figures 7.1/7.2 plot. An optional simulated
/// per-request latency models the client/server round-trip that exists in
/// the paper's deployment but not in this in-process build.

#ifndef ZV_ENGINE_DATABASE_H_
#define ZV_ENGINE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/chunk_map.h"
#include "engine/result_set.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace zv {

/// \brief A statement's WHERE clause compiled for chunk-range evaluation —
/// the per-chunk unit the shard worker pool (zql/scheduler.h) executes.
///
/// PrepareChunkScan compiles the statement once; ScanRange may then be
/// called concurrently on disjoint row ranges (const, no shared mutable
/// state). Each call appends the surviving row ids of [begin, end) to
/// `out` in ascending order, so concatenating the per-chunk lists in chunk
/// order reproduces exactly the row list a serial scan would select —
/// FinishChunkScan then aggregates that list through the same blocked
/// runner both backends share, keeping sharded results byte-identical to
/// unsharded ones. ScanRange polls the calling thread's cancellation token
/// (common/cancel.h) at least every ~64K rows and returns kCancelled.
class ChunkScanner {
 public:
  virtual ~ChunkScanner() = default;
  virtual Status ScanRange(uint32_t begin, uint32_t end,
                           std::vector<uint32_t>* out) const = 0;
};

/// \brief Several statements' WHERE clauses compiled for one shared
/// chunk-range pass — the unit the cross-query batch queue
/// (engine/shared_scan.h) executes.
///
/// Same contract as ChunkScanner, vectorized over statements: ScanRange is
/// const and may run concurrently on disjoint ranges, and for each
/// statement i it appends to (*outs)[i] exactly the ascending row ids that
/// statement's own ChunkScanner would select — demultiplexing a shared
/// pass therefore reproduces every solo scan byte-for-byte. Scanners are
/// self-contained (they pin the table snapshot they were compiled
/// against), so a pass may finish after the preparing query has gone away.
class MultiChunkScanner {
 public:
  virtual ~MultiChunkScanner() = default;

  /// Number of statements this scanner evaluates per range.
  virtual size_t num_statements() const = 0;

  /// Appends the surviving rows of [begin, end) per statement;
  /// outs->size() must equal num_statements(). Polls the calling thread's
  /// cancellation token at least every ~64K rows, like ChunkScanner.
  virtual Status ScanRange(uint32_t begin, uint32_t end,
                           std::vector<std::vector<uint32_t>>* outs) const = 0;

  /// Attempts to fuse `other` into this scanner so a single ScanRange pass
  /// evaluates both statement sets, other's lists slotted after this
  /// one's. On success takes ownership (other is reset); returns false and
  /// leaves `other` untouched when the two cannot share a pass (different
  /// implementation or table snapshot). Fusion never changes any
  /// statement's output, only how many row loops produce it.
  virtual bool Absorb(std::unique_ptr<MultiChunkScanner>& other) = 0;
};

/// \brief Abstract SQL execution backend with instrumentation.
class Database {
 public:
  virtual ~Database() = default;

  /// Human-readable backend name ("scan" / "roaring").
  virtual std::string name() const = 0;

  /// Registers a table; backends may build indexes here.
  virtual Status RegisterTable(std::shared_ptr<Table> table);

  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const {
    return catalog_.GetTable(name);
  }

  /// Parses and executes one SQL string (one request, one query).
  Result<ResultSet> ExecuteSql(const std::string& sql);

  /// Executes one statement (one request, one query).
  Result<ResultSet> Execute(const sql::SelectStatement& stmt);

  /// Executes a batch of statements in a single request.
  std::vector<Result<ResultSet>> ExecuteBatch(
      const std::vector<sql::SelectStatement>& stmts);

  /// Streaming batch scan — the entry point the ZQL FetchOp drives (shared
  /// by both backends; ExecuteBatch is a thin wrapper). Statements execute
  /// in order; `sink(i, result)` is invoked as each one completes, so a
  /// pipelined consumer can route/score statement i while statement i+1 is
  /// still scanning. `batched` selects the request accounting: true = the
  /// whole batch is one round trip (ExecuteBatch semantics; the simulated
  /// per-request latency is paid once), false = one round trip per
  /// statement (Execute semantics, the NoOpt compiler). A sink returning
  /// false stops the scan without executing the remaining statements
  /// (queries are still counted up front in batched mode, matching
  /// ExecuteBatch). When `scan_ms` is non-null it accumulates wall time
  /// spent inside the backend — statement execution plus request latency,
  /// excluding sink time.
  void ScanBatch(const std::vector<sql::SelectStatement>& stmts, bool batched,
                 const std::function<bool(size_t, Result<ResultSet>)>& sink,
                 double* scan_ms = nullptr);

  /// --- Chunked scans ---------------------------------------------------
  /// The three-call protocol the sharded FetchOp path drives instead of
  /// ExecuteInternal: PrepareChunkScan once per statement, ScanRange per
  /// chunk (concurrently, on the shard workers), FinishChunkScan on the
  /// merged row list. Splitting selection from aggregation this way keeps
  /// the aggregation block structure — a pure function of table size — out
  /// of the fan-out, so float sums associate identically at any shard or
  /// chunk count.

  /// Chunk partitioning of a registered table, built at RegisterTable time
  /// with the default chunk size (kNotFound for unknown tables). Returned
  /// by value: the copy pins the partitioning for one query's lifetime.
  Result<ChunkMap> GetChunkMap(const std::string& table) const;

  /// Re-partitions `table` with an explicit chunk size (0 = default).
  /// Registration-time API for tests and benches — not safe to call while
  /// queries are executing against this Database.
  Status RebuildChunkMap(const std::string& table, size_t chunk_rows);

  /// Compiles `stmt`'s WHERE clause for chunk-range evaluation. The base
  /// implementation serves any backend whose selection semantics are
  /// "CompiledPredicate over catalog rows" (the scan backend); the Roaring
  /// backend overrides it to reuse its bitmap indexes.
  virtual Result<std::unique_ptr<ChunkScanner>> PrepareChunkScan(
      const sql::SelectStatement& stmt);

  /// Compiles a statement batch for one shared chunk-range pass over this
  /// backend — the cross-query batching entry point (engine/shared_scan.h).
  /// All statements must target the same table. The base implementation
  /// wraps the per-statement PrepareChunkScan scanners, so index-aware
  /// overrides (Roaring's bitmap scanner) are picked up automatically;
  /// ScanDatabase overrides it with a fused evaluator that tests every
  /// statement's predicate in a single row loop. Fails with the first
  /// statement's compile error.
  virtual Result<std::unique_ptr<MultiChunkScanner>> PrepareMultiChunkScan(
      const std::vector<const sql::SelectStatement*>& stmts);

  /// Aggregates the merged (ascending) surviving-row list through the
  /// shared blocked runner — the same code path both backends' unsharded
  /// scans finish with.
  Result<ResultSet> FinishChunkScan(const sql::SelectStatement& stmt,
                                    const std::vector<uint32_t>& rows);

  /// Request/query accounting for scans that bypass Execute*/ScanBatch
  /// (the sharded chunk path): one round trip carrying `num_queries`
  /// statements — identical counter and simulated-latency semantics, so
  /// sql_queries/sql_requests deltas match the unsharded execution.
  void AccountRequest(size_t num_queries) { BeginRequest(num_queries); }

  /// --- Instrumentation -------------------------------------------------
  /// Counters are atomic because one Database serves every session of a
  /// QueryService concurrently; relaxed order suffices — they are read
  /// for reporting, never for synchronization.
  uint64_t queries_executed() const {
    return queries_.load(std::memory_order_relaxed);
  }
  uint64_t requests_made() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Roaring container representation changes attributable to this
  /// backend's predicate work. Zero for backends without a bitmap index;
  /// RoaringDatabase reports the process-wide adaptive-container counter.
  /// The executor samples the delta per query (like queries_executed), so
  /// concurrent queries on other sessions can inflate an individual
  /// query's figure — the same caveat the sql_* counters carry.
  virtual uint64_t container_conversions() const { return 0; }
  void ResetCounters() {
    queries_.store(0, std::memory_order_relaxed);
    requests_.store(0, std::memory_order_relaxed);
  }

  /// Sleeps this long at the start of every request, emulating a
  /// client-server round trip (0 by default).
  void set_request_latency_micros(uint64_t micros) {
    request_latency_micros_ = micros;
  }
  uint64_t request_latency_micros() const { return request_latency_micros_; }

 protected:
  virtual Result<ResultSet> ExecuteInternal(
      const sql::SelectStatement& stmt) = 0;

  Catalog catalog_;

 private:
  void BeginRequest(size_t num_queries);

  std::unordered_map<std::string, ChunkMap> chunk_maps_;
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> requests_{0};
  uint64_t request_latency_micros_ = 0;
};

}  // namespace zv

#endif  // ZV_ENGINE_DATABASE_H_
