#include "engine/predicate.h"

#include "common/strings.h"

namespace zv {

namespace {

using sql::CompareOp;
using sql::Expr;

bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  const int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

bool CompareDoubles(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

}  // namespace

bool LeafPredicateAccepts(const sql::Expr& expr, const Value& v) {
  switch (expr.kind) {
    case Expr::Kind::kCompare:
      return CompareValues(v, expr.op, expr.value);
    case Expr::Kind::kIn:
      for (const Value& candidate : expr.values) {
        if (v == candidate) return true;
      }
      return false;
    case Expr::Kind::kBetween:
      return v >= expr.values[0] && v <= expr.values[1];
    case Expr::Kind::kLike:
      return v.is_string() && LikeMatch(v.AsString(), expr.value.AsString());
    default:
      return false;
  }
}


Result<CompiledPredicate> CompiledPredicate::Compile(const Table& table,
                                                     const sql::Expr& expr) {
  CompiledPredicate cp;
  cp.table_ = &table;

  // Recursive lowering returning node index or a Status error.
  struct Lowerer {
    CompiledPredicate* cp;
    const Table& table;
    Status error;

    int Lower(const Expr& e) {  // returns -1 on error
      if (!error.ok()) return -1;
      switch (e.kind) {
        case Expr::Kind::kAnd:
        case Expr::Kind::kOr:
        case Expr::Kind::kNot: {
          Node node;
          node.kind = e.kind == Expr::Kind::kAnd  ? Node::Kind::kAnd
                      : e.kind == Expr::Kind::kOr ? Node::Kind::kOr
                                                  : Node::Kind::kNot;
          for (const auto& child : e.children) {
            const int idx = Lower(*child);
            if (idx < 0) return -1;
            node.children.push_back(idx);
          }
          cp->nodes_.push_back(std::move(node));
          return static_cast<int>(cp->nodes_.size() - 1);
        }
        default:
          return LowerLeaf(e);
      }
    }

    int LowerLeaf(const Expr& e) {
      const int col = table.schema().Find(e.column);
      if (col < 0) {
        error = Status::NotFound(StrFormat("unknown column '%s' in predicate",
                                           e.column.c_str()));
        return -1;
      }
      const ColumnType type = table.column_type(static_cast<size_t>(col));
      Node node;
      node.col = col;
      if (type == ColumnType::kCategorical) {
        node.kind = Node::Kind::kCatAccept;
        const size_t dict_size = table.DictSize(static_cast<size_t>(col));
        node.accept.resize(dict_size);
        for (size_t code = 0; code < dict_size; ++code) {
          node.accept[code] = LeafPredicateAccepts(
              e, table.DictValue(static_cast<size_t>(col),
                                 static_cast<int32_t>(code)));
        }
        cp->nodes_.push_back(std::move(node));
        return static_cast<int>(cp->nodes_.size() - 1);
      }
      // Measure column.
      cp->categorical_only_ = false;
      switch (e.kind) {
        case Expr::Kind::kCompare:
          if (!e.value.is_numeric()) {
            error = Status::TypeMismatch(
                StrFormat("column '%s' is numeric but compared to '%s'",
                          e.column.c_str(), e.value.ToString().c_str()));
            return -1;
          }
          node.kind = Node::Kind::kNumCompare;
          node.op = e.op;
          node.lhs_lo = e.value.AsDouble();
          break;
        case Expr::Kind::kBetween:
          if (!e.values[0].is_numeric() || !e.values[1].is_numeric()) {
            error = Status::TypeMismatch("BETWEEN bounds must be numeric");
            return -1;
          }
          node.kind = Node::Kind::kNumBetween;
          node.lhs_lo = e.values[0].AsDouble();
          node.lhs_hi = e.values[1].AsDouble();
          break;
        case Expr::Kind::kIn: {
          // Lower IN over a measure column to an OR of equalities.
          Node or_node;
          or_node.kind = Node::Kind::kOr;
          for (const Value& v : e.values) {
            if (!v.is_numeric()) {
              error = Status::TypeMismatch("IN list over numeric column");
              return -1;
            }
            Node eq;
            eq.kind = Node::Kind::kNumCompare;
            eq.col = col;
            eq.op = CompareOp::kEq;
            eq.lhs_lo = v.AsDouble();
            cp->nodes_.push_back(std::move(eq));
            or_node.children.push_back(static_cast<int>(cp->nodes_.size() - 1));
          }
          cp->nodes_.push_back(std::move(or_node));
          return static_cast<int>(cp->nodes_.size() - 1);
        }
        case Expr::Kind::kLike:
          error = Status::TypeMismatch(
              StrFormat("LIKE requires a categorical column, '%s' is numeric",
                        e.column.c_str()));
          return -1;
        default:
          error = Status::Internal("unexpected leaf kind");
          return -1;
      }
      cp->nodes_.push_back(std::move(node));
      return static_cast<int>(cp->nodes_.size() - 1);
    }
  };

  Lowerer lowerer{&cp, table, Status::OK()};
  cp.root_ = lowerer.Lower(expr);
  if (!lowerer.error.ok()) return lowerer.error;
  return cp;
}

bool CompiledPredicate::TestNode(int idx, size_t row) const {
  const Node& node = nodes_[static_cast<size_t>(idx)];
  switch (node.kind) {
    case Node::Kind::kAnd:
      for (int child : node.children) {
        if (!TestNode(child, row)) return false;
      }
      return true;
    case Node::Kind::kOr:
      for (int child : node.children) {
        if (TestNode(child, row)) return true;
      }
      return false;
    case Node::Kind::kNot:
      return !TestNode(node.children[0], row);
    case Node::Kind::kCatAccept: {
      const int32_t code = table_->Code(row, static_cast<size_t>(node.col));
      return node.accept[static_cast<size_t>(code)] != 0;
    }
    case Node::Kind::kNumCompare:
      return CompareDoubles(
          table_->NumericAt(row, static_cast<size_t>(node.col)), node.op,
          node.lhs_lo);
    case Node::Kind::kNumBetween: {
      const double v = table_->NumericAt(row, static_cast<size_t>(node.col));
      return v >= node.lhs_lo && v <= node.lhs_hi;
    }
  }
  return false;
}

}  // namespace zv
