/// \file scan_db.h
/// \brief Full-scan backend — the PostgreSQL stand-in.
///
/// WHERE clauses compile to per-row predicates (dictionary accept-vectors
/// for categorical leaves) evaluated in a single sequential pass, feeding
/// the shared SelectRunner. No indexes are maintained. See DESIGN.md §4 for
/// why this substitution preserves the behaviour the paper measures.

#ifndef ZV_ENGINE_SCAN_DB_H_
#define ZV_ENGINE_SCAN_DB_H_

#include "engine/database.h"

namespace zv {

class ScanDatabase : public Database {
 public:
  std::string name() const override { return "scan"; }

  /// Fused multi-statement chunk scan: every statement's compiled
  /// predicate is tested inside a single row loop, so a shared pass over N
  /// batched queries walks the column data once instead of N times. The
  /// per-statement row lists are exactly what N solo scans would select.
  Result<std::unique_ptr<MultiChunkScanner>> PrepareMultiChunkScan(
      const std::vector<const sql::SelectStatement*>& stmts) override;

 protected:
  Result<ResultSet> ExecuteInternal(const sql::SelectStatement& stmt) override;
};

}  // namespace zv

#endif  // ZV_ENGINE_SCAN_DB_H_
