/// \file shared_scan.h
/// \brief Cross-query shared scan batching: the BatchScanQueue coalesces
/// the row-selection passes of concurrently executing queries over the
/// same backend and table into one chunk-parallel scan pass.
///
/// zenvisage's interactive workload is many sessions hammering one dataset
/// with overlapping queries; at production concurrency the redundant full
/// scans — not the scoring — dominate (Fig. 7 at scale). The queue turns N
/// concurrent selections into ~1 pass: callers enqueue their prepared
/// MultiChunkScanners, a coordinator cuts a *pass* from everything waiting
/// for the same (backend, table) group, fuses the scanners that can share
/// a row loop (ScanDatabase tests all predicates per row; Roaring keeps
/// its bitmap probes), fans the chunks out over a persistent worker pool,
/// and demultiplexes per-statement row-id lists back to each caller.
///
/// Batching model: *group commit*. With the default window of 0 a lone
/// query is never delayed — its pass is cut immediately — but any queries
/// that arrive while a pass is executing pile up and form the next pass
/// together, which under concurrency is exactly where the sharing comes
/// from. A positive ZV_BATCH_WINDOW_MS additionally holds the pass open
/// that long after the first member arrives, trading first-query latency
/// for wider sharing (useful when queries trickle in over a slow client).
///
/// Determinism contract: selection stays in the scan (each statement's
/// rows are exactly its solo ChunkScanner's, concatenated in chunk order)
/// and aggregation stays with the caller (FinishChunkScan's blocked
/// runner, a pure function of table size) — so batched results are
/// byte-identical to the unbatched oracle at any worker count, window,
/// chunk size, or co-tenancy (tests/batch_test.cc locks the matrix).
///
/// Cancellation: a caller whose token fires while waiting abandons its
/// request and returns kCancelled; the pass (and every sibling) completes
/// unaffected — requests are self-contained (scanners pin their table
/// snapshot), so delivery into an abandoned request is harmless. An
/// epoch bump (QueryService::ReplaceDataset) swaps in a fresh Database,
/// i.e. a fresh group key: in-flight queries finish against the snapshot
/// they hold, new queries form new groups, and the two never share a pass.
///
/// Thread-safety: all public methods are thread-safe. The queue must
/// outlive every thread that may be blocked in SelectRows (the serving
/// layer destroys it only after joining its workers).

#ifndef ZV_ENGINE_SHARED_SCAN_H_
#define ZV_ENGINE_SHARED_SCAN_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "engine/chunk_map.h"
#include "engine/database.h"

namespace zv {

struct BatchScanOptions {
  /// Batching window in milliseconds (see file comment). Negative resolves
  /// the ZV_BATCH_WINDOW_MS environment variable, default 0 (group
  /// commit: coalesce only work already waiting, never delay a lone
  /// query).
  double window_ms = -1;
  /// Scan worker pool size; 0 = min(4, hardware concurrency). The
  /// coordinator thread also scans, so even workers=0 would make progress.
  size_t workers = 0;
  /// Where the queue records its latency histograms — zv_batch_hold_ms
  /// (request arrival → pass cut: the group-commit hold) and
  /// zv_batch_pass_ms (pass wall time). Null = MetricsRegistry::Global().
  MetricsRegistry* metrics = nullptr;
};

/// \brief The shared-scan coordinator. One instance serves every session
/// of a QueryService; executors reach it through ZqlOptions::batch_scans.
class BatchScanQueue {
 public:
  explicit BatchScanQueue(BatchScanOptions options = {});
  ~BatchScanQueue();

  BatchScanQueue(const BatchScanQueue&) = delete;
  BatchScanQueue& operator=(const BatchScanQueue&) = delete;

  /// What one SelectRows call got back from its pass.
  struct Selection {
    Status status = Status::OK();
    /// Per statement: the ascending surviving-row list, identical to what
    /// the statement's solo chunk scan would select. Empty on error.
    std::vector<std::vector<uint32_t>> rows;
    /// Chunk sub-scans attributable to this call (chunks × statements,
    /// matching the per-statement accounting of the sharded path).
    uint64_t chunks_scanned = 0;
    /// Wall time of the covering pass (shared by every member).
    double scan_ms = 0;
    /// True when the pass also carried statements from other SelectRows
    /// calls — the redundant scans actually eliminated.
    bool shared = false;
  };

  /// Runs the statements' row selection through the shared-scan
  /// coordinator. Prepares the scanners on the calling thread (so `db`
  /// only needs to be alive here, not for the pass), enqueues, and blocks
  /// until the covering pass completes — or until the calling thread's
  /// cancellation token fires, in which case the request is abandoned
  /// (status kCancelled) and its pass, if any, completes without it.
  /// Statements must all target `table`. An empty table (0 chunks)
  /// returns empty row lists without a pass.
  Selection SelectRows(Database* db, const std::string& table,
                       const std::vector<const sql::SelectStatement*>& stmts);

  /// --- Monitoring ------------------------------------------------------
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }
  uint64_t shared_passes() const {
    return shared_passes_.load(std::memory_order_relaxed);
  }
  uint64_t statements_served() const {
    return statements_.load(std::memory_order_relaxed);
  }
  double window_ms() const { return window_ms_; }
  size_t workers() const { return num_workers_; }

 private:
  struct Request;
  struct Pass;

  void EnsureThreadsLocked();
  void CoordinatorMain();
  void WorkerMain();
  /// Executes one pass over `members` (no queue lock held). Fills each
  /// member's results; the caller marks them done under the lock.
  void ExecutePass(const std::vector<std::shared_ptr<Request>>& members);
  /// Claims and runs jobs of `pass` until none remain.
  static void RunJobs(Pass* pass);

  double window_ms_ = 0;
  size_t num_workers_ = 0;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes the coordinator
  std::condition_variable done_cv_;  ///< wakes callers whose request finished
  std::deque<std::shared_ptr<Request>> pending_;
  bool stop_ = false;
  bool threads_started_ = false;
  std::thread coordinator_;
  std::vector<std::thread> workers_;

  /// Pass hand-off to the workers: a generation counter plus the shared
  /// pass object. Workers re-check the generation after each pass, so a
  /// pass is never scanned twice by the same worker.
  std::shared_ptr<Pass> current_pass_;
  uint64_t pass_gen_ = 0;
  std::condition_variable pass_cv_;

  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> shared_passes_{0};
  std::atomic<uint64_t> statements_{0};

  /// Resolved once at construction (see BatchScanOptions::metrics).
  Histogram* hold_hist_ = nullptr;
  Histogram* pass_hist_ = nullptr;
};

}  // namespace zv

#endif  // ZV_ENGINE_SHARED_SCAN_H_
