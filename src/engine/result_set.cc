#include "engine/result_set.h"

#include <algorithm>

namespace zv {

std::string ResultSet::ToString(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  const size_t shown = std::min(max_rows, rows.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      cells[r][c] = rows[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  auto pad = [&out](const std::string& s, size_t w) {
    out += s;
    out.append(w - s.size() + 2, ' ');
  };
  for (size_t c = 0; c < columns.size(); ++c) pad(columns[c], widths[c]);
  out += '\n';
  for (size_t c = 0; c < columns.size(); ++c) {
    out.append(widths[c], '-');
    out += "  ";
  }
  out += '\n';
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) pad(cells[r][c], widths[c]);
    out += '\n';
  }
  if (shown < rows.size()) {
    out += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace zv
