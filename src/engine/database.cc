#include "engine/database.h"

#include <chrono>
#include <thread>

#include "sql/parser.h"

namespace zv {

Status Database::RegisterTable(std::shared_ptr<Table> table) {
  return catalog_.AddTable(std::move(table));
}

void Database::BeginRequest(size_t num_queries) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(num_queries, std::memory_order_relaxed);
  if (request_latency_micros_ > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(request_latency_micros_));
  }
}

Result<ResultSet> Database::ExecuteSql(const std::string& sql) {
  ZV_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::ParseSelect(sql));
  return Execute(stmt);
}

Result<ResultSet> Database::Execute(const sql::SelectStatement& stmt) {
  BeginRequest(1);
  return ExecuteInternal(stmt);
}

std::vector<Result<ResultSet>> Database::ExecuteBatch(
    const std::vector<sql::SelectStatement>& stmts) {
  std::vector<Result<ResultSet>> out;
  out.reserve(stmts.size());
  ScanBatch(stmts, /*batched=*/true, [&out](size_t, Result<ResultSet> rs) {
    out.push_back(std::move(rs));
    return true;
  });
  return out;
}

void Database::ScanBatch(
    const std::vector<sql::SelectStatement>& stmts, bool batched,
    const std::function<bool(size_t, Result<ResultSet>)>& sink,
    double* scan_ms) {
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();
  auto flush_timer = [&] {
    if (scan_ms != nullptr) {
      *scan_ms +=
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    }
  };
  if (batched) BeginRequest(stmts.size());
  for (size_t i = 0; i < stmts.size(); ++i) {
    if (!batched) BeginRequest(1);
    Result<ResultSet> rs = ExecuteInternal(stmts[i]);
    flush_timer();
    const bool keep_going = sink(i, std::move(rs));
    t0 = Clock::now();
    if (!keep_going) return;
  }
}

}  // namespace zv
