#include "engine/database.h"

#include <chrono>
#include <thread>

#include "sql/parser.h"

namespace zv {

Status Database::RegisterTable(std::shared_ptr<Table> table) {
  return catalog_.AddTable(std::move(table));
}

void Database::BeginRequest(size_t num_queries) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(num_queries, std::memory_order_relaxed);
  if (request_latency_micros_ > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(request_latency_micros_));
  }
}

Result<ResultSet> Database::ExecuteSql(const std::string& sql) {
  ZV_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::ParseSelect(sql));
  return Execute(stmt);
}

Result<ResultSet> Database::Execute(const sql::SelectStatement& stmt) {
  BeginRequest(1);
  return ExecuteInternal(stmt);
}

std::vector<Result<ResultSet>> Database::ExecuteBatch(
    const std::vector<sql::SelectStatement>& stmts) {
  BeginRequest(stmts.size());
  std::vector<Result<ResultSet>> out;
  out.reserve(stmts.size());
  for (const auto& stmt : stmts) out.push_back(ExecuteInternal(stmt));
  return out;
}

}  // namespace zv
