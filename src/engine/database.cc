#include "engine/database.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "common/cancel.h"
#include "engine/predicate.h"
#include "engine/select_runner.h"
#include "sql/parser.h"

namespace zv {

namespace {

/// Cancellation poll granularity inside ScanRange row loops.
constexpr uint32_t kChunkCancelPollRows = 32768;

/// The generic chunk scanner: CompiledPredicate per row (no predicate =
/// every row survives). Matches ScanDatabase's selection semantics exactly.
class PredicateChunkScanner : public ChunkScanner {
 public:
  PredicateChunkScanner(std::shared_ptr<Table> table,
                        std::optional<CompiledPredicate> pred)
      : table_(std::move(table)), pred_(std::move(pred)) {}

  Status ScanRange(uint32_t begin, uint32_t end,
                   std::vector<uint32_t>* out) const override {
    for (uint32_t lo = begin; lo < end;) {
      ZV_RETURN_NOT_OK(CheckCancelled());
      const uint32_t hi = static_cast<uint32_t>(std::min<uint64_t>(
          end, static_cast<uint64_t>(lo) + kChunkCancelPollRows));
      if (pred_.has_value()) {
        const CompiledPredicate& pred = *pred_;
        for (uint32_t row = lo; row < hi; ++row) {
          if (pred.Test(row)) out->push_back(row);
        }
      } else {
        for (uint32_t row = lo; row < hi; ++row) out->push_back(row);
      }
      lo = hi;
    }
    return Status::OK();
  }

 private:
  /// Keeps the compiled predicate's column pointers alive.
  std::shared_ptr<Table> table_;
  std::optional<CompiledPredicate> pred_;
};

/// The generic multi-statement scanner: one prepared ChunkScanner per
/// statement, run back-to-back over each range. No fused row loop — each
/// part keeps whatever evaluation strategy its backend compiled (bitmap
/// probes for Roaring) — but a shared pass still schedules all parts as
/// one set of chunk jobs. Absorb concatenates two wrappers over the same
/// table snapshot.
class WrappedMultiScanner : public MultiChunkScanner {
 public:
  WrappedMultiScanner(const void* table_tag,
                      std::vector<std::unique_ptr<ChunkScanner>> parts)
      : table_tag_(table_tag), parts_(std::move(parts)) {}

  size_t num_statements() const override { return parts_.size(); }

  Status ScanRange(uint32_t begin, uint32_t end,
                   std::vector<std::vector<uint32_t>>* outs) const override {
    for (size_t i = 0; i < parts_.size(); ++i) {
      ZV_RETURN_NOT_OK(parts_[i]->ScanRange(begin, end, &(*outs)[i]));
    }
    return Status::OK();
  }

  bool Absorb(std::unique_ptr<MultiChunkScanner>& other) override {
    auto* peer = dynamic_cast<WrappedMultiScanner*>(other.get());
    if (peer == nullptr || peer->table_tag_ != table_tag_) return false;
    for (auto& part : peer->parts_) parts_.push_back(std::move(part));
    other.reset();
    return true;
  }

 private:
  /// Identity of the table snapshot the parts were compiled against; the
  /// parts themselves keep it alive, so equal tags mean the same snapshot.
  const void* table_tag_;
  std::vector<std::unique_ptr<ChunkScanner>> parts_;
};

}  // namespace

Status Database::RegisterTable(std::shared_ptr<Table> table) {
  const std::string name = table->name();
  const size_t num_rows = table->num_rows();
  ZV_RETURN_NOT_OK(catalog_.AddTable(std::move(table)));
  chunk_maps_[name] = ChunkMap::Build(num_rows);
  return Status::OK();
}

Result<ChunkMap> Database::GetChunkMap(const std::string& table) const {
  auto it = chunk_maps_.find(table);
  if (it == chunk_maps_.end()) {
    return Status::NotFound("no chunk map for table '" + table + "'");
  }
  return it->second;
}

Status Database::RebuildChunkMap(const std::string& table, size_t chunk_rows) {
  ZV_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, GetTable(table));
  chunk_maps_[table] = ChunkMap::Build(t->num_rows(), chunk_rows);
  return Status::OK();
}

Result<std::unique_ptr<ChunkScanner>> Database::PrepareChunkScan(
    const sql::SelectStatement& stmt) {
  ZV_ASSIGN_OR_RETURN(std::shared_ptr<Table> table, GetTable(stmt.table));
  std::optional<CompiledPredicate> pred;
  if (stmt.where != nullptr) {
    ZV_ASSIGN_OR_RETURN(CompiledPredicate compiled,
                        CompiledPredicate::Compile(*table, *stmt.where));
    pred = std::move(compiled);
  }
  return std::unique_ptr<ChunkScanner>(
      new PredicateChunkScanner(std::move(table), std::move(pred)));
}

Result<std::unique_ptr<MultiChunkScanner>> Database::PrepareMultiChunkScan(
    const std::vector<const sql::SelectStatement*>& stmts) {
  if (stmts.empty()) {
    return Status::InvalidArgument("empty multi-chunk scan batch");
  }
  ZV_ASSIGN_OR_RETURN(std::shared_ptr<Table> table, GetTable(stmts[0]->table));
  std::vector<std::unique_ptr<ChunkScanner>> parts;
  parts.reserve(stmts.size());
  for (const sql::SelectStatement* stmt : stmts) {
    if (stmt->table != stmts[0]->table) {
      return Status::InvalidArgument("multi-chunk scan batch spans tables");
    }
    ZV_ASSIGN_OR_RETURN(std::unique_ptr<ChunkScanner> scanner,
                        PrepareChunkScan(*stmt));
    parts.push_back(std::move(scanner));
  }
  return std::unique_ptr<MultiChunkScanner>(
      new WrappedMultiScanner(table.get(), std::move(parts)));
}

Result<ResultSet> Database::FinishChunkScan(const sql::SelectStatement& stmt,
                                            const std::vector<uint32_t>& rows) {
  ZV_ASSIGN_OR_RETURN(std::shared_ptr<Table> table, GetTable(stmt.table));
  return RunBlockedOverRows(*table, stmt, rows);
}

void Database::BeginRequest(size_t num_queries) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(num_queries, std::memory_order_relaxed);
  if (request_latency_micros_ > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(request_latency_micros_));
  }
}

Result<ResultSet> Database::ExecuteSql(const std::string& sql) {
  ZV_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::ParseSelect(sql));
  return Execute(stmt);
}

Result<ResultSet> Database::Execute(const sql::SelectStatement& stmt) {
  BeginRequest(1);
  return ExecuteInternal(stmt);
}

std::vector<Result<ResultSet>> Database::ExecuteBatch(
    const std::vector<sql::SelectStatement>& stmts) {
  std::vector<Result<ResultSet>> out;
  out.reserve(stmts.size());
  ScanBatch(stmts, /*batched=*/true, [&out](size_t, Result<ResultSet> rs) {
    out.push_back(std::move(rs));
    return true;
  });
  return out;
}

void Database::ScanBatch(
    const std::vector<sql::SelectStatement>& stmts, bool batched,
    const std::function<bool(size_t, Result<ResultSet>)>& sink,
    double* scan_ms) {
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();
  auto flush_timer = [&] {
    if (scan_ms != nullptr) {
      *scan_ms +=
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    }
  };
  if (batched) BeginRequest(stmts.size());
  for (size_t i = 0; i < stmts.size(); ++i) {
    if (!batched) BeginRequest(1);
    Result<ResultSet> rs = ExecuteInternal(stmts[i]);
    flush_timer();
    const bool keep_going = sink(i, std::move(rs));
    t0 = Clock::now();
    if (!keep_going) return;
  }
}

}  // namespace zv
