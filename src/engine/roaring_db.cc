#include "engine/roaring_db.h"

#include <algorithm>
#include <utility>

#include "common/cancel.h"
#include "engine/predicate.h"
#include "engine/select_runner.h"

namespace zv {

using roaring::RoaringBitmap;
using sql::Expr;

Status RoaringDatabase::RegisterTable(std::shared_ptr<Table> table) {
  ZV_RETURN_NOT_OK(Database::RegisterTable(table));
  TableIndex index;
  const size_t ncols = table->schema().num_columns();
  const size_t nrows = table->num_rows();
  index.per_value.resize(ncols);
  index.all_rows = RoaringBitmap::FromRange(0, static_cast<uint32_t>(nrows));
  for (size_t col = 0; col < ncols; ++col) {
    if (table->column_type(col) != ColumnType::kCategorical) continue;
    const size_t dict_size = table->DictSize(col);
    // Bucket row ids per code (already sorted), then bulk-build bitmaps.
    std::vector<std::vector<uint32_t>> buckets(dict_size);
    const auto& codes = table->CategoricalColumn(col);
    for (size_t row = 0; row < nrows; ++row) {
      buckets[static_cast<size_t>(codes[row])].push_back(
          static_cast<uint32_t>(row));
    }
    auto& bitmaps = index.per_value[col];
    bitmaps.reserve(dict_size);
    for (auto& bucket : buckets) {
      RoaringBitmap bm = RoaringBitmap::FromSortedValues(
          bucket.data(), bucket.data() + bucket.size());
      bm.RunOptimize();
      bitmaps.push_back(std::move(bm));
      bucket.clear();
      bucket.shrink_to_fit();
    }
  }
  indexes_.emplace(table->name(), std::move(index));
  return Status::OK();
}

uint64_t RoaringDatabase::container_conversions() const {
  return roaring::ContainerConversions();
}

size_t RoaringDatabase::IndexBytes(const std::string& table_name) const {
  auto it = indexes_.find(table_name);
  if (it == indexes_.end()) return 0;
  size_t n = it->second.all_rows.SizeInBytes();
  for (const auto& col : it->second.per_value) {
    for (const auto& bm : col) n += bm.SizeInBytes();
  }
  return n;
}

std::optional<RoaringBitmap> RoaringDatabase::TryBitmap(
    const Table& table, const TableIndex& index, const Expr& expr) const {
  switch (expr.kind) {
    case Expr::Kind::kAnd: {
      std::optional<RoaringBitmap> acc;
      for (const auto& child : expr.children) {
        auto bm = TryBitmap(table, index, *child);
        if (!bm.has_value()) return std::nullopt;
        if (!acc.has_value()) acc = std::move(bm);
        else acc = RoaringBitmap::And(*acc, *bm);
      }
      return acc;
    }
    case Expr::Kind::kOr: {
      std::optional<RoaringBitmap> acc;
      for (const auto& child : expr.children) {
        auto bm = TryBitmap(table, index, *child);
        if (!bm.has_value()) return std::nullopt;
        if (!acc.has_value()) acc = std::move(bm);
        else acc = RoaringBitmap::Or(*acc, *bm);
      }
      return acc;
    }
    case Expr::Kind::kNot: {
      auto bm = TryBitmap(table, index, *expr.children[0]);
      if (!bm.has_value()) return std::nullopt;
      return RoaringBitmap::AndNot(index.all_rows, *bm);
    }
    default: {
      const int col = table.schema().Find(expr.column);
      if (col < 0) return std::nullopt;  // surfaced by residual compile
      const size_t c = static_cast<size_t>(col);
      if (table.column_type(c) != ColumnType::kCategorical) {
        return std::nullopt;  // measure columns are un-indexed
      }
      const auto& bitmaps = index.per_value[c];
      const size_t dict_size = table.DictSize(c);
      std::vector<size_t> accepted;
      for (size_t code = 0; code < dict_size; ++code) {
        if (LeafPredicateAccepts(
                expr, table.DictValue(c, static_cast<int32_t>(code)))) {
          accepted.push_back(code);
        }
      }
      // OR the smaller side; complement when most codes are accepted.
      const bool complement = accepted.size() > dict_size / 2;
      RoaringBitmap acc;
      if (!complement) {
        for (size_t code : accepted) acc.OrWith(bitmaps[code]);
        return acc;
      }
      std::vector<uint8_t> is_accepted(dict_size, 0);
      for (size_t code : accepted) is_accepted[code] = 1;
      for (size_t code = 0; code < dict_size; ++code) {
        if (!is_accepted[code]) acc.OrWith(bitmaps[code]);
      }
      return RoaringBitmap::AndNot(index.all_rows, acc);
    }
  }
}

Result<RoaringDatabase::SplitPredicate> RoaringDatabase::SplitWhere(
    const Table& table, const TableIndex& index, const Expr& where) const {
  SplitPredicate split;
  std::vector<const Expr*> residual_parts;
  auto add_conjunct = [&](const Expr& e) {
    auto bm = TryBitmap(table, index, e);
    if (bm.has_value()) {
      if (!split.filter.has_value()) split.filter = std::move(bm);
      else split.filter = RoaringBitmap::And(*split.filter, *bm);
    } else {
      residual_parts.push_back(&e);
    }
  };
  if (where.kind == Expr::Kind::kAnd) {
    for (const auto& child : where.children) add_conjunct(*child);
  } else {
    add_conjunct(where);
  }
  if (!residual_parts.empty()) {
    std::vector<std::unique_ptr<Expr>> clones;
    clones.reserve(residual_parts.size());
    for (const Expr* e : residual_parts) clones.push_back(e->Clone());
    auto conj = Expr::And(std::move(clones));
    ZV_ASSIGN_OR_RETURN(CompiledPredicate pred,
                        CompiledPredicate::Compile(table, *conj));
    split.residual = std::move(pred);
  }
  return split;
}

namespace {

/// Chunk scanner over a bitmap selection: per chunk range, extract the
/// filter's values (ascending) and keep the residual's survivors. Slices at
/// container granularity so long extractions poll cancellation, mirroring
/// the blocked scan's block-boundary polls.
class RoaringChunkScanner : public ChunkScanner {
 public:
  RoaringChunkScanner(std::shared_ptr<Table> table, RoaringBitmap filter,
                      std::optional<CompiledPredicate> residual)
      : table_(std::move(table)),
        filter_(std::move(filter)),
        residual_(std::move(residual)) {}

  Status ScanRange(uint32_t begin, uint32_t end,
                   std::vector<uint32_t>* out) const override {
    for (uint32_t lo = begin; lo < end;) {
      ZV_RETURN_NOT_OK(CheckCancelled());
      const uint32_t hi = static_cast<uint32_t>(std::min<uint64_t>(
          end, (static_cast<uint64_t>(lo) | 0xFFFF) + 1));
      if (residual_.has_value()) {
        const CompiledPredicate& pred = *residual_;
        filter_.ForEachInRange(lo, hi, [out, &pred](uint32_t row) {
          if (pred.Test(row)) out->push_back(row);
        });
      } else {
        filter_.ForEachInRange(lo, hi,
                               [out](uint32_t row) { out->push_back(row); });
      }
      lo = hi;
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<Table> table_;  ///< keeps residual's column pointers alive
  RoaringBitmap filter_;
  std::optional<CompiledPredicate> residual_;
};

}  // namespace

Result<std::unique_ptr<ChunkScanner>> RoaringDatabase::PrepareChunkScan(
    const sql::SelectStatement& stmt) {
  // No WHERE (all rows) and nothing-indexable (pure residual) both reduce
  // to the generic predicate scanner — same survivors, no bitmap needed.
  if (stmt.where == nullptr) return Database::PrepareChunkScan(stmt);
  ZV_ASSIGN_OR_RETURN(std::shared_ptr<Table> table, GetTable(stmt.table));
  auto idx_it = indexes_.find(stmt.table);
  if (idx_it == indexes_.end()) return Status::Internal("missing index");
  ZV_ASSIGN_OR_RETURN(SplitPredicate split,
                      SplitWhere(*table, idx_it->second, *stmt.where));
  if (!split.filter.has_value()) return Database::PrepareChunkScan(stmt);
  return std::unique_ptr<ChunkScanner>(new RoaringChunkScanner(
      std::move(table), std::move(*split.filter), std::move(split.residual)));
}

Result<ResultSet> RoaringDatabase::ExecuteInternal(
    const sql::SelectStatement& stmt) {
  ZV_ASSIGN_OR_RETURN(std::shared_ptr<Table> table, GetTable(stmt.table));

  if (stmt.where == nullptr) {
    // No predicate: the 100%-selectivity path Figure 7.5 contrasts against
    // the scan backend. all_rows is FromRange(0, n) by construction, so
    // blocks consume [begin, end) directly — materializing n row ids first
    // would only add an O(n) allocation to the hot path.
    auto it = indexes_.find(stmt.table);
    if (it == indexes_.end()) return Status::Internal("missing index");
    return RunBlocked(*table, stmt,
                      [](size_t begin, size_t end, SelectRunner& runner) {
                        for (size_t row = begin; row < end; ++row) {
                          runner.Consume(row);
                        }
                      });
  }

  auto idx_it = indexes_.find(stmt.table);
  if (idx_it == indexes_.end()) return Status::Internal("missing index");

  // Split a top-level conjunction into index-answerable and residual parts.
  ZV_ASSIGN_OR_RETURN(SplitPredicate split,
                      SplitWhere(*table, idx_it->second, *stmt.where));

  if (split.filter.has_value()) {
    std::vector<uint32_t> rows;
    rows.reserve(split.filter->Cardinality());
    if (split.residual.has_value()) {
      const CompiledPredicate& pred = *split.residual;
      split.filter->ForEach([&rows, &pred](uint32_t row) {
        if (pred.Test(row)) rows.push_back(row);
      });
    } else {
      split.filter->ForEach([&rows](uint32_t row) { rows.push_back(row); });
    }
    return RunBlockedOverRows(*table, stmt, rows);
  }
  // Nothing indexable: full scan with the residual predicate.
  const CompiledPredicate& pred = *split.residual;
  return RunBlocked(*table, stmt,
                    [&pred](size_t begin, size_t end, SelectRunner& runner) {
                      for (size_t row = begin; row < end; ++row) {
                        if (pred.Test(row)) runner.Consume(row);
                      }
                    });
}

}  // namespace zv
