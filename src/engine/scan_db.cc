#include "engine/scan_db.h"

#include "engine/predicate.h"
#include "engine/select_runner.h"

namespace zv {

Result<ResultSet> ScanDatabase::ExecuteInternal(
    const sql::SelectStatement& stmt) {
  ZV_ASSIGN_OR_RETURN(std::shared_ptr<Table> table, GetTable(stmt.table));
  ZV_ASSIGN_OR_RETURN(SelectRunner runner, SelectRunner::Plan(*table, stmt));
  const size_t n = table->num_rows();
  if (stmt.where == nullptr) {
    for (size_t row = 0; row < n; ++row) runner.Consume(row);
  } else {
    ZV_ASSIGN_OR_RETURN(CompiledPredicate pred,
                        CompiledPredicate::Compile(*table, *stmt.where));
    for (size_t row = 0; row < n; ++row) {
      if (pred.Test(row)) runner.Consume(row);
    }
  }
  return runner.Finish();
}

}  // namespace zv
