#include "engine/scan_db.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/cancel.h"
#include "engine/predicate.h"
#include "engine/select_runner.h"

namespace zv {

namespace {

/// Cancellation poll granularity, matching the solo chunk scanner's
/// (engine/database.cc) so batched and unbatched scans poll alike.
constexpr uint32_t kFusedCancelPollRows = 32768;

/// The fused evaluator: one row loop, every statement's predicate tested
/// per row (no predicate = every row survives). Each statement's output
/// list is exactly what its own PredicateChunkScanner would produce — the
/// fusion shares only the row iteration, never the selection decision.
class FusedPredicateScanner : public MultiChunkScanner {
 public:
  FusedPredicateScanner(std::shared_ptr<Table> table,
                        std::vector<std::optional<CompiledPredicate>> preds)
      : table_(std::move(table)), preds_(std::move(preds)) {}

  size_t num_statements() const override { return preds_.size(); }

  Status ScanRange(uint32_t begin, uint32_t end,
                   std::vector<std::vector<uint32_t>>* outs) const override {
    const size_t n = preds_.size();
    for (uint32_t lo = begin; lo < end;) {
      ZV_RETURN_NOT_OK(CheckCancelled());
      const uint32_t hi = static_cast<uint32_t>(std::min<uint64_t>(
          end, static_cast<uint64_t>(lo) + kFusedCancelPollRows));
      for (uint32_t row = lo; row < hi; ++row) {
        for (size_t i = 0; i < n; ++i) {
          if (!preds_[i].has_value() || preds_[i]->Test(row)) {
            (*outs)[i].push_back(row);
          }
        }
      }
      lo = hi;
    }
    return Status::OK();
  }

  bool Absorb(std::unique_ptr<MultiChunkScanner>& other) override {
    auto* peer = dynamic_cast<FusedPredicateScanner*>(other.get());
    if (peer == nullptr || peer->table_ != table_) return false;
    for (auto& pred : peer->preds_) preds_.push_back(std::move(pred));
    other.reset();
    return true;
  }

 private:
  std::shared_ptr<Table> table_;
  std::vector<std::optional<CompiledPredicate>> preds_;
};

}  // namespace

Result<std::unique_ptr<MultiChunkScanner>> ScanDatabase::PrepareMultiChunkScan(
    const std::vector<const sql::SelectStatement*>& stmts) {
  if (stmts.empty()) {
    return Status::InvalidArgument("empty multi-chunk scan batch");
  }
  ZV_ASSIGN_OR_RETURN(std::shared_ptr<Table> table, GetTable(stmts[0]->table));
  std::vector<std::optional<CompiledPredicate>> preds;
  preds.reserve(stmts.size());
  for (const sql::SelectStatement* stmt : stmts) {
    if (stmt->table != stmts[0]->table) {
      return Status::InvalidArgument("multi-chunk scan batch spans tables");
    }
    if (stmt->where == nullptr) {
      preds.emplace_back(std::nullopt);
    } else {
      ZV_ASSIGN_OR_RETURN(CompiledPredicate pred,
                          CompiledPredicate::Compile(*table, *stmt->where));
      preds.emplace_back(std::move(pred));
    }
  }
  return std::unique_ptr<MultiChunkScanner>(
      new FusedPredicateScanner(std::move(table), std::move(preds)));
}

Result<ResultSet> ScanDatabase::ExecuteInternal(
    const sql::SelectStatement& stmt) {
  ZV_ASSIGN_OR_RETURN(std::shared_ptr<Table> table, GetTable(stmt.table));
  if (stmt.where == nullptr) {
    return RunBlocked(*table, stmt,
                      [](size_t begin, size_t end, SelectRunner& runner) {
                        for (size_t row = begin; row < end; ++row) {
                          runner.Consume(row);
                        }
                      });
  }
  ZV_ASSIGN_OR_RETURN(CompiledPredicate pred,
                      CompiledPredicate::Compile(*table, *stmt.where));
  // CompiledPredicate::Test is const, so one compiled predicate serves
  // every block worker concurrently.
  return RunBlocked(*table, stmt,
                    [&pred](size_t begin, size_t end, SelectRunner& runner) {
                      for (size_t row = begin; row < end; ++row) {
                        if (pred.Test(row)) runner.Consume(row);
                      }
                    });
}

}  // namespace zv
