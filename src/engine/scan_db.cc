#include "engine/scan_db.h"

#include "engine/predicate.h"
#include "engine/select_runner.h"

namespace zv {

Result<ResultSet> ScanDatabase::ExecuteInternal(
    const sql::SelectStatement& stmt) {
  ZV_ASSIGN_OR_RETURN(std::shared_ptr<Table> table, GetTable(stmt.table));
  if (stmt.where == nullptr) {
    return RunBlocked(*table, stmt,
                      [](size_t begin, size_t end, SelectRunner& runner) {
                        for (size_t row = begin; row < end; ++row) {
                          runner.Consume(row);
                        }
                      });
  }
  ZV_ASSIGN_OR_RETURN(CompiledPredicate pred,
                      CompiledPredicate::Compile(*table, *stmt.where));
  // CompiledPredicate::Test is const, so one compiled predicate serves
  // every block worker concurrently.
  return RunBlocked(*table, stmt,
                    [&pred](size_t begin, size_t end, SelectRunner& runner) {
                      for (size_t row = begin; row < end; ++row) {
                        if (pred.Test(row)) runner.Consume(row);
                      }
                    });
}

}  // namespace zv
