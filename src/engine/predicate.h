/// \file predicate.h
/// \brief Predicate compilation: a sql::Expr is bound against a Table into a
/// form evaluable per row in a tight loop.
///
/// Every leaf predicate over a *categorical* column — equality, inequality,
/// IN, BETWEEN, LIKE — is pre-evaluated against the column's dictionary into
/// an accept-vector indexed by code, so per-row evaluation is a single array
/// lookup. Leaves over measure columns compare doubles directly.

#ifndef ZV_ENGINE_PREDICATE_H_
#define ZV_ENGINE_PREDICATE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace zv {

/// Evaluates a leaf predicate (kCompare / kIn / kBetween / kLike) against a
/// single value. Shared by the scan predicate compiler (dictionary
/// accept-vectors) and the Roaring index planner (accepted-code sets).
bool LeafPredicateAccepts(const sql::Expr& leaf, const Value& v);

/// \brief A sql::Expr compiled against one table.
class CompiledPredicate {
 public:
  /// Node in the flattened predicate tree.
  struct Node {
    enum class Kind { kAnd, kOr, kNot, kCatAccept, kNumCompare, kNumBetween };
    Kind kind;
    std::vector<int> children;      // kAnd / kOr / kNot
    int col = -1;                   // leaf column index
    std::vector<uint8_t> accept;    // kCatAccept: accept[code]
    sql::CompareOp op = sql::CompareOp::kEq;  // kNumCompare
    double lhs_lo = 0, lhs_hi = 0;  // kNumCompare rhs in lhs_lo; kNumBetween
  };

  /// Binds `expr` to `table`, resolving columns and pre-computing
  /// dictionary accept-vectors. Fails on unknown columns or type errors.
  static Result<CompiledPredicate> Compile(const Table& table,
                                           const sql::Expr& expr);

  /// Evaluates the predicate against one row.
  bool Test(size_t row) const { return TestNode(root_, row); }

  /// True if every leaf touches only categorical columns — i.e. the whole
  /// predicate can be answered from bitmap indexes.
  bool categorical_only() const { return categorical_only_; }

  const std::vector<Node>& nodes() const { return nodes_; }
  int root() const { return root_; }
  const Table& table() const { return *table_; }

 private:
  bool TestNode(int idx, size_t row) const;

  const Table* table_ = nullptr;
  std::vector<Node> nodes_;
  int root_ = -1;
  bool categorical_only_ = true;
};

}  // namespace zv

#endif  // ZV_ENGINE_PREDICATE_H_
