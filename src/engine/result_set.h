/// \file result_set.h
/// \brief Tabular result of a SQL query.

#ifndef ZV_ENGINE_RESULT_SET_H_
#define ZV_ENGINE_RESULT_SET_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace zv {

/// \brief Column names plus row-major values, as returned by a backend.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return columns.size(); }

  /// Index of a column by name, or -1.
  int Find(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Fixed-width text rendering for examples and debugging.
  std::string ToString(size_t max_rows = 20) const;
};

}  // namespace zv

#endif  // ZV_ENGINE_RESULT_SET_H_
