/// \file roaring_db.h
/// \brief The zenvisage in-memory Roaring Bitmap Database (§6.2).
///
/// Storage model: column-oriented; categorical columns get one Roaring
/// bitmap per distinct value (built at RegisterTable), measure columns stay
/// un-indexed arrays — the paper's default policy. Selection predicates over
/// indexed columns are evaluated with bit-parallel AND/OR/ANDNOT; residual
/// (measure) predicates are tested row-wise on the bitmap's survivors.

#ifndef ZV_ENGINE_ROARING_DB_H_
#define ZV_ENGINE_ROARING_DB_H_

#include <memory>
#include <optional>
#include <unordered_map>

#include "engine/database.h"
#include "engine/predicate.h"
#include "roaring/roaring.h"

namespace zv {

class RoaringDatabase : public Database {
 public:
  std::string name() const override { return "roaring"; }

  /// Registers the table and builds per-value bitmap indexes for every
  /// categorical column.
  Status RegisterTable(std::shared_ptr<Table> table) override;

  /// Total index memory for a table (bytes), for reporting.
  size_t IndexBytes(const std::string& table_name) const;

  /// Adaptive-container representation changes (process-wide counter from
  /// the roaring layer; see Database::container_conversions for sampling
  /// semantics).
  uint64_t container_conversions() const override;

  /// Chunk-scan compilation reusing the bitmap indexes: the index-answerable
  /// part of the WHERE becomes one Roaring filter (built once per
  /// statement), and ScanRange extracts the filter's values inside each
  /// chunk range, testing the residual predicate per survivor — the same
  /// split ExecuteInternal uses, so the selected rows are identical.
  Result<std::unique_ptr<ChunkScanner>> PrepareChunkScan(
      const sql::SelectStatement& stmt) override;

 protected:
  Result<ResultSet> ExecuteInternal(const sql::SelectStatement& stmt) override;

 private:
  struct TableIndex {
    // indexed by column position; empty vector for measure columns.
    std::vector<std::vector<roaring::RoaringBitmap>> per_value;
    roaring::RoaringBitmap all_rows;
  };

  /// Returns an exact bitmap for `expr` if every leaf touches an indexed
  /// column, otherwise nullopt.
  std::optional<roaring::RoaringBitmap> TryBitmap(const Table& table,
                                                  const TableIndex& index,
                                                  const sql::Expr& expr) const;

  /// A WHERE clause split into its index-answerable bitmap and the residual
  /// row-wise predicate (either part may be absent, never both).
  struct SplitPredicate {
    std::optional<roaring::RoaringBitmap> filter;
    std::optional<CompiledPredicate> residual;
  };

  /// Splits a top-level conjunction into conjuncts TryBitmap can answer
  /// (ANDed into one filter) and the compiled conjunction of the rest.
  Result<SplitPredicate> SplitWhere(const Table& table,
                                    const TableIndex& index,
                                    const sql::Expr& where) const;

  std::unordered_map<std::string, TableIndex> indexes_;
};

}  // namespace zv

#endif  // ZV_ENGINE_ROARING_DB_H_
