/// \file chunk_map.h
/// \brief Per-table chunk catalog for sharded scan execution.
///
/// A ChunkMap partitions a table's row space [0, num_rows) into fixed-size
/// contiguous row ranges ("chunks"), the unit of fan-out for the shard
/// worker pool (zql/scheduler.h). This is the single-node analogue of
/// qserv's chunk catalog: chunks are defined purely by row position, so a
/// per-chunk sub-scan touches a disjoint range and the per-chunk results
/// concatenate back — in chunk order — into exactly the row list a serial
/// scan would produce.
///
/// The map is built when a table is registered (Database::RegisterTable)
/// and rebuilt whenever the serving layer swaps a dataset (ReplaceDataset
/// registers the new table into a fresh Database). It stores no per-chunk
/// state — just the row count and chunk size — so copying one into an
/// executing query pins the partitioning for that query's lifetime.

#ifndef ZV_ENGINE_CHUNK_MAP_H_
#define ZV_ENGINE_CHUNK_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>

namespace zv {

/// Default chunk size in rows: the ZV_CHUNK_ROWS environment variable when
/// set to a positive integer, otherwise 262144 (2^18 — large enough that
/// per-chunk dispatch overhead is noise, small enough that a 10M-row table
/// yields ~38 chunks to balance across workers).
size_t DefaultChunkRows();

/// \brief Fixed-size row-range partitioning of one table.
class ChunkMap {
 public:
  /// An empty map: zero rows, zero chunks.
  ChunkMap() = default;

  /// Partitions [0, num_rows) into ceil(num_rows / chunk_rows) chunks.
  /// `chunk_rows` = 0 uses DefaultChunkRows().
  static ChunkMap Build(size_t num_rows, size_t chunk_rows = 0);

  size_t num_rows() const { return num_rows_; }
  size_t chunk_rows() const { return chunk_rows_; }

  /// 0 for an empty table; the last chunk may be short.
  size_t num_chunks() const {
    return num_rows_ == 0 ? 0 : (num_rows_ + chunk_rows_ - 1) / chunk_rows_;
  }

  /// Row range [begin, end) of chunk `chunk` (must be < num_chunks()).
  std::pair<uint32_t, uint32_t> chunk_range(size_t chunk) const {
    const size_t begin = chunk * chunk_rows_;
    const size_t end = begin + chunk_rows_ < num_rows_ ? begin + chunk_rows_
                                                       : num_rows_;
    return {static_cast<uint32_t>(begin), static_cast<uint32_t>(end)};
  }

 private:
  size_t num_rows_ = 0;
  size_t chunk_rows_ = 1;
};

}  // namespace zv

#endif  // ZV_ENGINE_CHUNK_MAP_H_
