#include "engine/shared_scan.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/sync.h"

namespace zv {

namespace {

/// How often a waiting caller re-checks its cancellation token. The wait
/// is otherwise event-driven (done_cv_), so this only bounds how stale a
/// cancel can go unnoticed.
constexpr std::chrono::milliseconds kCancelPollInterval{2};

double ResolveWindowMs(double requested) {
  if (requested >= 0) return requested;
  const char* env = std::getenv("ZV_BATCH_WINDOW_MS");
  if (env != nullptr && *env != '\0') {
    const double parsed = std::strtod(env, nullptr);
    if (parsed > 0) return parsed;
  }
  return 0;
}

size_t ResolveWorkers(size_t requested) {
  if (requested > 0) return requested;
  const size_t hw = std::thread::hardware_concurrency();
  return std::min<size_t>(4, std::max<size_t>(1, hw));
}

}  // namespace

/// One SelectRows call, self-contained: the scanner pins the table
/// snapshot, so the pass can finish even after the caller abandoned (and
/// its Database possibly died — `db` is only ever compared, never
/// dereferenced, past enqueue).
struct BatchScanQueue::Request {
  const Database* db = nullptr;  ///< group key half 1 (identity only)
  std::string table;             ///< group key half 2
  ChunkMap map;
  std::unique_ptr<MultiChunkScanner> scanner;
  size_t num_stmts = 0;
  std::chrono::steady_clock::time_point arrival;

  // Filled by the pass, read by the caller after `done`.
  Status status = Status::OK();
  std::vector<std::vector<uint32_t>> rows;
  uint64_t chunks_scanned = 0;
  double scan_ms = 0;
  bool shared = false;
  bool done = false;
};

/// One scan pass: the fused/parallel work unit the coordinator cuts from a
/// (db, table) group. Jobs are (unit, chunk) pairs claimed via an atomic
/// counter — no bounded queues, so a pass can never wedge on its own
/// results — and every job writes into a preallocated slot, keeping the
/// demultiplexed concatenation positional (chunk order == serial order).
struct BatchScanQueue::Pass {
  struct Unit {
    std::unique_ptr<MultiChunkScanner> scanner;
    /// (member index, statement slot base) per absorbed request, in
    /// absorb order — the demultiplexing table.
    std::vector<std::pair<size_t, size_t>> segments;
  };

  ChunkMap map;
  std::vector<Unit> units;
  size_t chunks = 0;
  size_t total = 0;  ///< units × chunks
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::vector<Status> statuses;
  std::vector<std::vector<std::vector<uint32_t>>> outs;  ///< per job, per stmt
  std::mutex m;
  std::condition_variable cv;
};

BatchScanQueue::BatchScanQueue(BatchScanOptions options)
    : window_ms_(ResolveWindowMs(options.window_ms)),
      num_workers_(ResolveWorkers(options.workers)) {
  MetricsRegistry* metrics = options.metrics != nullptr
                                 ? options.metrics
                                 : MetricsRegistry::Global();
  hold_hist_ = metrics->GetHistogram("zv_batch_hold_ms");
  pass_hist_ = metrics->GetHistogram("zv_batch_pass_ms");
}

BatchScanQueue::~BatchScanQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  pass_cv_.notify_all();
  if (coordinator_.joinable()) coordinator_.join();
  for (std::thread& w : workers_) w.join();
}

BatchScanQueue::Selection BatchScanQueue::SelectRows(
    Database* db, const std::string& table,
    const std::vector<const sql::SelectStatement*>& stmts) {
  Selection sel;
  Result<ChunkMap> map = db->GetChunkMap(table);
  if (!map.ok()) {
    sel.status = map.status();
    return sel;
  }
  if (map.value().num_chunks() == 0) {
    // Empty table: every statement selects nothing; no pass needed.
    sel.rows.resize(stmts.size());
    return sel;
  }
  // Prepare on the calling thread — compile errors surface here (failing
  // only this query, never a pass sibling), and the scanner becomes
  // self-contained before anything crosses threads.
  Result<std::unique_ptr<MultiChunkScanner>> scanner =
      db->PrepareMultiChunkScan(stmts);
  if (!scanner.ok()) {
    sel.status = scanner.status();
    return sel;
  }

  auto req = std::make_shared<Request>();
  req->db = db;
  req->table = table;
  req->map = map.value();
  req->scanner = std::move(scanner.value());
  req->num_stmts = stmts.size();
  req->arrival = SteadyNow();

  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    sel.status = Status(StatusCode::kUnavailable, "batch queue shutting down");
    return sel;
  }
  pending_.push_back(req);
  EnsureThreadsLocked();
  work_cv_.notify_one();
  while (!req->done) {
    done_cv_.wait_for(lock, kCancelPollInterval);
    if (req->done) break;
    if (CancellationRequested()) {
      // Abandon: drop out of the queue if the pass hasn't claimed us; if
      // it has, it completes without us (delivery into an abandoned
      // request is harmless — we hold the shared_ptr).
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->get() == req.get()) {
          pending_.erase(it);
          break;
        }
      }
      sel.status = Status(StatusCode::kCancelled, "query cancelled");
      return sel;
    }
  }
  sel.status = req->status;
  sel.rows = std::move(req->rows);
  sel.chunks_scanned = req->chunks_scanned;
  sel.scan_ms = req->scan_ms;
  sel.shared = req->shared;
  return sel;
}

void BatchScanQueue::EnsureThreadsLocked() {
  if (threads_started_) return;
  threads_started_ = true;
  coordinator_ = std::thread([this] { CoordinatorMain(); });
  workers_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

void BatchScanQueue::CoordinatorMain() {
  // Requests that may share a pass: same backend instance, same table,
  // identical chunk partitioning (an epoch bump swaps the Database, so
  // pre- and post-bump queries can never group).
  const auto same_group = [](const Request& a, const Request& b) {
    return a.db == b.db && a.table == b.table &&
           a.map.num_rows() == b.map.num_rows() &&
           a.map.num_chunks() == b.map.num_chunks();
  };
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (stop_) return;
    if (window_ms_ > 0) {
      // Hold the pass open until window_ms past the oldest arrival; new
      // requests landing meanwhile simply join pending_ and get grouped.
      const auto deadline =
          pending_.front()->arrival +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(window_ms_));
      while (!stop_ && !pending_.empty() &&
             SteadyNow() < deadline) {
        work_cv_.wait_until(lock, deadline);
      }
      if (stop_) return;
      if (pending_.empty()) continue;  // every member abandoned meanwhile
    }
    const std::shared_ptr<Request> leader = pending_.front();
    std::vector<std::shared_ptr<Request>> members;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (same_group(**it, *leader)) {
        members.push_back(*it);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    {
      ScopedUnlock unlocked(lock);  // the pass runs without the queue lock
      ExecutePass(members);
    }
    for (const auto& m : members) m->done = true;
    done_cv_.notify_all();
  }
}

void BatchScanQueue::WorkerMain() {
  uint64_t seen_gen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    pass_cv_.wait(lock, [&] { return stop_ || pass_gen_ != seen_gen; });
    if (stop_) return;
    seen_gen = pass_gen_;
    const std::shared_ptr<Pass> pass = current_pass_;
    {
      ScopedUnlock unlocked(lock);  // scan chunks without the queue lock
      if (pass != nullptr) RunJobs(pass.get());
    }
  }
}

void BatchScanQueue::RunJobs(Pass* pass) {
  while (true) {
    const size_t j = pass->next.fetch_add(1, std::memory_order_relaxed);
    if (j >= pass->total) return;
    const Pass::Unit& unit = pass->units[j / pass->chunks];
    const auto [begin, end] = pass->map.chunk_range(j % pass->chunks);
    pass->outs[j].resize(unit.scanner->num_statements());
    pass->statuses[j] = unit.scanner->ScanRange(begin, end, &pass->outs[j]);
    if (pass->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        pass->total) {
      // Empty critical section pairs with the completion wait's predicate
      // check, so the final notify can never be missed.
      { std::lock_guard<std::mutex> g(pass->m); }
      pass->cv.notify_all();
    }
  }
}

void BatchScanQueue::ExecutePass(
    const std::vector<std::shared_ptr<Request>>& members) {
  const auto t0 = SteadyNow();
  // Group-commit hold: how long each member waited from arrival to the
  // pass being cut (the window plus any time behind an executing pass).
  for (const auto& m : members) {
    hold_hist_->Record(MsBetween(m->arrival, t0));
  }
  auto pass = std::make_shared<Pass>();
  pass->map = members[0]->map;
  pass->chunks = pass->map.num_chunks();

  // Fuse what can share a row loop; whatever can't (a different backend
  // strategy) still rides the same pass as its own unit.
  for (size_t m = 0; m < members.size(); ++m) {
    std::unique_ptr<MultiChunkScanner> scanner = std::move(members[m]->scanner);
    bool absorbed = false;
    for (Pass::Unit& unit : pass->units) {
      const size_t base = unit.scanner->num_statements();
      if (unit.scanner->Absorb(scanner)) {
        unit.segments.emplace_back(m, base);
        absorbed = true;
        break;
      }
    }
    if (!absorbed) {
      Pass::Unit unit;
      unit.scanner = std::move(scanner);
      unit.segments.emplace_back(m, 0);
      pass->units.push_back(std::move(unit));
    }
  }
  pass->total = pass->units.size() * pass->chunks;
  pass->statuses.assign(pass->total, Status::OK());
  pass->outs.resize(pass->total);

  // Publish to the worker pool, scan alongside it, then wait out the last
  // straggler job.
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_pass_ = pass;
    ++pass_gen_;
  }
  pass_cv_.notify_all();
  RunJobs(pass.get());
  {
    std::unique_lock<std::mutex> lock(pass->m);
    pass->cv.wait(lock, [&] {
      return pass->done.load(std::memory_order_acquire) >= pass->total;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_pass_.reset();
  }
  const double wall_ms = MsBetween(t0, SteadyNow());
  pass_hist_->Record(wall_ms);

  // Demultiplex: per member, per statement, concatenate the chunk lists in
  // chunk order — the positional merge that equals a serial scan. Errors
  // surface as the first failing chunk index, mirroring the sharded path.
  for (size_t u = 0; u < pass->units.size(); ++u) {
    const Pass::Unit& unit_ref = pass->units[u];
    Status unit_status = Status::OK();
    for (size_t c = 0; c < pass->chunks; ++c) {
      const Status& s = pass->statuses[u * pass->chunks + c];
      if (!s.ok()) {
        unit_status = s;
        break;
      }
    }
    for (const auto& [mi, base] : unit_ref.segments) {
      Request& req = *members[mi];
      req.status = unit_status;
      if (unit_status.ok()) {
        req.rows.resize(req.num_stmts);
        for (size_t s = 0; s < req.num_stmts; ++s) {
          size_t total_rows = 0;
          for (size_t c = 0; c < pass->chunks; ++c) {
            total_rows += pass->outs[u * pass->chunks + c][base + s].size();
          }
          std::vector<uint32_t>& rows = req.rows[s];
          rows.reserve(total_rows);
          for (size_t c = 0; c < pass->chunks; ++c) {
            const std::vector<uint32_t>& part =
                pass->outs[u * pass->chunks + c][base + s];
            rows.insert(rows.end(), part.begin(), part.end());
          }
        }
      }
      req.chunks_scanned =
          static_cast<uint64_t>(pass->chunks) * req.num_stmts;
      req.scan_ms = wall_ms;
      req.shared = members.size() > 1;
    }
  }

  passes_.fetch_add(1, std::memory_order_relaxed);
  if (members.size() > 1) shared_passes_.fetch_add(1, std::memory_order_relaxed);
  uint64_t stmts = 0;
  for (const auto& m : members) stmts += m->num_stmts;
  statements_.fetch_add(stmts, std::memory_order_relaxed);
}

}  // namespace zv
