#include "engine/select_runner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/cancel.h"
#include "common/parallel.h"
#include "common/strings.h"

namespace zv {

using sql::AggFunc;
using sql::SelectStatement;

Result<SelectRunner> SelectRunner::Plan(const Table& table,
                                        const SelectStatement& stmt) {
  SelectRunner r;
  r.table_ = &table;
  r.stmt_ = stmt;

  bool any_agg = false;
  for (const auto& item : stmt.items) any_agg |= item.is_aggregate();
  r.aggregation_ = any_agg || !stmt.group_by.empty();

  // Resolve group-by columns.
  if (!stmt.group_bins.empty() &&
      stmt.group_bins.size() != stmt.group_by.size()) {
    return Status::InvalidArgument(
        "group_bins must parallel group_by when present");
  }
  for (size_t gi = 0; gi < stmt.group_by.size(); ++gi) {
    const std::string& g = stmt.group_by[gi];
    const int col = table.schema().Find(g);
    if (col < 0) {
      return Status::NotFound(
          StrFormat("unknown GROUP BY column '%s'", g.c_str()));
    }
    const double bin = gi < stmt.group_bins.size() ? stmt.group_bins[gi] : 0;
    if (bin < 0 || bin != bin) {
      return Status::InvalidArgument(
          StrFormat("invalid bin width for GROUP BY column '%s'", g.c_str()));
    }
    r.group_cols_.push_back(col);
    r.group_bin_widths_.push_back(bin);
    if (bin > 0) {
      // Binned keys carry computed Value tuples, so they always take the
      // generic path regardless of the column's physical type.
      if (table.column_type(static_cast<size_t>(col)) ==
          ColumnType::kCategorical) {
        return Status::InvalidArgument(StrFormat(
            "binned GROUP BY column '%s' must be numeric", g.c_str()));
      }
      r.groups_categorical_ = false;
      r.group_dict_sizes_.push_back(0);
    } else if (table.column_type(static_cast<size_t>(col)) ==
               ColumnType::kCategorical) {
      r.group_dict_sizes_.push_back(table.DictSize(static_cast<size_t>(col)));
    } else {
      r.groups_categorical_ = false;
      r.group_dict_sizes_.push_back(0);
    }
  }
  if (r.groups_categorical_) {
    r.total_groups_ = 1;
    for (uint64_t d : r.group_dict_sizes_) {
      if (d == 0) d = 1;
      if (r.total_groups_ > kDenseGroupLimit) break;
      r.total_groups_ *= d;
    }
    r.dense_ = r.total_groups_ <= kDenseGroupLimit;
    // Suffix products: stride of position i is the product of the dict
    // sizes after it, mirroring DenseKey's mixed-radix packing.
    r.group_strides_.assign(r.group_cols_.size(), 1);
    for (size_t i = r.group_cols_.size(); i-- > 1;) {
      r.group_strides_[i - 1] =
          r.group_strides_[i] * r.group_dict_sizes_[i];
    }
  }

  // Resolve select items.
  for (const auto& item : stmt.items) {
    ItemPlan plan;
    plan.is_agg = item.is_aggregate();
    plan.agg = item.agg;
    if (plan.is_agg) {
      plan.agg_slot = r.num_aggs_++;
      if (item.column == "*") {
        if (item.agg != AggFunc::kCount) {
          return Status::InvalidArgument("only COUNT accepts *");
        }
        plan.col = -1;
      } else {
        plan.col = table.schema().Find(item.column);
        if (plan.col < 0) {
          return Status::NotFound(
              StrFormat("unknown column '%s'", item.column.c_str()));
        }
        const size_t c = static_cast<size_t>(plan.col);
        switch (table.column_type(c)) {
          case ColumnType::kDouble:
            plan.dptr = table.DoubleColumn(c).data();
            break;
          case ColumnType::kInt:
            plan.iptr = table.IntColumn(c).data();
            break;
          case ColumnType::kCategorical:
            break;  // slow path via NumericAt
        }
      }
    } else {
      plan.col = table.schema().Find(item.column);
      if (plan.col < 0) {
        return Status::NotFound(
            StrFormat("unknown column '%s'", item.column.c_str()));
      }
      if (r.aggregation_) {
        // Bare columns under aggregation must be group keys.
        for (size_t i = 0; i < r.group_cols_.size(); ++i) {
          if (r.group_cols_[i] == plan.col) {
            plan.group_pos = static_cast<int>(i);
            break;
          }
        }
        if (plan.group_pos < 0) {
          return Status::InvalidArgument(
              StrFormat("column '%s' must appear in GROUP BY",
                        item.column.c_str()));
        }
      }
    }
    r.items_.push_back(plan);
  }

  if (r.aggregation_ && r.dense_) {
    const size_t n = static_cast<size_t>(r.total_groups_) *
                     std::max(1, r.num_aggs_);
    r.dense_states_.resize(n);
    r.dense_seen_.assign(static_cast<size_t>(r.total_groups_), 0);
  }
  return r;
}

uint64_t SelectRunner::DenseKey(size_t row) const {
  uint64_t key = 0;
  for (size_t i = 0; i < group_cols_.size(); ++i) {
    key = key * group_dict_sizes_[i] +
          static_cast<uint64_t>(
              table_->Code(row, static_cast<size_t>(group_cols_[i])));
  }
  return key;
}

void SelectRunner::AccumulateInto(AggState* states, size_t row) {
  for (const ItemPlan& item : items_) {
    if (!item.is_agg) continue;
    AggState& s = states[item.agg_slot];
    if (item.col < 0) {
      ++s.count;
      continue;
    }
    double v;
    if (item.dptr != nullptr) {
      v = item.dptr[row];
    } else if (item.iptr != nullptr) {
      v = static_cast<double>(item.iptr[row]);
    } else {
      v = table_->NumericAt(row, static_cast<size_t>(item.col));
    }
    s.sum += v;
    ++s.count;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
}

void SelectRunner::Consume(size_t row) {
  if (!aggregation_) {
    std::vector<Value> out;
    out.reserve(items_.size());
    for (const ItemPlan& item : items_) {
      out.push_back(table_->ValueAt(row, static_cast<size_t>(item.col)));
    }
    projected_rows_.push_back(std::move(out));
    return;
  }
  if (groups_categorical_) {
    const uint64_t key = group_cols_.empty() ? 0 : DenseKey(row);
    if (dense_) {
      AggState* states =
          &dense_states_[key * static_cast<uint64_t>(std::max(1, num_aggs_))];
      if (!dense_seen_[key]) {
        dense_seen_[key] = 1;
        dense_keys_in_order_.push_back(key);
      }
      AccumulateInto(states, row);
    } else {
      auto [it, inserted] =
          hash_slots_.try_emplace(key, static_cast<uint32_t>(hash_keys_.size()));
      if (inserted) {
        hash_keys_.push_back(key);
        hash_states_.resize(hash_states_.size() +
                            static_cast<size_t>(std::max(1, num_aggs_)));
      }
      AccumulateInto(
          &hash_states_[static_cast<size_t>(it->second) *
                        static_cast<size_t>(std::max(1, num_aggs_))],
          row);
    }
    return;
  }
  // Generic path: group key is a Value tuple. Binned keys reduce the raw
  // value to its bin's lower edge with exactly the client binner's
  // arithmetic (viz/binning.cc BinVisualization) so a pushed-down binned
  // fetch emits the same edge values the client transform would.
  std::vector<Value> key;
  key.reserve(group_cols_.size());
  for (size_t i = 0; i < group_cols_.size(); ++i) {
    const size_t col = static_cast<size_t>(group_cols_[i]);
    const double w = group_bin_widths_[i];
    if (w > 0) {
      const int64_t bin =
          static_cast<int64_t>(std::floor(table_->NumericAt(row, col) / w));
      key.push_back(Value::Double(static_cast<double>(bin) * w));
    } else {
      key.push_back(table_->ValueAt(row, col));
    }
  }
  auto [it, inserted] =
      generic_slots_.try_emplace(key, static_cast<uint32_t>(generic_keys_.size()));
  if (inserted) {
    generic_keys_.push_back(key);
    generic_states_.resize(generic_states_.size() +
                           static_cast<size_t>(std::max(1, num_aggs_)));
  }
  AccumulateInto(&generic_states_[static_cast<size_t>(it->second) *
                                  static_cast<size_t>(std::max(1, num_aggs_))],
                 row);
}

void SelectRunner::MergeFrom(SelectRunner&& other) {
  const size_t naggs = static_cast<size_t>(std::max(1, num_aggs_));
  const auto merge_states = [naggs](AggState* into, const AggState* from) {
    for (size_t a = 0; a < naggs; ++a) {
      into[a].sum += from[a].sum;
      into[a].count += from[a].count;
      if (from[a].min < into[a].min) into[a].min = from[a].min;
      if (from[a].max > into[a].max) into[a].max = from[a].max;
    }
  };

  if (!aggregation_) {
    projected_rows_.insert(
        projected_rows_.end(),
        std::make_move_iterator(other.projected_rows_.begin()),
        std::make_move_iterator(other.projected_rows_.end()));
    return;
  }
  if (groups_categorical_) {
    if (dense_) {
      for (uint64_t key : other.dense_keys_in_order_) {
        if (!dense_seen_[key]) {
          dense_seen_[key] = 1;
          dense_keys_in_order_.push_back(key);
        }
        merge_states(&dense_states_[key * naggs],
                     &other.dense_states_[key * naggs]);
      }
    } else {
      for (size_t idx = 0; idx < other.hash_keys_.size(); ++idx) {
        const uint64_t key = other.hash_keys_[idx];
        auto [it, inserted] = hash_slots_.try_emplace(
            key, static_cast<uint32_t>(hash_keys_.size()));
        if (inserted) {
          hash_keys_.push_back(key);
          hash_states_.resize(hash_states_.size() + naggs);
        }
        merge_states(&hash_states_[static_cast<size_t>(it->second) * naggs],
                     &other.hash_states_[idx * naggs]);
      }
    }
    return;
  }
  for (const auto& [key, slot] : other.generic_slots_) {
    auto [it, inserted] = generic_slots_.try_emplace(
        key, static_cast<uint32_t>(generic_keys_.size()));
    if (inserted) {
      generic_keys_.push_back(key);
      generic_states_.resize(generic_states_.size() + naggs);
    }
    merge_states(&generic_states_[static_cast<size_t>(it->second) * naggs],
                 &other.generic_states_[static_cast<size_t>(slot) * naggs]);
  }
}

Value SelectRunner::GroupColValue(int group_pos, uint64_t key) const {
  // Decode the mixed-radix key back to the per-column code using the
  // strides precomputed at Plan() time.
  const uint64_t divisor = group_strides_[static_cast<size_t>(group_pos)];
  const uint64_t code =
      (key / divisor) % group_dict_sizes_[static_cast<size_t>(group_pos)];
  return table_->DictValue(
      static_cast<size_t>(group_cols_[static_cast<size_t>(group_pos)]),
      static_cast<int32_t>(code));
}

Value SelectRunner::FinalizeAgg(const AggState& s, AggFunc f) const {
  switch (f) {
    case AggFunc::kSum:
      return Value::Double(s.sum);
    case AggFunc::kAvg:
      return Value::Double(s.count ? s.sum / static_cast<double>(s.count) : 0);
    case AggFunc::kCount:
      return Value::Int(s.count);
    case AggFunc::kMin:
      return Value::Double(s.count ? s.min : 0);
    case AggFunc::kMax:
      return Value::Double(s.count ? s.max : 0);
    case AggFunc::kNone:
      break;
  }
  return Value::Null();
}

Status SelectRunner::ApplyOrderAndLimit(ResultSet* rs) const {
  if (!stmt_.order_by.empty()) {
    std::vector<std::pair<int, bool>> keys;  // output column idx, desc
    for (const auto& k : stmt_.order_by) {
      const int idx = rs->Find(k.column);
      if (idx < 0) {
        return Status::Unsupported(
            StrFormat("ORDER BY column '%s' must appear in the SELECT list",
                      k.column.c_str()));
      }
      keys.emplace_back(idx, k.descending);
    }
    auto key_compare = [&keys](const std::vector<Value>& a,
                               const std::vector<Value>& b) {
      for (const auto& [idx, desc] : keys) {
        const int c =
            a[static_cast<size_t>(idx)].Compare(b[static_cast<size_t>(idx)]);
        if (c != 0) return desc ? c > 0 : c < 0;
      }
      return false;
    };
    const size_t limit = static_cast<size_t>(stmt_.limit);
    if (stmt_.limit >= 0 && rs->rows.size() > limit &&
        limit <= rs->rows.size() / 2) {
      // ORDER BY + LIMIT is a top-k problem: partially sort row *indices*
      // with the original position as the tie-break, which reproduces the
      // stable full sort's first `limit` rows exactly without ordering the
      // (possibly much larger) tail. Limits past half the row count fall
      // through to the stable sort — heap-selecting nearly everything at
      // double compare cost (the tie-break comparator) would be slower
      // than sorting once.
      std::vector<size_t> order(rs->rows.size());
      std::iota(order.begin(), order.end(), 0);
      std::partial_sort(order.begin(), order.begin() + limit, order.end(),
                        [&](size_t ia, size_t ib) {
                          if (key_compare(rs->rows[ia], rs->rows[ib])) {
                            return true;
                          }
                          if (key_compare(rs->rows[ib], rs->rows[ia])) {
                            return false;
                          }
                          return ia < ib;
                        });
      std::vector<std::vector<Value>> kept;
      kept.reserve(limit);
      for (size_t i = 0; i < limit; ++i) {
        kept.push_back(std::move(rs->rows[order[i]]));
      }
      rs->rows = std::move(kept);
      return Status::OK();
    }
    std::stable_sort(rs->rows.begin(), rs->rows.end(), key_compare);
  }
  if (stmt_.limit >= 0 &&
      rs->rows.size() > static_cast<size_t>(stmt_.limit)) {
    rs->rows.resize(static_cast<size_t>(stmt_.limit));
  }
  return Status::OK();
}

Result<ResultSet> SelectRunner::Finish() {
  ResultSet rs;
  for (const auto& item : stmt_.items) rs.columns.push_back(item.DisplayName());

  if (!aggregation_) {
    rs.rows = std::move(projected_rows_);
    ZV_RETURN_NOT_OK(ApplyOrderAndLimit(&rs));
    return rs;
  }

  const size_t naggs = static_cast<size_t>(std::max(1, num_aggs_));
  auto emit_group = [&](uint64_t key, const AggState* states) {
    std::vector<Value> row;
    row.reserve(items_.size());
    for (const ItemPlan& item : items_) {
      if (item.is_agg) {
        row.push_back(FinalizeAgg(states[item.agg_slot], item.agg));
      } else {
        row.push_back(GroupColValue(item.group_pos, key));
      }
    }
    rs.rows.push_back(std::move(row));
  };

  if (groups_categorical_) {
    if (dense_) {
      std::vector<uint64_t> keys = dense_keys_in_order_;
      std::sort(keys.begin(), keys.end());
      if (group_cols_.empty() && keys.empty() && num_aggs_ > 0) {
        // Aggregates over an empty selection: one row of empty aggregates,
        // mirroring SQL semantics for aggregate queries with no GROUP BY.
        keys.push_back(0);
      }
      for (uint64_t key : keys) emit_group(key, &dense_states_[key * naggs]);
    } else {
      std::vector<uint64_t> keys = hash_keys_;
      std::sort(keys.begin(), keys.end());
      for (uint64_t key : keys) {
        const uint32_t slot = hash_slots_.at(key);
        emit_group(key, &hash_states_[static_cast<size_t>(slot) * naggs]);
      }
    }
  } else {
    // generic_slots_ is a std::map — already in key order.
    for (const auto& [key, slot] : generic_slots_) {
      std::vector<Value> row;
      row.reserve(items_.size());
      const AggState* states =
          &generic_states_[static_cast<size_t>(slot) * naggs];
      for (const ItemPlan& item : items_) {
        if (item.is_agg) {
          row.push_back(FinalizeAgg(states[item.agg_slot], item.agg));
        } else {
          row.push_back(key[static_cast<size_t>(item.group_pos)]);
        }
      }
      rs.rows.push_back(std::move(row));
    }
  }
  ZV_RETURN_NOT_OK(ApplyOrderAndLimit(&rs));
  return rs;
}

namespace {

/// Target rows per block and the cap on per-block runner state. The block
/// count derived from these is a pure function of the table size.
constexpr size_t kScanBlockRows = 16384;
constexpr size_t kMaxScanBlocks = 32;

}  // namespace

Result<ResultSet> RunBlocked(
    const Table& table, const sql::SelectStatement& stmt,
    const std::function<void(size_t begin, size_t end, SelectRunner& runner)>&
        scan_block) {
  ZV_RETURN_NOT_OK(CheckCancelled());
  ZV_ASSIGN_OR_RETURN(SelectRunner runner, SelectRunner::Plan(table, stmt));
  const size_t n = table.num_rows();
  const size_t blocks =
      std::min(kMaxScanBlocks, std::max<size_t>(1, n / kScanBlockRows));
  if (blocks <= 1 || !runner.cheap_to_replicate()) {
    scan_block(0, n, runner);
    return runner.Finish();
  }
  std::vector<SelectRunner> runners;
  runners.reserve(blocks);
  runners.push_back(std::move(runner));
  for (size_t b = 1; b < blocks; ++b) {
    ZV_ASSIGN_OR_RETURN(SelectRunner block_runner,
                        SelectRunner::Plan(table, stmt));
    runners.push_back(std::move(block_runner));
  }
  ParallelFor(blocks, [&](size_t b) {
    scan_block(n * b / blocks, n * (b + 1) / blocks, runners[b]);
  });
  // A cancelled void ParallelFor stops claiming chunks without reporting;
  // some blocks may be unscanned, so the merge below must not run.
  ZV_RETURN_NOT_OK(CheckCancelled());
  for (size_t b = 1; b < blocks; ++b) {
    runners[0].MergeFrom(std::move(runners[b]));
  }
  return runners[0].Finish();
}

Result<ResultSet> RunBlockedOverRows(const Table& table,
                                     const sql::SelectStatement& stmt,
                                     const std::vector<uint32_t>& rows) {
  return RunBlocked(
      table, stmt,
      [&rows](size_t begin, size_t end, SelectRunner& runner) {
        auto lo = std::lower_bound(rows.begin(), rows.end(),
                                   static_cast<uint32_t>(begin));
        auto hi = std::lower_bound(rows.begin(), rows.end(),
                                   static_cast<uint32_t>(end));
        for (auto it = lo; it != hi; ++it) runner.Consume(*it);
      });
}

}  // namespace zv
