#include "engine/chunk_map.h"

#include <cstdlib>

namespace zv {

size_t DefaultChunkRows() {
  static const size_t cached = [] {
    if (const char* env = std::getenv("ZV_CHUNK_ROWS")) {
      char* end = nullptr;
      const long long v = std::strtoll(env, &end, 10);
      if (end != env && v > 0) return static_cast<size_t>(v);
    }
    return static_cast<size_t>(1) << 18;
  }();
  return cached;
}

ChunkMap ChunkMap::Build(size_t num_rows, size_t chunk_rows) {
  ChunkMap map;
  map.num_rows_ = num_rows;
  map.chunk_rows_ = chunk_rows > 0 ? chunk_rows : DefaultChunkRows();
  return map;
}

}  // namespace zv
