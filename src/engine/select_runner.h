/// \file select_runner.h
/// \brief Backend-independent SELECT evaluation: projection, hash/dense
/// group-by aggregation, ORDER BY and LIMIT.
///
/// A backend plans a SelectRunner for a statement, feeds it the row ids that
/// survive its own WHERE evaluation (scan loop or bitmap iteration), and
/// calls Finish(). Both backends share this code so measured differences
/// between them isolate row *selection*, which is what Figure 7.5 studies.

#ifndef ZV_ENGINE_SELECT_RUNNER_H_
#define ZV_ENGINE_SELECT_RUNNER_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/result_set.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace zv {

/// \brief Streaming evaluator for one SELECT against one table.
class SelectRunner {
 public:
  /// Max group count for the dense (array-addressed) aggregation path.
  static constexpr uint64_t kDenseGroupLimit = 1u << 20;

  /// Validates the statement against the table and builds the plan.
  static Result<SelectRunner> Plan(const Table& table,
                                   const sql::SelectStatement& stmt);

  /// Feeds one selected row id. Must be called in ascending row order for
  /// deterministic projection output.
  void Consume(size_t row);

  /// Merges the accumulated state of `other` into this runner. `other`
  /// must be planned from the same statement over the same table and must
  /// have consumed a row range strictly after this runner's (projection
  /// rows are appended in shard order). Aggregate states merge
  /// associatively (sum/count add; min/max fold), so a partitioned scan
  /// followed by merges produces exactly the serial Finish() output.
  void MergeFrom(SelectRunner&& other);

  /// True when a per-block copy of this runner's aggregation state is
  /// cheap (the dense path preallocates total_groups slots per block, so
  /// very wide dense group spaces are better scanned serially).
  bool cheap_to_replicate() const {
    return !dense_ || total_groups_ <= (1u << 15);
  }

  /// Builds the final result (applies ORDER BY and LIMIT).
  Result<ResultSet> Finish();

 private:
  struct AggState {
    double sum = 0;
    int64_t count = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  struct ItemPlan {
    bool is_agg = false;
    sql::AggFunc agg = sql::AggFunc::kNone;
    int col = -1;        ///< table column (-1 for COUNT(*))
    int group_pos = -1;  ///< for bare items: position in group_by
    int agg_slot = -1;   ///< for agg items: index among aggregates
    // Fast numeric access for aggregation.
    const double* dptr = nullptr;
    const int64_t* iptr = nullptr;
  };

  SelectRunner() = default;

  uint64_t DenseKey(size_t row) const;
  void AccumulateInto(AggState* states, size_t row);
  Value GroupColValue(int group_pos, uint64_t key) const;
  Value FinalizeAgg(const AggState& s, sql::AggFunc f) const;
  Status ApplyOrderAndLimit(ResultSet* rs) const;

  const Table* table_ = nullptr;
  sql::SelectStatement stmt_;

  bool aggregation_ = false;

  // Aggregation state.
  std::vector<int> group_cols_;
  /// Parallel to group_cols_: bin width per key (0 = raw grouping). Any
  /// positive width forces the generic path (computed Value keys).
  std::vector<double> group_bin_widths_;
  std::vector<uint64_t> group_dict_sizes_;
  /// Mixed-radix divisor per group position (suffix products of
  /// group_dict_sizes_), precomputed once at Plan() time so GroupColValue
  /// does not rebuild the divisor loop for every emitted group x item.
  std::vector<uint64_t> group_strides_;
  bool groups_categorical_ = true;
  uint64_t total_groups_ = 1;
  bool dense_ = false;
  std::vector<ItemPlan> items_;
  int num_aggs_ = 0;

  std::vector<AggState> dense_states_;
  std::vector<uint8_t> dense_seen_;
  std::vector<uint64_t> dense_keys_in_order_;

  std::unordered_map<uint64_t, uint32_t> hash_slots_;
  std::vector<AggState> hash_states_;
  std::vector<uint64_t> hash_keys_;

  // Generic (non-categorical group key) path.
  std::map<std::vector<Value>, uint32_t> generic_slots_;
  std::vector<AggState> generic_states_;
  std::vector<std::vector<Value>> generic_keys_;

  // Projection state.
  std::vector<std::vector<Value>> projected_rows_;
};

/// Drives a blocked — and, when ZV_THREADS allows, parallel — SELECT
/// evaluation shared by both backends. The table's row space is split into
/// contiguous blocks whose *count depends only on the row count* (never on
/// the worker count); `scan_block(begin, end, runner)` feeds each block's
/// surviving rows (in ascending order) to its own SelectRunner, and the
/// block partials merge in block order. Aggregation therefore associates
/// floats identically at every thread count, and both backends produce the
/// same bytes for the same surviving rows. Falls back to one serial runner
/// when the table is small or the dense group state is too wide to
/// replicate per block.
Result<ResultSet> RunBlocked(
    const Table& table, const sql::SelectStatement& stmt,
    const std::function<void(size_t begin, size_t end, SelectRunner& runner)>&
        scan_block);

/// Feeds a sorted row-id list to RunBlocked: each block consumes the ids
/// inside its [begin, end) range, located by binary search. Row ids stay in
/// ascending order inside every block, so the result is byte-identical to a
/// scan that selected the same rows in place — this is how the Roaring
/// backend finishes a bitmap selection and how the sharded chunk path
/// (engine/database.h FinishChunkScan) aggregates its merged row list.
Result<ResultSet> RunBlockedOverRows(const Table& table,
                                     const sql::SelectStatement& stmt,
                                     const std::vector<uint32_t>& rows);

}  // namespace zv

#endif  // ZV_ENGINE_SELECT_RUNNER_H_
