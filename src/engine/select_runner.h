/// \file select_runner.h
/// \brief Backend-independent SELECT evaluation: projection, hash/dense
/// group-by aggregation, ORDER BY and LIMIT.
///
/// A backend plans a SelectRunner for a statement, feeds it the row ids that
/// survive its own WHERE evaluation (scan loop or bitmap iteration), and
/// calls Finish(). Both backends share this code so measured differences
/// between them isolate row *selection*, which is what Figure 7.5 studies.

#ifndef ZV_ENGINE_SELECT_RUNNER_H_
#define ZV_ENGINE_SELECT_RUNNER_H_

#include <cstdint>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/result_set.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace zv {

/// \brief Streaming evaluator for one SELECT against one table.
class SelectRunner {
 public:
  /// Max group count for the dense (array-addressed) aggregation path.
  static constexpr uint64_t kDenseGroupLimit = 1u << 20;

  /// Validates the statement against the table and builds the plan.
  static Result<SelectRunner> Plan(const Table& table,
                                   const sql::SelectStatement& stmt);

  /// Feeds one selected row id. Must be called in ascending row order for
  /// deterministic projection output.
  void Consume(size_t row);

  /// Builds the final result (applies ORDER BY and LIMIT).
  Result<ResultSet> Finish();

 private:
  struct AggState {
    double sum = 0;
    int64_t count = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  struct ItemPlan {
    bool is_agg = false;
    sql::AggFunc agg = sql::AggFunc::kNone;
    int col = -1;        ///< table column (-1 for COUNT(*))
    int group_pos = -1;  ///< for bare items: position in group_by
    int agg_slot = -1;   ///< for agg items: index among aggregates
    // Fast numeric access for aggregation.
    const double* dptr = nullptr;
    const int64_t* iptr = nullptr;
  };

  SelectRunner() = default;

  uint64_t DenseKey(size_t row) const;
  void AccumulateInto(AggState* states, size_t row);
  Value GroupColValue(int group_pos, uint64_t key) const;
  Value FinalizeAgg(const AggState& s, sql::AggFunc f) const;
  Status ApplyOrderAndLimit(ResultSet* rs) const;

  const Table* table_ = nullptr;
  sql::SelectStatement stmt_;

  bool aggregation_ = false;

  // Aggregation state.
  std::vector<int> group_cols_;
  std::vector<uint64_t> group_dict_sizes_;
  bool groups_categorical_ = true;
  uint64_t total_groups_ = 1;
  bool dense_ = false;
  std::vector<ItemPlan> items_;
  int num_aggs_ = 0;

  std::vector<AggState> dense_states_;
  std::vector<uint8_t> dense_seen_;
  std::vector<uint64_t> dense_keys_in_order_;

  std::unordered_map<uint64_t, uint32_t> hash_slots_;
  std::vector<AggState> hash_states_;
  std::vector<uint64_t> hash_keys_;

  // Generic (non-categorical group key) path.
  std::map<std::vector<Value>, uint32_t> generic_slots_;
  std::vector<AggState> generic_states_;
  std::vector<std::vector<Value>> generic_keys_;

  // Projection state.
  std::vector<std::vector<Value>> projected_rows_;
};

}  // namespace zv

#endif  // ZV_ENGINE_SELECT_RUNNER_H_
