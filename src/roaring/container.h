/// \file container.h
/// \brief 16-bit containers underlying the Roaring bitmap (Chambi, Lemire,
/// Kaser, Godin, "Better bitmap performance with Roaring bitmaps", SPE 2015;
/// paper reference [17]).
///
/// A Roaring bitmap partitions the 32-bit universe into 2^16 chunks keyed by
/// the high 16 bits; each chunk stores its low 16 bits in whichever
/// container is smallest:
///   - ArrayContainer:    sorted uint16 list (cardinality <= 4096),
///   - BitmapContainer:   1024 x uint64 words (mid-density),
///   - InvertedContainer: sorted uint16 list of the *unset* positions
///     (cardinality >= 61440 — nearly full chunks, the mirror image of the
///     array container),
///   - AllContainer:      every one of the 65536 values present; a zero-byte
///     sentinel (full chunks are common under `WHERE`-free scans and
///     complement pushdown),
///   - RunContainer:      sorted (start, length) runs, chosen by
///     RunOptimize() when it beats the canonical form.
///
/// The inverted/all encodings follow multiroar's adaptive container set:
/// predicates over near-complete chunks (e.g. `NOT col = rare_value`)
/// otherwise pay full 8 KiB bitmaps for a handful of absent rows.

#ifndef ZV_ROARING_CONTAINER_H_
#define ZV_ROARING_CONTAINER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace zv::roaring {

/// Cardinality threshold at which an array container converts to a bitmap.
inline constexpr uint32_t kArrayMaxCardinality = 4096;
/// Number of 64-bit words in a bitmap container (2^16 / 64).
inline constexpr uint32_t kBitmapWords = 1024;
/// Number of values a chunk can hold (2^16).
inline constexpr uint32_t kChunkCardinality = 65536;
/// Cardinality threshold at which a bitmap converts to an inverted
/// container: the unset list then fits the same budget an array container
/// gets for its set list (<= kArrayMaxCardinality entries).
inline constexpr uint32_t kInvertedMinCardinality =
    kChunkCardinality - kArrayMaxCardinality;

/// \brief A run of consecutive values [start, start + length].
struct Run {
  uint16_t start;
  uint16_t length;  ///< inclusive extra values; run covers length+1 values
  bool operator==(const Run&) const = default;
};

/// How IntersectSorted walks its two inputs.
enum class IntersectMode {
  kLinear,     ///< two-pointer merge, O(|a| + |b|)
  kGalloping,  ///< exponential search in the larger list, O(|small| log)
  kAuto,       ///< galloping when the sizes are lopsided, merge otherwise
};

/// Intersection of two sorted uint16 lists. The galloping mode advances
/// through the larger list by exponential (1, 2, 4, ...) steps from the
/// previous match position before binary-searching the bracketed window —
/// O(small * log(gap)) instead of O(large) — which is the array-vs-array
/// kernel behind selective predicate conjunctions. Exposed as a free
/// function so tests and bench_roaring can pit the modes against each other
/// on identical inputs.
std::vector<uint16_t> IntersectSorted(const std::vector<uint16_t>& a,
                                      const std::vector<uint16_t>& b,
                                      IntersectMode mode = IntersectMode::kAuto);

/// Process-wide count of container representation changes (array<->bitmap,
/// ->inverted, ->all, ->run). Monotone, updated with relaxed atomics;
/// surfaced per-query as the `container_conversions` wire stat.
uint64_t ContainerConversions();

/// \brief One 16-bit chunk of a Roaring bitmap.
///
/// The container owns exactly one representation at a time, identified by
/// type(). All mutating operations keep the cached cardinality correct and
/// convert between representations at the density thresholds above.
/// Binary set operations return newly allocated containers in the smallest
/// canonical (array / bitmap / inverted / all) representation; run
/// containers are produced only by RunOptimize().
class Container {
 public:
  enum class Type { kArray, kBitmap, kRun, kInverted, kAll };

  Container() : type_(Type::kArray), cardinality_(0) {}

  static Container MakeArray(std::vector<uint16_t> sorted_values);
  static Container MakeBitmap(std::vector<uint64_t> words);
  static Container MakeRuns(std::vector<Run> runs);
  /// Container holding every value except `sorted_absent` (normalized to
  /// bitmap/all form when the absent list is out of inverted range).
  static Container MakeInverted(std::vector<uint16_t> sorted_absent);
  /// The full chunk: all 65536 values, zero bytes of storage.
  static Container MakeAll();

  Type type() const { return type_; }
  uint32_t Cardinality() const { return cardinality_; }
  bool Empty() const { return cardinality_ == 0; }

  /// Returns true if the value was newly added.
  bool Add(uint16_t x);
  /// Adds the inclusive range [lo, hi].
  void AddRange(uint16_t lo, uint16_t hi);
  /// Returns true if the value was present.
  bool Remove(uint16_t x);
  bool Contains(uint16_t x) const;

  /// Number of values strictly less than x.
  uint32_t Rank(uint16_t x) const;

  /// Appends all values (ascending) into out, offset by `base`.
  void AppendValues(uint32_t base, std::vector<uint32_t>* out) const;

  /// Calls fn(uint16_t) for each value in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    switch (type_) {
      case Type::kArray:
        for (uint16_t v : array_) fn(v);
        break;
      case Type::kBitmap:
        for (uint32_t w = 0; w < kBitmapWords; ++w) {
          uint64_t word = bitmap_[w];
          while (word != 0) {
            const int bit = __builtin_ctzll(word);
            fn(static_cast<uint16_t>((w << 6) + bit));
            word &= word - 1;
          }
        }
        break;
      case Type::kRun:
        for (const Run& r : runs_) {
          const uint32_t end = static_cast<uint32_t>(r.start) + r.length;
          for (uint32_t v = r.start; v <= end; ++v)
            fn(static_cast<uint16_t>(v));
        }
        break;
      case Type::kInverted: {
        // array_ holds the sorted *absent* values; emit the gaps between
        // them. Each gap is a dense run, so the inner loops stay tight.
        uint32_t v = 0;
        for (uint16_t absent : array_) {
          for (; v < absent; ++v) fn(static_cast<uint16_t>(v));
          ++v;  // skip the absent value
        }
        for (; v < kChunkCardinality; ++v) fn(static_cast<uint16_t>(v));
        break;
      }
      case Type::kAll:
        for (uint32_t v = 0; v < kChunkCardinality; ++v)
          fn(static_cast<uint16_t>(v));
        break;
    }
  }

  /// Calls fn(uint16_t) for each value in the inclusive window [lo, hi],
  /// ascending. Unlike filtering ForEach, every representation skips
  /// straight to the window: arrays binary-search the start, bitmaps mask
  /// the boundary words, runs clamp, and the all/inverted encodings emit
  /// dense loops. This is the boundary-chunk path of
  /// RoaringBitmap::ForEachInRange (the sharded scan's range extraction).
  template <typename Fn>
  void ForEachInWindow(uint16_t lo, uint16_t hi, Fn&& fn) const {
    if (lo > hi) return;
    switch (type_) {
      case Type::kArray: {
        auto it = std::lower_bound(array_.begin(), array_.end(), lo);
        for (; it != array_.end() && *it <= hi; ++it) fn(*it);
        break;
      }
      case Type::kBitmap: {
        const uint32_t w_lo = lo >> 6, w_hi = hi >> 6;
        for (uint32_t w = w_lo; w <= w_hi; ++w) {
          uint64_t word = bitmap_[w];
          if (w == w_lo) word &= ~0ULL << (lo & 63);
          if (w == w_hi && (hi & 63) != 63) word &= (1ULL << ((hi & 63) + 1)) - 1;
          while (word != 0) {
            const int bit = __builtin_ctzll(word);
            fn(static_cast<uint16_t>((w << 6) + bit));
            word &= word - 1;
          }
        }
        break;
      }
      case Type::kRun:
        for (const Run& r : runs_) {
          const uint32_t start = r.start;
          const uint32_t end = start + r.length;
          if (end < lo) continue;
          if (start > hi) break;
          const uint32_t from = start < lo ? lo : start;
          const uint32_t to = end > hi ? hi : end;
          for (uint32_t v = from; v <= to; ++v) fn(static_cast<uint16_t>(v));
        }
        break;
      case Type::kInverted: {
        auto it = std::lower_bound(array_.begin(), array_.end(), lo);
        uint32_t v = lo;
        for (; it != array_.end() && *it <= hi; ++it) {
          for (; v < *it; ++v) fn(static_cast<uint16_t>(v));
          v = static_cast<uint32_t>(*it) + 1;
        }
        for (; v <= hi; ++v) fn(static_cast<uint16_t>(v));
        break;
      }
      case Type::kAll:
        for (uint32_t v = lo; v <= hi; ++v) fn(static_cast<uint16_t>(v));
        break;
    }
  }

  static Container And(const Container& a, const Container& b);
  static Container Or(const Container& a, const Container& b);
  static Container AndNot(const Container& a, const Container& b);
  static Container Xor(const Container& a, const Container& b);
  static uint32_t AndCardinality(const Container& a, const Container& b);

  /// Converts to the run representation when it is strictly smaller than
  /// the current one; returns true if a conversion happened.
  bool RunOptimize();

  /// Heap bytes used by the active representation.
  size_t SizeInBytes() const;

  /// Structural equality on the represented set (representation-agnostic).
  bool SameSetAs(const Container& other) const;

  /// Converts to the smallest canonical representation for the current
  /// cardinality: all (== 65536), inverted (>= 61440), bitmap (> 4096),
  /// array otherwise. Run containers are canonicalized away (RunOptimize
  /// re-derives them when asked). Used after deserializing or bulk edits.
  void Normalize();

 private:
  void ConvertArrayToBitmap();
  void ConvertBitmapToArrayIfSmall();
  Container ToBitmapCopy() const;
  std::vector<uint16_t> ToArrayValues() const;
  /// Sorted list of the values NOT in this container.
  std::vector<uint16_t> AbsentValues() const;
  /// Full 1024-word bitmap of the current contents.
  std::vector<uint64_t> ToWords() const;

  static Container AndArrayArray(const std::vector<uint16_t>& a,
                                 const std::vector<uint16_t>& b);
  static Container AndArrayBitmap(const std::vector<uint16_t>& a,
                                  const Container& b);
  static Container AndBitmapBitmap(const Container& a, const Container& b);
  static Container OrArrayArray(const std::vector<uint16_t>& a,
                                const std::vector<uint16_t>& b);
  static Container OrBitmapAny(const Container& bitmap, const Container& any);

  Type type_;
  uint32_t cardinality_;
  /// Set values (kArray) or absent values (kInverted), both sorted.
  std::vector<uint16_t> array_;
  std::vector<uint64_t> bitmap_;
  std::vector<Run> runs_;
};

/// Human-readable name of a container type ("array", "bitmap", "run",
/// "inverted", "all"); check_docs.sh extracts these spellings and requires
/// each to be documented in docs/architecture.md.
const char* ContainerTypeName(Container::Type type);

}  // namespace zv::roaring

#endif  // ZV_ROARING_CONTAINER_H_
