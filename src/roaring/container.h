/// \file container.h
/// \brief 16-bit containers underlying the Roaring bitmap (Chambi, Lemire,
/// Kaser, Godin, "Better bitmap performance with Roaring bitmaps", SPE 2015;
/// paper reference [17]).
///
/// A Roaring bitmap partitions the 32-bit universe into 2^16 chunks keyed by
/// the high 16 bits; each chunk stores its low 16 bits in whichever
/// container is smallest:
///   - ArrayContainer:  sorted uint16 list (cardinality <= 4096),
///   - BitmapContainer: 1024 x uint64 words (cardinality > 4096),
///   - RunContainer:    sorted (start, length) runs, chosen by RunOptimize
///     when it beats both of the above.

#ifndef ZV_ROARING_CONTAINER_H_
#define ZV_ROARING_CONTAINER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace zv::roaring {

/// Cardinality threshold at which an array container converts to a bitmap.
inline constexpr uint32_t kArrayMaxCardinality = 4096;
/// Number of 64-bit words in a bitmap container (2^16 / 64).
inline constexpr uint32_t kBitmapWords = 1024;

/// \brief A run of consecutive values [start, start + length].
struct Run {
  uint16_t start;
  uint16_t length;  ///< inclusive extra values; run covers length+1 values
  bool operator==(const Run&) const = default;
};

/// \brief One 16-bit chunk of a Roaring bitmap.
///
/// The container owns exactly one representation at a time, identified by
/// type(). All mutating operations keep the cached cardinality correct and
/// convert between array and bitmap representations at the 4096 threshold.
/// Binary set operations return newly allocated containers in the most
/// compact (array vs bitmap) representation; run containers are produced
/// only by RunOptimize().
class Container {
 public:
  enum class Type { kArray, kBitmap, kRun };

  Container() : type_(Type::kArray), cardinality_(0) {}

  static Container MakeArray(std::vector<uint16_t> sorted_values);
  static Container MakeBitmap(std::vector<uint64_t> words);
  static Container MakeRuns(std::vector<Run> runs);

  Type type() const { return type_; }
  uint32_t Cardinality() const { return cardinality_; }
  bool Empty() const { return cardinality_ == 0; }

  /// Returns true if the value was newly added.
  bool Add(uint16_t x);
  /// Adds the inclusive range [lo, hi].
  void AddRange(uint16_t lo, uint16_t hi);
  /// Returns true if the value was present.
  bool Remove(uint16_t x);
  bool Contains(uint16_t x) const;

  /// Number of values strictly less than x.
  uint32_t Rank(uint16_t x) const;

  /// Appends all values (ascending) into out, offset by `base`.
  void AppendValues(uint32_t base, std::vector<uint32_t>* out) const;

  /// Calls fn(uint16_t) for each value in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    switch (type_) {
      case Type::kArray:
        for (uint16_t v : array_) fn(v);
        break;
      case Type::kBitmap:
        for (uint32_t w = 0; w < kBitmapWords; ++w) {
          uint64_t word = bitmap_[w];
          while (word != 0) {
            const int bit = __builtin_ctzll(word);
            fn(static_cast<uint16_t>((w << 6) + bit));
            word &= word - 1;
          }
        }
        break;
      case Type::kRun:
        for (const Run& r : runs_) {
          const uint32_t end = static_cast<uint32_t>(r.start) + r.length;
          for (uint32_t v = r.start; v <= end; ++v)
            fn(static_cast<uint16_t>(v));
        }
        break;
    }
  }

  static Container And(const Container& a, const Container& b);
  static Container Or(const Container& a, const Container& b);
  static Container AndNot(const Container& a, const Container& b);
  static Container Xor(const Container& a, const Container& b);
  static uint32_t AndCardinality(const Container& a, const Container& b);

  /// Converts to the run representation when it is strictly smaller than
  /// the current one; returns true if a conversion happened.
  bool RunOptimize();

  /// Heap bytes used by the active representation.
  size_t SizeInBytes() const;

  /// Structural equality on the represented set (representation-agnostic).
  bool SameSetAs(const Container& other) const;

  /// Converts run/bitmap representations to the canonical array-or-bitmap
  /// form based on cardinality. Used after deserializing or bulk edits.
  void Normalize();

 private:
  void ConvertArrayToBitmap();
  void ConvertBitmapToArrayIfSmall();
  Container ToBitmapCopy() const;
  std::vector<uint16_t> ToArrayValues() const;

  static Container AndArrayArray(const std::vector<uint16_t>& a,
                                 const std::vector<uint16_t>& b);
  static Container AndArrayBitmap(const std::vector<uint16_t>& a,
                                  const Container& b);
  static Container AndBitmapBitmap(const Container& a, const Container& b);
  static Container OrArrayArray(const std::vector<uint16_t>& a,
                                const std::vector<uint16_t>& b);
  static Container OrBitmapAny(const Container& bitmap, const Container& any);

  Type type_;
  uint32_t cardinality_;
  std::vector<uint16_t> array_;
  std::vector<uint64_t> bitmap_;
  std::vector<Run> runs_;
};

}  // namespace zv::roaring

#endif  // ZV_ROARING_CONTAINER_H_
