#include "roaring/roaring.h"

#include <algorithm>

namespace zv::roaring {

namespace {

inline uint16_t HighBits(uint32_t x) { return static_cast<uint16_t>(x >> 16); }
inline uint16_t LowBits(uint32_t x) { return static_cast<uint16_t>(x & 0xFFFF); }

}  // namespace

Container* RoaringBitmap::FindOrCreate(uint16_t key) {
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const auto& chunk, uint16_t k) { return chunk.first < k; });
  if (it == chunks_.end() || it->first != key) {
    it = chunks_.insert(it, {key, Container()});
  }
  return &it->second;
}

const Container* RoaringBitmap::Find(uint16_t key) const {
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const auto& chunk, uint16_t k) { return chunk.first < k; });
  if (it == chunks_.end() || it->first != key) return nullptr;
  return &it->second;
}

void RoaringBitmap::EraseEmpty() {
  chunks_.erase(std::remove_if(chunks_.begin(), chunks_.end(),
                               [](const auto& c) { return c.second.Empty(); }),
                chunks_.end());
}

RoaringBitmap RoaringBitmap::FromValues(const std::vector<uint32_t>& values) {
  std::vector<uint32_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return FromSortedValues(sorted.data(), sorted.data() + sorted.size());
}

RoaringBitmap RoaringBitmap::FromSortedValues(const uint32_t* begin,
                                              const uint32_t* end) {
  RoaringBitmap bm;
  const uint32_t* it = begin;
  while (it != end) {
    const uint16_t key = HighBits(*it);
    std::vector<uint16_t> low;
    while (it != end && HighBits(*it) == key) {
      low.push_back(LowBits(*it));
      ++it;
    }
    bm.chunks_.emplace_back(key, Container::MakeArray(std::move(low)));
  }
  return bm;
}

RoaringBitmap RoaringBitmap::FromRange(uint32_t lo, uint32_t hi) {
  RoaringBitmap bm;
  if (lo >= hi) return bm;
  const uint32_t last = hi - 1;
  for (uint32_t key = HighBits(lo); key <= HighBits(last); ++key) {
    const uint16_t from = (key == HighBits(lo)) ? LowBits(lo) : 0;
    const uint16_t to = (key == HighBits(last)) ? LowBits(last) : 0xFFFF;
    const uint32_t count = static_cast<uint32_t>(to) - from + 1;
    if (count == kChunkCardinality) {
      // Fully covered chunk: the zero-byte all-set sentinel, no bit loop.
      bm.chunks_.emplace_back(static_cast<uint16_t>(key), Container::MakeAll());
    } else if (count >= kInvertedMinCardinality) {
      // Nearly full chunk: store the short absent prefix/suffix instead of
      // populating 8 KiB of words.
      std::vector<uint16_t> absent;
      absent.reserve(kChunkCardinality - count);
      for (uint32_t v = 0; v < from; ++v)
        absent.push_back(static_cast<uint16_t>(v));
      for (uint32_t v = static_cast<uint32_t>(to) + 1; v < kChunkCardinality;
           ++v)
        absent.push_back(static_cast<uint16_t>(v));
      bm.chunks_.emplace_back(static_cast<uint16_t>(key),
                              Container::MakeInverted(std::move(absent)));
    } else if (count > kArrayMaxCardinality) {
      std::vector<uint64_t> words(kBitmapWords, 0);
      for (uint32_t v = from; v <= to; ++v) words[v >> 6] |= 1ULL << (v & 63);
      bm.chunks_.emplace_back(static_cast<uint16_t>(key),
                              Container::MakeBitmap(std::move(words)));
    } else {
      std::vector<uint16_t> vals;
      vals.reserve(count);
      for (uint32_t v = from; v <= to; ++v)
        vals.push_back(static_cast<uint16_t>(v));
      bm.chunks_.emplace_back(static_cast<uint16_t>(key),
                              Container::MakeArray(std::move(vals)));
    }
    if (key == 0xFFFF) break;  // avoid uint16 overflow in the loop
  }
  return bm;
}

void RoaringBitmap::Add(uint32_t x) { FindOrCreate(HighBits(x))->Add(LowBits(x)); }

void RoaringBitmap::Remove(uint32_t x) {
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), HighBits(x),
      [](const auto& chunk, uint16_t k) { return chunk.first < k; });
  if (it == chunks_.end() || it->first != HighBits(x)) return;
  it->second.Remove(LowBits(x));
  if (it->second.Empty()) chunks_.erase(it);
}

bool RoaringBitmap::Contains(uint32_t x) const {
  const Container* c = Find(HighBits(x));
  return c != nullptr && c->Contains(LowBits(x));
}

uint64_t RoaringBitmap::Cardinality() const {
  uint64_t n = 0;
  for (const auto& [key, c] : chunks_) n += c.Cardinality();
  return n;
}

uint64_t RoaringBitmap::Rank(uint32_t x) const {
  uint64_t n = 0;
  const uint16_t key = HighBits(x);
  for (const auto& [k, c] : chunks_) {
    if (k < key) {
      n += c.Cardinality();
    } else if (k == key) {
      n += c.Rank(LowBits(x));
      break;
    } else {
      break;
    }
  }
  return n;
}

RoaringBitmap RoaringBitmap::And(const RoaringBitmap& a,
                                 const RoaringBitmap& b) {
  RoaringBitmap out;
  size_t i = 0, j = 0;
  while (i < a.chunks_.size() && j < b.chunks_.size()) {
    const uint16_t ka = a.chunks_[i].first, kb = b.chunks_[j].first;
    if (ka < kb) ++i;
    else if (kb < ka) ++j;
    else {
      Container c = Container::And(a.chunks_[i].second, b.chunks_[j].second);
      if (!c.Empty()) out.chunks_.emplace_back(ka, std::move(c));
      ++i;
      ++j;
    }
  }
  return out;
}

uint64_t RoaringBitmap::AndCardinality(const RoaringBitmap& a,
                                       const RoaringBitmap& b) {
  uint64_t n = 0;
  size_t i = 0, j = 0;
  while (i < a.chunks_.size() && j < b.chunks_.size()) {
    const uint16_t ka = a.chunks_[i].first, kb = b.chunks_[j].first;
    if (ka < kb) ++i;
    else if (kb < ka) ++j;
    else {
      n += Container::AndCardinality(a.chunks_[i].second, b.chunks_[j].second);
      ++i;
      ++j;
    }
  }
  return n;
}

RoaringBitmap RoaringBitmap::Or(const RoaringBitmap& a,
                                const RoaringBitmap& b) {
  RoaringBitmap out;
  size_t i = 0, j = 0;
  while (i < a.chunks_.size() || j < b.chunks_.size()) {
    if (j >= b.chunks_.size() ||
        (i < a.chunks_.size() && a.chunks_[i].first < b.chunks_[j].first)) {
      out.chunks_.push_back(a.chunks_[i++]);
    } else if (i >= a.chunks_.size() ||
               b.chunks_[j].first < a.chunks_[i].first) {
      out.chunks_.push_back(b.chunks_[j++]);
    } else {
      out.chunks_.emplace_back(
          a.chunks_[i].first,
          Container::Or(a.chunks_[i].second, b.chunks_[j].second));
      ++i;
      ++j;
    }
  }
  return out;
}

RoaringBitmap RoaringBitmap::AndNot(const RoaringBitmap& a,
                                    const RoaringBitmap& b) {
  RoaringBitmap out;
  size_t i = 0, j = 0;
  while (i < a.chunks_.size()) {
    if (j >= b.chunks_.size() || a.chunks_[i].first < b.chunks_[j].first) {
      out.chunks_.push_back(a.chunks_[i++]);
    } else if (b.chunks_[j].first < a.chunks_[i].first) {
      ++j;
    } else {
      Container c =
          Container::AndNot(a.chunks_[i].second, b.chunks_[j].second);
      if (!c.Empty()) out.chunks_.emplace_back(a.chunks_[i].first, std::move(c));
      ++i;
      ++j;
    }
  }
  return out;
}

RoaringBitmap RoaringBitmap::Xor(const RoaringBitmap& a,
                                 const RoaringBitmap& b) {
  RoaringBitmap out;
  size_t i = 0, j = 0;
  while (i < a.chunks_.size() || j < b.chunks_.size()) {
    if (j >= b.chunks_.size() ||
        (i < a.chunks_.size() && a.chunks_[i].first < b.chunks_[j].first)) {
      out.chunks_.push_back(a.chunks_[i++]);
    } else if (i >= a.chunks_.size() ||
               b.chunks_[j].first < a.chunks_[i].first) {
      out.chunks_.push_back(b.chunks_[j++]);
    } else {
      Container c = Container::Xor(a.chunks_[i].second, b.chunks_[j].second);
      if (!c.Empty()) out.chunks_.emplace_back(a.chunks_[i].first, std::move(c));
      ++i;
      ++j;
    }
  }
  return out;
}

void RoaringBitmap::RunOptimize() {
  for (auto& [key, c] : chunks_) c.RunOptimize();
}

std::vector<uint32_t> RoaringBitmap::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Cardinality());
  for (const auto& [key, c] : chunks_) {
    c.AppendValues(static_cast<uint32_t>(key) << 16, &out);
  }
  return out;
}

size_t RoaringBitmap::SizeInBytes() const {
  size_t n = 0;
  for (const auto& [key, c] : chunks_) n += c.SizeInBytes() + sizeof(key);
  return n;
}

bool RoaringBitmap::operator==(const RoaringBitmap& other) const {
  if (chunks_.size() != other.chunks_.size()) return false;
  for (size_t i = 0; i < chunks_.size(); ++i) {
    if (chunks_[i].first != other.chunks_[i].first) return false;
    if (!chunks_[i].second.SameSetAs(other.chunks_[i].second)) return false;
  }
  return true;
}

}  // namespace zv::roaring
