#include "roaring/container.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace zv::roaring {

namespace {

inline uint32_t PopcountWords(const std::vector<uint64_t>& words) {
  uint32_t c = 0;
  for (uint64_t w : words) c += static_cast<uint32_t>(__builtin_popcountll(w));
  return c;
}

inline bool BitmapContains(const std::vector<uint64_t>& words, uint16_t x) {
  return (words[x >> 6] >> (x & 63)) & 1;
}

}  // namespace

Container Container::MakeArray(std::vector<uint16_t> sorted_values) {
  Container c;
  c.type_ = Type::kArray;
  c.array_ = std::move(sorted_values);
  c.cardinality_ = static_cast<uint32_t>(c.array_.size());
  if (c.cardinality_ > kArrayMaxCardinality) c.ConvertArrayToBitmap();
  return c;
}

Container Container::MakeBitmap(std::vector<uint64_t> words) {
  assert(words.size() == kBitmapWords);
  Container c;
  c.type_ = Type::kBitmap;
  c.bitmap_ = std::move(words);
  c.cardinality_ = PopcountWords(c.bitmap_);
  c.ConvertBitmapToArrayIfSmall();
  return c;
}

Container Container::MakeRuns(std::vector<Run> runs) {
  Container c;
  c.type_ = Type::kRun;
  c.runs_ = std::move(runs);
  c.cardinality_ = 0;
  for (const Run& r : c.runs_) c.cardinality_ += r.length + 1u;
  return c;
}

void Container::ConvertArrayToBitmap() {
  bitmap_.assign(kBitmapWords, 0);
  for (uint16_t v : array_) bitmap_[v >> 6] |= 1ULL << (v & 63);
  array_.clear();
  array_.shrink_to_fit();
  type_ = Type::kBitmap;
}

void Container::ConvertBitmapToArrayIfSmall() {
  if (type_ != Type::kBitmap || cardinality_ > kArrayMaxCardinality) return;
  std::vector<uint16_t> vals;
  vals.reserve(cardinality_);
  for (uint32_t w = 0; w < kBitmapWords; ++w) {
    uint64_t word = bitmap_[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      vals.push_back(static_cast<uint16_t>((w << 6) + bit));
      word &= word - 1;
    }
  }
  array_ = std::move(vals);
  bitmap_.clear();
  bitmap_.shrink_to_fit();
  type_ = Type::kArray;
}

Container Container::ToBitmapCopy() const {
  Container c;
  c.type_ = Type::kBitmap;
  c.bitmap_.assign(kBitmapWords, 0);
  ForEach([&c](uint16_t v) { c.bitmap_[v >> 6] |= 1ULL << (v & 63); });
  c.cardinality_ = cardinality_;
  return c;
}

std::vector<uint16_t> Container::ToArrayValues() const {
  std::vector<uint16_t> vals;
  vals.reserve(cardinality_);
  ForEach([&vals](uint16_t v) { vals.push_back(v); });
  return vals;
}

void Container::Normalize() {
  if (type_ == Type::kRun) {
    if (cardinality_ <= kArrayMaxCardinality) {
      array_ = ToArrayValues();
      runs_.clear();
      type_ = Type::kArray;
    } else {
      *this = ToBitmapCopy();
    }
    return;
  }
  if (type_ == Type::kArray && cardinality_ > kArrayMaxCardinality) {
    ConvertArrayToBitmap();
  } else if (type_ == Type::kBitmap) {
    ConvertBitmapToArrayIfSmall();
  }
}

bool Container::Add(uint16_t x) {
  switch (type_) {
    case Type::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), x);
      if (it != array_.end() && *it == x) return false;
      array_.insert(it, x);
      ++cardinality_;
      if (cardinality_ > kArrayMaxCardinality) ConvertArrayToBitmap();
      return true;
    }
    case Type::kBitmap: {
      uint64_t& word = bitmap_[x >> 6];
      const uint64_t mask = 1ULL << (x & 63);
      if (word & mask) return false;
      word |= mask;
      ++cardinality_;
      return true;
    }
    case Type::kRun: {
      // Keep runs sorted and coalesced.
      if (Contains(x)) return false;
      Run nr{x, 0};
      auto it = std::lower_bound(
          runs_.begin(), runs_.end(), nr,
          [](const Run& a, const Run& b) { return a.start < b.start; });
      it = runs_.insert(it, nr);
      // Merge with previous run if adjacent.
      if (it != runs_.begin()) {
        auto prev = std::prev(it);
        if (static_cast<uint32_t>(prev->start) + prev->length + 1 == x) {
          prev->length += 1;
          it = runs_.erase(it);
          it = std::prev(it);
        }
      }
      // Merge with next run if adjacent.
      auto next = std::next(it);
      if (next != runs_.end() &&
          static_cast<uint32_t>(it->start) + it->length + 1 == next->start) {
        it->length = static_cast<uint16_t>(it->length + next->length + 1);
        runs_.erase(next);
      }
      ++cardinality_;
      return true;
    }
  }
  return false;
}

void Container::AddRange(uint16_t lo, uint16_t hi) {
  // Simple but correct; bulk loads use MakeArray/MakeBitmap paths instead.
  for (uint32_t v = lo; v <= hi; ++v) Add(static_cast<uint16_t>(v));
}

bool Container::Remove(uint16_t x) {
  switch (type_) {
    case Type::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), x);
      if (it == array_.end() || *it != x) return false;
      array_.erase(it);
      --cardinality_;
      return true;
    }
    case Type::kBitmap: {
      uint64_t& word = bitmap_[x >> 6];
      const uint64_t mask = 1ULL << (x & 63);
      if (!(word & mask)) return false;
      word &= ~mask;
      --cardinality_;
      ConvertBitmapToArrayIfSmall();
      return true;
    }
    case Type::kRun: {
      for (size_t i = 0; i < runs_.size(); ++i) {
        Run& r = runs_[i];
        const uint32_t end = static_cast<uint32_t>(r.start) + r.length;
        if (x < r.start || x > end) continue;
        if (r.start == x && r.length == 0) {
          runs_.erase(runs_.begin() + static_cast<ptrdiff_t>(i));
        } else if (r.start == x) {
          r.start = static_cast<uint16_t>(r.start + 1);
          r.length = static_cast<uint16_t>(r.length - 1);
        } else if (end == x) {
          r.length = static_cast<uint16_t>(r.length - 1);
        } else {
          // Split the run.
          Run tail{static_cast<uint16_t>(x + 1),
                   static_cast<uint16_t>(end - x - 1)};
          r.length = static_cast<uint16_t>(x - r.start - 1);
          runs_.insert(runs_.begin() + static_cast<ptrdiff_t>(i) + 1, tail);
        }
        --cardinality_;
        return true;
      }
      return false;
    }
  }
  return false;
}

bool Container::Contains(uint16_t x) const {
  switch (type_) {
    case Type::kArray:
      return std::binary_search(array_.begin(), array_.end(), x);
    case Type::kBitmap:
      return BitmapContains(bitmap_, x);
    case Type::kRun: {
      // Find last run with start <= x.
      auto it = std::upper_bound(
          runs_.begin(), runs_.end(), x,
          [](uint16_t v, const Run& r) { return v < r.start; });
      if (it == runs_.begin()) return false;
      --it;
      return x <= static_cast<uint32_t>(it->start) + it->length;
    }
  }
  return false;
}

uint32_t Container::Rank(uint16_t x) const {
  switch (type_) {
    case Type::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), x);
      return static_cast<uint32_t>(it - array_.begin());
    }
    case Type::kBitmap: {
      uint32_t count = 0;
      const uint32_t word_idx = x >> 6;
      for (uint32_t w = 0; w < word_idx; ++w)
        count += static_cast<uint32_t>(__builtin_popcountll(bitmap_[w]));
      const uint64_t mask = (1ULL << (x & 63)) - 1;
      count += static_cast<uint32_t>(__builtin_popcountll(bitmap_[word_idx] & mask));
      return count;
    }
    case Type::kRun: {
      uint32_t count = 0;
      for (const Run& r : runs_) {
        if (r.start >= x) break;
        const uint32_t end = static_cast<uint32_t>(r.start) + r.length;
        count += (end < x ? end : static_cast<uint32_t>(x) - 1) - r.start + 1;
      }
      return count;
    }
  }
  return 0;
}

void Container::AppendValues(uint32_t base, std::vector<uint32_t>* out) const {
  ForEach([base, out](uint16_t v) { out->push_back(base | v); });
}

// --- Binary operations -----------------------------------------------------

Container Container::AndArrayArray(const std::vector<uint16_t>& a,
                                   const std::vector<uint16_t>& b) {
  std::vector<uint16_t> out;
  out.reserve(std::min(a.size(), b.size()));
  // Galloping intersection when sizes are lopsided, merge otherwise.
  if (a.size() * 32 < b.size() || b.size() * 32 < a.size()) {
    const auto& small = a.size() < b.size() ? a : b;
    const auto& large = a.size() < b.size() ? b : a;
    auto lo = large.begin();
    for (uint16_t v : small) {
      lo = std::lower_bound(lo, large.end(), v);
      if (lo == large.end()) break;
      if (*lo == v) out.push_back(v);
    }
  } else {
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) ++i;
      else if (b[j] < a[i]) ++j;
      else {
        out.push_back(a[i]);
        ++i;
        ++j;
      }
    }
  }
  return MakeArray(std::move(out));
}

Container Container::AndArrayBitmap(const std::vector<uint16_t>& a,
                                    const Container& b) {
  std::vector<uint16_t> out;
  out.reserve(a.size());
  for (uint16_t v : a) {
    if (BitmapContains(b.bitmap_, v)) out.push_back(v);
  }
  return MakeArray(std::move(out));
}

Container Container::AndBitmapBitmap(const Container& a, const Container& b) {
  std::vector<uint64_t> words(kBitmapWords);
  for (uint32_t w = 0; w < kBitmapWords; ++w)
    words[w] = a.bitmap_[w] & b.bitmap_[w];
  return MakeBitmap(std::move(words));
}

namespace {

/// Run ∩ run by merging sorted run lists — linear in the number of runs.
std::vector<Run> IntersectRuns(const std::vector<Run>& a,
                               const std::vector<Run>& b) {
  std::vector<Run> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t a_start = a[i].start;
    const uint32_t a_end = a_start + a[i].length;
    const uint32_t b_start = b[j].start;
    const uint32_t b_end = b_start + b[j].length;
    const uint32_t lo = std::max(a_start, b_start);
    const uint32_t hi = std::min(a_end, b_end);
    if (lo <= hi) {
      out.push_back({static_cast<uint16_t>(lo),
                     static_cast<uint16_t>(hi - lo)});
    }
    if (a_end < b_end) ++i;
    else ++j;
  }
  return out;
}

}  // namespace

Container Container::And(const Container& a, const Container& b) {
  if (a.Empty() || b.Empty()) return Container();
  // Native run-container paths (runs stay runs where the result is still
  // run-friendly; see bench_roaring's run-optimized ablation).
  if (a.type_ == Type::kRun && b.type_ == Type::kRun) {
    Container c = MakeRuns(IntersectRuns(a.runs_, b.runs_));
    // Keep the run form only when it is the most compact representation.
    if (c.SizeInBytes() > kBitmapWords * sizeof(uint64_t) ||
        (c.cardinality_ <= kArrayMaxCardinality &&
         c.SizeInBytes() > c.cardinality_ * sizeof(uint16_t))) {
      c.Normalize();
    }
    return c;
  }
  if (a.type_ == Type::kRun || b.type_ == Type::kRun) {
    // Run ∩ array: membership-test the array side against the runs.
    const Container& run = a.type_ == Type::kRun ? a : b;
    const Container& other = a.type_ == Type::kRun ? b : a;
    if (other.type_ == Type::kArray) {
      std::vector<uint16_t> out;
      out.reserve(other.array_.size());
      for (uint16_t v : other.array_) {
        if (run.Contains(v)) out.push_back(v);
      }
      return MakeArray(std::move(out));
    }
    // Run ∩ bitmap: mask the bitmap with the run ranges.
    std::vector<uint64_t> words(kBitmapWords, 0);
    for (const Run& r : run.runs_) {
      const uint32_t end = static_cast<uint32_t>(r.start) + r.length;
      for (uint32_t w = r.start >> 6; w <= end >> 6; ++w) {
        uint64_t mask = ~0ULL;
        if (w == (static_cast<uint32_t>(r.start) >> 6)) {
          mask &= ~0ULL << (r.start & 63);
        }
        if (w == (end >> 6) && (end & 63) != 63) {
          mask &= (1ULL << ((end & 63) + 1)) - 1;
        }
        words[w] |= mask & other.bitmap_[w];
      }
    }
    return MakeBitmap(std::move(words));
  }
  if (a.type_ == Type::kArray && b.type_ == Type::kArray)
    return AndArrayArray(a.array_, b.array_);
  if (a.type_ == Type::kArray) return AndArrayBitmap(a.array_, b);
  if (b.type_ == Type::kArray) return AndArrayBitmap(b.array_, a);
  return AndBitmapBitmap(a, b);
}

uint32_t Container::AndCardinality(const Container& a, const Container& b) {
  if (a.Empty() || b.Empty()) return 0;
  if (a.type_ == Type::kBitmap && b.type_ == Type::kBitmap) {
    uint32_t c = 0;
    for (uint32_t w = 0; w < kBitmapWords; ++w)
      c += static_cast<uint32_t>(
          __builtin_popcountll(a.bitmap_[w] & b.bitmap_[w]));
    return c;
  }
  if (a.type_ == Type::kArray && b.type_ == Type::kBitmap) {
    uint32_t c = 0;
    for (uint16_t v : a.array_) c += BitmapContains(b.bitmap_, v);
    return c;
  }
  if (b.type_ == Type::kArray && a.type_ == Type::kBitmap) {
    return AndCardinality(b, a);
  }
  return And(a, b).Cardinality();
}

Container Container::OrArrayArray(const std::vector<uint16_t>& a,
                                  const std::vector<uint16_t>& b) {
  std::vector<uint16_t> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return MakeArray(std::move(out));
}

Container Container::OrBitmapAny(const Container& bitmap,
                                 const Container& any) {
  Container out = bitmap.type_ == Type::kBitmap ? bitmap
                                                : bitmap.ToBitmapCopy();
  any.ForEach([&out](uint16_t v) {
    uint64_t& word = out.bitmap_[v >> 6];
    const uint64_t mask = 1ULL << (v & 63);
    if (!(word & mask)) {
      word |= mask;
      ++out.cardinality_;
    }
  });
  return out;
}

Container Container::Or(const Container& a, const Container& b) {
  if (a.Empty()) {
    Container c = b;
    c.Normalize();
    return c;
  }
  if (b.Empty()) {
    Container c = a;
    c.Normalize();
    return c;
  }
  if (a.type_ == Type::kArray && b.type_ == Type::kArray)
    return OrArrayArray(a.array_, b.array_);
  if (a.type_ == Type::kBitmap) return OrBitmapAny(a, b);
  if (b.type_ == Type::kBitmap) return OrBitmapAny(b, a);
  // At least one run container and no bitmaps: merge through sorted arrays.
  return OrArrayArray(a.ToArrayValues(), b.ToArrayValues());
}

Container Container::AndNot(const Container& a, const Container& b) {
  if (a.Empty()) return Container();
  if (b.Empty()) {
    Container c = a;
    c.Normalize();
    return c;
  }
  if (a.type_ == Type::kArray || a.type_ == Type::kRun) {
    std::vector<uint16_t> out;
    out.reserve(a.cardinality_);
    a.ForEach([&](uint16_t v) {
      if (!b.Contains(v)) out.push_back(v);
    });
    return MakeArray(std::move(out));
  }
  // a is a bitmap.
  std::vector<uint64_t> words = a.bitmap_;
  if (b.type_ == Type::kBitmap) {
    for (uint32_t w = 0; w < kBitmapWords; ++w) words[w] &= ~b.bitmap_[w];
  } else {
    b.ForEach([&words](uint16_t v) { words[v >> 6] &= ~(1ULL << (v & 63)); });
  }
  return MakeBitmap(std::move(words));
}

Container Container::Xor(const Container& a, const Container& b) {
  if (a.Empty()) {
    Container c = b;
    c.Normalize();
    return c;
  }
  if (b.Empty()) {
    Container c = a;
    c.Normalize();
    return c;
  }
  if (a.type_ == Type::kBitmap && b.type_ == Type::kBitmap) {
    std::vector<uint64_t> words(kBitmapWords);
    for (uint32_t w = 0; w < kBitmapWords; ++w)
      words[w] = a.bitmap_[w] ^ b.bitmap_[w];
    return MakeBitmap(std::move(words));
  }
  // Generic symmetric difference through union minus intersection.
  return AndNot(Or(a, b), And(a, b));
}

bool Container::RunOptimize() {
  if (type_ == Type::kRun || cardinality_ == 0) return false;
  // Count runs.
  std::vector<Run> runs;
  bool open = false;
  uint32_t run_start = 0, prev = 0;
  ForEach([&](uint16_t v) {
    if (!open) {
      open = true;
      run_start = v;
    } else if (v != prev + 1) {
      runs.push_back({static_cast<uint16_t>(run_start),
                      static_cast<uint16_t>(prev - run_start)});
      run_start = v;
    }
    prev = v;
  });
  if (open) {
    runs.push_back({static_cast<uint16_t>(run_start),
                    static_cast<uint16_t>(prev - run_start)});
  }
  const size_t run_bytes = runs.size() * sizeof(Run);
  const size_t current_bytes = SizeInBytes();
  if (run_bytes >= current_bytes) return false;
  runs_ = std::move(runs);
  array_.clear();
  array_.shrink_to_fit();
  bitmap_.clear();
  bitmap_.shrink_to_fit();
  type_ = Type::kRun;
  return true;
}

size_t Container::SizeInBytes() const {
  switch (type_) {
    case Type::kArray:
      return array_.size() * sizeof(uint16_t);
    case Type::kBitmap:
      return kBitmapWords * sizeof(uint64_t);
    case Type::kRun:
      return runs_.size() * sizeof(Run);
  }
  return 0;
}

bool Container::SameSetAs(const Container& other) const {
  if (cardinality_ != other.cardinality_) return false;
  std::vector<uint16_t> a = ToArrayValues();
  std::vector<uint16_t> b = other.ToArrayValues();
  return a == b;
}

}  // namespace zv::roaring
