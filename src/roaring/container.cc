#include "roaring/container.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <iterator>

namespace zv::roaring {

namespace {

std::atomic<uint64_t> g_container_conversions{0};

/// Every representation change funnels through here so the wire stat can
/// report how hard the adaptive machinery is working.
inline void NoteConversion() {
  g_container_conversions.fetch_add(1, std::memory_order_relaxed);
}

inline uint32_t PopcountWords(const std::vector<uint64_t>& words) {
  uint32_t c = 0;
  for (uint64_t w : words) c += static_cast<uint32_t>(__builtin_popcountll(w));
  return c;
}

inline bool BitmapContains(const std::vector<uint64_t>& words, uint16_t x) {
  return (words[x >> 6] >> (x & 63)) & 1;
}

/// First index >= `pos` whose value is >= x, assuming v[0..pos) < x.
/// Exponential (1, 2, 4, ...) probe from pos brackets the answer in
/// O(log gap), then a binary search inside the window pins it down.
size_t GallopLowerBound(const std::vector<uint16_t>& v, size_t pos,
                        uint16_t x) {
  size_t lo = pos, hi = pos, step = 1;
  while (hi < v.size() && v[hi] < x) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  const size_t end = std::min(hi + 1, v.size());
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<ptrdiff_t>(lo),
                       v.begin() + static_cast<ptrdiff_t>(end), x) -
      v.begin());
}

}  // namespace

uint64_t ContainerConversions() {
  return g_container_conversions.load(std::memory_order_relaxed);
}

const char* ContainerTypeName(Container::Type type) {
  switch (type) {
    case Container::Type::kArray:
      return "array";
    case Container::Type::kBitmap:
      return "bitmap";
    case Container::Type::kRun:
      return "run";
    case Container::Type::kInverted:
      return "inverted";
    case Container::Type::kAll:
      return "all";
  }
  return "array";
}

std::vector<uint16_t> IntersectSorted(const std::vector<uint16_t>& a,
                                      const std::vector<uint16_t>& b,
                                      IntersectMode mode) {
  std::vector<uint16_t> out;
  out.reserve(std::min(a.size(), b.size()));
  if (mode == IntersectMode::kAuto) {
    // Galloping wins when one side is much smaller: it skips through the
    // large list in log-sized hops instead of visiting every element.
    const bool lopsided = a.size() * 16 < b.size() || b.size() * 16 < a.size();
    mode = lopsided ? IntersectMode::kGalloping : IntersectMode::kLinear;
  }
  if (mode == IntersectMode::kGalloping) {
    const auto& small = a.size() <= b.size() ? a : b;
    const auto& large = a.size() <= b.size() ? b : a;
    size_t pos = 0;
    for (uint16_t v : small) {
      pos = GallopLowerBound(large, pos, v);
      if (pos == large.size()) break;
      if (large[pos] == v) {
        out.push_back(v);
        ++pos;
      }
    }
  } else {
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (b[j] < a[i]) {
        ++j;
      } else {
        out.push_back(a[i]);
        ++i;
        ++j;
      }
    }
  }
  return out;
}

Container Container::MakeArray(std::vector<uint16_t> sorted_values) {
  Container c;
  c.type_ = Type::kArray;
  c.array_ = std::move(sorted_values);
  c.cardinality_ = static_cast<uint32_t>(c.array_.size());
  if (c.cardinality_ > kArrayMaxCardinality) c.Normalize();
  return c;
}

Container Container::MakeBitmap(std::vector<uint64_t> words) {
  assert(words.size() == kBitmapWords);
  Container c;
  c.type_ = Type::kBitmap;
  c.bitmap_ = std::move(words);
  c.cardinality_ = PopcountWords(c.bitmap_);
  c.Normalize();
  return c;
}

Container Container::MakeRuns(std::vector<Run> runs) {
  Container c;
  c.type_ = Type::kRun;
  c.runs_ = std::move(runs);
  c.cardinality_ = 0;
  for (const Run& r : c.runs_) c.cardinality_ += r.length + 1u;
  return c;
}

Container Container::MakeInverted(std::vector<uint16_t> sorted_absent) {
  Container c;
  c.type_ = Type::kInverted;
  c.array_ = std::move(sorted_absent);
  c.cardinality_ = kChunkCardinality - static_cast<uint32_t>(c.array_.size());
  if (c.array_.empty() || c.array_.size() > kArrayMaxCardinality) {
    c.Normalize();  // kAll when nothing is absent; bitmap when out of range
  }
  return c;
}

Container Container::MakeAll() {
  Container c;
  c.type_ = Type::kAll;
  c.cardinality_ = kChunkCardinality;
  return c;
}

void Container::ConvertArrayToBitmap() {
  bitmap_.assign(kBitmapWords, 0);
  for (uint16_t v : array_) bitmap_[v >> 6] |= 1ULL << (v & 63);
  array_.clear();
  array_.shrink_to_fit();
  type_ = Type::kBitmap;
  NoteConversion();
}

void Container::ConvertBitmapToArrayIfSmall() {
  if (type_ != Type::kBitmap || cardinality_ > kArrayMaxCardinality) return;
  std::vector<uint16_t> vals;
  vals.reserve(cardinality_);
  for (uint32_t w = 0; w < kBitmapWords; ++w) {
    uint64_t word = bitmap_[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      vals.push_back(static_cast<uint16_t>((w << 6) + bit));
      word &= word - 1;
    }
  }
  array_ = std::move(vals);
  bitmap_.clear();
  bitmap_.shrink_to_fit();
  type_ = Type::kArray;
  NoteConversion();
}

Container Container::ToBitmapCopy() const {
  Container c;
  c.type_ = Type::kBitmap;
  c.bitmap_ = ToWords();
  c.cardinality_ = cardinality_;
  return c;
}

std::vector<uint64_t> Container::ToWords() const {
  switch (type_) {
    case Type::kBitmap:
      return bitmap_;
    case Type::kAll:
      return std::vector<uint64_t>(kBitmapWords, ~0ULL);
    case Type::kInverted: {
      std::vector<uint64_t> words(kBitmapWords, ~0ULL);
      for (uint16_t v : array_) words[v >> 6] &= ~(1ULL << (v & 63));
      return words;
    }
    case Type::kArray:
    case Type::kRun: {
      std::vector<uint64_t> words(kBitmapWords, 0);
      ForEach([&words](uint16_t v) { words[v >> 6] |= 1ULL << (v & 63); });
      return words;
    }
  }
  return std::vector<uint64_t>(kBitmapWords, 0);
}

std::vector<uint16_t> Container::ToArrayValues() const {
  std::vector<uint16_t> vals;
  vals.reserve(cardinality_);
  ForEach([&vals](uint16_t v) { vals.push_back(v); });
  return vals;
}

std::vector<uint16_t> Container::AbsentValues() const {
  if (type_ == Type::kAll) return {};
  if (type_ == Type::kInverted) return array_;
  std::vector<uint16_t> absent;
  absent.reserve(kChunkCardinality - cardinality_);
  const std::vector<uint64_t> words = ToWords();
  for (uint32_t w = 0; w < kBitmapWords; ++w) {
    uint64_t inv = ~words[w];
    while (inv != 0) {
      const int bit = __builtin_ctzll(inv);
      absent.push_back(static_cast<uint16_t>((w << 6) + bit));
      inv &= inv - 1;
    }
  }
  return absent;
}

void Container::Normalize() {
  Type want;
  if (cardinality_ == kChunkCardinality) {
    want = Type::kAll;
  } else if (cardinality_ >= kInvertedMinCardinality) {
    want = Type::kInverted;
  } else if (cardinality_ > kArrayMaxCardinality) {
    want = Type::kBitmap;
  } else {
    want = Type::kArray;
  }
  if (want == type_) return;
  switch (want) {
    case Type::kAll:
      array_.clear();
      array_.shrink_to_fit();
      bitmap_.clear();
      bitmap_.shrink_to_fit();
      runs_.clear();
      runs_.shrink_to_fit();
      break;
    case Type::kInverted:
      array_ = AbsentValues();
      bitmap_.clear();
      bitmap_.shrink_to_fit();
      runs_.clear();
      runs_.shrink_to_fit();
      break;
    case Type::kBitmap:
      bitmap_ = ToWords();
      array_.clear();
      array_.shrink_to_fit();
      runs_.clear();
      runs_.shrink_to_fit();
      break;
    case Type::kArray:
      array_ = ToArrayValues();
      bitmap_.clear();
      bitmap_.shrink_to_fit();
      runs_.clear();
      runs_.shrink_to_fit();
      break;
    case Type::kRun:
      break;  // unreachable: Normalize never targets runs
  }
  type_ = want;
  NoteConversion();
}

bool Container::Add(uint16_t x) {
  switch (type_) {
    case Type::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), x);
      if (it != array_.end() && *it == x) return false;
      array_.insert(it, x);
      ++cardinality_;
      if (cardinality_ > kArrayMaxCardinality) ConvertArrayToBitmap();
      return true;
    }
    case Type::kBitmap: {
      uint64_t& word = bitmap_[x >> 6];
      const uint64_t mask = 1ULL << (x & 63);
      if (word & mask) return false;
      word |= mask;
      ++cardinality_;
      if (cardinality_ >= kInvertedMinCardinality) Normalize();
      return true;
    }
    case Type::kRun: {
      // Keep runs sorted and coalesced.
      if (Contains(x)) return false;
      Run nr{x, 0};
      auto it = std::lower_bound(
          runs_.begin(), runs_.end(), nr,
          [](const Run& a, const Run& b) { return a.start < b.start; });
      it = runs_.insert(it, nr);
      // Merge with previous run if adjacent.
      if (it != runs_.begin()) {
        auto prev = std::prev(it);
        if (static_cast<uint32_t>(prev->start) + prev->length + 1 == x) {
          prev->length += 1;
          it = runs_.erase(it);
          it = std::prev(it);
        }
      }
      // Merge with next run if adjacent.
      auto next = std::next(it);
      if (next != runs_.end() &&
          static_cast<uint32_t>(it->start) + it->length + 1 == next->start) {
        it->length = static_cast<uint16_t>(it->length + next->length + 1);
        runs_.erase(next);
      }
      ++cardinality_;
      return true;
    }
    case Type::kInverted: {
      // Present unless on the absent list; adding erases from that list.
      auto it = std::lower_bound(array_.begin(), array_.end(), x);
      if (it == array_.end() || *it != x) return false;
      array_.erase(it);
      ++cardinality_;
      if (array_.empty()) Normalize();  // -> kAll
      return true;
    }
    case Type::kAll:
      return false;
  }
  return false;
}

void Container::AddRange(uint16_t lo, uint16_t hi) {
  // Simple but correct; bulk loads use MakeArray/MakeBitmap paths instead.
  for (uint32_t v = lo; v <= hi; ++v) Add(static_cast<uint16_t>(v));
}

bool Container::Remove(uint16_t x) {
  switch (type_) {
    case Type::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), x);
      if (it == array_.end() || *it != x) return false;
      array_.erase(it);
      --cardinality_;
      return true;
    }
    case Type::kBitmap: {
      uint64_t& word = bitmap_[x >> 6];
      const uint64_t mask = 1ULL << (x & 63);
      if (!(word & mask)) return false;
      word &= ~mask;
      --cardinality_;
      ConvertBitmapToArrayIfSmall();
      return true;
    }
    case Type::kRun: {
      for (size_t i = 0; i < runs_.size(); ++i) {
        Run& r = runs_[i];
        const uint32_t end = static_cast<uint32_t>(r.start) + r.length;
        if (x < r.start || x > end) continue;
        if (r.start == x && r.length == 0) {
          runs_.erase(runs_.begin() + static_cast<ptrdiff_t>(i));
        } else if (r.start == x) {
          r.start = static_cast<uint16_t>(r.start + 1);
          r.length = static_cast<uint16_t>(r.length - 1);
        } else if (end == x) {
          r.length = static_cast<uint16_t>(r.length - 1);
        } else {
          // Split the run.
          Run tail{static_cast<uint16_t>(x + 1),
                   static_cast<uint16_t>(end - x - 1)};
          r.length = static_cast<uint16_t>(x - r.start - 1);
          runs_.insert(runs_.begin() + static_cast<ptrdiff_t>(i) + 1, tail);
        }
        --cardinality_;
        return true;
      }
      return false;
    }
    case Type::kInverted: {
      auto it = std::lower_bound(array_.begin(), array_.end(), x);
      if (it != array_.end() && *it == x) return false;  // already absent
      array_.insert(it, x);
      --cardinality_;
      if (array_.size() > kArrayMaxCardinality) Normalize();  // -> bitmap
      return true;
    }
    case Type::kAll:
      array_.assign(1, x);
      type_ = Type::kInverted;
      --cardinality_;
      NoteConversion();
      return true;
  }
  return false;
}

bool Container::Contains(uint16_t x) const {
  switch (type_) {
    case Type::kArray:
      return std::binary_search(array_.begin(), array_.end(), x);
    case Type::kBitmap:
      return BitmapContains(bitmap_, x);
    case Type::kRun: {
      // Find last run with start <= x.
      auto it = std::upper_bound(
          runs_.begin(), runs_.end(), x,
          [](uint16_t v, const Run& r) { return v < r.start; });
      if (it == runs_.begin()) return false;
      --it;
      return x <= static_cast<uint32_t>(it->start) + it->length;
    }
    case Type::kInverted:
      return !std::binary_search(array_.begin(), array_.end(), x);
    case Type::kAll:
      return true;
  }
  return false;
}

uint32_t Container::Rank(uint16_t x) const {
  switch (type_) {
    case Type::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), x);
      return static_cast<uint32_t>(it - array_.begin());
    }
    case Type::kBitmap: {
      uint32_t count = 0;
      const uint32_t word_idx = x >> 6;
      for (uint32_t w = 0; w < word_idx; ++w)
        count += static_cast<uint32_t>(__builtin_popcountll(bitmap_[w]));
      const uint64_t mask = (1ULL << (x & 63)) - 1;
      count += static_cast<uint32_t>(__builtin_popcountll(bitmap_[word_idx] & mask));
      return count;
    }
    case Type::kRun: {
      uint32_t count = 0;
      for (const Run& r : runs_) {
        if (r.start >= x) break;
        const uint32_t end = static_cast<uint32_t>(r.start) + r.length;
        count += (end < x ? end : static_cast<uint32_t>(x) - 1) - r.start + 1;
      }
      return count;
    }
    case Type::kInverted: {
      // Values < x, minus the absent ones < x.
      auto it = std::lower_bound(array_.begin(), array_.end(), x);
      return x - static_cast<uint32_t>(it - array_.begin());
    }
    case Type::kAll:
      return x;
  }
  return 0;
}

void Container::AppendValues(uint32_t base, std::vector<uint32_t>* out) const {
  ForEach([base, out](uint16_t v) { out->push_back(base | v); });
}

// --- Binary operations -----------------------------------------------------
//
// Every pairing lands on the smallest canonical representation. The
// inverted/all encodings get native complement-space paths: an operation on
// two nearly-full containers touches only the (short) absent lists instead
// of 8 KiB of bitmap words.

namespace {

/// Returns a canonical copy (runs collapsed, thresholds re-applied).
Container CanonicalCopy(const Container& c) {
  Container out = c;
  out.Normalize();
  return out;
}

std::vector<uint16_t> UnionSorted(const std::vector<uint16_t>& a,
                                  const std::vector<uint16_t>& b) {
  std::vector<uint16_t> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<uint16_t> SymmetricDifferenceSorted(
    const std::vector<uint16_t>& a, const std::vector<uint16_t>& b) {
  std::vector<uint16_t> out;
  out.reserve(a.size() + b.size());
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(out));
  return out;
}

}  // namespace

Container Container::AndArrayArray(const std::vector<uint16_t>& a,
                                   const std::vector<uint16_t>& b) {
  return MakeArray(IntersectSorted(a, b, IntersectMode::kAuto));
}

Container Container::AndArrayBitmap(const std::vector<uint16_t>& a,
                                    const Container& b) {
  std::vector<uint16_t> out;
  out.reserve(a.size());
  for (uint16_t v : a) {
    if (BitmapContains(b.bitmap_, v)) out.push_back(v);
  }
  return MakeArray(std::move(out));
}

Container Container::AndBitmapBitmap(const Container& a, const Container& b) {
  std::vector<uint64_t> words(kBitmapWords);
  for (uint32_t w = 0; w < kBitmapWords; ++w)
    words[w] = a.bitmap_[w] & b.bitmap_[w];
  return MakeBitmap(std::move(words));
}

namespace {

/// Run ∩ run by merging sorted run lists — linear in the number of runs.
std::vector<Run> IntersectRuns(const std::vector<Run>& a,
                               const std::vector<Run>& b) {
  std::vector<Run> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t a_start = a[i].start;
    const uint32_t a_end = a_start + a[i].length;
    const uint32_t b_start = b[j].start;
    const uint32_t b_end = b_start + b[j].length;
    const uint32_t lo = std::max(a_start, b_start);
    const uint32_t hi = std::min(a_end, b_end);
    if (lo <= hi) {
      out.push_back({static_cast<uint16_t>(lo),
                     static_cast<uint16_t>(hi - lo)});
    }
    if (a_end < b_end) ++i;
    else ++j;
  }
  return out;
}

}  // namespace

Container Container::And(const Container& a, const Container& b) {
  if (a.Empty() || b.Empty()) return Container();
  // All-set sentinel: intersection is the other side, verbatim.
  if (a.type_ == Type::kAll) return CanonicalCopy(b);
  if (b.type_ == Type::kAll) return CanonicalCopy(a);
  if (a.type_ == Type::kInverted && b.type_ == Type::kInverted) {
    // ¬A ∩ ¬B = ¬(A ∪ B): union the short absent lists.
    return MakeInverted(UnionSorted(a.array_, b.array_));
  }
  if (a.type_ == Type::kInverted || b.type_ == Type::kInverted) {
    const Container& inv = a.type_ == Type::kInverted ? a : b;
    const Container& other = a.type_ == Type::kInverted ? b : a;
    if (other.type_ == Type::kArray) {
      // Keep the array values not on the absent list.
      std::vector<uint16_t> out;
      out.reserve(other.array_.size());
      for (uint16_t v : other.array_) {
        if (!std::binary_search(inv.array_.begin(), inv.array_.end(), v))
          out.push_back(v);
      }
      return MakeArray(std::move(out));
    }
    // Bitmap/run side: clear the absent bits out of its words.
    std::vector<uint64_t> words = other.ToWords();
    for (uint16_t v : inv.array_) words[v >> 6] &= ~(1ULL << (v & 63));
    return MakeBitmap(std::move(words));
  }
  // Native run-container paths (runs stay runs where the result is still
  // run-friendly; see bench_roaring's run-optimized ablation).
  if (a.type_ == Type::kRun && b.type_ == Type::kRun) {
    Container c = MakeRuns(IntersectRuns(a.runs_, b.runs_));
    // Keep the run form only when it is the most compact representation.
    if (c.SizeInBytes() > kBitmapWords * sizeof(uint64_t) ||
        (c.cardinality_ <= kArrayMaxCardinality &&
         c.SizeInBytes() > c.cardinality_ * sizeof(uint16_t))) {
      c.Normalize();
    }
    return c;
  }
  if (a.type_ == Type::kRun || b.type_ == Type::kRun) {
    // Run ∩ array: membership-test the array side against the runs.
    const Container& run = a.type_ == Type::kRun ? a : b;
    const Container& other = a.type_ == Type::kRun ? b : a;
    if (other.type_ == Type::kArray) {
      std::vector<uint16_t> out;
      out.reserve(other.array_.size());
      for (uint16_t v : other.array_) {
        if (run.Contains(v)) out.push_back(v);
      }
      return MakeArray(std::move(out));
    }
    // Run ∩ bitmap: mask the bitmap with the run ranges.
    std::vector<uint64_t> words(kBitmapWords, 0);
    for (const Run& r : run.runs_) {
      const uint32_t end = static_cast<uint32_t>(r.start) + r.length;
      for (uint32_t w = r.start >> 6; w <= end >> 6; ++w) {
        uint64_t mask = ~0ULL;
        if (w == (static_cast<uint32_t>(r.start) >> 6)) {
          mask &= ~0ULL << (r.start & 63);
        }
        if (w == (end >> 6) && (end & 63) != 63) {
          mask &= (1ULL << ((end & 63) + 1)) - 1;
        }
        words[w] |= mask & other.bitmap_[w];
      }
    }
    return MakeBitmap(std::move(words));
  }
  if (a.type_ == Type::kArray && b.type_ == Type::kArray)
    return AndArrayArray(a.array_, b.array_);
  if (a.type_ == Type::kArray) return AndArrayBitmap(a.array_, b);
  if (b.type_ == Type::kArray) return AndArrayBitmap(b.array_, a);
  return AndBitmapBitmap(a, b);
}

uint32_t Container::AndCardinality(const Container& a, const Container& b) {
  if (a.Empty() || b.Empty()) return 0;
  if (a.type_ == Type::kAll) return b.cardinality_;
  if (b.type_ == Type::kAll) return a.cardinality_;
  if (a.type_ == Type::kInverted && b.type_ == Type::kInverted) {
    // |¬A ∩ ¬B| = 65536 - |A ∪ B|.
    return kChunkCardinality -
           static_cast<uint32_t>(UnionSorted(a.array_, b.array_).size());
  }
  if (a.type_ == Type::kInverted || b.type_ == Type::kInverted) {
    // |other ∩ ¬absent| = |other| - |other ∩ absent|.
    const Container& inv = a.type_ == Type::kInverted ? a : b;
    const Container& other = a.type_ == Type::kInverted ? b : a;
    uint32_t hit = 0;
    for (uint16_t v : inv.array_) hit += other.Contains(v);
    return other.cardinality_ - hit;
  }
  if (a.type_ == Type::kBitmap && b.type_ == Type::kBitmap) {
    uint32_t c = 0;
    for (uint32_t w = 0; w < kBitmapWords; ++w)
      c += static_cast<uint32_t>(
          __builtin_popcountll(a.bitmap_[w] & b.bitmap_[w]));
    return c;
  }
  if (a.type_ == Type::kArray && b.type_ == Type::kBitmap) {
    uint32_t c = 0;
    for (uint16_t v : a.array_) c += BitmapContains(b.bitmap_, v);
    return c;
  }
  if (b.type_ == Type::kArray && a.type_ == Type::kBitmap) {
    return AndCardinality(b, a);
  }
  return And(a, b).Cardinality();
}

Container Container::OrArrayArray(const std::vector<uint16_t>& a,
                                  const std::vector<uint16_t>& b) {
  return MakeArray(UnionSorted(a, b));
}

Container Container::OrBitmapAny(const Container& bitmap,
                                 const Container& any) {
  Container out = bitmap.type_ == Type::kBitmap ? bitmap
                                                : bitmap.ToBitmapCopy();
  any.ForEach([&out](uint16_t v) {
    uint64_t& word = out.bitmap_[v >> 6];
    const uint64_t mask = 1ULL << (v & 63);
    if (!(word & mask)) {
      word |= mask;
      ++out.cardinality_;
    }
  });
  out.Normalize();
  return out;
}

Container Container::Or(const Container& a, const Container& b) {
  if (a.Empty()) return CanonicalCopy(b);
  if (b.Empty()) return CanonicalCopy(a);
  // All-set sentinel absorbs everything.
  if (a.type_ == Type::kAll || b.type_ == Type::kAll) return MakeAll();
  if (a.type_ == Type::kInverted && b.type_ == Type::kInverted) {
    // ¬A ∪ ¬B = ¬(A ∩ B): intersect the short absent lists.
    return MakeInverted(
        IntersectSorted(a.array_, b.array_, IntersectMode::kAuto));
  }
  if (a.type_ == Type::kInverted || b.type_ == Type::kInverted) {
    // ¬A ∪ other = ¬(A \ other): drop the absents the other side covers.
    const Container& inv = a.type_ == Type::kInverted ? a : b;
    const Container& other = a.type_ == Type::kInverted ? b : a;
    std::vector<uint16_t> absent;
    absent.reserve(inv.array_.size());
    for (uint16_t v : inv.array_) {
      if (!other.Contains(v)) absent.push_back(v);
    }
    return MakeInverted(std::move(absent));
  }
  if (a.type_ == Type::kArray && b.type_ == Type::kArray)
    return OrArrayArray(a.array_, b.array_);
  if (a.type_ == Type::kBitmap) return OrBitmapAny(a, b);
  if (b.type_ == Type::kBitmap) return OrBitmapAny(b, a);
  // At least one run container and no bitmaps: merge through sorted arrays.
  return OrArrayArray(a.ToArrayValues(), b.ToArrayValues());
}

Container Container::AndNot(const Container& a, const Container& b) {
  if (a.Empty() || b.type_ == Type::kAll) return Container();
  if (b.Empty()) return CanonicalCopy(a);
  if (b.type_ == Type::kInverted) {
    // a \ ¬B = a ∩ B: the subtrahend's absent list IS the intersection mask.
    return And(a, MakeArray(b.array_));
  }
  if (a.type_ == Type::kAll) {
    // Complement of b.
    switch (b.type_) {
      case Type::kArray:
        return MakeInverted(b.array_);
      case Type::kBitmap:
      case Type::kRun: {
        std::vector<uint64_t> words = b.ToWords();
        for (uint64_t& w : words) w = ~w;
        return MakeBitmap(std::move(words));
      }
      case Type::kInverted:
      case Type::kAll:
        break;  // handled above
    }
    return Container();
  }
  if (a.type_ == Type::kInverted) {
    // ¬A \ b = ¬(A ∪ b).
    if (b.type_ == Type::kArray) {
      return MakeInverted(UnionSorted(a.array_, b.array_));
    }
    std::vector<uint64_t> words = b.ToWords();
    for (uint16_t v : a.array_) words[v >> 6] |= 1ULL << (v & 63);
    for (uint64_t& w : words) w = ~w;
    return MakeBitmap(std::move(words));
  }
  if (a.type_ == Type::kArray || a.type_ == Type::kRun) {
    std::vector<uint16_t> out;
    out.reserve(a.cardinality_);
    a.ForEach([&](uint16_t v) {
      if (!b.Contains(v)) out.push_back(v);
    });
    return MakeArray(std::move(out));
  }
  // a is a bitmap.
  std::vector<uint64_t> words = a.bitmap_;
  if (b.type_ == Type::kBitmap) {
    for (uint32_t w = 0; w < kBitmapWords; ++w) words[w] &= ~b.bitmap_[w];
  } else {
    b.ForEach([&words](uint16_t v) { words[v >> 6] &= ~(1ULL << (v & 63)); });
  }
  return MakeBitmap(std::move(words));
}

Container Container::Xor(const Container& a, const Container& b) {
  if (a.Empty()) return CanonicalCopy(b);
  if (b.Empty()) return CanonicalCopy(a);
  // all ⊕ x = ¬x.
  if (a.type_ == Type::kAll) return AndNot(MakeAll(), b);
  if (b.type_ == Type::kAll) return AndNot(MakeAll(), a);
  if (a.type_ == Type::kInverted && b.type_ == Type::kInverted) {
    // ¬A ⊕ ¬B = A ⊕ B: symmetric difference of the absent lists.
    return MakeArray(SymmetricDifferenceSorted(a.array_, b.array_));
  }
  if (a.type_ == Type::kInverted || b.type_ == Type::kInverted) {
    // ¬A ⊕ b = ¬(A ⊕ b).
    const Container& inv = a.type_ == Type::kInverted ? a : b;
    const Container& other = a.type_ == Type::kInverted ? b : a;
    return AndNot(MakeAll(), Xor(MakeArray(inv.array_), other));
  }
  if (a.type_ == Type::kBitmap && b.type_ == Type::kBitmap) {
    std::vector<uint64_t> words(kBitmapWords);
    for (uint32_t w = 0; w < kBitmapWords; ++w)
      words[w] = a.bitmap_[w] ^ b.bitmap_[w];
    return MakeBitmap(std::move(words));
  }
  // Generic symmetric difference through union minus intersection.
  return AndNot(Or(a, b), And(a, b));
}

bool Container::RunOptimize() {
  if (type_ == Type::kRun || cardinality_ == 0) return false;
  // The all-set sentinel costs zero bytes; no run list can beat it.
  if (type_ == Type::kAll) return false;
  // Count runs.
  std::vector<Run> runs;
  bool open = false;
  uint32_t run_start = 0, prev = 0;
  ForEach([&](uint16_t v) {
    if (!open) {
      open = true;
      run_start = v;
    } else if (v != prev + 1) {
      runs.push_back({static_cast<uint16_t>(run_start),
                      static_cast<uint16_t>(prev - run_start)});
      run_start = v;
    }
    prev = v;
  });
  if (open) {
    runs.push_back({static_cast<uint16_t>(run_start),
                    static_cast<uint16_t>(prev - run_start)});
  }
  const size_t run_bytes = runs.size() * sizeof(Run);
  const size_t current_bytes = SizeInBytes();
  if (run_bytes >= current_bytes) return false;
  runs_ = std::move(runs);
  array_.clear();
  array_.shrink_to_fit();
  bitmap_.clear();
  bitmap_.shrink_to_fit();
  type_ = Type::kRun;
  NoteConversion();
  return true;
}

size_t Container::SizeInBytes() const {
  switch (type_) {
    case Type::kArray:
    case Type::kInverted:
      return array_.size() * sizeof(uint16_t);
    case Type::kBitmap:
      return kBitmapWords * sizeof(uint64_t);
    case Type::kRun:
      return runs_.size() * sizeof(Run);
    case Type::kAll:
      return 0;
  }
  return 0;
}

bool Container::SameSetAs(const Container& other) const {
  if (cardinality_ != other.cardinality_) return false;
  if (type_ == Type::kAll && other.type_ == Type::kAll) return true;
  if (type_ == Type::kInverted && other.type_ == Type::kInverted) {
    return array_ == other.array_;
  }
  std::vector<uint16_t> a = ToArrayValues();
  std::vector<uint16_t> b = other.ToArrayValues();
  return a == b;
}

}  // namespace zv::roaring
