/// \file roaring.h
/// \brief 32-bit Roaring bitmap built on the 16-bit containers.
///
/// This is the principal data storage format of the zenvisage in-memory
/// database (§6.2 of the paper): one bitmap per distinct value of each
/// indexed (categorical) column, combined with bit-parallel AND/OR to
/// evaluate arbitrary selection predicates.

#ifndef ZV_ROARING_ROARING_H_
#define ZV_ROARING_ROARING_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "roaring/container.h"

namespace zv::roaring {

/// \brief Compressed bitmap over the 32-bit integer universe.
///
/// Internally a sorted vector of (high-16-bit key, Container) pairs.
/// Copyable; copies are deep.
class RoaringBitmap {
 public:
  RoaringBitmap() = default;

  /// Builds from arbitrary (not necessarily sorted) values.
  static RoaringBitmap FromValues(const std::vector<uint32_t>& values);

  /// Builds from a sorted, deduplicated range [begin, end) efficiently.
  static RoaringBitmap FromSortedValues(const uint32_t* begin,
                                        const uint32_t* end);

  /// Bitmap containing the contiguous range [lo, hi).
  static RoaringBitmap FromRange(uint32_t lo, uint32_t hi);

  void Add(uint32_t x);
  void Remove(uint32_t x);
  bool Contains(uint32_t x) const;

  uint64_t Cardinality() const;
  bool Empty() const { return chunks_.empty(); }

  /// Number of values strictly less than x.
  uint64_t Rank(uint32_t x) const;

  static RoaringBitmap And(const RoaringBitmap& a, const RoaringBitmap& b);
  static RoaringBitmap Or(const RoaringBitmap& a, const RoaringBitmap& b);
  static RoaringBitmap AndNot(const RoaringBitmap& a, const RoaringBitmap& b);
  static RoaringBitmap Xor(const RoaringBitmap& a, const RoaringBitmap& b);

  /// |a AND b| without materializing the intersection; the fast path for
  /// selectivity estimation.
  static uint64_t AndCardinality(const RoaringBitmap& a,
                                 const RoaringBitmap& b);

  /// In-place variants.
  void AndWith(const RoaringBitmap& other) { *this = And(*this, other); }
  void OrWith(const RoaringBitmap& other) { *this = Or(*this, other); }

  /// Converts containers to run representation where beneficial.
  void RunOptimize();

  /// Calls fn(uint32_t) for every value in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, container] : chunks_) {
      const uint32_t base = static_cast<uint32_t>(key) << 16;
      container.ForEach([&fn, base](uint16_t low) { fn(base | low); });
    }
  }

  /// Calls fn(uint32_t) for every value in [lo, hi), ascending. Containers
  /// fully inside the range iterate directly; the boundary containers (at
  /// most two per call) filter per value — so a range restricted to one
  /// 64K-aligned chunk costs one binary search plus that chunk's values.
  /// This is the chunk-range extraction the sharded scan path relies on.
  template <typename Fn>
  void ForEachInRange(uint32_t lo, uint32_t hi, Fn&& fn) const {
    if (hi <= lo) return;
    const uint16_t key_lo = static_cast<uint16_t>(lo >> 16);
    const uint16_t key_hi = static_cast<uint16_t>((hi - 1) >> 16);
    auto it = std::lower_bound(
        chunks_.begin(), chunks_.end(), key_lo,
        [](const std::pair<uint16_t, Container>& chunk, uint16_t key) {
          return chunk.first < key;
        });
    for (; it != chunks_.end() && it->first <= key_hi; ++it) {
      const uint32_t base = static_cast<uint32_t>(it->first) << 16;
      if (base >= lo && base + 0xFFFF < hi) {
        it->second.ForEach([&fn, base](uint16_t low) { fn(base | low); });
      } else {
        // Boundary chunk: clamp the window once and let the container skip
        // straight to it (no per-value filtering at any representation).
        const uint16_t w_lo =
            base >= lo ? 0 : static_cast<uint16_t>(lo - base);
        const uint16_t w_hi = base + 0xFFFF < hi
                                  ? static_cast<uint16_t>(0xFFFF)
                                  : static_cast<uint16_t>(hi - 1 - base);
        it->second.ForEachInWindow(w_lo, w_hi, [&fn, base](uint16_t low) {
          fn(base | low);
        });
      }
    }
  }

  std::vector<uint32_t> ToVector() const;

  /// Heap bytes across all containers (excludes the chunk index itself).
  size_t SizeInBytes() const;

  bool operator==(const RoaringBitmap& other) const;

 private:
  // Sorted by key.
  std::vector<std::pair<uint16_t, Container>> chunks_;

  Container* FindOrCreate(uint16_t key);
  const Container* Find(uint16_t key) const;
  void EraseEmpty();
};

}  // namespace zv::roaring

#endif  // ZV_ROARING_ROARING_H_
