/// \file ordered_bag.h
/// \brief Ordered-bag semantics (§4.1): bags with an inherent order, plus
/// the indexing, union (concatenation), difference, intersection, and
/// duplicate-elimination operators the visual exploration algebra builds on.

#ifndef ZV_ALGEBRA_ORDERED_BAG_H_
#define ZV_ALGEBRA_ORDERED_BAG_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace zv::algebra {

/// \brief A bag of T with an inherent order. T needs operator==.
///
/// Indexing follows the paper's 1-based convention: `bag.At(1)` is the first
/// tuple and `Slice(i, j)` is R[i:j], both ends inclusive.
template <typename T>
class OrderedBag {
 public:
  OrderedBag() = default;
  explicit OrderedBag(std::vector<T> items) : items_(std::move(items)) {}

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void push_back(T item) { items_.push_back(std::move(item)); }

  /// 0-based access (implementation convenience).
  const T& operator[](size_t i) const { return items_[i]; }
  T& operator[](size_t i) { return items_[i]; }

  /// 1-based access (paper convention R[i]).
  const T& At(size_t i) const { return items_[i - 1]; }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }
  const std::vector<T>& items() const { return items_; }

  bool Contains(const T& t) const {
    return std::find(items_.begin(), items_.end(), t) != items_.end();
  }

  /// R[i:j], 1-based, both inclusive; i > size() yields an empty bag.
  OrderedBag Slice(size_t i, size_t j) const {
    OrderedBag out;
    if (i < 1) i = 1;
    if (j > items_.size()) j = items_.size();
    for (size_t k = i; k <= j; ++k) out.push_back(items_[k - 1]);
    return out;
  }

  /// First k tuples (µ_k).
  OrderedBag Limit(size_t k) const { return Slice(1, k); }

  /// R ∪ S: concatenation.
  static OrderedBag Union(const OrderedBag& r, const OrderedBag& s) {
    OrderedBag out = r;
    for (const T& t : s) out.push_back(t);
    return out;
  }

  /// R \ S: every tuple of R that does not appear in S (all copies dropped
  /// if present in S), preserving R's order.
  static OrderedBag Difference(const OrderedBag& r, const OrderedBag& s) {
    OrderedBag out;
    for (const T& t : r) {
      if (!s.Contains(t)) out.push_back(t);
    }
    return out;
  }

  /// R ∩ S: every tuple of R that appears in S, preserving R's order.
  static OrderedBag Intersection(const OrderedBag& r, const OrderedBag& s) {
    OrderedBag out;
    for (const T& t : r) {
      if (s.Contains(t)) out.push_back(t);
    }
    return out;
  }

  /// δ(R): first copy of each tuple at its first position.
  OrderedBag Dedup() const {
    OrderedBag out;
    for (const T& t : items_) {
      if (!out.Contains(t)) out.push_back(t);
    }
    return out;
  }

  /// R × S with the paper's ordering: for each tuple of R (in order), each
  /// tuple of S (in order). `combine` merges one element of each.
  template <typename U, typename Fn>
  static auto Cross(const OrderedBag& r, const OrderedBag<U>& s, Fn&& combine)
      -> OrderedBag<decltype(combine(r[0], s[0]))> {
    OrderedBag<decltype(combine(r[0], s[0]))> out;
    for (const T& a : r) {
      for (const U& b : s) out.push_back(combine(a, b));
    }
    return out;
  }

  bool operator==(const OrderedBag& other) const {
    return items_ == other.items_;
  }

 private:
  std::vector<T> items_;
};

}  // namespace zv::algebra

#endif  // ZV_ALGEBRA_ORDERED_BAG_H_
