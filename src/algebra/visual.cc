#include "algebra/visual.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace zv::algebra {

std::string VisualSource::ToString() const {
  std::string out = "(" + x + ", " + y;
  for (const AttrVal& a : attrs) out += ", " + a.ToString();
  out += ")";
  return out;
}

int VisualGroup::FindAttr(const std::string& name) const {
  for (size_t i = 0; i < attr_names.size(); ++i) {
    if (attr_names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

/// Distinct values of a column in first-appearance order (deterministic),
/// i.e. π_Ai(R) under the ordered-bag projection with duplicates removed.
std::vector<Value> DistinctValues(const Table& table, size_t col) {
  std::vector<Value> out;
  if (table.column_type(col) == ColumnType::kCategorical) {
    out.reserve(table.DictSize(col));
    for (size_t code = 0; code < table.DictSize(col); ++code) {
      out.push_back(table.DictValue(col, static_cast<int32_t>(code)));
    }
    return out;
  }
  std::map<Value, bool> seen;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    const Value v = table.ValueAt(row, col);
    if (seen.emplace(v, true).second) out.push_back(v);
  }
  return out;
}

}  // namespace

Result<VisualGroup> MakeVisualUniverse(
    std::shared_ptr<const Table> relation,
    const std::vector<std::string>& x_attrs,
    const std::vector<std::string>& y_attrs) {
  VisualGroup group;
  group.relation = relation;
  group.attr_names = relation->schema().ColumnNames();
  const size_t k = group.attr_names.size();

  // Domains: per attribute, ∗ followed by the distinct values (the ∗ first
  // gives a deterministic, documented order).
  std::vector<std::vector<AttrVal>> domains(k);
  for (size_t i = 0; i < k; ++i) {
    domains[i].push_back(AttrVal::Star());
    for (Value& v : DistinctValues(*relation, i)) {
      domains[i].push_back(AttrVal::Of(std::move(v)));
    }
  }
  for (const auto& xs : {x_attrs, y_attrs}) {
    for (const std::string& a : xs) {
      if (relation->schema().Find(a) < 0) {
        return Status::NotFound("axis attribute not in relation: " + a);
      }
    }
  }

  // Enumerate X × Y × ∏ domains in row-major order.
  std::vector<size_t> idx(k, 0);
  for (const std::string& x : x_attrs) {
    for (const std::string& y : y_attrs) {
      std::fill(idx.begin(), idx.end(), 0);
      while (true) {
        VisualSource src;
        src.x = x;
        src.y = y;
        src.attrs.reserve(k);
        for (size_t i = 0; i < k; ++i) src.attrs.push_back(domains[i][idx[i]]);
        group.sources.push_back(std::move(src));
        // Odometer increment.
        size_t pos = k;
        while (pos > 0) {
          --pos;
          if (++idx[pos] < domains[pos].size()) break;
          idx[pos] = 0;
          if (pos == 0) goto next_xy;
        }
        if (k == 0) break;
      }
    next_xy:;
    }
  }
  return group;
}

Result<Visualization> RenderVisualSource(const VisualGroup& group,
                                         const VisualSource& source,
                                         const VizSpec& spec) {
  const Table& table = *group.relation;
  const int x_col = table.schema().Find(source.x);
  const int y_col = table.schema().Find(source.y);
  if (x_col < 0 || y_col < 0) {
    return Status::NotFound(StrFormat("axis attribute missing: %s/%s",
                                      source.x.c_str(), source.y.c_str()));
  }
  if (source.attrs.size() != group.attr_names.size()) {
    return Status::InvalidArgument("visual source arity mismatch");
  }

  // Pre-resolve categorical filters to codes.
  struct Filter {
    size_t col;
    bool categorical;
    int32_t code;  // -1 = value absent: empty selection
    Value value;
  };
  std::vector<Filter> filters;
  for (size_t i = 0; i < source.attrs.size(); ++i) {
    if (source.attrs[i].star) continue;
    Filter f;
    f.col = i;
    f.categorical = table.column_type(i) == ColumnType::kCategorical;
    f.value = source.attrs[i].value;
    f.code = f.categorical ? table.LookupCode(i, f.value) : 0;
    filters.push_back(std::move(f));
  }

  sql::AggFunc agg = spec.y_agg;
  if (agg == sql::AggFunc::kNone) agg = sql::AggFunc::kSum;

  std::map<Value, std::pair<double, int64_t>> groups;  // x -> (sum, count)
  for (size_t row = 0; row < table.num_rows(); ++row) {
    bool pass = true;
    for (const Filter& f : filters) {
      if (f.categorical) {
        if (table.Code(row, f.col) != f.code) {
          pass = false;
          break;
        }
      } else if (table.ValueAt(row, f.col) != f.value) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    const Value x = table.ValueAt(row, static_cast<size_t>(x_col));
    const double y = table.NumericAt(row, static_cast<size_t>(y_col));
    auto& [sum, count] = groups[x];
    switch (agg) {
      case sql::AggFunc::kMin:
        sum = count == 0 ? y : std::min(sum, y);
        break;
      case sql::AggFunc::kMax:
        sum = count == 0 ? y : std::max(sum, y);
        break;
      default:
        sum += y;
    }
    ++count;
  }

  Visualization viz;
  viz.x_attr = source.x;
  viz.y_attr = source.y;
  viz.spec = spec;
  for (size_t i = 0; i < source.attrs.size(); ++i) {
    if (!source.attrs[i].star) {
      viz.slices.push_back({group.attr_names[i], source.attrs[i].value});
    }
  }
  Series series;
  series.name = source.y;
  for (const auto& [x, sc] : groups) {
    viz.xs.push_back(x);
    double v = sc.first;
    if (agg == sql::AggFunc::kAvg && sc.second > 0) {
      v /= static_cast<double>(sc.second);
    } else if (agg == sql::AggFunc::kCount) {
      v = static_cast<double>(sc.second);
    }
    series.ys.push_back(v);
  }
  viz.series.push_back(std::move(series));
  return viz;
}

}  // namespace zv::algebra
