#include "algebra/operators.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/strings.h"

namespace zv::algebra {

// --- VPredicate -------------------------------------------------------------

std::unique_ptr<VPredicate> VPredicate::XEquals(std::string attr,
                                                bool negated) {
  auto p = std::make_unique<VPredicate>();
  p->kind = Kind::kLeaf;
  p->target = Target::kX;
  p->rhs_attr = std::move(attr);
  p->negated = negated;
  return p;
}

std::unique_ptr<VPredicate> VPredicate::YEquals(std::string attr,
                                                bool negated) {
  auto p = XEquals(std::move(attr), negated);
  p->target = Target::kY;
  return p;
}

std::unique_ptr<VPredicate> VPredicate::AttrEquals(int attr_index, Value v,
                                                   bool negated) {
  auto p = std::make_unique<VPredicate>();
  p->kind = Kind::kLeaf;
  p->target = Target::kAttr;
  p->attr_index = attr_index;
  p->rhs_value = std::move(v);
  p->negated = negated;
  return p;
}

std::unique_ptr<VPredicate> VPredicate::AttrIsStar(int attr_index,
                                                   bool negated) {
  auto p = std::make_unique<VPredicate>();
  p->kind = Kind::kLeaf;
  p->target = Target::kAttr;
  p->attr_index = attr_index;
  p->rhs_star = true;
  p->negated = negated;
  return p;
}

std::unique_ptr<VPredicate> VPredicate::And(
    std::vector<std::unique_ptr<VPredicate>> children) {
  if (children.size() == 1) return std::move(children[0]);
  auto p = std::make_unique<VPredicate>();
  p->kind = Kind::kAnd;
  p->children = std::move(children);
  return p;
}

std::unique_ptr<VPredicate> VPredicate::Or(
    std::vector<std::unique_ptr<VPredicate>> children) {
  if (children.size() == 1) return std::move(children[0]);
  auto p = std::make_unique<VPredicate>();
  p->kind = Kind::kOr;
  p->children = std::move(children);
  return p;
}

bool VPredicate::Matches(const VisualSource& src) const {
  switch (kind) {
    case Kind::kAnd:
      for (const auto& c : children) {
        if (!c->Matches(src)) return false;
      }
      return true;
    case Kind::kOr:
      for (const auto& c : children) {
        if (c->Matches(src)) return true;
      }
      return false;
    case Kind::kLeaf: {
      bool eq = false;
      switch (target) {
        case Target::kX:
          eq = src.x == rhs_attr;
          break;
        case Target::kY:
          eq = src.y == rhs_attr;
          break;
        case Target::kAttr: {
          const AttrVal& a = src.attrs[static_cast<size_t>(attr_index)];
          eq = rhs_star ? a.star : (!a.star && a.value == rhs_value);
          break;
        }
      }
      return negated ? !eq : eq;
    }
  }
  return false;
}

// --- helpers ----------------------------------------------------------------

namespace {

Status CheckSameSchema(const VisualGroup& v, const VisualGroup& u) {
  if (v.attr_names != u.attr_names) {
    return Status::InvalidArgument(
        "visual groups are over different relations");
  }
  return Status::OK();
}

Result<std::vector<Visualization>> RenderAll(const VisualGroup& v) {
  std::vector<Visualization> out;
  out.reserve(v.size());
  for (const VisualSource& src : v.sources) {
    ZV_ASSIGN_OR_RETURN(Visualization viz, RenderVisualSource(v, src));
    out.push_back(std::move(viz));
  }
  return out;
}

VisualGroup WithSources(const VisualGroup& like,
                        OrderedBag<VisualSource> sources) {
  VisualGroup out;
  out.relation = like.relation;
  out.attr_names = like.attr_names;
  out.sources = std::move(sources);
  return out;
}

}  // namespace

// --- unary operators --------------------------------------------------------

VisualGroup SigmaV(const VisualGroup& v, const VPredicate& theta) {
  OrderedBag<VisualSource> out;
  for (const VisualSource& src : v.sources) {
    if (theta.Matches(src)) out.push_back(src);
  }
  return WithSources(v, std::move(out));
}

Result<VisualGroup> TauV(const VisualGroup& v, const TrendFn& f) {
  ZV_ASSIGN_OR_RETURN(std::vector<Visualization> rendered, RenderAll(v));
  std::vector<size_t> order(v.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> score(v.size());
  for (size_t i = 0; i < v.size(); ++i) score[i] = f(rendered[i]);
  std::stable_sort(order.begin(), order.end(),
                   [&score](size_t a, size_t b) { return score[a] < score[b]; });
  OrderedBag<VisualSource> out;
  for (size_t i : order) out.push_back(v.sources[i]);
  return WithSources(v, std::move(out));
}

VisualGroup MuV(const VisualGroup& v, size_t k) {
  return WithSources(v, v.sources.Limit(k));
}

VisualGroup MuV(const VisualGroup& v, size_t a, size_t b) {
  return WithSources(v, v.sources.Slice(a, b));
}

VisualGroup DeltaV(const VisualGroup& v) {
  return WithSources(v, v.sources.Dedup());
}

Result<VisualGroup> ZetaV(const VisualGroup& v, const ReprFn& r, size_t k) {
  ZV_ASSIGN_OR_RETURN(std::vector<Visualization> rendered, RenderAll(v));
  std::vector<const Visualization*> ptrs;
  ptrs.reserve(rendered.size());
  for (const auto& viz : rendered) ptrs.push_back(&viz);
  const std::vector<size_t> chosen = r(ptrs, k);
  OrderedBag<VisualSource> out;
  for (size_t i : chosen) {
    if (i < v.size()) out.push_back(v.sources[i]);
  }
  return WithSources(v, std::move(out));
}

// --- binary operators -------------------------------------------------------

Result<VisualGroup> UnionV(const VisualGroup& v, const VisualGroup& u) {
  ZV_RETURN_NOT_OK(CheckSameSchema(v, u));
  return WithSources(
      v, OrderedBag<VisualSource>::Union(v.sources, u.sources));
}

Result<VisualGroup> DiffV(const VisualGroup& v, const VisualGroup& u) {
  ZV_RETURN_NOT_OK(CheckSameSchema(v, u));
  return WithSources(
      v, OrderedBag<VisualSource>::Difference(v.sources, u.sources));
}

Result<VisualGroup> IntersectV(const VisualGroup& v, const VisualGroup& u) {
  ZV_RETURN_NOT_OK(CheckSameSchema(v, u));
  return WithSources(
      v, OrderedBag<VisualSource>::Intersection(v.sources, u.sources));
}

Result<VisualGroup> BetaV(const VisualGroup& v, const VisualGroup& u,
                          SwapTarget target) {
  ZV_RETURN_NOT_OK(CheckSameSchema(v, u));
  if (target.kind == SwapTarget::Kind::kAttr &&
      (target.attr_index < 0 ||
       static_cast<size_t>(target.attr_index) >= v.attr_names.size())) {
    return Status::OutOfRange("βv attribute index out of range");
  }
  // π_{others}(V) × π_A(U): enumerate V's tuples (minus A), cross U's A
  // column, both as ordered bags (no dedup).
  OrderedBag<VisualSource> out;
  for (const VisualSource& vs : v.sources) {
    for (const VisualSource& us : u.sources) {
      VisualSource merged = vs;
      switch (target.kind) {
        case SwapTarget::Kind::kX:
          merged.x = us.x;
          break;
        case SwapTarget::Kind::kY:
          merged.y = us.y;
          break;
        case SwapTarget::Kind::kAttr:
          merged.attrs[static_cast<size_t>(target.attr_index)] =
              us.attrs[static_cast<size_t>(target.attr_index)];
          break;
      }
      out.push_back(std::move(merged));
    }
  }
  return WithSources(v, std::move(out));
}

namespace {

/// Key of a source on the matched attributes (for φv).
std::string MatchKey(const VisualSource& src,
                     const std::vector<SwapTarget>& attrs) {
  std::string key;
  for (const SwapTarget& t : attrs) {
    switch (t.kind) {
      case SwapTarget::Kind::kX:
        key += src.x;
        break;
      case SwapTarget::Kind::kY:
        key += src.y;
        break;
      case SwapTarget::Kind::kAttr:
        key += src.attrs[static_cast<size_t>(t.attr_index)].ToString();
        break;
    }
    key += '\x1f';
  }
  return key;
}

}  // namespace

Result<VisualGroup> PhiV(const VisualGroup& v, const VisualGroup& u,
                         const DistFn& d,
                         const std::vector<SwapTarget>& match_attrs) {
  ZV_RETURN_NOT_OK(CheckSameSchema(v, u));
  // Group both sides by the matched attribute values; each combination must
  // be a singleton on each side (else the operator is undefined — §4.4).
  std::map<std::string, size_t> v_by_key, u_by_key;
  for (size_t i = 0; i < v.size(); ++i) {
    const std::string key = MatchKey(v.sources[i], match_attrs);
    if (!v_by_key.emplace(key, i).second) {
      return Status::InvalidArgument(
          "φv: non-singleton selection in left group for key " + key);
    }
  }
  for (size_t i = 0; i < u.size(); ++i) {
    const std::string key = MatchKey(u.sources[i], match_attrs);
    if (!u_by_key.emplace(key, i).second) {
      return Status::InvalidArgument(
          "φv: non-singleton selection in right group for key " + key);
    }
  }
  std::vector<double> score(v.size(), 0.0);
  for (const auto& [key, vi] : v_by_key) {
    auto it = u_by_key.find(key);
    if (it == u_by_key.end()) {
      return Status::InvalidArgument("φv: no matching source for key " + key);
    }
    ZV_ASSIGN_OR_RETURN(Visualization fv,
                        RenderVisualSource(v, v.sources[vi]));
    ZV_ASSIGN_OR_RETURN(Visualization fu,
                        RenderVisualSource(u, u.sources[it->second]));
    score[vi] = d(fv, fu);
  }
  std::vector<size_t> order(v.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&score](size_t a, size_t b) { return score[a] < score[b]; });
  OrderedBag<VisualSource> out;
  for (size_t i : order) out.push_back(v.sources[i]);
  return WithSources(v, std::move(out));
}

Result<VisualGroup> EtaV(const VisualGroup& v, const VisualGroup& u,
                         const DistFn& d) {
  ZV_RETURN_NOT_OK(CheckSameSchema(v, u));
  if (u.size() != 1) {
    return Status::InvalidArgument(
        StrFormat("ηv requires a singleton reference group, got %zu", u.size()));
  }
  ZV_ASSIGN_OR_RETURN(Visualization ref, RenderVisualSource(u, u.sources[0]));
  std::vector<double> score(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    ZV_ASSIGN_OR_RETURN(Visualization fv, RenderVisualSource(v, v.sources[i]));
    score[i] = d(fv, ref);
  }
  std::vector<size_t> order(v.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&score](size_t a, size_t b) { return score[a] < score[b]; });
  OrderedBag<VisualSource> out;
  for (size_t i : order) out.push_back(v.sources[i]);
  return WithSources(v, std::move(out));
}

}  // namespace zv::algebra
