/// \file visual.h
/// \brief Visual sources, visual groups, and the visual universe ν(R)
/// (§4.2): the domain the visual exploration algebra operates on.

#ifndef ZV_ALGEBRA_VISUAL_H_
#define ZV_ALGEBRA_VISUAL_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/ordered_bag.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/table.h"
#include "viz/visualization.h"

namespace zv::algebra {

/// \brief An attribute slot of a visual source: a concrete value or the
/// wildcard ∗ ("no subselection on this attribute").
struct AttrVal {
  bool star = true;
  Value value;

  static AttrVal Star() { return AttrVal{}; }
  static AttrVal Of(Value v) { return AttrVal{false, std::move(v)}; }

  bool operator==(const AttrVal& other) const {
    if (star != other.star) return false;
    return star || value == other.value;
  }

  std::string ToString() const { return star ? "*" : value.ToString(); }
};

/// \brief A (k+2)-tuple of the visual universe: X and Y axis attributes plus
/// one AttrVal per relation attribute (the data source).
struct VisualSource {
  std::string x;
  std::string y;
  std::vector<AttrVal> attrs;

  bool operator==(const VisualSource& other) const {
    return x == other.x && y == other.y && attrs == other.attrs;
  }

  std::string ToString() const;
};

/// \brief An ordered bag of visual sources sharing one relation's schema.
struct VisualGroup {
  std::shared_ptr<const Table> relation;
  std::vector<std::string> attr_names;  ///< A1..Ak, in relation order
  OrderedBag<VisualSource> sources;

  size_t size() const { return sources.size(); }

  /// Index of an attribute name in attr_names, or -1.
  int FindAttr(const std::string& name) const;
};

/// Constructs the visual universe V = ν(R) = X × Y × ∏(π_Ai(R) ∪ {∗}).
///
/// `x_attrs` / `y_attrs` are the relations X and Y from §4.2 (candidate
/// axes). WARNING: |V| is the product of (distinct values + 1) across all
/// attributes — only materialize for small relations (tests do).
Result<VisualGroup> MakeVisualUniverse(std::shared_ptr<const Table> relation,
                                       const std::vector<std::string>& x_attrs,
                                       const std::vector<std::string>& y_attrs);

/// Renders the visualization a visual source represents: selects rows where
/// each non-∗ attribute equals its value, groups by the X attribute, and
/// aggregates the Y attribute (SUM by default, per `spec`). The returned
/// points are ordered by x.
Result<Visualization> RenderVisualSource(const VisualGroup& group,
                                         const VisualSource& source,
                                         const VizSpec& spec = {});

}  // namespace zv::algebra

#endif  // ZV_ALGEBRA_VISUAL_H_
