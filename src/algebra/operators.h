/// \file operators.h
/// \brief The visual exploration algebra operators (§4.4, Table 4.2).
///
/// Unary:  σv (select), τv (sort by F(T)), µv (limit / [a:b]), δv (dedup),
///         ζv (representatives via R).
/// Binary: ∪v, \v, ∩v, βv (swap attribute values), φv (sort by pairwise
///         distance, matched on attributes), ηv (sort by distance to a
///         single reference).
///
/// All operators are pure: they return new visual groups and never mutate
/// operands. Exploration functions T, D, R are injected as std::functions,
/// matching the paper's "flexible and configurable" black boxes.

#ifndef ZV_ALGEBRA_OPERATORS_H_
#define ZV_ALGEBRA_OPERATORS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algebra/visual.h"

namespace zv::algebra {

/// \brief θ for σv (§4.4): ∧/∨ combinations of `=`/`≠` comparisons whose
/// LHS is X, Y, or a relation attribute and whose RHS is an attribute name
/// (for X/Y), a value, or ∗.
struct VPredicate {
  enum class Kind { kAnd, kOr, kLeaf };
  enum class Target { kX, kY, kAttr };

  Kind kind = Kind::kLeaf;
  std::vector<std::unique_ptr<VPredicate>> children;

  // Leaf payload.
  Target target = Target::kX;
  int attr_index = -1;   ///< for kAttr
  bool negated = false;  ///< ≠ instead of =
  bool rhs_star = false; ///< comparison against ∗
  std::string rhs_attr;  ///< for kX / kY
  Value rhs_value;       ///< for kAttr with non-∗ rhs

  static std::unique_ptr<VPredicate> XEquals(std::string attr,
                                             bool negated = false);
  static std::unique_ptr<VPredicate> YEquals(std::string attr,
                                             bool negated = false);
  static std::unique_ptr<VPredicate> AttrEquals(int attr_index, Value v,
                                                bool negated = false);
  static std::unique_ptr<VPredicate> AttrIsStar(int attr_index,
                                                bool negated = false);
  static std::unique_ptr<VPredicate> And(
      std::vector<std::unique_ptr<VPredicate>> children);
  static std::unique_ptr<VPredicate> Or(
      std::vector<std::unique_ptr<VPredicate>> children);

  bool Matches(const VisualSource& src) const;
};

/// Exploration function signatures (§4.3).
using TrendFn = std::function<double(const Visualization&)>;
using DistFn =
    std::function<double(const Visualization&, const Visualization&)>;
using ReprFn = std::function<std::vector<size_t>(
    const std::vector<const Visualization*>&, size_t k)>;

/// σv_θ(V): tuple-order-preserving selection.
VisualGroup SigmaV(const VisualGroup& v, const VPredicate& theta);

/// τv_{F(T)}(V): sort increasing by F(T) applied to each rendered source.
/// (Pass a negated functional for decreasing order, as the paper does with
/// τv_{-T}.)
Result<VisualGroup> TauV(const VisualGroup& v, const TrendFn& f);

/// µv_k(V): first k sources.
VisualGroup MuV(const VisualGroup& v, size_t k);
/// µv_[a:b](V): positions a..b (1-based, inclusive).
VisualGroup MuV(const VisualGroup& v, size_t a, size_t b);

/// δv(V): duplicate elimination, first occurrences kept.
VisualGroup DeltaV(const VisualGroup& v);

/// ζv_{R,k}(V): the k most representative sources per R.
Result<VisualGroup> ZetaV(const VisualGroup& v, const ReprFn& r, size_t k);

/// V ∪v U, V \v U, V ∩v U.
Result<VisualGroup> UnionV(const VisualGroup& v, const VisualGroup& u);
Result<VisualGroup> DiffV(const VisualGroup& v, const VisualGroup& u);
Result<VisualGroup> IntersectV(const VisualGroup& v, const VisualGroup& u);

/// Attribute selector for βv.
struct SwapTarget {
  enum class Kind { kX, kY, kAttr } kind = Kind::kX;
  int attr_index = -1;

  static SwapTarget X() { return {Kind::kX, -1}; }
  static SwapTarget Y() { return {Kind::kY, -1}; }
  static SwapTarget Attr(int idx) { return {Kind::kAttr, idx}; }
};

/// βv_A(V, U): π_{A1..A(i-1),A(i+1)..An}(V) × π_Ai(U) — replaces the values
/// of attribute A in V with those from U, under cross-product ordering.
Result<VisualGroup> BetaV(const VisualGroup& v, const VisualGroup& u,
                          SwapTarget target);

/// φv_{F(D),A1..Aj}(V, U): sorts V increasingly by the distance between the
/// unique source of V and of U sharing each (A1..Aj) value combination.
/// Undefined (error) if any combination selects a non-singleton group.
Result<VisualGroup> PhiV(const VisualGroup& v, const VisualGroup& u,
                         const DistFn& d,
                         const std::vector<SwapTarget>& match_attrs);

/// ηv_{F(D)}(V, U): sorts V increasingly by distance to the single source
/// in U. Error if |U| != 1.
Result<VisualGroup> EtaV(const VisualGroup& v, const VisualGroup& u,
                         const DistFn& d);

}  // namespace zv::algebra

#endif  // ZV_ALGEBRA_OPERATORS_H_
