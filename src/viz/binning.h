/// \file binning.h
/// \brief Client-side statistical transformation for binned x axes.
///
/// The SQL subset deliberately has no scalar expressions, so `x=bin(w)`
/// summarizations are applied here after fetching raw (x, y) rows — see
/// DESIGN.md §5. Bin boundaries are [k*w, (k+1)*w), labeled by their lower
/// edge.

#ifndef ZV_VIZ_BINNING_H_
#define ZV_VIZ_BINNING_H_

#include "viz/visualization.h"

namespace zv {

/// Applies `spec.x_bin` binning and `spec.y_agg` aggregation to raw points,
/// returning a new visualization with one point per non-empty bin (ascending
/// bin order). If the spec has no binning, returns `raw` unchanged.
Visualization BinVisualization(const Visualization& raw);

/// Box-plot summarization (§3.5: "other types of charts, such as the box
/// plot, may take in additional parameters (e.g., to determine where the
/// whisker should end)"): groups raw points by x and emits five series —
/// lower whisker, Q1, median, Q3, upper whisker. `spec.param` is the IQR
/// multiplier for the whiskers (0 -> the conventional 1.5); whiskers clamp
/// to the most extreme point inside the fence.
Visualization BoxPlotSummarize(const Visualization& raw);

}  // namespace zv

#endif  // ZV_VIZ_BINNING_H_
