/// \file vega_emitter.h
/// \brief Vega-lite-style JSON emission — the text substitute for the
/// browser front-end's Result Visualizer (§6.1), which mapped ZQL output
/// onto the Vega-lite grammar.

#ifndef ZV_VIZ_VEGA_EMITTER_H_
#define ZV_VIZ_VEGA_EMITTER_H_

#include <string>

#include "viz/visualization.h"

namespace zv {

/// Emits a Vega-lite-style spec: mark from the chart type, x/y encodings
/// with inferred types, and inline `data.values`.
std::string ToVegaLiteJson(const Visualization& viz, int indent = 2);

/// Renders a crude fixed-width ASCII chart (bar or line) for terminal
/// examples — the "poor man's front-end".
std::string ToAsciiChart(const Visualization& viz, size_t width = 48,
                         size_t height = 12);

}  // namespace zv

#endif  // ZV_VIZ_VEGA_EMITTER_H_
