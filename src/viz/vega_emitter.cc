#include "viz/vega_emitter.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace zv {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string JsonValue(const Value& v) {
  if (v.is_null()) return "null";
  if (v.is_numeric()) return v.ToString();
  return "\"" + JsonEscape(v.AsString()) + "\"";
}

const char* VegaMark(ChartType t) {
  switch (t) {
    case ChartType::kBar:
      return "bar";
    case ChartType::kLine:
      return "line";
    case ChartType::kScatter:
      return "point";
    case ChartType::kDotPlot:
      return "tick";
    case ChartType::kBox:
      return "boxplot";
    case ChartType::kHeatmap:
      return "rect";
    case ChartType::kAuto:
      return "line";
  }
  return "line";
}

}  // namespace

std::string ToVegaLiteJson(const Visualization& viz, int indent) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string pad2 = pad + pad;
  std::string out = "{\n";
  out += pad + "\"$schema\": \"https://vega.github.io/schema/vega-lite/v5.json\",\n";
  out += pad + "\"description\": \"" + JsonEscape(viz.Label()) + "\",\n";
  out += pad + "\"mark\": \"" + VegaMark(viz.spec.chart) + "\",\n";
  const bool x_quant = !viz.xs.empty() && viz.xs[0].is_numeric();
  out += pad + "\"encoding\": {\n";
  out += pad2 + "\"x\": {\"field\": \"" + JsonEscape(viz.x_attr) +
         "\", \"type\": \"" + (x_quant ? "quantitative" : "nominal") +
         "\"},\n";
  out += pad2 + "\"y\": {\"field\": \"" + JsonEscape(viz.y_attr) +
         "\", \"type\": \"quantitative\"}";
  if (viz.series.size() > 1) {
    out += ",\n" + pad2 + "\"color\": {\"field\": \"series\", \"type\": \"nominal\"}";
  }
  out += "\n" + pad + "},\n";
  out += pad + "\"data\": {\"values\": [\n";
  bool first = true;
  for (size_t si = 0; si < viz.series.size(); ++si) {
    const Series& s = viz.series[si];
    for (size_t i = 0; i < viz.xs.size() && i < s.ys.size(); ++i) {
      if (!first) out += ",\n";
      first = false;
      out += pad2 + "{\"" + JsonEscape(viz.x_attr) + "\": " +
             JsonValue(viz.xs[i]) + ", \"" + JsonEscape(viz.y_attr) +
             "\": " + Value::Double(s.ys[i]).ToString();
      if (viz.series.size() > 1) {
        out += ", \"series\": \"" + JsonEscape(s.name) + "\"";
      }
      out += "}";
    }
  }
  out += "\n" + pad + "]}\n}";
  return out;
}

std::string ToAsciiChart(const Visualization& viz, size_t width,
                         size_t height) {
  std::string out = viz.Label() + "\n";
  const auto& ys = viz.ys();
  if (ys.empty()) return out + "(no data)\n";
  const size_t n = std::min(ys.size(), width);
  double lo = ys[0], hi = ys[0];
  for (double y : ys) {
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  if (hi == lo) hi = lo + 1;
  // Rows from top (hi) to bottom (lo).
  std::vector<std::string> grid(height, std::string(n, ' '));
  for (size_t i = 0; i < n; ++i) {
    const double frac = (ys[i] - lo) / (hi - lo);
    const size_t row = height - 1 -
                       std::min(height - 1,
                                static_cast<size_t>(std::llround(
                                    frac * static_cast<double>(height - 1))));
    if (viz.spec.chart == ChartType::kBar) {
      for (size_t r = row; r < height; ++r) grid[r][i] = '#';
    } else {
      grid[row][i] = '*';
    }
  }
  for (const auto& row : grid) out += "  |" + row + "\n";
  out += "  +" + std::string(n, '-') + "\n";
  out += StrFormat("   y in [%.4g, %.4g], %zu points\n", lo, hi, ys.size());
  return out;
}

}  // namespace zv
