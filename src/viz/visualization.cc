#include "viz/visualization.h"

#include <algorithm>
#include <map>

namespace zv {

const std::vector<double>& Visualization::ys() const {
  static const std::vector<double> kEmpty;
  return series.empty() ? kEmpty : series[0].ys;
}

std::vector<double> Visualization::FlatValues() const {
  std::vector<double> out;
  for (const Series& s : series) {
    out.insert(out.end(), s.ys.begin(), s.ys.end());
  }
  return out;
}

std::vector<double> Visualization::NumericXs() const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    out.push_back(xs[i].is_numeric() ? xs[i].AsDouble()
                                     : static_cast<double>(i));
  }
  return out;
}

bool Visualization::SameSourceAs(const Visualization& other) const {
  return x_attr == other.x_attr && y_attr == other.y_attr &&
         slices == other.slices && constraints == other.constraints &&
         spec == other.spec;
}

std::string Visualization::Label() const {
  std::string out = y_attr + " vs " + x_attr;
  if (!slices.empty()) {
    out += " |";
    for (const Slice& s : slices) {
      out += " " + s.attribute + "=" + s.value.ToString();
    }
  }
  if (!constraints.empty()) out += " [" + constraints + "]";
  return out;
}

std::string Visualization::DebugString() const {
  return Label() + " (" + std::to_string(num_points()) + " points, " +
         spec.ToString() + ")";
}

void InterpolateMissingSpan(double* row, const uint8_t* present, size_t n) {
  size_t i = 0;
  while (i < n) {
    if (present[i]) {
      ++i;
      continue;
    }
    // Gap [i, j).
    size_t j = i;
    while (j < n && !present[j]) ++j;
    const bool has_left = i > 0;
    const bool has_right = j < n;
    if (!has_left && !has_right) return;  // nothing present at all
    for (size_t k = i; k < j; ++k) {
      if (has_left && has_right) {
        const double left = row[i - 1];
        const double right = row[j];
        const double frac = static_cast<double>(k - i + 1) /
                            static_cast<double>(j - i + 1);
        row[k] = left + (right - left) * frac;
      } else if (has_left) {
        row[k] = row[i - 1];
      } else {
        row[k] = row[j];
      }
    }
    i = j;
  }
}

AlignmentLayout ComputeAlignmentLayout(
    const std::vector<const Visualization*>& visuals) {
  AlignmentLayout layout;
  // Union of all x values, sorted.
  for (const Visualization* v : visuals) {
    for (const Value& x : v->xs) layout.x_index.emplace(x, 0);
  }
  size_t pos = 0;
  for (auto& [x, idx] : layout.x_index) idx = pos++;
  layout.width = layout.x_index.size();
  // Max series count; visualizations with fewer series zero-fill.
  for (const Visualization* v : visuals) {
    layout.max_series = std::max(layout.max_series, v->series.size());
  }
  return layout;
}

void FillAlignedRow(const Visualization& v, const AlignmentLayout& layout,
                    double* row, uint8_t* present) {
  for (size_t si = 0; si < v.series.size(); ++si) {
    const auto& ys = v.series[si].ys;
    for (size_t i = 0; i < v.xs.size() && i < ys.size(); ++i) {
      const size_t at = si * layout.width + layout.x_index.at(v.xs[i]);
      row[at] = ys[i];
      if (present != nullptr) present[at] = 1;
    }
  }
}

std::vector<std::vector<double>> AlignToMatrixInterpolated(
    const std::vector<const Visualization*>& visuals) {
  const AlignmentLayout layout = ComputeAlignmentLayout(visuals);
  std::vector<std::vector<double>> matrix;
  matrix.reserve(visuals.size());
  for (const Visualization* v : visuals) {
    std::vector<double> row(layout.row_size(), 0.0);
    std::vector<uint8_t> present(layout.row_size(), 0);
    FillAlignedRow(*v, layout, row.data(), present.data());
    // Interpolate each series segment independently.
    for (size_t si = 0; si < layout.max_series; ++si) {
      InterpolateMissingSpan(row.data() + si * layout.width,
                             present.data() + si * layout.width,
                             layout.width);
    }
    matrix.push_back(std::move(row));
  }
  return matrix;
}

std::vector<std::vector<double>> AlignToMatrix(
    const std::vector<const Visualization*>& visuals) {
  const AlignmentLayout layout = ComputeAlignmentLayout(visuals);
  std::vector<std::vector<double>> matrix;
  matrix.reserve(visuals.size());
  for (const Visualization* v : visuals) {
    std::vector<double> row(layout.row_size(), 0.0);
    FillAlignedRow(*v, layout, row.data(), nullptr);
    matrix.push_back(std::move(row));
  }
  return matrix;
}

}  // namespace zv
