#include "viz/visualization.h"

#include <algorithm>
#include <map>

namespace zv {

const std::vector<double>& Visualization::ys() const {
  static const std::vector<double> kEmpty;
  return series.empty() ? kEmpty : series[0].ys;
}

std::vector<double> Visualization::FlatValues() const {
  std::vector<double> out;
  for (const Series& s : series) {
    out.insert(out.end(), s.ys.begin(), s.ys.end());
  }
  return out;
}

std::vector<double> Visualization::NumericXs() const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    out.push_back(xs[i].is_numeric() ? xs[i].AsDouble()
                                     : static_cast<double>(i));
  }
  return out;
}

bool Visualization::SameSourceAs(const Visualization& other) const {
  return x_attr == other.x_attr && y_attr == other.y_attr &&
         slices == other.slices && constraints == other.constraints &&
         spec == other.spec;
}

std::string Visualization::Label() const {
  std::string out = y_attr + " vs " + x_attr;
  if (!slices.empty()) {
    out += " |";
    for (const Slice& s : slices) {
      out += " " + s.attribute + "=" + s.value.ToString();
    }
  }
  if (!constraints.empty()) out += " [" + constraints + "]";
  return out;
}

std::string Visualization::DebugString() const {
  return Label() + " (" + std::to_string(num_points()) + " points, " +
         spec.ToString() + ")";
}

namespace {

/// Linearly interpolates the entries of `row` marked missing, using the
/// nearest present neighbours; edge gaps copy the nearest present value.
void InterpolateMissing(std::vector<double>* row,
                        const std::vector<uint8_t>& present) {
  const size_t n = row->size();
  size_t i = 0;
  while (i < n) {
    if (present[i]) {
      ++i;
      continue;
    }
    // Gap [i, j).
    size_t j = i;
    while (j < n && !present[j]) ++j;
    const bool has_left = i > 0;
    const bool has_right = j < n;
    if (!has_left && !has_right) return;  // nothing present at all
    for (size_t k = i; k < j; ++k) {
      if (has_left && has_right) {
        const double left = (*row)[i - 1];
        const double right = (*row)[j];
        const double frac = static_cast<double>(k - i + 1) /
                            static_cast<double>(j - i + 1);
        (*row)[k] = left + (right - left) * frac;
      } else if (has_left) {
        (*row)[k] = (*row)[i - 1];
      } else {
        (*row)[k] = (*row)[j];
      }
    }
    i = j;
  }
}

}  // namespace

std::vector<std::vector<double>> AlignToMatrixInterpolated(
    const std::vector<const Visualization*>& visuals) {
  std::map<Value, size_t> x_index;
  for (const Visualization* v : visuals) {
    for (const Value& x : v->xs) x_index.emplace(x, 0);
  }
  size_t pos = 0;
  for (auto& [x, idx] : x_index) idx = pos++;
  const size_t width = x_index.size();
  size_t max_series = 1;
  for (const Visualization* v : visuals) {
    max_series = std::max(max_series, v->series.size());
  }
  std::vector<std::vector<double>> matrix;
  matrix.reserve(visuals.size());
  for (const Visualization* v : visuals) {
    std::vector<double> row(width * max_series, 0.0);
    std::vector<uint8_t> present(width * max_series, 0);
    for (size_t si = 0; si < v->series.size(); ++si) {
      const auto& ys = v->series[si].ys;
      for (size_t i = 0; i < v->xs.size() && i < ys.size(); ++i) {
        const size_t at = si * width + x_index.at(v->xs[i]);
        row[at] = ys[i];
        present[at] = 1;
      }
    }
    // Interpolate each series segment independently.
    for (size_t si = 0; si < max_series; ++si) {
      std::vector<double> segment(row.begin() + static_cast<ptrdiff_t>(si * width),
                                  row.begin() + static_cast<ptrdiff_t>((si + 1) * width));
      std::vector<uint8_t> seg_present(
          present.begin() + static_cast<ptrdiff_t>(si * width),
          present.begin() + static_cast<ptrdiff_t>((si + 1) * width));
      InterpolateMissing(&segment, seg_present);
      std::copy(segment.begin(), segment.end(),
                row.begin() + static_cast<ptrdiff_t>(si * width));
    }
    matrix.push_back(std::move(row));
  }
  return matrix;
}

std::vector<std::vector<double>> AlignToMatrix(
    const std::vector<const Visualization*>& visuals) {
  // Union of all x values, sorted.
  std::map<Value, size_t> x_index;
  for (const Visualization* v : visuals) {
    for (const Value& x : v->xs) x_index.emplace(x, 0);
  }
  size_t pos = 0;
  for (auto& [x, idx] : x_index) idx = pos++;
  const size_t width = x_index.size();
  // Max series count; visualizations with fewer series zero-fill.
  size_t max_series = 1;
  for (const Visualization* v : visuals) {
    max_series = std::max(max_series, v->series.size());
  }
  std::vector<std::vector<double>> matrix;
  matrix.reserve(visuals.size());
  for (const Visualization* v : visuals) {
    std::vector<double> row(width * max_series, 0.0);
    for (size_t si = 0; si < v->series.size(); ++si) {
      const auto& ys = v->series[si].ys;
      for (size_t i = 0; i < v->xs.size() && i < ys.size(); ++i) {
        row[si * width + x_index.at(v->xs[i])] = ys[i];
      }
    }
    matrix.push_back(std::move(row));
  }
  return matrix;
}

}  // namespace zv
