/// \file visualization.h
/// \brief The data behind one visualization: ordered x values plus one or
/// more y series, along with the identity (axes, slices, spec) that
/// produced it.
///
/// Per §3.1, "the result of a ZQL query is the data used to generate
/// visualizations" — this struct is that data. Rendering proper is a
/// front-end concern (see vega_emitter.h).

#ifndef ZV_VIZ_VISUALIZATION_H_
#define ZV_VIZ_VISUALIZATION_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"
#include "viz/viz_spec.h"

namespace zv {

/// \brief One named y series.
struct Series {
  std::string name;
  std::vector<double> ys;
  bool operator==(const Series&) const = default;
};

/// \brief One (attribute, value) slice from the Z column(s).
struct Slice {
  std::string attribute;
  Value value;
  bool operator==(const Slice&) const = default;
};

/// \brief A visualization's identity + data.
struct Visualization {
  // ----- identity -----
  std::string x_attr;          ///< possibly composite, e.g. "product*state"
  std::string y_attr;          ///< possibly composite, e.g. "profit+sales"
  std::vector<Slice> slices;   ///< Z column bindings, in column order
  std::string constraints;     ///< Constraints column text (may be empty)
  VizSpec spec;

  // ----- data -----
  std::vector<Value> xs;       ///< ordered x values
  std::vector<Series> series;  ///< one per y attribute ('+' composition)

  size_t num_points() const { return xs.empty() ? 0 : xs.size(); }

  /// First series' values (the common single-series case).
  const std::vector<double>& ys() const;

  /// All series concatenated — the vector embedding used by D and R.
  std::vector<double> FlatValues() const;

  /// x values as doubles where numeric; ordinal positions otherwise.
  std::vector<double> NumericXs() const;

  /// Identity equality (same visual source), ignoring fetched data.
  bool SameSourceAs(const Visualization& other) const;

  /// "sales vs year | product=chair, location=US" label for output.
  std::string Label() const;

  /// Identity + point count, for debugging.
  std::string DebugString() const;
};

/// \brief The shared alignment convention: the sorted union x-index, its
/// width, and the widest series count of a visualization set. Every aligner
/// (AlignToMatrix, AlignToMatrixInterpolated, ScoringContext) derives its
/// layout from here so the convention cannot silently diverge.
struct AlignmentLayout {
  std::map<Value, size_t> x_index;  ///< x value -> sorted position
  size_t width = 0;                 ///< x_index.size()
  size_t max_series = 1;            ///< widest series count (>= 1)

  size_t row_size() const { return width * max_series; }
};

AlignmentLayout ComputeAlignmentLayout(
    const std::vector<const Visualization*>& visuals);

/// Writes v's zero-filled aligned row into `row` (layout.row_size() slots,
/// already zeroed) and, when `present` is non-null, flags the cells v
/// actually populates. This is the one definition of the zero-fill and
/// presence rules.
void FillAlignedRow(const Visualization& v, const AlignmentLayout& layout,
                    double* row, uint8_t* present);

/// Aligns a set of visualizations over the union of their x values (in
/// sorted order), zero-filling missing points, and returns one row-vector
/// per visualization — the matrix form consumed by k-means and pairwise
/// distance computations.
std::vector<std::vector<double>> AlignToMatrix(
    const std::vector<const Visualization*>& visuals);

/// Like AlignToMatrix, but fills each visualization's missing x positions by
/// linear interpolation between its neighbouring present points (edge gaps
/// extend the nearest value). This implements the paper's §10.1 plan:
/// "zql queries involving distance based computations do not give good
/// results when there are many missing points ... we plan to use
/// interpolation techniques to populate the missing points".
std::vector<std::vector<double>> AlignToMatrixInterpolated(
    const std::vector<const Visualization*>& visuals);

/// Linearly interpolates the entries of row[0..n) whose `present` flag is 0,
/// using the nearest present neighbours; edge gaps copy the nearest present
/// value. The kernel behind AlignToMatrixInterpolated, shared with
/// ScoringContext's pairwise slow path.
void InterpolateMissingSpan(double* row, const uint8_t* present, size_t n);

}  // namespace zv

#endif  // ZV_VIZ_VISUALIZATION_H_
