#include "viz/binning.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace zv {

namespace {

struct BinAgg {
  double sum = 0;
  int64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    sum += v;
    ++count;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  double Finalize(sql::AggFunc f) const {
    switch (f) {
      case sql::AggFunc::kSum:
        return sum;
      case sql::AggFunc::kAvg:
        return count ? sum / static_cast<double>(count) : 0;
      case sql::AggFunc::kCount:
        return static_cast<double>(count);
      case sql::AggFunc::kMin:
        return count ? min : 0;
      case sql::AggFunc::kMax:
        return count ? max : 0;
      case sql::AggFunc::kNone:
        return sum;
    }
    return sum;
  }
};

}  // namespace

namespace {

/// Linear-interpolated quantile of a sorted sample.
double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

Visualization BoxPlotSummarize(const Visualization& raw) {
  // Group the raw y points by x value (ascending x).
  std::map<Value, std::vector<double>> groups;
  const auto& ys = raw.ys();
  for (size_t i = 0; i < raw.xs.size() && i < ys.size(); ++i) {
    groups[raw.xs[i]].push_back(ys[i]);
  }
  const double iqr_mult = raw.spec.param > 0 ? raw.spec.param : 1.5;

  Visualization out = raw;
  out.xs.clear();
  out.series = {{"whisker_lo", {}}, {"q1", {}},     {"median", {}},
                {"q3", {}},         {"whisker_hi", {}}};
  for (auto& [x, values] : groups) {
    std::sort(values.begin(), values.end());
    const double q1 = Quantile(values, 0.25);
    const double med = Quantile(values, 0.5);
    const double q3 = Quantile(values, 0.75);
    const double fence_lo = q1 - iqr_mult * (q3 - q1);
    const double fence_hi = q3 + iqr_mult * (q3 - q1);
    // Whiskers: most extreme data points within the fences.
    double lo = q1, hi = q3;
    for (double v : values) {
      if (v >= fence_lo) {
        lo = v;
        break;
      }
    }
    for (size_t i = values.size(); i-- > 0;) {
      if (values[i] <= fence_hi) {
        hi = values[i];
        break;
      }
    }
    out.xs.push_back(x);
    out.series[0].ys.push_back(lo);
    out.series[1].ys.push_back(q1);
    out.series[2].ys.push_back(med);
    out.series[3].ys.push_back(q3);
    out.series[4].ys.push_back(hi);
  }
  return out;
}

Visualization BinVisualization(const Visualization& raw) {
  if (raw.spec.x_bin <= 0) return raw;
  const double w = raw.spec.x_bin;
  const sql::AggFunc agg = raw.spec.y_agg == sql::AggFunc::kNone
                               ? sql::AggFunc::kSum
                               : raw.spec.y_agg;
  // bin lower edge -> per-series aggregate
  std::map<int64_t, std::vector<BinAgg>> bins;
  const size_t nseries = raw.series.size();
  for (size_t i = 0; i < raw.xs.size(); ++i) {
    if (!raw.xs[i].is_numeric()) continue;
    const int64_t bin =
        static_cast<int64_t>(std::floor(raw.xs[i].AsDouble() / w));
    auto [it, inserted] = bins.try_emplace(bin);
    if (inserted) it->second.resize(nseries);
    for (size_t si = 0; si < nseries; ++si) {
      if (i < raw.series[si].ys.size()) {
        it->second[si].Add(raw.series[si].ys[i]);
      }
    }
  }
  Visualization out = raw;
  out.xs.clear();
  for (auto& s : out.series) s.ys.clear();
  for (const auto& [bin, aggs] : bins) {
    out.xs.push_back(Value::Double(static_cast<double>(bin) * w));
    for (size_t si = 0; si < nseries; ++si) {
      out.series[si].ys.push_back(aggs[si].Finalize(agg));
    }
  }
  return out;
}

}  // namespace zv
