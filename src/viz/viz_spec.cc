#include "viz/viz_spec.h"

#include "common/json.h"
#include "common/strings.h"

namespace zv {

const char* ChartTypeToString(ChartType t) {
  switch (t) {
    case ChartType::kAuto:
      return "auto";
    case ChartType::kBar:
      return "bar";
    case ChartType::kLine:
      return "line";
    case ChartType::kScatter:
      return "scatter";
    case ChartType::kDotPlot:
      return "dotplot";
    case ChartType::kBox:
      return "box";
    case ChartType::kHeatmap:
      return "heatmap";
  }
  return "auto";
}

Result<ChartType> ChartTypeFromString(const std::string& s) {
  const std::string lower = ToLower(Trim(s));
  if (lower == "bar") return ChartType::kBar;
  if (lower == "line") return ChartType::kLine;
  if (lower == "scatter" || lower == "scatterplot") return ChartType::kScatter;
  if (lower == "dotplot" || lower == "dot") return ChartType::kDotPlot;
  if (lower == "box" || lower == "boxplot") return ChartType::kBox;
  if (lower == "heatmap") return ChartType::kHeatmap;
  if (lower == "auto" || lower.empty()) return ChartType::kAuto;
  return Status::ParseError("unknown chart type: " + s);
}

std::string VizSpec::ToString() const {
  std::string out = ChartTypeToString(chart);
  std::vector<std::string> parts;
  if (x_bin > 0) {
    parts.push_back("x=bin(" + CanonicalDouble(x_bin) + ")");
  }
  if (y_agg != sql::AggFunc::kNone) {
    parts.push_back(StrFormat("y=agg('%s')",
                              ToLower(sql::AggFuncToString(y_agg)).c_str()));
  }
  if (param != 0) parts.push_back("param=" + CanonicalDouble(param));
  if (!parts.empty()) out += ".(" + Join(parts, ", ") + ")";
  return out;
}

namespace {

Result<sql::AggFunc> AggFromString(const std::string& s) {
  const std::string lower = ToLower(Trim(s));
  if (lower == "sum") return sql::AggFunc::kSum;
  if (lower == "avg" || lower == "mean") return sql::AggFunc::kAvg;
  if (lower == "count") return sql::AggFunc::kCount;
  if (lower == "min") return sql::AggFunc::kMin;
  if (lower == "max") return sql::AggFunc::kMax;
  return Status::ParseError("unknown aggregate: " + s);
}

// Parses the "(x=bin(20), y=agg('sum'))" summarization body (no outer
// parens) into spec fields.
Status ParseSummarization(const std::string& body, VizSpec* spec) {
  for (const std::string& raw : SplitTopLevel(body, ',')) {
    const std::string part = Trim(raw);
    if (part.empty()) continue;
    const size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("bad summarization term: " + part);
    }
    const std::string lhs = ToLower(Trim(part.substr(0, eq)));
    const std::string rhs = Trim(part.substr(eq + 1));
    if (lhs == "x") {
      if (!StartsWith(rhs, "bin(") || !EndsWith(rhs, ")")) {
        return Status::ParseError("x summarization must be bin(w): " + rhs);
      }
      const std::string w = Trim(rhs.substr(4, rhs.size() - 5));
      char* end = nullptr;
      spec->x_bin = std::strtod(w.c_str(), &end);
      if (end == w.c_str() || spec->x_bin <= 0) {
        return Status::ParseError("bad bin width: " + w);
      }
    } else if (lhs == "y") {
      if (!StartsWith(rhs, "agg(") || !EndsWith(rhs, ")")) {
        return Status::ParseError("y summarization must be agg('f'): " + rhs);
      }
      std::string f = Trim(rhs.substr(4, rhs.size() - 5));
      if (f.size() >= 2 && f.front() == '\'' && f.back() == '\'') {
        f = f.substr(1, f.size() - 2);
      }
      ZV_ASSIGN_OR_RETURN(spec->y_agg, AggFromString(f));
    } else if (lhs == "param") {
      spec->param = std::strtod(rhs.c_str(), nullptr);
    } else {
      return Status::ParseError("unknown summarization axis: " + lhs);
    }
  }
  return Status::OK();
}

}  // namespace

Result<VizSpec> ParseVizSpec(const std::string& text) {
  VizSpec spec;
  std::string s = Trim(text);
  if (s.empty()) return spec;
  // Split "type.(summarization)" at the first '.' that is followed by '('.
  size_t dot = std::string::npos;
  int depth = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    else if (s[i] == ')') --depth;
    else if (s[i] == '.' && depth == 0 && i + 1 < s.size() && s[i + 1] == '(') {
      dot = i;
      break;
    }
  }
  std::string type_part = dot == std::string::npos ? s : s.substr(0, dot);
  std::string summ_part;
  if (dot != std::string::npos) {
    summ_part = Trim(s.substr(dot + 1));
    if (summ_part.size() < 2 || summ_part.front() != '(' ||
        summ_part.back() != ')') {
      return Status::ParseError("bad summarization: " + summ_part);
    }
    summ_part = summ_part.substr(1, summ_part.size() - 2);
  }
  type_part = Trim(type_part);
  if (!type_part.empty()) {
    if (StartsWith(type_part, "(")) {
      // Bare summarization with no chart type.
      summ_part = type_part.substr(1, type_part.size() - 2);
    } else {
      ZV_ASSIGN_OR_RETURN(spec.chart, ChartTypeFromString(type_part));
    }
  }
  if (!summ_part.empty()) {
    ZV_RETURN_NOT_OK(ParseSummarization(summ_part, &spec));
  }
  return spec;
}

VizSpec DefaultVizSpec(ColumnType x_type, ColumnType y_type) {
  VizSpec spec;
  if (x_type == ColumnType::kCategorical) {
    // Discrete x, quantitative y: aggregate bar chart (Mackinlay's ranking
    // puts position+length encodings first for this shape).
    spec.chart = ChartType::kBar;
    spec.y_agg = sql::AggFunc::kSum;
    return spec;
  }
  if (y_type == ColumnType::kCategorical) {
    spec.chart = ChartType::kBar;
    spec.y_agg = sql::AggFunc::kCount;
    return spec;
  }
  // Quantitative vs quantitative: scatter, no summarization.
  spec.chart = ChartType::kScatter;
  return spec;
}

}  // namespace zv
