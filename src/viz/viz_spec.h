/// \file viz_spec.h
/// \brief The ZQL Viz column (§3.5): visualization type + summarization.
///
/// A spec like `bar.(x=bin(20), y=agg('sum'))` selects the geometric layer
/// (bar chart) and the statistical transformation (bin x in widths of 20,
/// aggregate y with SUM grouped by x and z) — the two Grammar-of-Graphics
/// layers the paper cites.

#ifndef ZV_VIZ_VIZ_SPEC_H_
#define ZV_VIZ_VIZ_SPEC_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace zv {

/// Geometric layer / chart type.
enum class ChartType {
  kAuto,  ///< defer to rules of thumb (blank Viz column)
  kBar,
  kLine,
  kScatter,
  kDotPlot,
  kBox,
  kHeatmap,
};

const char* ChartTypeToString(ChartType t);
Result<ChartType> ChartTypeFromString(const std::string& s);

/// \brief Parsed Viz column entry.
struct VizSpec {
  ChartType chart = ChartType::kAuto;
  sql::AggFunc y_agg = sql::AggFunc::kNone;  ///< y=agg('sum') etc.
  double x_bin = 0;                          ///< x=bin(20); 0 = unbinned
  /// Extra chart parameter (e.g. box-plot whisker multiplier).
  double param = 0;

  bool operator==(const VizSpec&) const = default;

  /// Renders back to the ZQL textual form.
  std::string ToString() const;
};

/// Parses `bar.(x=bin(20), y=agg('sum'))`, a bare chart type (`scatterplot`
/// accepted as an alias of `scatter`), or a bare summarization.
Result<VizSpec> ParseVizSpec(const std::string& text);

/// \brief Rules-of-thumb default (Mackinlay-style, as Polaris/Voyager do):
/// picks chart + summarization from the axis column types when the Viz
/// column is blank.
VizSpec DefaultVizSpec(ColumnType x_type, ColumnType y_type);

}  // namespace zv

#endif  // ZV_VIZ_VIZ_SPEC_H_
