/// \file clock.h
/// \brief Monotonic time source abstraction so TTL logic (session eviction,
/// cache aging) is testable without sleeping: production code reads the
/// steady clock, tests inject a ManualClock and advance it by hand.
///
/// Also home of the steady-clock interval helpers (MsSince / MsBetween)
/// every stat and trace-span duration is measured with — one
/// implementation instead of a copy per layer.

#ifndef ZV_COMMON_CLOCK_H_
#define ZV_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace zv {

/// The steady-clock read every duration measurement starts from — the one
/// sanctioned spelling of steady_clock::now() outside this file. zv-lint
/// (rule raw-clock) flags raw reads elsewhere so time stays consolidated
/// here and injectable through Clock.
inline std::chrono::steady_clock::time_point SteadyNow() {
  return std::chrono::steady_clock::now();
}

/// Milliseconds between two steady-clock points (fractional).
inline double MsBetween(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Milliseconds elapsed since `start` on the steady clock.
inline double MsSince(std::chrono::steady_clock::time_point start) {
  return MsBetween(start, SteadyNow());
}

/// \brief Monotonic milliseconds source. Implementations are thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Milliseconds since an arbitrary (per-process) epoch. Never decreases.
  virtual int64_t NowMs() const = 0;

  /// The process-wide steady-clock instance.
  static Clock* System();
};

/// \brief Test clock: time moves only when Advance()d.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_ms = 0) : now_ms_(start_ms) {}

  int64_t NowMs() const override {
    return now_ms_.load(std::memory_order_relaxed);
  }
  void Advance(int64_t delta_ms) {
    now_ms_.fetch_add(delta_ms, std::memory_order_relaxed);
  }
  void Set(int64_t ms) { now_ms_.store(ms, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_ms_;
};

}  // namespace zv

#endif  // ZV_COMMON_CLOCK_H_
