#include "common/metrics.h"

#include <algorithm>

#include "common/strings.h"

namespace zv {

size_t Histogram::BucketOf(double ms) {
  if (!(ms > kMinBucketMs)) return 0;  // also catches NaN and negatives
  // Invert the ladder, then nudge across any floating-point boundary so
  // the invariant ms <= BucketUpperMs(bucket) < ms * 2^(1/octave) holds.
  double idx = std::log2(ms / kMinBucketMs) * kBucketsPerOctave;
  size_t bucket = static_cast<size_t>(std::max(0.0, std::ceil(idx)));
  if (bucket >= kNumBuckets) return kNumBuckets - 1;
  while (bucket > 0 && ms <= BucketUpperMs(bucket - 1)) --bucket;
  while (bucket + 1 < kNumBuckets && ms > BucketUpperMs(bucket)) ++bucket;
  return bucket;
}

void Histogram::Record(double ms) {
  buckets_[BucketOf(ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Integer-nanosecond accumulation: addition commutes exactly, so the
  // sum (and every derived mean) is independent of recording order.
  const double ns = ms * 1e6;
  const int64_t add =
      ns >= 9.2e18 ? INT64_MAX / 2 : static_cast<int64_t>(std::llround(ns));
  sum_ns_.fetch_add(add, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_ms = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e6;
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return BucketUpperMs(i);
  }
  return BucketUpperMs(kNumBuckets - 1);
}

Json MetricsSnapshot::ToJson() const {
  Json j = Json::MakeObject();
  Json cs = Json::MakeObject();
  for (const auto& [name, value] : counters) {
    cs.Set(name, Json::Int(static_cast<int64_t>(value)));
  }
  j.Set("counters", std::move(cs));
  Json gs = Json::MakeObject();
  for (const auto& [name, value] : gauges) {
    gs.Set(name, Json::Int(value));
  }
  j.Set("gauges", std::move(gs));
  Json hs = Json::MakeObject();
  for (const HistogramStats& h : histograms) {
    Json hj = Json::MakeObject();
    hj.Set("count", Json::Int(static_cast<int64_t>(h.count)));
    hj.Set("sum_ms", Json::Double(h.sum_ms));
    hj.Set("mean_ms", Json::Double(h.mean_ms));
    hj.Set("p50", Json::Double(h.p50));
    hj.Set("p90", Json::Double(h.p90));
    hj.Set("p99", Json::Double(h.p99));
    hj.Set("p999", Json::Double(h.p999));
    hs.Set(h.name, std::move(hj));
  }
  j.Set("histograms", std::move(hs));
  return j;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += "# TYPE " + name + " counter\n";
    out += StrFormat("%s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += StrFormat("%s %lld\n", name.c_str(), static_cast<long long>(value));
  }
  for (const HistogramStats& h : histograms) {
    out += "# TYPE " + h.name + " summary\n";
    out += StrFormat("%s_count %llu\n", h.name.c_str(),
                     static_cast<unsigned long long>(h.count));
    out += StrFormat("%s_sum %.6f\n", h.name.c_str(), h.sum_ms);
    out += StrFormat("%s{quantile=\"0.5\"} %.6f\n", h.name.c_str(), h.p50);
    out += StrFormat("%s{quantile=\"0.9\"} %.6f\n", h.name.c_str(), h.p90);
    out += StrFormat("%s{quantile=\"0.99\"} %.6f\n", h.name.c_str(), h.p99);
    out += StrFormat("%s{quantile=\"0.999\"} %.6f\n", h.name.c_str(), h.p999);
  }
  return out;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot hs = h->snapshot();
    MetricsSnapshot::HistogramStats stats;
    stats.name = name;
    stats.count = hs.count;
    stats.sum_ms = hs.sum_ms;
    stats.mean_ms = hs.mean_ms();
    stats.p50 = hs.Percentile(0.50);
    stats.p90 = hs.Percentile(0.90);
    stats.p99 = hs.Percentile(0.99);
    stats.p999 = hs.Percentile(0.999);
    s.histograms.push_back(std::move(stats));
  }
  return s;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace zv
