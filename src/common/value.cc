#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace zv {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

namespace {

int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_numeric()) return 1;
  return 2;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const int lr = TypeRank(*this), rr = TypeRank(other);
  if (lr != rr) return lr < rr ? -1 : 1;
  switch (lr) {
    case 0:
      return 0;  // null == null
    case 1: {
      // Compare exactly when both are ints, numerically otherwise.
      if (is_int() && other.is_int()) {
        const int64_t a = AsInt(), b = other.AsInt();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      const double a = AsDouble(), b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      const int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    char buf[64];
    const double d = AsDouble();
    if (d == static_cast<int64_t>(d) && std::fabs(d) < 1e15) {
      snprintf(buf, sizeof(buf), "%.1f", d);
    } else {
      snprintf(buf, sizeof(buf), "%.6g", d);
    }
    return buf;
  }
  return AsString();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_numeric()) {
    // Hash int-valued doubles identically to the corresponding int64 so the
    // hash is compatible with numeric equality.
    const double d = AsDouble();
    if (d == static_cast<int64_t>(d)) {
      return std::hash<int64_t>()(static_cast<int64_t>(d));
    }
    return std::hash<double>()(d);
  }
  return std::hash<std::string>()(AsString());
}

}  // namespace zv
