/// \file trace.h
/// \brief Per-query execution tracing: a TraceSpan tree recording where
/// each millisecond of one query went — one span per plan operator
/// (FetchOp / MaterializeOp / ScoreOp / ReduceOp / OutputOp), per
/// chunk-scan pass, per shared-scan (group-commit) pass, plus the serving
/// layer's admission queue-wait and cache-lookup spans.
///
/// Tracing is a *pure observer*: spans record steady-clock timestamps and
/// typed attributes, never influence scheduling or results, and never
/// enter QueryFingerprint or any cache (tests/trace_test.cc locks
/// byte-identity with tracing on vs off across the full schedule matrix).
///
/// Threading model: the Trace owns every span (stable heap nodes) and
/// guards tree mutation with an internal mutex, because spans are opened
/// concurrently from the coordinator, the pipelined fetch thread, and
/// shard workers. Each span's fields (duration, attributes) are written
/// only by the thread that opened it; readers consume the finished tree
/// after the query resolves, ordered by the task-resolution handshake.
///
/// Exports: a deterministic JSON encoding (the QueryResponse::trace wire
/// payload), an indented text rendering (zql_shell `:trace`), and Chrome
/// `trace_event` JSON for chrome://tracing flame views (spans land on one
/// timeline row per track: coordinator / fetch thread / scan pool).

#ifndef ZV_COMMON_TRACE_H_
#define ZV_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/json.h"

namespace zv {

/// Typed span attribute value (int64 / double / string / bool).
using TraceValue = std::variant<int64_t, double, std::string, bool>;

/// \brief One timed node of the trace tree. Times are milliseconds
/// relative to the owning Trace's epoch (its construction instant), so a
/// span tree is self-contained and serializable.
struct TraceSpan {
  std::string name;
  double start_ms = 0;
  double duration_ms = 0;
  /// Logical timeline lane for the Chrome export: 0 = coordinator (the
  /// serving worker / plan walker), 1 = the pipelined fetch thread,
  /// 2 = the chunk/shared scan pool.
  int track = 0;
  std::vector<std::pair<std::string, TraceValue>> attrs;
  std::vector<std::unique_ptr<TraceSpan>> children;

  /// Attribute setters — call only from the thread that owns the span
  /// (the one that opened it), before the trace is published.
  void SetInt(std::string key, int64_t v) { attrs.emplace_back(std::move(key), TraceValue(v)); }
  void SetDouble(std::string key, double v) { attrs.emplace_back(std::move(key), TraceValue(v)); }
  void SetStr(std::string key, std::string v) { attrs.emplace_back(std::move(key), TraceValue(std::move(v))); }
  void SetBool(std::string key, bool v) { attrs.emplace_back(std::move(key), TraceValue(v)); }

  /// The first direct child named `name` (nullptr if none) — test helper.
  const TraceSpan* FindChild(const std::string& child_name) const;
};

/// \brief One query's span tree. Begin/End/Add are thread-safe; the tree
/// is read after the query resolves.
class Trace {
 public:
  /// `root_name` labels the root span (its duration is set by EndRoot or
  /// left to the owner via End on root()).
  explicit Trace(std::string root_name = "query");

  TraceSpan* root() { return &root_; }
  const TraceSpan& root() const { return root_; }

  /// Milliseconds since this trace's epoch.
  double NowMs() const { return MsSince(epoch_); }

  /// Opens a child span under `parent` (nullptr = the root) starting now.
  /// Thread-safe: concurrent opens under one parent serialize on the
  /// trace mutex; the returned pointer stays stable for the trace's life.
  TraceSpan* Begin(TraceSpan* parent, std::string name, int track = 0);

  /// Closes `span`: duration = now - start. Call from the opening thread.
  void End(TraceSpan* span);

  /// Records an already-measured interval as a child span — for work
  /// timed elsewhere (e.g. a shared-scan pass whose wall time comes back
  /// from the coordinator) where Begin/End can't bracket the interval.
  TraceSpan* Add(TraceSpan* parent, std::string name, double start_ms,
                 double duration_ms, int track = 0);

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mu_;  ///< guards children vectors (tree shape), nothing else
  TraceSpan root_;
};

/// \brief RAII Begin/End. A null trace makes every operation a no-op, so
/// instrumentation sites need no `if (traced)` guards.
class TraceScope {
 public:
  TraceScope(Trace* trace, TraceSpan* parent, std::string name, int track = 0)
      : trace_(trace),
        span_(trace == nullptr ? nullptr
                               : trace->Begin(parent, std::move(name), track)) {}
  ~TraceScope() {
    if (trace_ != nullptr) trace_->End(span_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// The open span (nullptr when tracing is off).
  TraceSpan* span() const { return span_; }

  void SetInt(std::string key, int64_t v) {
    if (span_ != nullptr) span_->SetInt(std::move(key), v);
  }
  void SetDouble(std::string key, double v) {
    if (span_ != nullptr) span_->SetDouble(std::move(key), v);
  }
  void SetStr(std::string key, std::string v) {
    if (span_ != nullptr) span_->SetStr(std::move(key), std::move(v));
  }
  void SetBool(std::string key, bool v) {
    if (span_ != nullptr) span_->SetBool(std::move(key), v);
  }

 private:
  Trace* trace_;
  TraceSpan* span_;
};

/// Deterministic JSON form of a span (sub)tree:
///   {"name", "start_ms", "dur_ms", "track"?, "attrs"?, "children"?}
/// track is omitted when 0, attrs/children when empty — the wire payload
/// of QueryResponse::trace.
Json EncodeTraceSpan(const TraceSpan& span);

/// Indented text rendering of a span (sub)tree (zql_shell `:trace`).
std::string RenderTraceTree(const TraceSpan& span);

/// Chrome trace_event JSON for chrome://tracing: one complete ("ph":"X")
/// event per span, timestamps in microseconds, one tid per track.
std::string ToChromeTrace(const TraceSpan& root);

}  // namespace zv

#endif  // ZV_COMMON_TRACE_H_
