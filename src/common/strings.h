/// \file strings.h
/// \brief Small string helpers shared by the parsers and emitters.

#ifndef ZV_COMMON_STRINGS_H_
#define ZV_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace zv {

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on a single character at depth 0 only — separators nested inside
/// (), [], {}, or single quotes are not split points. Used by the ZQL parser
/// for '|'-separated rows and comma-separated argument lists.
std::vector<std::string> SplitTopLevel(std::string_view s, char sep);

/// SplitTopLevel that also reports each piece's 0-based start offset in
/// `s` — the raw material for parser error columns. SplitTopLevel is a
/// thin wrapper over this, so the depth/quote tokenization rules cannot
/// diverge between the two.
std::vector<std::pair<std::string, size_t>> SplitTopLevelWithOffsets(
    std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `s` matches a SQL LIKE `pattern` with % (any run) and _ (any one
/// char) wildcards.
bool LikeMatch(std::string_view s, std::string_view pattern);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace zv

#endif  // ZV_COMMON_STRINGS_H_
