/// \file csv.h
/// \brief Minimal CSV reading/writing for example data exchange.

#ifndef ZV_COMMON_CSV_H_
#define ZV_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace zv {

/// \brief Parsed CSV content: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text with quoted-field support ("" escapes a quote).
Result<CsvTable> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Serializes to CSV, quoting fields that contain separators/quotes.
std::string WriteCsv(const CsvTable& table);

}  // namespace zv

#endif  // ZV_COMMON_CSV_H_
