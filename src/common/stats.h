/// \file stats.h
/// \brief Descriptive statistics, least-squares fitting, one-way ANOVA and
/// Tukey's HSD — the statistical machinery used by the trend primitive T and
/// by the Chapter-8 user-study reproduction (Table 8.2).

#ifndef ZV_COMMON_STATS_H_
#define ZV_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace zv {

double Mean(const std::vector<double>& xs);
double Variance(const std::vector<double>& xs);  // sample variance (n-1)
double StdDev(const std::vector<double>& xs);

/// \brief Slope/intercept of the least-squares line y = slope*x + intercept.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  /// Coefficient of determination; 0 when the fit is degenerate.
  double r2 = 0;
};

/// Fits y against x; if xs is empty, uses x = 0..n-1.
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

/// \brief One-way between-subjects ANOVA over k groups.
struct AnovaResult {
  double f_statistic = 0;
  double df_between = 0;
  double df_within = 0;
  double ms_within = 0;  ///< mean square error, needed by Tukey HSD
  double p_value = 1;    ///< via the F-distribution survival function
};

AnovaResult OneWayAnova(const std::vector<std::vector<double>>& groups);

/// \brief One pairwise comparison from Tukey's HSD test.
struct TukeyComparison {
  size_t group_a = 0;
  size_t group_b = 0;
  double q_statistic = 0;
  double p_value = 1;  ///< studentized-range survival function, numeric
  bool significant_01 = false;  ///< p < 0.01
  bool significant_05 = false;  ///< p < 0.05
};

/// Tukey's HSD post-hoc test over the same groups as OneWayAnova
/// (paper Table 8.2). Requires >= 2 groups with >= 2 observations each.
std::vector<TukeyComparison> TukeyHsd(
    const std::vector<std::vector<double>>& groups);

/// Regularized incomplete beta function I_x(a, b) (continued fraction);
/// exposed for tests. Backbone of the F-distribution CDF.
double IncompleteBeta(double a, double b, double x);

/// Survival function (1 - CDF) of the F distribution.
double FDistSf(double f, double df1, double df2);

/// Survival function of the studentized range distribution with k groups
/// and df degrees of freedom, evaluated by numeric integration.
double StudentizedRangeSf(double q, double k, double df);

}  // namespace zv

#endif  // ZV_COMMON_STATS_H_
