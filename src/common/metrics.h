/// \file metrics.h
/// \brief Process-wide metrics: a registry of named counters, gauges, and
/// fixed-log-bucket latency histograms, feeding percentile snapshots
/// (p50/p90/p99/p999) and a text exposition for scraping.
///
/// Design constraints, in order:
///  - *Pure observer*: recording is lock-free (atomic adds) and never
///    touches query results, fingerprints, or caches.
///  - *Deterministic snapshots*: histogram bucket bounds are a fixed
///    geometric ladder (kBucketsPerOctave buckets per power of two above
///    kMinBucketMs), the sum accumulates in integer nanoseconds, and
///    percentiles are bucket upper bounds — so the same multiset of
///    samples yields byte-identical snapshots regardless of recording
///    order or thread interleaving (tests/metrics_test.cc locks this).
///  - *One registry per scope*: MetricsRegistry::Global() serves the
///    process; tests and benches construct private registries so runs
///    never bleed into each other. Metric objects are pointer-stable for
///    the registry's lifetime — resolve once, record forever.
///
/// The serving layer (server/query_service.h) records submit→complete
/// latency, admission queue wait, per-stage fetch/score/shard time, cache
/// hits/misses, and shared-scan batch hold time here; the wire exposes a
/// snapshot through the `metrics` request kind (api/protocol.h) and
/// zql_shell's `:metrics`.

#ifndef ZV_COMMON_METRICS_H_
#define ZV_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace zv {

/// \brief Monotonic event count. Thread-safe, lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value. Thread-safe, lock-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-log-bucket latency histogram (milliseconds).
///
/// Bucket i covers (BucketUpperMs(i-1), BucketUpperMs(i)] with
/// BucketUpperMs(i) = kMinBucketMs * 2^(i / kBucketsPerOctave) — a fixed
/// geometric ladder from 0.1 µs to ~50 minutes at ~9% resolution.
/// Values at or below the floor land in bucket 0; values beyond the
/// ceiling clamp into the last bucket. Percentiles are the upper bound of
/// the bucket holding the requested rank, so they are exact ladder values
/// and independent of recording order.
class Histogram {
 public:
  static constexpr double kMinBucketMs = 1e-4;
  static constexpr int kBucketsPerOctave = 8;
  static constexpr size_t kNumBuckets = 280;

  /// The fixed upper bound of bucket `i` in milliseconds.
  static double BucketUpperMs(size_t i) {
    return kMinBucketMs * std::exp2(static_cast<double>(i) / kBucketsPerOctave);
  }
  /// The bucket a sample of `ms` lands in.
  static size_t BucketOf(double ms);

  void Record(double ms);

  struct Snapshot {
    uint64_t count = 0;
    double sum_ms = 0;  ///< accumulated in integer ns — order-independent
    std::array<uint64_t, kNumBuckets> buckets{};

    /// The ladder value at quantile `q` in [0, 1]; 0 when empty.
    double Percentile(double q) const;
    double mean_ms() const { return count == 0 ? 0 : sum_ms / count; }
  };
  Snapshot snapshot() const;
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_ns_{0};
};

/// \brief Point-in-time view of a whole registry, ordered by metric name
/// (std::map iteration) — the payload behind the wire `metrics` request
/// and `:metrics`.
struct MetricsSnapshot {
  struct HistogramStats {
    std::string name;
    uint64_t count = 0;
    double sum_ms = 0;
    double mean_ms = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    double p999 = 0;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramStats> histograms;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum_ms,
  /// mean_ms,p50,p90,p99,p999}}} — deterministic key order.
  Json ToJson() const;
  /// Prometheus-style text exposition (counters, gauges, histogram
  /// count/sum/quantile lines) for a future /metrics endpoint.
  std::string ToText() const;
};

/// \brief Named metric registry. Get* creates on first use and returns a
/// pointer stable for the registry's lifetime; lookups take a mutex, so
/// resolve once at wiring time, not per record.
class MetricsRegistry {
 public:
  /// The process-wide registry (what ZV-prefixed knobs and the default
  /// QueryService record into).
  static MetricsRegistry* Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered metric (benches isolate passes with this).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace zv

#endif  // ZV_COMMON_METRICS_H_
