/// \file lru_cache.h
/// \brief A byte-budgeted, sharded LRU cache of shared_ptr values — the
/// substrate of the serving layer's ResultCache (query results) and the
/// tasks layer's ContextCache (shared ScoringContext alignment matrices).
///
/// Design:
///  - String keys, shared_ptr<const V> values: hits hand out refcounted
///    pointers, so eviction never invalidates a result a reader still holds.
///  - Sharding by key hash: each shard has its own mutex + LRU list, so
///    concurrent sessions rarely contend on the same lock.
///  - Byte budget, not entry count: every Put carries the entry's
///    approximate resident size; each shard evicts from its own LRU tail
///    until it fits its slice (total / shards) of the budget.
///  - Hit/miss counters are relaxed atomics — monitoring, not control flow.

#ifndef ZV_COMMON_LRU_CACHE_H_
#define ZV_COMMON_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace zv {

template <typename V>
class ShardedLruCache {
 public:
  /// `max_bytes` is the total budget across all shards (0 disables caching:
  /// every Get misses and Put is a no-op). `shards` is clamped to >= 1.
  explicit ShardedLruCache(size_t max_bytes, size_t shards = 8)
      : max_bytes_(max_bytes),
        shards_(shards == 0 ? 1 : shards),
        shard_data_(shards_) {}

  /// `count_miss = false` makes a miss statistically silent — for
  /// opportunistic probes that will be followed by a counted Get on the
  /// slow path (otherwise one logical lookup would record two misses).
  std::shared_ptr<const V> Get(const std::string& key,
                               bool count_miss = true) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it == s.index.end()) {
      if (count_miss) misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to front
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Inserts (or refreshes) `key`. Entries larger than a whole shard's
  /// budget are not cached at all.
  void Put(const std::string& key, std::shared_ptr<const V> value,
           size_t bytes) {
    const size_t shard_budget = max_bytes_ / shards_;
    if (bytes > shard_budget) return;
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.bytes -= it->second->bytes;
      s.lru.erase(it->second);
      s.index.erase(it);
    }
    s.lru.push_front(Entry{key, std::move(value), bytes});
    s.index[key] = s.lru.begin();
    s.bytes += bytes;
    while (s.bytes > shard_budget && !s.lru.empty()) {
      const Entry& tail = s.lru.back();
      s.bytes -= tail.bytes;
      s.index.erase(tail.key);
      s.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void Clear() {
    for (Shard& s : shard_data_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.lru.clear();
      s.index.clear();
      s.bytes = 0;
    }
  }

  size_t bytes() const {
    size_t total = 0;
    for (const Shard& s : shard_data_) {
      std::lock_guard<std::mutex> lock(s.mu);
      total += s.bytes;
    }
    return total;
  }
  size_t entries() const {
    size_t total = 0;
    for (const Shard& s : shard_data_) {
      std::lock_guard<std::mutex> lock(s.mu);
      total += s.lru.size();
    }
    return total;
  }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const V> value;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, typename std::list<Entry>::iterator>
        index;
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key) {
    return shard_data_[std::hash<std::string>{}(key) % shards_];
  }

  const size_t max_bytes_;
  const size_t shards_;
  std::vector<Shard> shard_data_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace zv

#endif  // ZV_COMMON_LRU_CACHE_H_
