/// \file cancel.h
/// \brief Cooperative cancellation for long-running query execution.
///
/// A CancelToken is a cheap shared handle to one cancellation flag. The
/// serving layer hands every in-flight query a token; Cancel() flips the
/// flag, and the execution layers poll it at natural safepoints — between
/// ZQL rows, per scored combination, and at ParallelFor chunk boundaries —
/// returning StatusCode::kCancelled. Cancellation is *cooperative*: no
/// thread is ever interrupted mid-kernel, so the engine's data structures
/// are always left healthy and the worker is immediately reusable.
///
/// Propagation is ambient rather than threaded through every signature:
/// CancelScope installs a token on the current thread, and ParallelFor
/// captures the calling thread's token when it fans out, re-installing it
/// on every pool worker for the duration of the job. Deep engine code only
/// ever calls CheckCancelled() / CancellationRequested(), which are a
/// thread-local load plus one relaxed atomic load — cheap enough for
/// per-iteration polling — and no-ops when no token is installed.

#ifndef ZV_COMMON_CANCEL_H_
#define ZV_COMMON_CANCEL_H_

#include <atomic>
#include <memory>

#include "common/status.h"

namespace zv {

/// \brief Shared handle to one cancellation flag. Copies observe the same
/// flag. All methods are thread-safe.
class CancelToken {
 public:
  /// A fresh, uncancelled token.
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent; never blocks.
  void Cancel() const { flag_->store(true, std::memory_order_relaxed); }

  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  /// The underlying flag, for code (the thread pool) that must observe the
  /// token from threads the scope was never installed on.
  const std::shared_ptr<std::atomic<bool>>& flag() const { return flag_; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief RAII installation of a cancellation flag on the current thread.
/// Nested scopes shadow outer ones; destruction restores the previous flag.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken& token)
      : CancelScope(token.flag().get()) {}
  /// Raw-flag form used by the thread pool to mirror the submitting
  /// thread's flag onto workers (the Job owns a shared_ptr keeping it
  /// alive for the duration).
  explicit CancelScope(const std::atomic<bool>* flag);
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const std::atomic<bool>* prev_;
};

/// The flag installed on this thread, or nullptr. Exposed so ParallelFor
/// can forward the caller's cancellation context to its workers.
const std::atomic<bool>* CurrentCancelFlag();

/// True when the current thread's installed token (if any) is cancelled.
bool CancellationRequested();

/// kCancelled when the current thread's token is cancelled, OK otherwise.
Status CheckCancelled();

}  // namespace zv

#endif  // ZV_COMMON_CANCEL_H_
