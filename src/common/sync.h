/// \file sync.h
/// \brief Scoped synchronization helpers beyond what <mutex> ships.
///
/// The project bans bare .lock()/.unlock() calls (zv-lint rule
/// manual-lock): a manual unlock/relock pair leaks the lock on every
/// early return and exception path between the two calls, and the relock
/// is exactly the line that gets lost in a refactor. The recurring
/// pattern that used to be written by hand — drop a held lock around a
/// blocking call, reacquire after — is ScopedUnlock.

#ifndef ZV_COMMON_SYNC_H_
#define ZV_COMMON_SYNC_H_

#include <mutex>

namespace zv {

/// \brief Inverse RAII over a held std::unique_lock: unlocks on entry,
/// relocks on every scope exit.
///
///   std::unique_lock<std::mutex> lock(mu_);
///   ...
///   {
///     ScopedUnlock unlocked(lock);
///     RunBlockingWork();  // lock released here
///   }                     // reacquired here, on return and on throw alike
///
/// The lock must be held on entry; it is held again after the scope ends.
class ScopedUnlock {
 public:
  explicit ScopedUnlock(std::unique_lock<std::mutex>& lock) : lock_(lock) {
    lock_.unlock();  // zv-lint: manual-lock — the guard's own implementation
  }
  ~ScopedUnlock() {
    lock_.lock();  // zv-lint: manual-lock — the guard's own implementation
  }

  ScopedUnlock(const ScopedUnlock&) = delete;
  ScopedUnlock& operator=(const ScopedUnlock&) = delete;

 private:
  std::unique_lock<std::mutex>& lock_;
};

}  // namespace zv

#endif  // ZV_COMMON_SYNC_H_
