#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.h"

namespace zv {

namespace {

/// True on pool worker threads — nested ParallelFor calls run inline.
thread_local bool t_in_worker = false;

std::atomic<size_t> g_thread_override{0};

size_t ResolveWorkerCount() {
  const size_t override = g_thread_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  if (const char* env = std::getenv("ZV_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// One ParallelFor invocation: workers claim contiguous chunks off an
/// atomic cursor. Results land in caller-owned slots, so claiming order
/// never shows in the output.
struct Job {
  size_t n = 0;
  size_t chunk = 1;
  size_t total_chunks = 0;
  size_t allowed_helpers = 0;  ///< pool workers admitted (caller always runs)
  const std::function<void(size_t)>* fn = nullptr;
  const std::function<Status(size_t)>* status_fn = nullptr;
  /// The submitting thread's cancellation flag (see cancel.h), checked at
  /// every chunk boundary and mirrored onto workers so fn can poll it too.
  /// The submitting thread blocks until the job drains, so the raw pointer
  /// stays valid for the job's lifetime.
  const std::atomic<bool>* cancel = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> done_chunks{0};
  std::atomic<size_t> helpers_entered{0};
  std::atomic<bool> abort{false};

  // First-error capture: the error (Status or exception) with the lowest
  // index wins, matching what a serial loop would surface first.
  std::mutex err_mu;
  size_t err_index = 0;
  bool has_error = false;
  Status error = Status::OK();
  std::exception_ptr exception;

  std::mutex done_mu;
  std::condition_variable done_cv;

  void RecordError(size_t index, Status s, std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!has_error || index < err_index) {
      has_error = true;
      err_index = index;
      error = std::move(s);
      exception = e;
    }
    abort.store(true, std::memory_order_relaxed);
  }

  /// Claims and runs chunks until the cursor is exhausted.
  void RunChunks() {
    // Mirror the submitting thread's cancellation flag so fn's own
    // CheckCancelled() polls observe it from pool workers too.
    CancelScope cancel_scope(cancel);
    for (;;) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= total_chunks) return;
      const size_t begin = c * chunk;
      // Cooperative cancellation at chunk granularity: a cancelled Status
      // job surfaces kCancelled (lowest-index error capture still prefers
      // any real error below it); a cancelled void job just stops claiming
      // work — its caller re-checks the token after the join.
      if (cancel != nullptr && !abort.load(std::memory_order_relaxed) &&
          cancel->load(std::memory_order_relaxed)) {
        if (status_fn != nullptr) {
          RecordError(begin, Status::Cancelled("query cancelled"), nullptr);
        } else {
          abort.store(true, std::memory_order_relaxed);
        }
      }
      // Chunks are claimed in increasing order, so when an error aborts the
      // job every unclaimed chunk lies entirely above the erroring index.
      // Already-claimed chunks run to completion, which makes the captured
      // min-index error exactly the one a serial loop would hit first.
      if (!abort.load(std::memory_order_relaxed)) {
        const size_t end = std::min(n, begin + chunk);
        for (size_t i = begin; i < end; ++i) {
          try {
            if (status_fn != nullptr) {
              Status s = (*status_fn)(i);
              if (!s.ok()) {
                RecordError(i, std::move(s), nullptr);
                break;
              }
            } else {
              (*fn)(i);
            }
          } catch (...) {
            RecordError(i, Status::OK(), std::current_exception());
            break;
          }
        }
      }
      if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          total_chunks) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    }
  }

  void WaitDone() {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [this] {
      return done_chunks.load(std::memory_order_acquire) == total_chunks;
    });
  }
};

/// Fixed pool, lazily created on first parallel call and intentionally
/// leaked (workers are blocked in a wait at process exit; joining them from
/// a static destructor would race user code that still schedules work).
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool();
    return *pool;
  }

  /// Broadcasts `job` to up to job->allowed_helpers workers, growing the
  /// pool if needed, then has the caller participate and waits for the job
  /// to drain.
  void Run(const std::shared_ptr<Job>& job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (threads_.size() < job->allowed_helpers) {
        threads_.emplace_back([this] { WorkerMain(); });
      }
      job_ = job;
      ++generation_;
      cv_.notify_all();
    }
    job->RunChunks();
    job->WaitDone();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job_ == job) job_.reset();
    }
  }

 private:
  ThreadPool() = default;

  void WorkerMain() {
    t_in_worker = true;
    uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return job_ != nullptr && generation_ != seen_generation;
        });
        seen_generation = generation_;
        job = job_;
      }
      if (job->helpers_entered.fetch_add(1, std::memory_order_relaxed) <
          job->allowed_helpers) {
        job->RunChunks();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> threads_;
  std::shared_ptr<Job> job_;
  uint64_t generation_ = 0;
};

size_t ChunkSize(size_t n, size_t workers) {
  // ~4 chunks per worker balances load without flooding the atomic cursor.
  return std::max<size_t>(1, n / (workers * 4));
}

}  // namespace

void SetParallelThreads(size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

size_t ParallelWorkerCount() { return ResolveWorkerCount(); }

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = std::min(n, ResolveWorkerCount());
  if (workers <= 1 || t_in_worker) {
    for (size_t i = 0; i < n; ++i) {
      if (CancellationRequested()) return;  // caller re-checks the token
      fn(i);
    }
    return;
  }
  auto job = std::make_shared<Job>();
  job->n = n;
  job->chunk = ChunkSize(n, workers);
  job->total_chunks = (n + job->chunk - 1) / job->chunk;
  job->allowed_helpers = workers - 1;  // the caller is the last worker
  job->fn = &fn;
  job->cancel = CurrentCancelFlag();
  ThreadPool::Instance().Run(job);
  if (job->exception != nullptr) std::rethrow_exception(job->exception);
}

Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  const size_t workers = std::min(n, ResolveWorkerCount());
  if (workers <= 1 || t_in_worker) {
    for (size_t i = 0; i < n; ++i) {
      ZV_RETURN_NOT_OK(CheckCancelled());
      ZV_RETURN_NOT_OK(fn(i));
    }
    return Status::OK();
  }
  auto job = std::make_shared<Job>();
  job->n = n;
  job->chunk = ChunkSize(n, workers);
  job->total_chunks = (n + job->chunk - 1) / job->chunk;
  job->allowed_helpers = workers - 1;
  job->status_fn = &fn;
  job->cancel = CurrentCancelFlag();
  ThreadPool::Instance().Run(job);
  if (job->exception != nullptr) std::rethrow_exception(job->exception);
  return job->has_error ? job->error : Status::OK();
}

}  // namespace zv
