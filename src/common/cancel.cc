#include "common/cancel.h"

namespace zv {

namespace {

thread_local const std::atomic<bool>* t_cancel_flag = nullptr;

}  // namespace

CancelScope::CancelScope(const std::atomic<bool>* flag)
    : prev_(t_cancel_flag) {
  t_cancel_flag = flag;
}

CancelScope::~CancelScope() { t_cancel_flag = prev_; }

const std::atomic<bool>* CurrentCancelFlag() { return t_cancel_flag; }

bool CancellationRequested() {
  return t_cancel_flag != nullptr &&
         t_cancel_flag->load(std::memory_order_relaxed);
}

Status CheckCancelled() {
  if (CancellationRequested()) {
    return Status::Cancelled("query cancelled");
  }
  return Status::OK();
}

}  // namespace zv
