#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace zv {

std::string_view TrimView(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::pair<std::string, size_t>> SplitTopLevelWithOffsets(
    std::string_view s, char sep) {
  std::vector<std::pair<std::string, size_t>> out;
  int depth = 0;
  bool in_quote = false;
  size_t start = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_quote) {
      if (c == '\'') in_quote = false;
      continue;
    }
    switch (c) {
      case '\'':
        in_quote = true;
        break;
      case '(':
      case '[':
      case '{':
        ++depth;
        break;
      case ')':
      case ']':
      case '}':
        --depth;
        break;
      default:
        if (c == sep && depth == 0) {
          out.emplace_back(std::string(s.substr(start, i - start)), start);
          start = i + 1;
        }
    }
  }
  out.emplace_back(std::string(s.substr(start)), start);
  return out;
}

std::vector<std::string> SplitTopLevel(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& [piece, offset] : SplitTopLevelWithOffsets(s, sep)) {
    out.push_back(std::move(piece));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool LikeMatch(std::string_view s, std::string_view pattern) {
  // Iterative two-pointer wildcard match (the classic '*' algorithm with
  // '%' in its place).
  size_t si = 0, pi = 0;
  size_t star_pi = std::string_view::npos, star_si = 0;
  while (si < s.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == s[si])) {
      ++si;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_pi = pi++;
      star_si = si;
    } else if (star_pi != std::string_view::npos) {
      pi = star_pi + 1;
      si = ++star_si;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace zv
