#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "common/strings.h"

namespace zv {

std::string CanonicalDouble(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  char buf[40];
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  // Shortest round-trip representation, natively (and ~10x faster than the
  // printf probe loop below — this sits on the wire hot path).
  const auto res = std::to_chars(buf, buf + sizeof(buf) - 3, d);
  *res.ptr = '\0';
#else
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
#endif
  // Ensure a re-parse stays a double: shortest forms drop ".0" for
  // integral values.
  if (std::strchr(buf, '.') == nullptr && std::strchr(buf, 'e') == nullptr &&
      std::strchr(buf, 'E') == nullptr && std::strchr(buf, 'n') == nullptr &&
      std::strchr(buf, 'i') == nullptr) {
    std::strcat(buf, ".0");
  }
  return buf;
}

Json& Json::Set(const std::string& key, Json v) {
  Object& obj = object();
  for (Member& m : obj) {
    if (m.first == key) {
      m.second = std::move(v);
      return m.second;
    }
  }
  obj.emplace_back(key, std::move(v));
  return obj.back().second;
}

const Json* Json::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : object()) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
  return out;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    *out += '\n';
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (type()) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += as_bool() ? "true" : "false";
      return;
    case Type::kInt:
      *out += std::to_string(std::get<int64_t>(data_));
      return;
    case Type::kDouble: {
      const double d = std::get<double>(data_);
      // Strict JSON has no non-finite literals; null is the least-wrong
      // representation (and decodes as "absent").
      *out += std::isfinite(d) ? CanonicalDouble(d) : "null";
      return;
    }
    case Type::kString:
      *out += JsonQuote(as_string());
      return;
    case Type::kArray: {
      const Array& arr = array();
      if (arr.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      for (size_t i = 0; i < arr.size(); ++i) {
        if (i) *out += ",";
        newline(depth + 1);
        arr[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      *out += ']';
      return;
    }
    case Type::kObject: {
      const Object& obj = object();
      if (obj.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      for (size_t i = 0; i < obj.size(); ++i) {
        if (i) *out += ",";
        newline(depth + 1);
        *out += JsonQuote(obj[i].first);
        *out += pretty ? ": " : ":";
        obj[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      *out += '}';
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipWhitespace();
    Json value;
    ZV_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& what) const {
    int line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::ParseError(
        StrFormat("JSON: line %d, column %d: %s", line, col, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': return ParseString(out);
      case 't':
      case 'f': return ParseBool(out);
      case 'n': return ParseNull(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) {
      return Error(StrFormat("expected '%s'", lit));
    }
    pos_ += n;
    return Status::OK();
  }

  Status ParseNull(Json* out) {
    ZV_RETURN_NOT_OK(ParseLiteral("null"));
    *out = Json::Null();
    return Status::OK();
  }

  Status ParseBool(Json* out) {
    if (text_[pos_] == 't') {
      ZV_RETURN_NOT_OK(ParseLiteral("true"));
      *out = Json::Bool(true);
    } else {
      ZV_RETURN_NOT_OK(ParseLiteral("false"));
      *out = Json::Bool(false);
    }
    return Status::OK();
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      return Error("invalid value");
    }
    // Integer part: a leading 0 must stand alone (no 0123).
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        return Error("leading zero in number");
      }
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      const size_t frac = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac) return Error("missing digits after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const size_t exp = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp) return Error("missing digits in exponent");
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end == token.c_str() + token.size()) {
        *out = Json::Int(v);
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    *out = Json::Double(std::strtod(token.c_str(), nullptr));
    return Status::OK();
  }

  /// Appends the UTF-8 encoding of `cp` to `out`.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return Error("bad hex digit in \\u escape");
    }
    pos_ += 4;
    return v;
  }

  Status ParseString(Json* out) {
    std::string s;
    ZV_RETURN_NOT_OK(ParseRawString(&s));
    *out = Json::Str(std::move(s));
    return Status::OK();
  }

  Status ParseRawString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        *out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          ZV_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            ZV_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired UTF-16 surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWhitespace();
      Json elem;
      ZV_RETURN_NOT_OK(ParseValue(&elem, depth + 1));
      out->Append(std::move(elem));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    // Fresh keys append directly (O(1) with the set membership check) —
    // routing every member through Set's linear scan would make decoding
    // an untrusted many-member object quadratic. Duplicate keys take the
    // rare linear path: last wins, matching common parsers.
    std::unordered_set<std::string> seen;
    while (true) {
      SkipWhitespace();
      std::string key;
      ZV_RETURN_NOT_OK(ParseRawString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      Json value;
      ZV_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      if (seen.insert(key).second) {
        out->object().emplace_back(std::move(key), std::move(value));
      } else {
        out->Set(key, std::move(value));
      }
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace zv
