/// \file rng.h
/// \brief Deterministic random number generation for workload synthesis.
///
/// All generators in the repo take explicit seeds so benchmark tables are
/// reproducible run to run.

#ifndef ZV_COMMON_RNG_H_
#define ZV_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace zv {

/// \brief splitmix64-seeded xoshiro256** generator.
///
/// Small, fast, and fully deterministic across platforms (unlike
/// std::default_random_engine / std::normal_distribution, whose outputs are
/// implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) {
    // splitmix64 to spread the seed across the state.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal via Box–Muller (deterministic, no cached state).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = UniformDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses an inverse-CDF table; intended for modest n (attribute domains).
  class Zipf;

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// \brief Precomputed Zipf sampler over [0, n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
  }

  size_t Sample(Rng& rng) const {
    const double u = rng.UniformDouble();
    // Binary search for the first cdf >= u.
    size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace zv

#endif  // ZV_COMMON_RNG_H_
