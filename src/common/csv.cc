#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace zv {

Result<CsvTable> ParseCsv(const std::string& text) {
  CsvTable table;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&]() {
    current.push_back(field);
    field.clear();
  };
  auto end_row = [&]() -> Status {
    end_field();
    if (table.header.empty()) {
      table.header = std::move(current);
    } else {
      if (current.size() != table.header.size()) {
        return Status::ParseError(StrFormat(
            "CSV row %zu has %zu fields, expected %zu", table.rows.size() + 1,
            current.size(), table.header.size()));
      }
      table.rows.push_back(std::move(current));
    }
    current.clear();
    row_has_content = false;
    return Status::OK();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n': {
        if (row_has_content || !field.empty() || !current.empty()) {
          Status s = end_row();
          if (!s.ok()) return s;
        }
        break;
      }
      default:
        field += c;
        row_has_content = true;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  if (row_has_content || !field.empty() || !current.empty()) {
    Status s = end_row();
    if (!s.ok()) return s;
  }
  if (table.header.empty()) return Status::ParseError("empty CSV input");
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseCsv(ss.str());
}

namespace {

std::string EscapeField(const std::string& f) {
  if (f.find_first_of(",\"\n\r") == std::string::npos) return f;
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += EscapeField(row[i]);
    }
    out += '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out;
}

}  // namespace zv
