/// \file parallel.h
/// \brief A lazily-initialized fixed thread pool with a chunked,
/// deterministic ParallelFor — the substrate of every parallel hot path
/// (ZQL scoring, k-means assignment, partitioned table scans).
///
/// Determinism contract: ParallelFor(n, fn) invokes fn(i) exactly once for
/// every i in [0, n). Callers write results into preallocated slot i, so the
/// output never depends on the worker count or on how chunks interleave.
/// Only the *wall-clock* changes with ZV_THREADS; results are byte-identical.
///
/// Worker count resolution, per call (cheap, so tests can flip it at will):
///  1. SetParallelThreads(n) override, when > 0;
///  2. the ZV_THREADS environment variable, when set and > 0;
///  3. std::thread::hardware_concurrency().
/// An effective count of 1 bypasses the pool entirely — fn runs inline on
/// the calling thread with zero synchronization, so ZV_THREADS=1 is the
/// exact serial baseline. Calls issued *from* a pool worker also run inline
/// (no nested fan-out, no deadlock).
///
/// Cancellation (see cancel.h): when the calling thread has a CancelToken
/// installed (CancelScope), both variants observe it — the flag is mirrored
/// onto every worker for the job's duration (so fn's own CheckCancelled()
/// polls see it) and checked at chunk boundaries. A cancelled
/// ParallelForStatus returns kCancelled (unless a real error at a lower
/// index was already captured); a cancelled ParallelFor stops claiming
/// chunks and returns early — the only case where fn may not run for every
/// i — so cancellable void callers must re-check the token afterwards.

#ifndef ZV_COMMON_PARALLEL_H_
#define ZV_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/status.h"

namespace zv {

/// Forces the effective worker count for subsequent ParallelFor calls
/// (0 = revert to ZV_THREADS / hardware_concurrency resolution).
void SetParallelThreads(size_t n);

/// The worker count the next ParallelFor call would use (always >= 1).
size_t ParallelWorkerCount();

/// Runs fn(i) for every i in [0, n), distributing contiguous chunks over
/// the pool. Exceptions thrown by fn are captured and the one from the
/// lowest index is rethrown on the calling thread after all workers drain.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

/// Status-returning variant: runs fn(i) for every i in [0, n) and returns
/// the error with the *lowest index* (deterministic first-error semantics,
/// matching what a serial loop would report). Once any error is observed,
/// remaining chunks are skipped — scores already written stay written, but
/// the caller must treat them as invalid.
Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn);

}  // namespace zv

#endif  // ZV_COMMON_PARALLEL_H_
