/// \file value.h
/// \brief Runtime value type flowing through the SQL engine and ZQL layers.

#ifndef ZV_COMMON_VALUE_H_
#define ZV_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace zv {

/// \brief Column / value type tags.
///
/// Categorical columns are dictionary-encoded: the storage layer keeps
/// int32 codes plus a per-column dictionary; the Value type surfaces them
/// as strings at API boundaries.
enum class DataType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeToString(DataType t);

/// \brief A small tagged union value (null / int64 / double / string).
///
/// Ordering and equality are defined across numeric types (int64 and double
/// compare numerically); strings compare lexicographically; null compares
/// less than everything else. This matches the semantics the ZQL executor
/// needs for ORDER BY and set membership.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  DataType type() const {
    if (is_null()) return DataType::kNull;
    if (is_int()) return DataType::kInt64;
    if (is_double()) return DataType::kDouble;
    return DataType::kString;
  }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(data_));
    return std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric-aware three-way comparison; null < numeric < string.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Unambiguous rendering used in test expectations and CSV output.
  std::string ToString() const;

  /// Hash compatible with operator== (int64 and equal-valued double hash
  /// alike).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace zv

#endif  // ZV_COMMON_VALUE_H_
