/// \file bounded_queue.h
/// \brief A small bounded blocking MPMC queue — the hand-off primitive of
/// the pipelined ZQL scheduler (fetch thread -> materializer).
///
/// Push blocks while the queue is full, Pop blocks while it is empty, and
/// Close wakes every waiter: pushes after Close are dropped (the consumer
/// is gone), pops drain the remaining items and then fail. The bound is
/// what turns the queue into back-pressure — a fetch thread can run at
/// most `capacity` results ahead of the scoring consumer, so memory stays
/// proportional to the pipeline depth, not to the query.

#ifndef ZV_COMMON_BOUNDED_QUEUE_H_
#define ZV_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace zv {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocks until there is room (or the queue is closed). Returns false if
  /// the queue was closed — the item is dropped in that case.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    // Deliberate unlock-before-notify: the woken consumer must not find
    // the mutex still held by its waker. No relock follows, so a scoped
    // guard has nothing to scope here.
    lock.unlock();  // zv-lint: manual-lock
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the queue is closed and empty).
  /// Returns false only when closed and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    // Same unlock-before-notify as Push, for the producer side.
    lock.unlock();  // zv-lint: manual-lock
    not_full_.notify_one();
    return true;
  }

  /// Wakes all waiters. Pending items remain poppable; new pushes fail.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace zv

#endif  // ZV_COMMON_BOUNDED_QUEUE_H_
