#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace zv {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double m = Mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  LinearFit fit;
  const size_t n = ys.size();
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double x = xs.empty() ? static_cast<double>(i) : xs[i];
    const double y = ys[i];
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  const double sst = syy - sy * sy / dn;
  if (sst > 1e-12) {
    const double ssr = fit.slope * (sxy - sx * sy / dn);
    fit.r2 = std::clamp(ssr / sst, 0.0, 1.0);
  }
  return fit;
}

// ---------------------------------------------------------------------------
// Incomplete beta (Lentz continued fraction) and the F distribution.
// ---------------------------------------------------------------------------

namespace {

double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b, qap = a + 1.0, qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double IncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double FDistSf(double f, double df1, double df2) {
  if (f <= 0) return 1.0;
  const double x = df2 / (df2 + df1 * f);
  return IncompleteBeta(df2 / 2.0, df1 / 2.0, x);
}

AnovaResult OneWayAnova(const std::vector<std::vector<double>>& groups) {
  AnovaResult res;
  const size_t k = groups.size();
  size_t n = 0;
  double grand_sum = 0;
  for (const auto& g : groups) {
    n += g.size();
    for (double x : g) grand_sum += x;
  }
  if (k < 2 || n <= k) return res;
  const double grand_mean = grand_sum / static_cast<double>(n);
  double ss_between = 0, ss_within = 0;
  for (const auto& g : groups) {
    const double gm = Mean(g);
    ss_between += static_cast<double>(g.size()) * (gm - grand_mean) *
                  (gm - grand_mean);
    for (double x : g) ss_within += (x - gm) * (x - gm);
  }
  res.df_between = static_cast<double>(k - 1);
  res.df_within = static_cast<double>(n - k);
  const double ms_between = ss_between / res.df_between;
  res.ms_within = ss_within / res.df_within;
  if (res.ms_within <= 0) {
    res.f_statistic = ss_between > 0 ? 1e30 : 0;
    res.p_value = ss_between > 0 ? 0.0 : 1.0;
    return res;
  }
  res.f_statistic = ms_between / res.ms_within;
  res.p_value = FDistSf(res.f_statistic, res.df_between, res.df_within);
  return res;
}

// ---------------------------------------------------------------------------
// Studentized range distribution (for Tukey's HSD), by double numeric
// integration:
//   P(Q <= q) = \int_0^inf f_s(s) * F_range(q * s) ds
// with F_range(w) = k \int phi(z) [Phi(z) - Phi(z - w)]^{k-1} dz and
// s ~ sqrt(chi^2_df / df).
// ---------------------------------------------------------------------------

namespace {

double NormPdf(double z) {
  return 0.3989422804014327 * std::exp(-0.5 * z * z);
}

double NormCdf(double z) { return 0.5 * std::erfc(-z * 0.7071067811865476); }

// CDF of the range of k iid standard normals at w.
double RangeCdf(double w, double k) {
  if (w <= 0) return 0;
  constexpr int kSteps = 256;
  constexpr double kLo = -8.0, kHi = 8.0;
  const double h = (kHi - kLo) / kSteps;
  double sum = 0;
  // Simpson's rule.
  for (int i = 0; i <= kSteps; ++i) {
    const double z = kLo + h * i;
    const double inner = NormCdf(z) - NormCdf(z - w);
    const double f =
        NormPdf(z) * std::pow(std::max(inner, 0.0), k - 1.0);
    const double weight = (i == 0 || i == kSteps) ? 1 : (i % 2 ? 4 : 2);
    sum += weight * f;
  }
  return std::min(1.0, k * sum * h / 3.0);
}

// Density of s = sqrt(chi^2_df / df).
double ScaleDensity(double s, double df) {
  if (s <= 0) return 0;
  const double ln = (df / 2.0) * std::log(df) - std::lgamma(df / 2.0) -
                    (df / 2.0 - 1.0) * std::log(2.0) +
                    (df - 1.0) * std::log(s) - df * s * s / 2.0;
  return std::exp(ln);
}

}  // namespace

double StudentizedRangeSf(double q, double k, double df) {
  if (q <= 0) return 1.0;
  if (df > 200) return 1.0 - RangeCdf(q, k);  // s concentrates at 1
  constexpr int kSteps = 128;
  constexpr double kHi = 4.0;
  const double h = kHi / kSteps;
  double cdf = 0;
  for (int i = 0; i <= kSteps; ++i) {
    const double s = h * i;
    const double f = ScaleDensity(s, df) * RangeCdf(q * s, k);
    const double weight = (i == 0 || i == kSteps) ? 1 : (i % 2 ? 4 : 2);
    cdf += weight * f;
  }
  cdf *= h / 3.0;
  return std::clamp(1.0 - cdf, 0.0, 1.0);
}

std::vector<TukeyComparison> TukeyHsd(
    const std::vector<std::vector<double>>& groups) {
  std::vector<TukeyComparison> out;
  const AnovaResult anova = OneWayAnova(groups);
  const size_t k = groups.size();
  if (k < 2 || anova.ms_within <= 0) return out;
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) {
      if (groups[a].size() < 2 || groups[b].size() < 2) continue;
      TukeyComparison cmp;
      cmp.group_a = a;
      cmp.group_b = b;
      const double na = static_cast<double>(groups[a].size());
      const double nb = static_cast<double>(groups[b].size());
      // Tukey–Kramer standard error for (possibly) unequal group sizes.
      const double se =
          std::sqrt(anova.ms_within / 2.0 * (1.0 / na + 1.0 / nb));
      const double diff = std::fabs(Mean(groups[a]) - Mean(groups[b]));
      cmp.q_statistic = se > 0 ? diff / se : 0;
      cmp.p_value = StudentizedRangeSf(cmp.q_statistic,
                                       static_cast<double>(k),
                                       anova.df_within);
      cmp.significant_01 = cmp.p_value < 0.01;
      cmp.significant_05 = cmp.p_value < 0.05;
      out.push_back(cmp);
    }
  }
  return out;
}

}  // namespace zv
