#include "common/trace.h"

#include "common/clock.h"
#include "common/strings.h"

namespace zv {

namespace {

Json TraceValueToJson(const TraceValue& v) {
  switch (v.index()) {
    case 0:
      return Json::Int(std::get<int64_t>(v));
    case 1:
      return Json::Double(std::get<double>(v));
    case 2:
      return Json::Str(std::get<std::string>(v));
    default:
      return Json::Bool(std::get<bool>(v));
  }
}

std::string TraceValueToString(const TraceValue& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1:
      return CanonicalDouble(std::get<double>(v));
    case 2:
      return std::get<std::string>(v);
    default:
      return std::get<bool>(v) ? "true" : "false";
  }
}

void RenderSpan(const TraceSpan& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(span.name);
  out->append(StrFormat("  %.3f ms", span.duration_ms));
  if (!span.attrs.empty()) {
    out->append("  [");
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) out->append(", ");
      out->append(span.attrs[i].first);
      out->push_back('=');
      out->append(TraceValueToString(span.attrs[i].second));
    }
    out->push_back(']');
  }
  out->push_back('\n');
  for (const auto& child : span.children) {
    RenderSpan(*child, depth + 1, out);
  }
}

void AppendChromeEvents(const TraceSpan& span, Json* events) {
  Json ev = Json::MakeObject();
  ev.Set("name", Json::Str(span.name));
  ev.Set("ph", Json::Str("X"));
  ev.Set("ts", Json::Double(span.start_ms * 1000.0));    // microseconds
  ev.Set("dur", Json::Double(span.duration_ms * 1000.0));
  ev.Set("pid", Json::Int(1));
  ev.Set("tid", Json::Int(span.track));
  if (!span.attrs.empty()) {
    Json args = Json::MakeObject();
    for (const auto& [key, value] : span.attrs) {
      args.Set(key, TraceValueToJson(value));
    }
    ev.Set("args", std::move(args));
  }
  events->Append(std::move(ev));
  for (const auto& child : span.children) {
    AppendChromeEvents(*child, events);
  }
}

}  // namespace

const TraceSpan* TraceSpan::FindChild(const std::string& child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  return nullptr;
}

Trace::Trace(std::string root_name)
    : epoch_(SteadyNow()) {
  root_.name = std::move(root_name);
}

TraceSpan* Trace::Begin(TraceSpan* parent, std::string name, int track) {
  const double start = NowMs();
  auto span = std::make_unique<TraceSpan>();
  span->name = std::move(name);
  span->start_ms = start;
  span->track = track;
  TraceSpan* raw = span.get();
  std::lock_guard<std::mutex> lock(mu_);
  (parent == nullptr ? root_ : *parent).children.push_back(std::move(span));
  return raw;
}

void Trace::End(TraceSpan* span) {
  if (span == nullptr) return;
  span->duration_ms = NowMs() - span->start_ms;
}

TraceSpan* Trace::Add(TraceSpan* parent, std::string name, double start_ms,
                      double duration_ms, int track) {
  auto span = std::make_unique<TraceSpan>();
  span->name = std::move(name);
  span->start_ms = start_ms;
  span->duration_ms = duration_ms;
  span->track = track;
  TraceSpan* raw = span.get();
  std::lock_guard<std::mutex> lock(mu_);
  (parent == nullptr ? root_ : *parent).children.push_back(std::move(span));
  return raw;
}

Json EncodeTraceSpan(const TraceSpan& span) {
  Json j = Json::MakeObject();
  j.Set("name", Json::Str(span.name));
  j.Set("start_ms", Json::Double(span.start_ms));
  j.Set("dur_ms", Json::Double(span.duration_ms));
  if (span.track != 0) j.Set("track", Json::Int(span.track));
  if (!span.attrs.empty()) {
    Json attrs = Json::MakeObject();
    for (const auto& [key, value] : span.attrs) {
      attrs.Set(key, TraceValueToJson(value));
    }
    j.Set("attrs", std::move(attrs));
  }
  if (!span.children.empty()) {
    Json children = Json::MakeArray();
    for (const auto& child : span.children) {
      children.Append(EncodeTraceSpan(*child));
    }
    j.Set("children", std::move(children));
  }
  return j;
}

std::string RenderTraceTree(const TraceSpan& span) {
  std::string out;
  RenderSpan(span, 0, &out);
  return out;
}

std::string ToChromeTrace(const TraceSpan& root) {
  Json doc = Json::MakeObject();
  Json events = Json::MakeArray();
  AppendChromeEvents(root, &events);
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", Json::Str("ms"));
  return doc.Dump(1);
}

}  // namespace zv
