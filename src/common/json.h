/// \file json.h
/// \brief Dependency-free JSON: value model, parser, and emitter — the wire
/// substrate of the typed query API (src/api/).
///
/// Design points that matter to the protocol layer:
///  - Numbers keep their int64/double distinction. A JSON literal with no
///    fraction or exponent that fits int64 parses as an integer and emits
///    without a decimal point, so uint-ish counters (ZqlStats) round-trip
///    exactly; doubles emit with the shortest digit string that strtod maps
///    back to the identical bit pattern (see CanonicalDouble).
///  - Objects preserve insertion order (vector of members, linear lookup —
///    protocol objects are small). Emission order == construction order ==
///    parse order, so encode(decode(text)) is byte-identical.
///  - Parse errors carry 1-based line/column in the message — they feed the
///    protocol's structured error payload.

#ifndef ZV_COMMON_JSON_H_
#define ZV_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace zv {

/// Shortest decimal rendering of `d` that strtod parses back to the same
/// bits (tries %.15g, %.16g, %.17g). Always contains '.', 'e', or a
/// non-finite token, so a re-parse stays a double. Non-finite values render
/// as "NaN"/"Infinity"/"-Infinity" (accepted nowhere in strict JSON — the
/// JSON emitter maps them to null).
std::string CanonicalDouble(double d);

/// \brief One JSON value. Cheap to move; copy duplicates the whole tree.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() : data_(std::monostate{}) {}

  static Json Null() { return Json(); }
  static Json Bool(bool v) { return Json(Payload(v)); }
  static Json Int(int64_t v) { return Json(Payload(v)); }
  static Json Double(double v) { return Json(Payload(v)); }
  static Json Str(std::string v) { return Json(Payload(std::move(v))); }
  static Json Str(const char* v) { return Str(std::string(v)); }
  static Json MakeArray() { return Json(Payload(Array{})); }
  static Json MakeObject() { return Json(Payload(Object{})); }

  Type type() const {
    switch (data_.index()) {
      case 0: return Type::kNull;
      case 1: return Type::kBool;
      case 2: return Type::kInt;
      case 3: return Type::kDouble;
      case 4: return Type::kString;
      case 5: return Type::kArray;
      default: return Type::kObject;
    }
  }

  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const {
    if (is_double()) return static_cast<int64_t>(std::get<double>(data_));
    return std::get<int64_t>(data_);
  }
  double as_double() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(data_));
    return std::get<double>(data_);
  }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  const Array& array() const { return std::get<Array>(data_); }
  Array& array() { return std::get<Array>(data_); }
  const Object& object() const { return std::get<Object>(data_); }
  Object& object() { return std::get<Object>(data_); }

  size_t size() const {
    if (is_array()) return array().size();
    if (is_object()) return object().size();
    return 0;
  }

  /// Appends to an array value.
  void Append(Json v) { array().push_back(std::move(v)); }

  /// Sets `key` on an object value (replaces an existing member in place,
  /// otherwise appends — insertion order is the wire order).
  Json& Set(const std::string& key, Json v);

  /// Object member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;

  /// Structural equality. Int and double compare as distinct types (Int(1)
  /// != Double(1.0)) — the codec round-trip preserves the distinction, and
  /// blurring it would hide fidelity bugs. Objects compare member-by-member
  /// in order.
  bool operator==(const Json& other) const { return data_ == other.data_; }

  /// Serializes. indent == 0: compact one-line form (the wire format);
  /// indent > 0: pretty-printed with that many spaces per level.
  std::string Dump(int indent = 0) const;

  /// Parses one JSON document (trailing non-whitespace is an error). Error
  /// statuses are kParseError with "line L, column C" in the message.
  static Result<Json> Parse(const std::string& text);

 private:
  using Payload = std::variant<std::monostate, bool, int64_t, double,
                               std::string, Array, Object>;
  explicit Json(Payload data) : data_(std::move(data)) {}

  void DumpTo(std::string* out, int indent, int depth) const;

  Payload data_;
};

/// Escapes `s` into a quoted JSON string token (quotes included).
std::string JsonQuote(const std::string& s);

}  // namespace zv

#endif  // ZV_COMMON_JSON_H_
