/// \file status.h
/// \brief Error handling primitives (Status / Result<T>), in the style of
/// Arrow / RocksDB: no exceptions cross library boundaries.

#ifndef ZV_COMMON_STATUS_H_
#define ZV_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace zv {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTypeMismatch,
  kUnsupported,
  kInternal,
  kCancelled,     ///< cooperatively cancelled by the caller (see cancel.h)
  kUnavailable,   ///< transient overload — retry later (admission control)
};

/// \brief Returns a short human-readable label for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Success-or-error result of an operation that returns no value.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy (small string optimization covers
/// most messages).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Full "Code: message" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessors assert on misuse in debug builds;
/// callers are expected to check ok() first (or use ValueOrDie in tests).
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : data_(std::move(value)) {}
  /* implicit */ Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).ok() &&
           "OK status cannot carry a Result value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  /// Moves the value out, aborting with the error message if not OK.
  /// Intended for tests and examples, not library code.
  T ValueOrDie() && {
    if (!ok()) {
      fprintf(stderr, "Result::ValueOrDie on error: %s\n",
              status().ToString().c_str());
      abort();
    }
    return std::move(std::get<T>(data_));
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates an error Status from an expression, Arrow-style.
#define ZV_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::zv::Status _zv_status = (expr);           \
    if (!_zv_status.ok()) return _zv_status;    \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error. `lhs` may include a declaration, e.g. ZV_ASSIGN_OR_RETURN(auto x,
/// F()).
#define ZV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

#define ZV_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define ZV_ASSIGN_OR_RETURN_NAME(a, b) ZV_ASSIGN_OR_RETURN_CONCAT(a, b)
#define ZV_ASSIGN_OR_RETURN(lhs, expr)                                        \
  ZV_ASSIGN_OR_RETURN_IMPL(ZV_ASSIGN_OR_RETURN_NAME(_zv_result_, __LINE__), \
                           lhs, expr)

}  // namespace zv

#endif  // ZV_COMMON_STATUS_H_
