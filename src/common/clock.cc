#include "common/clock.h"

namespace zv {

namespace {

class SteadyClock : public Clock {
 public:
  int64_t NowMs() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

Clock* Clock::System() {
  static SteadyClock clock;
  return &clock;
}

}  // namespace zv
