/// \file hash.h
/// \brief A 128-bit FNV-1a accumulator for cache fingerprints.
///
/// Two independent multiply-xor streams (different offset bases AND
/// different multiplier primes), rendered as 32 hex chars. Used wherever a wrong-collision
/// failure mode would be serving another query's data (ContextCache keys,
/// ResultCache fingerprints) — 128 bits makes that probability negligible
/// at any realistic cache population.

#ifndef ZV_COMMON_HASH_H_
#define ZV_COMMON_HASH_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace zv {

struct Fingerprint128 {
  uint64_t a = 14695981039346656037ull;  ///< FNV-1a offset basis
  uint64_t b = 0x9e3779b97f4a7c15ull;    ///< golden-ratio offset

  void Bytes(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      // Two genuinely different odd multipliers (FNV-1a's prime and
      // XXH64's second prime), not just different seeds — identical
      // recurrences would make the streams correlated and the 128-bit
      // independence claim hollow.
      a = (a ^ p[i]) * 1099511628211ull;
      b = (b ^ p[i]) * 0xc2b2ae3d27d4eb4full;
    }
  }
  /// Length-prefixed, so adjacent strings never concatenate ambiguously.
  void Str(const std::string& s) {
    const uint64_t len = s.size();
    Bytes(&len, sizeof(len));
    Bytes(s.data(), s.size());
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }  // bit pattern, not value

  std::string Hex() const {
    char out[33];
    std::snprintf(out, sizeof(out), "%016llx%016llx",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    return std::string(out, 32);
  }
};

}  // namespace zv

#endif  // ZV_COMMON_HASH_H_
