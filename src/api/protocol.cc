#include "api/protocol.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/strings.h"
#include "viz/vega_emitter.h"
#include "zql/canonical.h"

namespace zv::api {

// ---------------------------------------------------------------------------
// Version negotiation
// ---------------------------------------------------------------------------

Result<int> NegotiateVersion(int client_version) {
  if (client_version < kMinProtocolVersion) {
    return Status::Unsupported(StrFormat(
        "protocol version %d is below the supported floor %d",
        client_version, kMinProtocolVersion));
  }
  return client_version < kProtocolVersion ? client_version
                                           : kProtocolVersion;
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

const char* WireErrorName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kTypeMismatch: return "type_mismatch";
    case StatusCode::kUnsupported: return "unsupported";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "internal";
}

StatusCode WireErrorCode(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kOutOfRange, StatusCode::kTypeMismatch,
        StatusCode::kUnsupported, StatusCode::kInternal,
        StatusCode::kCancelled, StatusCode::kUnavailable}) {
    if (name == WireErrorName(code)) return code;
  }
  return StatusCode::kParseError;  // unknown names still decode as errors
}

namespace {

/// Best-effort extraction of "line L, column C" (and "near '<tok>'") from a
/// formatted parse message — both the ZQL parser and the JSON parser emit
/// this shape. Returns false when the message carries no position.
bool ExtractPosition(const std::string& message, int* line, int* column,
                     std::string* token) {
  const size_t lp = message.find("line ");
  if (lp == std::string::npos) return false;
  int l = 0, c = 0;
  if (std::sscanf(message.c_str() + lp, "line %d, column %d", &l, &c) != 2) {
    // Row-level ZQL errors carry only "line N: ..." — keep the line.
    if (std::sscanf(message.c_str() + lp, "line %d:", &l) != 1) return false;
    c = 0;
  }
  *line = l;
  *column = c;
  const size_t np = message.find("near '", lp);
  if (np != std::string::npos) {
    const size_t start = np + 6;
    const size_t end = message.find('\'', start);
    if (end != std::string::npos) *token = message.substr(start, end - start);
  }
  return true;
}

}  // namespace

ErrorInfo ErrorFromStatus(const Status& status,
                          const zql::ParseDiagnostic* diag) {
  ErrorInfo info;
  info.code = status.code();
  info.message = status.message();
  info.retryable = status.code() == StatusCode::kUnavailable;
  if (diag != nullptr && diag->line > 0) {
    info.line = diag->line;
    info.column = diag->column;
    info.token = diag->token;
  } else {
    ExtractPosition(status.message(), &info.line, &info.column, &info.token);
  }
  return info;
}

// ---------------------------------------------------------------------------
// OptLevel wire names
// ---------------------------------------------------------------------------

const char* OptLevelWireName(zql::OptLevel level) {
  switch (level) {
    case zql::OptLevel::kNoOpt: return "noopt";
    case zql::OptLevel::kIntraLine: return "intraline";
    case zql::OptLevel::kIntraTask: return "intratask";
    case zql::OptLevel::kInterTask: return "intertask";
  }
  return "intertask";
}

Result<zql::OptLevel> OptLevelFromWireName(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "noopt") return zql::OptLevel::kNoOpt;
  if (lower == "intraline") return zql::OptLevel::kIntraLine;
  if (lower == "intratask") return zql::OptLevel::kIntraTask;
  if (lower == "intertask") return zql::OptLevel::kInterTask;
  return Status::ParseError("unknown optimization level: " + name);
}

// ---------------------------------------------------------------------------
// Values and visualizations
// ---------------------------------------------------------------------------

Json EncodeValue(const Value& value) {
  if (value.is_null()) return Json::Null();
  if (value.is_int()) return Json::Int(value.AsInt());
  if (value.is_double()) return Json::Double(value.AsDouble());
  return Json::Str(value.AsString());
}

Result<Value> DecodeValue(const Json& json) {
  switch (json.type()) {
    case Json::Type::kNull: return Value::Null();
    case Json::Type::kInt: return Value::Int(json.as_int());
    case Json::Type::kDouble: return Value::Double(json.as_double());
    case Json::Type::kString: return Value::Str(json.as_string());
    default:
      return Status::ParseError("value must be null, number, or string");
  }
}

Json EncodeVisualization(const Visualization& viz) {
  Json out = Json::MakeObject();
  out.Set("x", Json::Str(viz.x_attr));
  out.Set("y", Json::Str(viz.y_attr));
  if (!viz.slices.empty()) {
    Json slices = Json::MakeArray();
    for (const Slice& s : viz.slices) {
      Json slice = Json::MakeObject();
      slice.Set("attr", Json::Str(s.attribute));
      slice.Set("value", EncodeValue(s.value));
      slices.Append(std::move(slice));
    }
    out.Set("slices", std::move(slices));
  }
  if (!viz.constraints.empty()) {
    out.Set("constraints", Json::Str(viz.constraints));
  }
  out.Set("spec", Json::Str(viz.spec.ToString()));
  Json xs = Json::MakeArray();
  for (const Value& x : viz.xs) xs.Append(EncodeValue(x));
  out.Set("xs", std::move(xs));
  Json series = Json::MakeArray();
  for (const Series& s : viz.series) {
    Json one = Json::MakeObject();
    one.Set("name", Json::Str(s.name));
    Json ys = Json::MakeArray();
    for (double y : s.ys) ys.Append(Json::Double(y));
    one.Set("ys", std::move(ys));
    series.Append(std::move(one));
  }
  out.Set("series", std::move(series));
  return out;
}

namespace {

Result<std::string> GetString(const Json& obj, const char* key,
                              const char* what) {
  const Json* v = obj.Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::ParseError(StrFormat("%s: missing string '%s'", what, key));
  }
  return v->as_string();
}

std::string GetStringOr(const Json& obj, const char* key,
                        std::string fallback) {
  const Json* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::move(fallback);
}

Result<uint64_t> GetU64Or(const Json& obj, const char* key, uint64_t fallback,
                          const char* what) {
  const Json* v = obj.Find(key);
  if (v == nullptr) return fallback;
  // Integers only: a double here is either fractional (silent truncation)
  // or out of int64 range (undefined behavior in the cast) — both are
  // protocol violations on untrusted input, not values to coerce.
  if (!v->is_int() || v->as_int() < 0) {
    return Status::ParseError(
        StrFormat("%s: '%s' must be a non-negative integer", what, key));
  }
  return static_cast<uint64_t>(v->as_int());
}

Result<bool> GetBoolOr(const Json& obj, const char* key, bool fallback,
                       const char* what) {
  const Json* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    return Status::ParseError(
        StrFormat("%s: '%s' must be a boolean", what, key));
  }
  return v->as_bool();
}

double GetDoubleOr(const Json& obj, const char* key, double fallback) {
  const Json* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

/// Lenient small-int read (diagnostic positions): non-integers and values
/// outside int range read as 0 rather than risking a truncating cast.
int GetSmallIntOr(const Json& obj, const char* key) {
  const Json* v = obj.Find(key);
  if (v == nullptr || !v->is_int()) return 0;
  const int64_t raw = v->as_int();
  if (raw < 0 || raw > std::numeric_limits<int>::max()) return 0;
  return static_cast<int>(raw);
}

}  // namespace

Result<Visualization> DecodeVisualization(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("visualization must be an object");
  }
  Visualization viz;
  ZV_ASSIGN_OR_RETURN(viz.x_attr, GetString(json, "x", "visualization"));
  ZV_ASSIGN_OR_RETURN(viz.y_attr, GetString(json, "y", "visualization"));
  if (const Json* slices = json.Find("slices")) {
    if (!slices->is_array()) {
      return Status::ParseError("visualization: 'slices' must be an array");
    }
    for (const Json& s : slices->array()) {
      if (!s.is_object()) {
        return Status::ParseError("visualization: slice must be an object");
      }
      Slice slice;
      ZV_ASSIGN_OR_RETURN(slice.attribute, GetString(s, "attr", "slice"));
      const Json* value = s.Find("value");
      if (value == nullptr) {
        return Status::ParseError("slice: missing 'value'");
      }
      ZV_ASSIGN_OR_RETURN(slice.value, DecodeValue(*value));
      viz.slices.push_back(std::move(slice));
    }
  }
  viz.constraints = GetStringOr(json, "constraints", "");
  ZV_ASSIGN_OR_RETURN(viz.spec,
                      ParseVizSpec(GetStringOr(json, "spec", "auto")));
  if (const Json* xs = json.Find("xs")) {
    if (!xs->is_array()) {
      return Status::ParseError("visualization: 'xs' must be an array");
    }
    for (const Json& x : xs->array()) {
      ZV_ASSIGN_OR_RETURN(Value v, DecodeValue(x));
      viz.xs.push_back(std::move(v));
    }
  }
  if (const Json* series = json.Find("series")) {
    if (!series->is_array()) {
      return Status::ParseError("visualization: 'series' must be an array");
    }
    for (const Json& s : series->array()) {
      if (!s.is_object()) {
        return Status::ParseError("visualization: series must be objects");
      }
      Series one;
      one.name = GetStringOr(s, "name", "");
      if (const Json* ys = s.Find("ys")) {
        if (!ys->is_array()) {
          return Status::ParseError("series: 'ys' must be an array");
        }
        for (const Json& y : ys->array()) {
          if (y.is_number()) {
            one.ys.push_back(y.as_double());
          } else if (y.is_null()) {
            // The emitter maps non-finite doubles (NaN/Inf) to null —
            // strict JSON has no literal for them. Decode must be total
            // over what encode emits, so null comes back as NaN.
            one.ys.push_back(std::numeric_limits<double>::quiet_NaN());
          } else {
            return Status::ParseError("series: 'ys' must hold numbers");
          }
        }
      }
      viz.series.push_back(std::move(one));
    }
  }
  return viz;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

Result<QueryRequest> QueryRequest::FromText(std::string dataset,
                                            const std::string& zql_text) {
  QueryRequest request;
  request.dataset = std::move(dataset);
  ZV_ASSIGN_OR_RETURN(request.query, zql::ParseQuery(zql_text));
  return request;
}

Json EncodeRequest(const QueryRequest& request) {
  Json out = Json::MakeObject();
  out.Set("v", Json::Int(request.version));
  // Metrics requests are process-scoped: dataset/zql travel only when the
  // caller actually set them, keeping Encode∘Decode byte-stable.
  if (!request.metrics || !request.dataset.empty()) {
    out.Set("dataset", Json::Str(request.dataset));
  }
  if (!request.metrics || !request.query.rows.empty()) {
    out.Set("zql", Json::Str(zql::CanonicalText(request.query)));
  }
  if (request.optimization.has_value()) {
    out.Set("opt", Json::Str(OptLevelWireName(*request.optimization)));
  }
  if (request.page.offset != 0 || request.page.limit != 0) {
    Json page = Json::MakeObject();
    page.Set("offset", Json::Int(static_cast<int64_t>(request.page.offset)));
    page.Set("limit", Json::Int(static_cast<int64_t>(request.page.limit)));
    out.Set("page", std::move(page));
  }
  if (request.include_vega) out.Set("include_vega", Json::Bool(true));
  if (!request.include_data) out.Set("include_data", Json::Bool(false));
  if (request.explain) out.Set("explain", Json::Bool(true));
  if (request.trace) out.Set("trace", Json::Bool(true));
  if (request.metrics) out.Set("metrics", Json::Bool(true));
  if (!request.client_tag.empty()) {
    out.Set("client", Json::Str(request.client_tag));
  }
  return out;
}

Result<QueryRequest> DecodeRequest(const Json& json,
                                   zql::ParseDiagnostic* diag) {
  if (!json.is_object()) {
    return Status::ParseError("request must be a JSON object");
  }
  QueryRequest request;
  const Json* v = json.Find("v");
  if (v != nullptr) {
    if (!v->is_int() || v->as_int() < 0 ||
        v->as_int() > std::numeric_limits<int>::max()) {
      return Status::ParseError(
          "request: 'v' must be a non-negative integer");
    }
    request.version = static_cast<int>(v->as_int());
  }
  ZV_ASSIGN_OR_RETURN(request.metrics,
                      GetBoolOr(json, "metrics", false, "request"));
  if (request.metrics) {
    // Process-scoped request kind: dataset/zql are optional passengers.
    request.dataset = GetStringOr(json, "dataset", "");
    if (const Json* zql = json.Find("zql");
        zql != nullptr && zql->is_string() && !zql->as_string().empty()) {
      ZV_ASSIGN_OR_RETURN(request.query,
                          zql::ParseQuery(zql->as_string(), diag));
    }
  } else {
    ZV_ASSIGN_OR_RETURN(request.dataset,
                        GetString(json, "dataset", "request"));
    ZV_ASSIGN_OR_RETURN(std::string zql, GetString(json, "zql", "request"));
    ZV_ASSIGN_OR_RETURN(request.query, zql::ParseQuery(zql, diag));
  }
  if (const Json* opt = json.Find("opt")) {
    if (!opt->is_string()) {
      return Status::ParseError("request: 'opt' must be a string");
    }
    ZV_ASSIGN_OR_RETURN(zql::OptLevel level,
                        OptLevelFromWireName(opt->as_string()));
    request.optimization = level;
  }
  if (const Json* page = json.Find("page")) {
    if (!page->is_object()) {
      return Status::ParseError("request: 'page' must be an object");
    }
    ZV_ASSIGN_OR_RETURN(request.page.offset,
                        GetU64Or(*page, "offset", 0, "page"));
    ZV_ASSIGN_OR_RETURN(request.page.limit,
                        GetU64Or(*page, "limit", 0, "page"));
  }
  ZV_ASSIGN_OR_RETURN(request.include_vega,
                      GetBoolOr(json, "include_vega", false, "request"));
  ZV_ASSIGN_OR_RETURN(request.include_data,
                      GetBoolOr(json, "include_data", true, "request"));
  ZV_ASSIGN_OR_RETURN(request.explain,
                      GetBoolOr(json, "explain", false, "request"));
  ZV_ASSIGN_OR_RETURN(request.trace,
                      GetBoolOr(json, "trace", false, "request"));
  request.client_tag = GetStringOr(json, "client", "");
  return request;
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

QueryResponse BuildResponse(const zql::ZqlResult& result,
                            const QueryRequest& request,
                            std::string fingerprint) {
  QueryResponse response;
  response.version = kProtocolVersion;
  response.stats = result.stats;
  response.fingerprint = std::move(fingerprint);
  response.client_tag = request.client_tag;
  for (const zql::ZqlOutput& output : result.outputs) {
    OutputSlice slice;
    slice.name = output.name;
    slice.total = output.visuals.size();
    const uint64_t offset =
        std::min<uint64_t>(request.page.offset, slice.total);
    uint64_t count = slice.total - offset;
    if (request.page.limit > 0) {
      count = std::min<uint64_t>(count, request.page.limit);
    }
    slice.offset = offset;
    for (uint64_t i = 0; i < count; ++i) {
      const Visualization& viz = output.visuals[offset + i];
      slice.labels.push_back(viz.Label());
      if (request.include_data) slice.visuals.push_back(viz);
      if (request.include_vega) slice.vega.push_back(ToVegaLiteJson(viz));
    }
    response.outputs.push_back(std::move(slice));
  }
  return response;
}

QueryResponse BuildErrorResponse(const Status& status,
                                 const QueryRequest& request,
                                 const zql::ParseDiagnostic* diag) {
  QueryResponse response;
  response.version = kProtocolVersion;
  response.error = ErrorFromStatus(status, diag);
  response.client_tag = request.client_tag;
  return response;
}

namespace {

Json EncodeStats(const zql::ZqlStats& stats) {
  Json out = Json::MakeObject();
  out.Set("sql_queries", Json::Int(static_cast<int64_t>(stats.sql_queries)));
  out.Set("sql_requests",
          Json::Int(static_cast<int64_t>(stats.sql_requests)));
  out.Set("scores_pruned",
          Json::Int(static_cast<int64_t>(stats.scores_pruned)));
  out.Set("cache_hits", Json::Int(static_cast<int64_t>(stats.cache_hits)));
  out.Set("cache_misses",
          Json::Int(static_cast<int64_t>(stats.cache_misses)));
  out.Set("contexts_reused",
          Json::Int(static_cast<int64_t>(stats.contexts_reused)));
  out.Set("chunks_scanned",
          Json::Int(static_cast<int64_t>(stats.chunks_scanned)));
  out.Set("batched_scans",
          Json::Int(static_cast<int64_t>(stats.batched_scans)));
  out.Set("scans_shared",
          Json::Int(static_cast<int64_t>(stats.scans_shared)));
  out.Set("simd_width", Json::Int(static_cast<int64_t>(stats.simd_width)));
  out.Set("container_conversions",
          Json::Int(static_cast<int64_t>(stats.container_conversions)));
  out.Set("total_ms", Json::Double(stats.total_ms));
  out.Set("exec_ms", Json::Double(stats.exec_ms));
  out.Set("compute_ms", Json::Double(stats.compute_ms));
  out.Set("fetch_ms", Json::Double(stats.fetch_ms));
  out.Set("score_ms", Json::Double(stats.score_ms));
  out.Set("shard_ms", Json::Double(stats.shard_ms));
  return out;
}

zql::ZqlStats DecodeStats(const Json& json) {
  zql::ZqlStats stats;
  if (!json.is_object()) return stats;
  auto u64 = [&](const char* key) -> uint64_t {
    const Json* v = json.Find(key);
    return v != nullptr && v->is_int() && v->as_int() >= 0
               ? static_cast<uint64_t>(v->as_int())
               : 0;
  };
  stats.sql_queries = u64("sql_queries");
  stats.sql_requests = u64("sql_requests");
  stats.scores_pruned = u64("scores_pruned");
  stats.cache_hits = u64("cache_hits");
  stats.cache_misses = u64("cache_misses");
  stats.contexts_reused = u64("contexts_reused");
  stats.chunks_scanned = u64("chunks_scanned");
  stats.batched_scans = u64("batched_scans");
  stats.scans_shared = u64("scans_shared");
  stats.simd_width = u64("simd_width");
  stats.container_conversions = u64("container_conversions");
  stats.total_ms = GetDoubleOr(json, "total_ms", 0);
  stats.exec_ms = GetDoubleOr(json, "exec_ms", 0);
  stats.compute_ms = GetDoubleOr(json, "compute_ms", 0);
  stats.fetch_ms = GetDoubleOr(json, "fetch_ms", 0);
  stats.score_ms = GetDoubleOr(json, "score_ms", 0);
  stats.shard_ms = GetDoubleOr(json, "shard_ms", 0);
  return stats;
}

Json EncodeError(const ErrorInfo& error) {
  Json out = Json::MakeObject();
  out.Set("code", Json::Str(WireErrorName(error.code)));
  out.Set("message", Json::Str(error.message));
  if (error.retryable) out.Set("retryable", Json::Bool(true));
  if (error.line > 0) {
    out.Set("line", Json::Int(error.line));
    out.Set("column", Json::Int(error.column));
  }
  if (!error.token.empty()) out.Set("token", Json::Str(error.token));
  return out;
}

Result<ErrorInfo> DecodeError(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("response: 'error' must be an object");
  }
  ErrorInfo error;
  ZV_ASSIGN_OR_RETURN(std::string code, GetString(json, "code", "error"));
  error.code = WireErrorCode(code);
  error.message = GetStringOr(json, "message", "");
  ZV_ASSIGN_OR_RETURN(error.retryable,
                      GetBoolOr(json, "retryable", false, "error"));
  error.line = GetSmallIntOr(json, "line");
  error.column = GetSmallIntOr(json, "column");
  error.token = GetStringOr(json, "token", "");
  return error;
}

}  // namespace

Json EncodeResponse(const QueryResponse& response) {
  Json out = Json::MakeObject();
  out.Set("v", Json::Int(response.version));
  if (!response.error.ok()) {
    out.Set("error", EncodeError(response.error));
  }
  Json outputs = Json::MakeArray();
  for (const OutputSlice& slice : response.outputs) {
    Json one = Json::MakeObject();
    one.Set("name", Json::Str(slice.name));
    one.Set("total", Json::Int(static_cast<int64_t>(slice.total)));
    one.Set("offset", Json::Int(static_cast<int64_t>(slice.offset)));
    Json labels = Json::MakeArray();
    for (const std::string& label : slice.labels) {
      labels.Append(Json::Str(label));
    }
    one.Set("labels", std::move(labels));
    if (!slice.visuals.empty()) {
      Json visuals = Json::MakeArray();
      for (const Visualization& viz : slice.visuals) {
        visuals.Append(EncodeVisualization(viz));
      }
      one.Set("visuals", std::move(visuals));
    }
    if (!slice.vega.empty()) {
      Json vega = Json::MakeArray();
      for (const std::string& spec : slice.vega) vega.Append(Json::Str(spec));
      one.Set("vega", std::move(vega));
    }
    outputs.Append(std::move(one));
  }
  out.Set("outputs", std::move(outputs));
  out.Set("stats", EncodeStats(response.stats));
  if (!response.fingerprint.empty()) {
    out.Set("fingerprint", Json::Str(response.fingerprint));
  }
  if (!response.plan.empty()) {
    out.Set("plan", Json::Str(response.plan));
  }
  if (!response.trace.is_null()) {
    out.Set("trace", response.trace);
  }
  if (!response.metrics.is_null()) {
    out.Set("metrics", response.metrics);
  }
  if (!response.client_tag.empty()) {
    out.Set("client", Json::Str(response.client_tag));
  }
  return out;
}

Result<QueryResponse> DecodeResponse(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("response must be a JSON object");
  }
  QueryResponse response;
  response.version = GetSmallIntOr(json, "v");
  if (response.version == 0) response.version = kProtocolVersion;
  if (const Json* error = json.Find("error")) {
    ZV_ASSIGN_OR_RETURN(response.error, DecodeError(*error));
  }
  if (const Json* outputs = json.Find("outputs")) {
    if (!outputs->is_array()) {
      return Status::ParseError("response: 'outputs' must be an array");
    }
    for (const Json& o : outputs->array()) {
      if (!o.is_object()) {
        return Status::ParseError("response: outputs must be objects");
      }
      OutputSlice slice;
      ZV_ASSIGN_OR_RETURN(slice.name, GetString(o, "name", "output"));
      ZV_ASSIGN_OR_RETURN(slice.total, GetU64Or(o, "total", 0, "output"));
      ZV_ASSIGN_OR_RETURN(slice.offset, GetU64Or(o, "offset", 0, "output"));
      if (const Json* labels = o.Find("labels")) {
        if (!labels->is_array()) {
          return Status::ParseError("output: 'labels' must be an array");
        }
        for (const Json& label : labels->array()) {
          if (!label.is_string()) {
            return Status::ParseError("output: labels must be strings");
          }
          slice.labels.push_back(label.as_string());
        }
      }
      if (const Json* visuals = o.Find("visuals")) {
        if (!visuals->is_array()) {
          return Status::ParseError("output: 'visuals' must be an array");
        }
        for (const Json& viz : visuals->array()) {
          ZV_ASSIGN_OR_RETURN(Visualization decoded,
                              DecodeVisualization(viz));
          slice.visuals.push_back(std::move(decoded));
        }
      }
      if (const Json* vega = o.Find("vega")) {
        if (!vega->is_array()) {
          return Status::ParseError("output: 'vega' must be an array");
        }
        for (const Json& spec : vega->array()) {
          if (!spec.is_string()) {
            return Status::ParseError("output: vega specs must be strings");
          }
          slice.vega.push_back(spec.as_string());
        }
      }
      response.outputs.push_back(std::move(slice));
    }
  }
  if (const Json* stats = json.Find("stats")) {
    response.stats = DecodeStats(*stats);
  }
  response.fingerprint = GetStringOr(json, "fingerprint", "");
  response.plan = GetStringOr(json, "plan", "");
  // Observability payloads round-trip as structured JSON verbatim — the
  // span tree and snapshot schemas live in common/trace.h / metrics.h.
  if (const Json* trace = json.Find("trace")) response.trace = *trace;
  if (const Json* metrics = json.Find("metrics")) response.metrics = *metrics;
  response.client_tag = GetStringOr(json, "client", "");
  return response;
}

}  // namespace zv::api
