/// \file protocol.h
/// \brief The versioned, typed query protocol: QueryRequest / QueryResponse
/// and their JSON wire codec.
///
/// This is the public surface a front end programs against (§6: the
/// zenvisage browser client fires a request per user gesture and renders
/// the returned visualizations). The old string-in/string-out entry points
/// remain as thin wrappers; everything structured lives here:
///
///  - *Versioning*: every message carries `v`. The server accepts any
///    version in [kMinProtocolVersion, ∞) and replies with
///    min(client, kProtocolVersion) — additive evolution; a client below
///    the floor gets a structured `unsupported` error.
///  - *Typed queries*: QueryRequest holds a zql::ZqlQuery AST (built with
///    ZqlBuilder or parsed from text). On the wire the AST travels as its
///    canonical serialization (zql::CanonicalText) — deterministic,
///    re-parseable, and the same string the ResultCache keys on.
///  - *Structured errors*: ErrorInfo maps every StatusCode (including
///    kCancelled and kUnavailable) to a stable wire name, a retryable
///    flag, and — for parse errors — line/column/token diagnostics.
///  - *Pagination*: PageSpec windows every output independently
///    (offset/limit over its visualization list); OutputSlice reports the
///    pre-pagination total so clients can page without a count query.
///  - *Vega payloads*: with include_vega, each returned visualization
///    carries its Vega-Lite spec (viz/vega_emitter), so a browser can
///    render results with no further translation.
///
/// Encode/Decode are exact inverses on the wire: for any request or
/// response, Encode(Decode(Encode(x))) == Encode(x) byte-for-byte
/// (tests/api_test.cc locks this).

#ifndef ZV_API_PROTOCOL_H_
#define ZV_API_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "viz/visualization.h"
#include "zql/ast.h"
#include "zql/executor.h"
#include "zql/parser.h"

namespace zv::api {

/// Highest protocol version this build speaks.
inline constexpr int kProtocolVersion = 1;
/// Lowest version still accepted.
inline constexpr int kMinProtocolVersion = 1;

/// min(client, server) when the client is modern enough; a structured
/// kUnsupported error otherwise.
Result<int> NegotiateVersion(int client_version);

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// \brief Machine-consumable error payload. Built from any Status via
/// ErrorFromStatus — the mapping is total: every StatusCode has a stable
/// wire name and a retryable verdict.
struct ErrorInfo {
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// True for transient conditions a client should retry with backoff
  /// (kUnavailable — admission control / shutdown races).
  bool retryable = false;
  /// Parse diagnostics (ZQL or JSON), when the failure was a parse: 1-based
  /// position and the offending token. 0 / empty = not applicable.
  int line = 0;
  int column = 0;
  std::string token;

  bool ok() const { return code == StatusCode::kOk; }
};

/// Stable wire spelling of a status code ("parse_error", "cancelled", ...).
const char* WireErrorName(StatusCode code);
/// Inverse of WireErrorName; kParseError on unknown names (forward compat:
/// an unknown error name still decodes as an error).
StatusCode WireErrorCode(const std::string& name);

/// Total mapping Status -> ErrorInfo. Parse-error statuses get their
/// line/column/token extracted; pass `diag` when the caller already has the
/// structured form (zql::ParseQuery fills one).
ErrorInfo ErrorFromStatus(const Status& status,
                          const zql::ParseDiagnostic* diag = nullptr);

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// \brief Pagination window applied to *each* output independently.
/// limit == 0 means "no limit" (offset still applies).
struct PageSpec {
  uint64_t offset = 0;
  uint64_t limit = 0;

  bool operator==(const PageSpec&) const = default;
};

/// \brief One query, fully typed.
struct QueryRequest {
  int version = kProtocolVersion;
  std::string dataset;
  zql::ZqlQuery query;
  /// Override the service's optimization level for this query only.
  std::optional<zql::OptLevel> optimization;
  PageSpec page;
  /// Attach a Vega-Lite spec per returned visualization.
  bool include_vega = false;
  /// Include the data points (xs / series). Off = identity-only responses
  /// (labels + totals), for clients that lazily fetch page contents.
  bool include_data = true;
  /// EXPLAIN: instead of executing, return the physical execution plan —
  /// the operator tree (Fetch/Materialize/Score/Reduce/Output per stage)
  /// the query would run, rendered into QueryResponse::plan. Plan building
  /// is pure (no data access), so no query is admitted or executed.
  bool explain = false;
  /// Trace this query: the response carries the span tree
  /// (QueryResponse::trace) recording where each millisecond went —
  /// queue wait, cache lookup, per-operator execution, scan passes.
  /// Tracing is a pure observer: results are byte-identical either way.
  bool trace = false;
  /// Metrics request kind: instead of executing, return a snapshot of the
  /// service's MetricsRegistry plus the slow-query log in
  /// QueryResponse::metrics. `dataset` and `zql` are optional here — the
  /// snapshot is process-scoped, not per dataset.
  bool metrics = false;
  /// Opaque client tag, echoed in the response (request correlation).
  std::string client_tag;

  /// Builds a request by parsing ZQL text (the boundary adapter for text
  /// clients); parse failures carry line/column diagnostics.
  static Result<QueryRequest> FromText(std::string dataset,
                                       const std::string& zql_text);
};

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// \brief One output component's page of results.
struct OutputSlice {
  std::string name;
  /// Pre-pagination visualization count (clients page against this).
  uint64_t total = 0;
  /// Echo of the applied window start.
  uint64_t offset = 0;
  /// Identity labels for the page, always present (even without data).
  std::vector<std::string> labels;
  /// The page's visualizations (empty when include_data was false).
  std::vector<Visualization> visuals;
  /// Vega-Lite spec per page entry (empty when include_vega was false).
  std::vector<std::string> vega;
};

/// \brief The reply to one QueryRequest.
struct QueryResponse {
  int version = kProtocolVersion;
  ErrorInfo error;  ///< code == kOk on success
  std::vector<OutputSlice> outputs;
  zql::ZqlStats stats;
  /// The ResultCache fingerprint this query keyed to — lets a client
  /// correlate repeats and observe cache identity. Empty on errors that
  /// precede fingerprinting (parse, unknown dataset).
  std::string fingerprint;
  /// EXPLAIN payload: the rendered physical operator tree (zql/plan.h),
  /// present only when the request set `explain`.
  std::string plan;
  /// Trace payload: the query's span tree (common/trace.h,
  /// EncodeTraceSpan), present only when the request set `trace` (or the
  /// service traces everything via ZV_TRACE). Null otherwise.
  Json trace;
  /// Metrics payload: the registry snapshot ({counters, gauges,
  /// histograms}) plus a `slow_queries` array, present only on `metrics`
  /// requests. Null otherwise.
  Json metrics;
  std::string client_tag;  ///< echoed from the request

  bool ok() const { return error.ok(); }
};

/// Packages a finished ZqlResult according to the request's pagination and
/// payload flags.
QueryResponse BuildResponse(const zql::ZqlResult& result,
                            const QueryRequest& request,
                            std::string fingerprint);

/// Packages a failure (total mapping; see ErrorFromStatus).
QueryResponse BuildErrorResponse(const Status& status,
                                 const QueryRequest& request,
                                 const zql::ParseDiagnostic* diag = nullptr);

// ---------------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------------

Json EncodeRequest(const QueryRequest& request);
/// `diag` (optional) receives ZQL parse diagnostics when the embedded
/// query text fails to parse.
Result<QueryRequest> DecodeRequest(const Json& json,
                                   zql::ParseDiagnostic* diag = nullptr);

Json EncodeResponse(const QueryResponse& response);
Result<QueryResponse> DecodeResponse(const Json& json);

/// Visualization <-> JSON (identity + data; the spec travels in its ZQL
/// textual form).
Json EncodeVisualization(const Visualization& viz);
Result<Visualization> DecodeVisualization(const Json& json);

/// Value <-> JSON, preserving the int/double/string/null distinction.
Json EncodeValue(const Value& value);
Result<Value> DecodeValue(const Json& json);

const char* OptLevelWireName(zql::OptLevel level);
Result<zql::OptLevel> OptLevelFromWireName(const std::string& name);

}  // namespace zv::api

#endif  // ZV_API_PROTOCOL_H_
