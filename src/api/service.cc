#include "api/service.h"

namespace zv::api {

QueryResponse ExecuteRequest(server::QueryService& service,
                             server::SessionId session,
                             const QueryRequest& request) {
  Result<int> version = NegotiateVersion(request.version);
  if (!version.ok()) {
    return BuildErrorResponse(version.status(), request);
  }
  Result<server::QueryHandle> submitted = service.Submit(
      session, request.dataset, request.query, request.optimization);
  if (!submitted.ok()) {
    QueryResponse response = BuildErrorResponse(submitted.status(), request);
    response.version = *version;
    return response;
  }
  server::QueryHandle handle = std::move(submitted).value();
  const Status status = handle.Wait();
  if (!status.ok()) {
    QueryResponse response = BuildErrorResponse(status, request);
    response.version = *version;
    response.fingerprint = handle.fingerprint();
    return response;
  }
  QueryResponse response =
      BuildResponse(*handle.result(), request, handle.fingerprint());
  response.version = *version;
  // The serving layer's verdict (hit/miss, lookup latency) supersedes the
  // executing run's embedded stats.
  response.stats = handle.stats();
  return response;
}

std::string HandleWireRequest(server::QueryService& service,
                              server::SessionId session,
                              const std::string& request_json, int indent) {
  Result<Json> parsed = Json::Parse(request_json);
  if (!parsed.ok()) {
    return EncodeResponse(BuildErrorResponse(parsed.status(), QueryRequest{}))
        .Dump(indent);
  }
  zql::ParseDiagnostic diag;
  Result<QueryRequest> request = DecodeRequest(*parsed, &diag);
  if (!request.ok()) {
    return EncodeResponse(
               BuildErrorResponse(request.status(), QueryRequest{}, &diag))
        .Dump(indent);
  }
  return EncodeResponse(ExecuteRequest(service, session, *request))
      .Dump(indent);
}

}  // namespace zv::api
