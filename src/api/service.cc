#include "api/service.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "zql/plan.h"

namespace zv::api {

namespace {

/// Metrics request kind: snapshot the service's registry and slow-query
/// log without admitting or executing anything. The session is still
/// validated (and touched), matching EXPLAIN's lifecycle semantics.
QueryResponse MetricsRequest(server::QueryService& service,
                             server::SessionId session,
                             const QueryRequest& request, int version) {
  QueryResponse response;
  response.version = version;
  response.client_tag = request.client_tag;
  if (Status touched = service.TouchSession(session); !touched.ok()) {
    response.error = ErrorFromStatus(touched);
    return response;
  }
  Json payload = service.metrics()->Snapshot().ToJson();
  Json slow = Json::MakeArray();
  for (const auto& q : service.SlowQueries()) {
    Json one = Json::MakeObject();
    one.Set("dataset", Json::Str(q.dataset));
    one.Set("zql", Json::Str(q.zql));
    one.Set("fingerprint", Json::Str(q.fingerprint));
    one.Set("status", Json::Str(WireErrorName(q.status.code())));
    one.Set("total_ms", Json::Double(q.total_ms));
    one.Set("fetch_ms", Json::Double(q.stats.fetch_ms));
    one.Set("score_ms", Json::Double(q.stats.score_ms));
    slow.Append(std::move(one));
  }
  payload.Set("slow_queries", std::move(slow));
  response.metrics = std::move(payload);
  return response;
}

/// EXPLAIN path: render the physical plan the query would execute under —
/// the service's base options with the request's optimization override —
/// without admitting or executing anything (plan building is pure). The
/// session and dataset are still validated (and the session touched), so
/// EXPLAIN traffic observes the same lifecycle semantics as execution.
QueryResponse ExplainRequest(server::QueryService& service,
                             server::SessionId session,
                             const QueryRequest& request, int version) {
  QueryResponse response;
  response.version = version;
  response.client_tag = request.client_tag;
  if (Status touched = service.TouchSession(session); !touched.ok()) {
    response.error = ErrorFromStatus(touched);
    return response;
  }
  if (Result<uint64_t> dataset = service.DatasetEpoch(request.dataset);
      !dataset.ok()) {
    response.error = ErrorFromStatus(dataset.status());
    return response;
  }
  zql::ZqlOptions options = service.zql_options();
  if (request.optimization.has_value()) {
    options.optimization = *request.optimization;
  }
  Result<zql::PhysicalPlan> plan =
      zql::BuildPhysicalPlan(request.query, options);
  if (!plan.ok()) {
    response.error = ErrorFromStatus(plan.status());
    return response;
  }
  // Unlike plan building, the FetchOp fan-out annotation is data-dependent
  // (chunks = the dataset's ChunkMap size) — the serving layer is the one
  // EXPLAIN caller with a backend to ask. Tables that fit in one chunk
  // render the plain unsharded form.
  size_t table_chunks = 0;
  if (Result<std::shared_ptr<Database>> db =
          service.DatasetDatabase(request.dataset);
      db.ok()) {
    if (Result<ChunkMap> map = (*db)->GetChunkMap(request.dataset); map.ok()) {
      table_chunks = map->num_chunks();
    }
  }
  response.plan = plan->Render(request.query, table_chunks);
  return response;
}

}  // namespace

QueryResponse ExecuteRequest(server::QueryService& service,
                             server::SessionId session,
                             const QueryRequest& request) {
  Result<int> version = NegotiateVersion(request.version);
  if (!version.ok()) {
    return BuildErrorResponse(version.status(), request);
  }
  if (request.metrics) {
    return MetricsRequest(service, session, request, *version);
  }
  if (request.explain) {
    return ExplainRequest(service, session, request, *version);
  }
  Result<server::QueryHandle> submitted = service.Submit(
      session, request.dataset, request.query, request.optimization,
      request.trace);
  if (!submitted.ok()) {
    QueryResponse response = BuildErrorResponse(submitted.status(), request);
    response.version = *version;
    return response;
  }
  server::QueryHandle handle = std::move(submitted).value();
  const Status status = handle.Wait();
  if (!status.ok()) {
    QueryResponse response = BuildErrorResponse(status, request);
    response.version = *version;
    response.fingerprint = handle.fingerprint();
    // A failed traced query still carries its spans up to the failure
    // point — exactly what a latency investigation wants.
    if (std::shared_ptr<const Trace> trace = handle.trace()) {
      response.trace = EncodeTraceSpan(trace->root());
    }
    return response;
  }
  QueryResponse response =
      BuildResponse(*handle.result(), request, handle.fingerprint());
  response.version = *version;
  // The serving layer's verdict (hit/miss, lookup latency) supersedes the
  // executing run's embedded stats.
  response.stats = handle.stats();
  if (std::shared_ptr<const Trace> trace = handle.trace()) {
    response.trace = EncodeTraceSpan(trace->root());
  }
  return response;
}

std::string HandleWireRequest(server::QueryService& service,
                              server::SessionId session,
                              const std::string& request_json, int indent) {
  Result<Json> parsed = Json::Parse(request_json);
  if (!parsed.ok()) {
    return EncodeResponse(BuildErrorResponse(parsed.status(), QueryRequest{}))
        .Dump(indent);
  }
  zql::ParseDiagnostic diag;
  Result<QueryRequest> request = DecodeRequest(*parsed, &diag);
  if (!request.ok()) {
    return EncodeResponse(
               BuildErrorResponse(request.status(), QueryRequest{}, &diag))
        .Dump(indent);
  }
  return EncodeResponse(ExecuteRequest(service, session, *request))
      .Dump(indent);
}

}  // namespace zv::api
