/// \file service.h
/// \brief Bridges the wire protocol to a QueryService: typed request in,
/// typed (or JSON) response out.
///
/// Layering: protocol.h defines the messages and their codec with no
/// server dependency; this header owns the request lifecycle —
/// negotiate version, submit through the typed QueryService entry point,
/// wait, paginate/package. zql_shell's :json mode and the wire bench are
/// thin loops over HandleWireRequest.

#ifndef ZV_API_SERVICE_H_
#define ZV_API_SERVICE_H_

#include <string>

#include "api/protocol.h"
#include "server/query_service.h"

namespace zv::api {

/// Executes one typed request synchronously against `service` on behalf of
/// `session`. Never fails at the C++ level: every Status (bad version,
/// unknown dataset/session, admission rejection, cancellation, execution
/// error) becomes a structured error response; response.version is the
/// negotiated version.
QueryResponse ExecuteRequest(server::QueryService& service,
                             server::SessionId session,
                             const QueryRequest& request);

/// The full wire path: one JSON request document in, one JSON response
/// document out (always valid JSON — malformed input yields a parse_error
/// response). `indent` 0 emits the compact one-line wire form.
std::string HandleWireRequest(server::QueryService& service,
                              server::SessionId session,
                              const std::string& request_json,
                              int indent = 0);

}  // namespace zv::api

#endif  // ZV_API_SERVICE_H_
