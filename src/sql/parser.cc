#include "sql/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace zv::sql {

namespace {

enum class TokKind {
  kIdent,
  kString,
  kNumber,
  kSymbol,  // punctuation and operators
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier (original case), symbol, or string body
  double number = 0;
  bool is_int = false;
  int64_t int_value = 0;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      Token t;
      t.pos = i_;
      if (i_ >= text_.size()) {
        t.kind = TokKind::kEnd;
        out.push_back(t);
        return out;
      }
      const char c = text_[i_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i_;
        while (i_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i_])) ||
                text_[i_] == '_')) {
          ++i_;
        }
        t.kind = TokKind::kIdent;
        t.text = text_.substr(start, i_ - start);
        out.push_back(std::move(t));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i_ + 1])) &&
           ExpectsValue(out))) {
        size_t start = i_;
        if (c == '-') ++i_;
        bool has_dot = false, has_exp = false;
        while (i_ < text_.size()) {
          const char d = text_[i_];
          if (std::isdigit(static_cast<unsigned char>(d))) {
            ++i_;
          } else if (d == '.' && !has_dot && !has_exp) {
            has_dot = true;
            ++i_;
          } else if ((d == 'e' || d == 'E') && !has_exp) {
            has_exp = true;
            ++i_;
            if (i_ < text_.size() && (text_[i_] == '+' || text_[i_] == '-'))
              ++i_;
          } else {
            break;
          }
        }
        t.kind = TokKind::kNumber;
        t.text = text_.substr(start, i_ - start);
        t.number = std::strtod(t.text.c_str(), nullptr);
        t.is_int = !has_dot && !has_exp;
        if (t.is_int) t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
        out.push_back(std::move(t));
        continue;
      }
      if (c == '\'') {
        ++i_;
        std::string body;
        bool closed = false;
        while (i_ < text_.size()) {
          if (text_[i_] == '\'') {
            if (i_ + 1 < text_.size() && text_[i_ + 1] == '\'') {
              body += '\'';
              i_ += 2;
            } else {
              ++i_;
              closed = true;
              break;
            }
          } else {
            body += text_[i_++];
          }
        }
        if (!closed) {
          return Status::ParseError(
              StrFormat("unterminated string literal at %zu", t.pos));
        }
        t.kind = TokKind::kString;
        t.text = std::move(body);
        out.push_back(std::move(t));
        continue;
      }
      // Multi-char operators.
      static const char* kTwoChar[] = {"<=", ">=", "!=", "<>"};
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (text_.compare(i_, 2, op) == 0) {
          t.kind = TokKind::kSymbol;
          t.text = op;
          i_ += 2;
          out.push_back(std::move(t));
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static const std::string kOneChar = "(),=<>*.;";
      if (kOneChar.find(c) != std::string::npos) {
        t.kind = TokKind::kSymbol;
        t.text = std::string(1, c);
        ++i_;
        out.push_back(std::move(t));
        continue;
      }
      return Status::ParseError(
          StrFormat("unexpected character '%c' at %zu", c, i_));
    }
  }

 private:
  void SkipSpace() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_]))) {
      ++i_;
    }
  }

  // A leading '-' starts a negative number only where a value is expected
  // (after an operator, comma, or opening paren), not after an identifier.
  static bool ExpectsValue(const std::vector<Token>& sofar) {
    if (sofar.empty()) return true;
    const Token& last = sofar.back();
    if (last.kind == TokKind::kSymbol) return last.text != ")";
    return false;
  }

  const std::string& text_;
  size_t i_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseSelectStatement() {
    SelectStatement stmt;
    ZV_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    while (true) {
      ZV_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    ZV_RETURN_NOT_OK(ExpectKeyword("FROM"));
    ZV_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    if (AcceptKeyword("WHERE")) {
      ZV_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (AcceptKeyword("GROUP")) {
      ZV_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        ZV_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        stmt.group_by.push_back(std::move(col));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("ORDER")) {
      ZV_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderKey key;
        ZV_ASSIGN_OR_RETURN(key.column, ExpectIdent());
        if (AcceptKeyword("DESC")) key.descending = true;
        else AcceptKeyword("ASC");
        stmt.order_by.push_back(std::move(key));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      const Token& t = Peek();
      if (t.kind != TokKind::kNumber || !t.is_int) {
        return Status::ParseError("LIMIT expects an integer");
      }
      stmt.limit = t.int_value;
      Advance();
    }
    AcceptSymbol(";");
    if (Peek().kind != TokKind::kEnd) {
      return Status::ParseError(
          StrFormat("trailing input at %zu: '%s'", Peek().pos,
                    Peek().text.c_str()));
    }
    return stmt;
  }

  Result<std::unique_ptr<Expr>> ParseBareExpr() {
    ZV_ASSIGN_OR_RETURN(auto e, ParseOr());
    if (Peek().kind != TokKind::kEnd) {
      return Status::ParseError(
          StrFormat("trailing input in expression at %zu", Peek().pos));
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokKind::kIdent && ToLower(Peek().text) == ToLower(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(StrFormat("expected %s at %zu (got '%s')",
                                          kw.c_str(), Peek().pos,
                                          Peek().text.c_str()));
    }
    return Status::OK();
  }

  bool AcceptSymbol(const std::string& sym) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError(StrFormat("expected '%s' at %zu (got '%s')",
                                          sym.c_str(), Peek().pos,
                                          Peek().text.c_str()));
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::ParseError(StrFormat("expected identifier at %zu",
                                          Peek().pos));
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().kind != TokKind::kIdent) {
      return Status::ParseError(
          StrFormat("expected column or aggregate at %zu", Peek().pos));
    }
    const std::string first = Peek().text;
    const std::string lower = ToLower(first);
    static const std::pair<const char*, AggFunc> kAggs[] = {
        {"sum", AggFunc::kSum},     {"avg", AggFunc::kAvg},
        {"count", AggFunc::kCount}, {"min", AggFunc::kMin},
        {"max", AggFunc::kMax},
    };
    for (const auto& [name, fn] : kAggs) {
      if (lower == name && Peek(1).kind == TokKind::kSymbol &&
          Peek(1).text == "(") {
        Advance();  // agg name
        Advance();  // (
        if (AcceptSymbol("*")) {
          if (fn != AggFunc::kCount) {
            return Status::ParseError("only COUNT accepts *");
          }
          item.column = "*";
        } else {
          ZV_ASSIGN_OR_RETURN(item.column, ExpectIdent());
        }
        ZV_RETURN_NOT_OK(ExpectSymbol(")"));
        item.agg = fn;
        return item;
      }
    }
    Advance();
    item.column = first;
    return item;
  }

  Result<std::unique_ptr<Expr>> ParseOr() {
    std::vector<std::unique_ptr<Expr>> parts;
    ZV_ASSIGN_OR_RETURN(auto first, ParseAnd());
    parts.push_back(std::move(first));
    while (AcceptKeyword("OR")) {
      ZV_ASSIGN_OR_RETURN(auto next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return Expr::Or(std::move(parts));
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    std::vector<std::unique_ptr<Expr>> parts;
    ZV_ASSIGN_OR_RETURN(auto first, ParseUnary());
    parts.push_back(std::move(first));
    while (AcceptKeyword("AND")) {
      ZV_ASSIGN_OR_RETURN(auto next, ParseUnary());
      parts.push_back(std::move(next));
    }
    return Expr::And(std::move(parts));
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (AcceptKeyword("NOT")) {
      ZV_ASSIGN_OR_RETURN(auto child, ParseUnary());
      return Expr::Not(std::move(child));
    }
    if (AcceptSymbol("(")) {
      ZV_ASSIGN_OR_RETURN(auto inner, ParseOr());
      ZV_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    return ParseComparison();
  }

  Result<Value> ParseLiteral() {
    const Token& t = Peek();
    if (t.kind == TokKind::kString) {
      Value v = Value::Str(t.text);
      Advance();
      return v;
    }
    if (t.kind == TokKind::kNumber) {
      Value v = t.is_int ? Value::Int(t.int_value) : Value::Double(t.number);
      Advance();
      return v;
    }
    return Status::ParseError(
        StrFormat("expected literal at %zu (got '%s')", t.pos, t.text.c_str()));
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    ZV_ASSIGN_OR_RETURN(std::string column, ExpectIdent());
    if (AcceptKeyword("IN")) {
      ZV_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> values;
      if (!AcceptSymbol(")")) {
        while (true) {
          ZV_ASSIGN_OR_RETURN(Value v, ParseLiteral());
          values.push_back(std::move(v));
          if (!AcceptSymbol(",")) break;
        }
        ZV_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      return Expr::In(std::move(column), std::move(values));
    }
    if (AcceptKeyword("BETWEEN")) {
      ZV_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
      ZV_RETURN_NOT_OK(ExpectKeyword("AND"));
      ZV_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
      return Expr::Between(std::move(column), std::move(lo), std::move(hi));
    }
    if (AcceptKeyword("LIKE")) {
      const Token& t = Peek();
      if (t.kind != TokKind::kString) {
        return Status::ParseError("LIKE expects a string pattern");
      }
      std::string pattern = t.text;
      Advance();
      return Expr::Like(std::move(column), std::move(pattern));
    }
    if (AcceptKeyword("NOT")) {
      if (AcceptKeyword("IN")) {
        ZV_RETURN_NOT_OK(ExpectSymbol("("));
        std::vector<Value> values;
        if (!AcceptSymbol(")")) {
          while (true) {
            ZV_ASSIGN_OR_RETURN(Value v, ParseLiteral());
            values.push_back(std::move(v));
            if (!AcceptSymbol(",")) break;
          }
          ZV_RETURN_NOT_OK(ExpectSymbol(")"));
        }
        return Expr::Not(Expr::In(std::move(column), std::move(values)));
      }
      return Status::ParseError("expected IN after NOT");
    }
    const Token& t = Peek();
    if (t.kind != TokKind::kSymbol) {
      return Status::ParseError(
          StrFormat("expected comparison operator at %zu", t.pos));
    }
    CompareOp op;
    if (t.text == "=") op = CompareOp::kEq;
    else if (t.text == "!=" || t.text == "<>") op = CompareOp::kNe;
    else if (t.text == "<") op = CompareOp::kLt;
    else if (t.text == "<=") op = CompareOp::kLe;
    else if (t.text == ">") op = CompareOp::kGt;
    else if (t.text == ">=") op = CompareOp::kGe;
    else {
      return Status::ParseError(
          StrFormat("unknown operator '%s' at %zu", t.text.c_str(), t.pos));
    }
    Advance();
    ZV_ASSIGN_OR_RETURN(Value rhs, ParseLiteral());
    return Expr::Compare(std::move(column), op, std::move(rhs));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& text) {
  Lexer lexer(text);
  ZV_ASSIGN_OR_RETURN(auto tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseSelectStatement();
}

Result<std::unique_ptr<Expr>> ParseWhereExpr(const std::string& text) {
  Lexer lexer(text);
  ZV_ASSIGN_OR_RETURN(auto tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseBareExpr();
}

}  // namespace zv::sql
