/// \file parser.h
/// \brief Recursive-descent parser for the SQL subset.

#ifndef ZV_SQL_PARSER_H_
#define ZV_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace zv::sql {

/// Parses a full SELECT statement; errors carry token positions.
Result<SelectStatement> ParseSelect(const std::string& text);

/// Parses a bare boolean expression (the ZQL Constraints column, which by
/// design is "roughly the set of possible expressions for the WHERE clause"
/// — §3.4 of the paper).
Result<std::unique_ptr<Expr>> ParseWhereExpr(const std::string& text);

}  // namespace zv::sql

#endif  // ZV_SQL_PARSER_H_
