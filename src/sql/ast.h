/// \file ast.h
/// \brief AST for the SQL subset the ZQL compiler emits (§5.1):
///
///   SELECT <cols and aggregates> FROM <table>
///   [WHERE <boolean combination of comparisons / IN / BETWEEN / LIKE>]
///   [GROUP BY <cols>] [ORDER BY <cols> [DESC]] [LIMIT n]

#ifndef ZV_SQL_AST_H_
#define ZV_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace zv::sql {

/// Aggregate functions supported in SELECT items.
enum class AggFunc { kNone, kSum, kAvg, kCount, kMin, kMax };

const char* AggFuncToString(AggFunc f);

/// \brief One SELECT-list entry: a bare column or agg(column).
struct SelectItem {
  std::string column;          ///< column name; "*" only with kCount
  AggFunc agg = AggFunc::kNone;

  bool is_aggregate() const { return agg != AggFunc::kNone; }
  std::string DisplayName() const;
};

/// Comparison operators in predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// \brief Boolean predicate expression tree.
struct Expr {
  enum class Kind { kAnd, kOr, kNot, kCompare, kIn, kBetween, kLike };

  Kind kind = Kind::kCompare;

  // kAnd / kOr: 2+ children. kNot: 1 child.
  std::vector<std::unique_ptr<Expr>> children;

  // Leaf payload (kCompare / kIn / kBetween / kLike).
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value value;                ///< kCompare rhs; kLike pattern (string)
  std::vector<Value> values;  ///< kIn list; kBetween uses values[0..1]

  static std::unique_ptr<Expr> Compare(std::string column, CompareOp op,
                                       Value value);
  static std::unique_ptr<Expr> In(std::string column,
                                  std::vector<Value> values);
  static std::unique_ptr<Expr> Between(std::string column, Value lo, Value hi);
  static std::unique_ptr<Expr> Like(std::string column, std::string pattern);
  static std::unique_ptr<Expr> And(std::vector<std::unique_ptr<Expr>> children);
  static std::unique_ptr<Expr> Or(std::vector<std::unique_ptr<Expr>> children);
  static std::unique_ptr<Expr> Not(std::unique_ptr<Expr> child);

  std::unique_ptr<Expr> Clone() const;

  /// Renders as SQL text (parenthesized where needed).
  std::string ToSql() const;
};

/// \brief One ORDER BY key.
struct OrderKey {
  std::string column;
  bool descending = false;
};

/// \brief A full SELECT statement.
struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table;
  std::unique_ptr<Expr> where;  ///< may be null
  std::vector<std::string> group_by;
  /// When non-empty, parallel to `group_by`: a positive entry bins that
  /// (numeric) key column by width — rows group by the bin's lower edge
  /// `floor(v / w) * w`, which is also the value the key column emits —
  /// and 0 groups by the raw value as usual. Engine-side form of
  /// viz/binning.h, produced by the ZQL layer's binning pushdown; the
  /// text parser does not produce it.
  std::vector<double> group_bins;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;  ///< -1 = no limit

  SelectStatement() = default;
  SelectStatement(const SelectStatement& other) { *this = other; }
  SelectStatement& operator=(const SelectStatement& other);
  SelectStatement(SelectStatement&&) = default;
  SelectStatement& operator=(SelectStatement&&) = default;

  /// Renders as SQL text; the inverse of Parser::ParseSelect for the subset.
  std::string ToSql() const;
};

}  // namespace zv::sql

#endif  // ZV_SQL_AST_H_
