#include "sql/ast.h"

#include "common/strings.h"

namespace zv::sql {

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "";
}

std::string SelectItem::DisplayName() const {
  if (!is_aggregate()) return column;
  return std::string(AggFuncToString(agg)) + "(" + column + ")";
}

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Compare(std::string column, CompareOp op,
                                    Value value) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCompare;
  e->column = std::move(column);
  e->op = op;
  e->value = std::move(value);
  return e;
}

std::unique_ptr<Expr> Expr::In(std::string column, std::vector<Value> values) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kIn;
  e->column = std::move(column);
  e->values = std::move(values);
  return e;
}

std::unique_ptr<Expr> Expr::Between(std::string column, Value lo, Value hi) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBetween;
  e->column = std::move(column);
  e->values = {std::move(lo), std::move(hi)};
  return e;
}

std::unique_ptr<Expr> Expr::Like(std::string column, std::string pattern) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLike;
  e->column = std::move(column);
  e->value = Value::Str(std::move(pattern));
  return e;
}

std::unique_ptr<Expr> Expr::And(std::vector<std::unique_ptr<Expr>> children) {
  if (children.size() == 1) return std::move(children[0]);
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAnd;
  e->children = std::move(children);
  return e;
}

std::unique_ptr<Expr> Expr::Or(std::vector<std::unique_ptr<Expr>> children) {
  if (children.size() == 1) return std::move(children[0]);
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kOr;
  e->children = std::move(children);
  return e;
}

std::unique_ptr<Expr> Expr::Not(std::unique_ptr<Expr> child) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNot;
  e->children.push_back(std::move(child));
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->column = column;
  e->op = op;
  e->value = value;
  e->values = values;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

namespace {

std::string Quoted(const Value& v) {
  if (v.is_string()) {
    std::string out = "'";
    for (char c : v.AsString()) {
      if (c == '\'') out += "''";
      else out += c;
    }
    out += "'";
    return out;
  }
  return v.ToString();
}

}  // namespace

std::string Expr::ToSql() const {
  switch (kind) {
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children.size());
      for (const auto& c : children) {
        const bool paren = c->kind == Kind::kAnd || c->kind == Kind::kOr;
        parts.push_back(paren ? "(" + c->ToSql() + ")" : c->ToSql());
      }
      return Join(parts, kind == Kind::kAnd ? " AND " : " OR ");
    }
    case Kind::kNot:
      return "NOT (" + children[0]->ToSql() + ")";
    case Kind::kCompare:
      return column + " " + CompareOpToString(op) + " " + Quoted(value);
    case Kind::kIn: {
      std::vector<std::string> parts;
      parts.reserve(values.size());
      for (const auto& v : values) parts.push_back(Quoted(v));
      return column + " IN (" + Join(parts, ", ") + ")";
    }
    case Kind::kBetween:
      return column + " BETWEEN " + Quoted(values[0]) + " AND " +
             Quoted(values[1]);
    case Kind::kLike:
      return column + " LIKE " + Quoted(value);
  }
  return "";
}

SelectStatement& SelectStatement::operator=(const SelectStatement& other) {
  if (this == &other) return *this;
  items = other.items;
  table = other.table;
  where = other.where ? other.where->Clone() : nullptr;
  group_by = other.group_by;
  group_bins = other.group_bins;
  order_by = other.order_by;
  limit = other.limit;
  return *this;
}

std::string SelectStatement::ToSql() const {
  std::vector<std::string> cols;
  cols.reserve(items.size());
  for (const auto& item : items) cols.push_back(item.DisplayName());
  std::string sql = "SELECT " + Join(cols, ", ") + " FROM " + table;
  if (where) sql += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    std::vector<std::string> keys;
    keys.reserve(group_by.size());
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i < group_bins.size() && group_bins[i] > 0) {
        // Engine-internal binned key: rendered distinctly so statements
        // differing only in bin width never collide in logs/fingerprints.
        keys.push_back(StrFormat("BIN(%s, %g)", group_by[i].c_str(),
                                 group_bins[i]));
      } else {
        keys.push_back(group_by[i]);
      }
    }
    sql += " GROUP BY " + Join(keys, ", ");
  }
  if (!order_by.empty()) {
    std::vector<std::string> keys;
    keys.reserve(order_by.size());
    for (const auto& k : order_by) {
      keys.push_back(k.column + (k.descending ? " DESC" : ""));
    }
    sql += " ORDER BY " + Join(keys, ", ");
  }
  if (limit >= 0) sql += " LIMIT " + std::to_string(limit);
  return sql;
}

}  // namespace zv::sql
