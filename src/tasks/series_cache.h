/// \file series_cache.h
/// \brief Cached series alignment for batch scoring: a ScoringContext
/// aligns + normalizes every Visualization of a candidate set exactly once
/// per (normalization, alignment) configuration, into one contiguous
/// row-major buffer the distance span kernels score straight out of.
///
/// The legacy D(f, g) primitive re-aligned and re-normalized both series on
/// every call — O(N · |X| log |X|) redundant work on the ZQL hot loop, where
/// the query visualization is re-flattened once per candidate. The context
/// replaces that with one global alignment pass and O(1) lookups.
///
/// Exactness contract: PairDistance(i, j, metric) returns the *same value*
/// as Distance(*set[i], *set[j], metric, norm, align). When both rows cover
/// the full global x-domain (the common case — candidates produced by one
/// ZQL row share their x values), the pairwise union domain *is* the global
/// domain and the precomputed normalized rows are used directly. Otherwise a
/// slow path gathers the pairwise restriction and reproduces the legacy
/// computation bit-for-bit.

#ifndef ZV_TASKS_SERIES_CACHE_H_
#define ZV_TASKS_SERIES_CACHE_H_

#include <cstdint>
#include <vector>

#include "tasks/distance.h"
#include "viz/visualization.h"

namespace zv {

/// \brief A dense row-major matrix of aligned series — one row per
/// visualization, rows contiguous in one allocation.
struct AlignedMatrix {
  std::vector<double> data;
  size_t rows = 0;
  size_t cols = 0;

  void Resize(size_t r, size_t c) {
    rows = r;
    cols = c;
    data.assign(r * c, 0.0);
  }
  const double* Row(size_t i) const { return data.data() + i * cols; }
  double* MutableRow(size_t i) { return data.data() + i * cols; }
};

/// \brief Immutable batch-scoring state over one candidate set.
///
/// Construction performs the only O(set · |X|) work; afterwards every method
/// is const and thread-safe, so ParallelFor workers score concurrently.
class ScoringContext {
 public:
  ScoringContext(const std::vector<const Visualization*>& set,
                 Normalization norm, Alignment align);

  size_t size() const { return raw_.rows; }

  /// Distance between candidates i and j — equal to
  /// Distance(*set[i], *set[j], metric, norm, align).
  double PairDistance(size_t i, size_t j, DistanceMetric metric) const;

  /// PairDistance with early termination for the top-k pruned scan: once
  /// the partial distance provably exceeds `bound` (see the bounded span
  /// kernels in distance.h), scoring stops and +inf is returned — the
  /// candidate cannot enter a top-k whose k-th best is `bound`. Calls that
  /// run to completion return exactly PairDistance(i, j, metric), so
  /// mixing bounded and unbounded calls never perturbs a selection.
  double PairDistanceBounded(size_t i, size_t j, DistanceMetric metric,
                             double bound) const;

  /// The set aligned over the global x-domain and normalized per row —
  /// exactly AlignToMatrix/AlignToMatrixInterpolated(set) + NormalizeSeries
  /// per row, but contiguous. Rows feed k-means and the outlier scorer.
  const AlignedMatrix& normalized() const { return normalized_; }

  /// True when row i covers the whole global domain (fast-path eligible
  /// against any other full row). Exposed for tests and benches.
  bool full(size_t i) const { return full_[i] != 0; }

  /// Approximate resident bytes of the context's matrices and presence
  /// maps — what a ContextCache entry charges against its byte budget.
  size_t MemoryBytes() const;

 private:
  /// Gathers row `r` restricted to the pairwise domain described by
  /// `positions` (sorted global x positions) and `pair_series` segments,
  /// re-interpolating and normalizing exactly like the legacy pairwise path.
  void BuildPairRow(size_t r, const std::vector<uint32_t>& positions,
                    size_t pair_series, std::vector<double>* out) const;

  Normalization norm_;
  Alignment align_;
  size_t width_ = 0;       ///< global x-domain size
  size_t max_series_ = 0;  ///< widest series count in the set

  AlignedMatrix raw_;         ///< zero-filled values, no interpolation
  AlignedMatrix normalized_;  ///< global-domain aligned + normalized rows
  std::vector<uint8_t> cell_present_;  ///< raw_.rows x raw_.cols presence
  std::vector<uint8_t> x_present_;     ///< rows x width_: x value present
  std::vector<uint8_t> full_;          ///< row covers every cell
  std::vector<uint32_t> series_count_;  ///< per row, >= 1
};

}  // namespace zv

#endif  // ZV_TASKS_SERIES_CACHE_H_
