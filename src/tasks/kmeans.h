/// \file kmeans.h
/// \brief Seeded Lloyd's k-means with k-means++ initialization — the engine
/// behind the representative primitive R and the recommendation service.

#ifndef ZV_TASKS_KMEANS_H_
#define ZV_TASKS_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace zv {

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  ///< k centroid vectors
  std::vector<int> assignment;                 ///< per-point cluster index
  /// Index of the input point closest to each centroid (the "medoid"),
  /// which is what R returns as the representative visualization.
  std::vector<size_t> medoids;
  double inertia = 0;  ///< sum of squared distances to assigned centroids
};

/// Runs k-means on row-vector `points`. k is clamped to the number of
/// points. Deterministic for a fixed seed.
KMeansResult KMeans(const std::vector<std::vector<double>>& points, size_t k,
                    uint64_t seed = 42, int max_iters = 50);

}  // namespace zv

#endif  // ZV_TASKS_KMEANS_H_
