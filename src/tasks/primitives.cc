#include "tasks/primitives.h"

#include <algorithm>
#include <numeric>

#include "common/parallel.h"
#include "common/stats.h"
#include "tasks/topk.h"

namespace zv {

double Trend(const Visualization& f) {
  std::vector<double> ys = f.ys();
  if (ys.size() < 2) return 0;
  NormalizeSeries(&ys, Normalization::kZScore);
  // Fit against normalized x positions so slopes are comparable across
  // visualizations with different domains.
  std::vector<double> xs(ys.size());
  const double denom = static_cast<double>(ys.size() - 1);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i) / denom;
  }
  return FitLine(xs, ys).slope;
}

std::vector<size_t> Representatives(
    const std::vector<const Visualization*>& set, size_t k,
    const TaskOptions& opts) {
  if (set.empty() || k == 0) return {};
  auto matrix = opts.alignment == Alignment::kInterpolate
                    ? AlignToMatrixInterpolated(set)
                    : AlignToMatrix(set);
  for (auto& row : matrix) NormalizeSeries(&row, opts.normalization);
  KMeansResult km = KMeans(matrix, k, opts.kmeans_seed);
  // Deduplicate medoids (k > #distinct clusters can repeat) preserving order.
  std::vector<size_t> out;
  for (size_t m : km.medoids) {
    if (std::find(out.begin(), out.end(), m) == out.end()) out.push_back(m);
  }
  return out;
}

std::vector<double> OutlierScores(const std::vector<const Visualization*>& set,
                                  size_t k_representatives,
                                  const TaskOptions& opts) {
  std::vector<double> scores(set.size(), 0.0);
  if (set.empty()) return scores;
  auto matrix = AlignToMatrix(set);
  for (auto& row : matrix) NormalizeSeries(&row, opts.normalization);
  KMeansResult km =
      KMeans(matrix, std::max<size_t>(1, k_representatives), opts.kmeans_seed);
  // An outlier often captures a centroid all to itself, which would give it
  // a perfect score of 0 under a naive min-distance-to-centroids rule.
  // Representative trends are trends many visualizations share, so only
  // centroids of non-singleton clusters count as references (all centroids
  // if every cluster is a singleton).
  std::vector<size_t> cluster_sizes(km.centroids.size(), 0);
  for (int a : km.assignment) ++cluster_sizes[static_cast<size_t>(a)];
  std::vector<const std::vector<double>*> references;
  for (size_t c = 0; c < km.centroids.size(); ++c) {
    if (cluster_sizes[c] >= 2) references.push_back(&km.centroids[c]);
  }
  if (references.empty()) {
    for (const auto& c : km.centroids) references.push_back(&c);
  }
  // Each candidate's reference distance is independent — fan the loop out
  // over the pool; scores[i] is a preallocated slot, so the result is
  // identical at any thread count.
  ParallelFor(matrix.size(), [&](size_t i) {
    double best = -1;
    for (const auto* centroid : references) {
      const double d = VectorDistance(matrix[i], *centroid, opts.metric);
      if (best < 0 || d < best) best = d;
    }
    scores[i] = best < 0 ? 0 : best;
  });
  return scores;
}

size_t AutoRepresentativeCount(const std::vector<const Visualization*>& set,
                               size_t max_k, const TaskOptions& opts) {
  if (set.size() <= 2) return set.empty() ? 1 : set.size();
  max_k = std::min(max_k, set.size());
  if (max_k <= 2) return max_k;
  auto matrix = opts.alignment == Alignment::kInterpolate
                    ? AlignToMatrixInterpolated(set)
                    : AlignToMatrix(set);
  for (auto& row : matrix) NormalizeSeries(&row, opts.normalization);
  std::vector<double> inertia(max_k + 1, 0.0);
  for (size_t k = 1; k <= max_k; ++k) {
    inertia[k] = KMeans(matrix, k, opts.kmeans_seed).inertia;
  }
  // Elbow: the k with the largest positive curvature of the inertia curve.
  size_t best_k = 1;
  double best_curvature = -1;
  for (size_t k = 2; k < max_k; ++k) {
    const double curvature =
        inertia[k - 1] + inertia[k + 1] - 2.0 * inertia[k];
    if (curvature > best_curvature) {
      best_curvature = curvature;
      best_k = k;
    }
  }
  return best_k;
}

TaskLibrary TaskLibrary::Default(const TaskOptions& opts) {
  TaskLibrary lib;
  lib.trend = Trend;
  lib.default_options = opts;
  lib.distance_is_default = true;
  lib.trend_is_default = true;
  lib.distance = [opts](const Visualization& a, const Visualization& b) {
    return Distance(a, b, opts.metric, opts.normalization, opts.alignment);
  };
  lib.representatives = [opts](const std::vector<const Visualization*>& set,
                               size_t k) {
    return Representatives(set, k, opts);
  };
  return lib;
}

std::vector<size_t> ApplyMechanism(Mechanism mech,
                                   const std::vector<double>& scores,
                                   const MechanismFilter& filter) {
  // k-limited argmin/argmax without a threshold is a pure top-k problem:
  // a bounded heap selects the same indices in the same order as the
  // stable argsort below (ties break by lower index either way), in
  // O(n log k) instead of O(n log n). k <= 0 stays on the legacy path,
  // whose cut-after-push loop returns one element for k = 0 — ZQL rejects
  // such filters at parse time, but direct callers get the historical
  // behavior.
  if (filter.k.has_value() && *filter.k > 0 && !filter.t_above.has_value() &&
      !filter.t_below.has_value() &&
      (mech == Mechanism::kArgMin || mech == Mechanism::kArgMax)) {
    const size_t k =
        std::min(scores.size(), static_cast<size_t>(*filter.k));
    return TopKIndices(scores, k,
                       mech == Mechanism::kArgMin ? TopKOrder::kAscending
                                                  : TopKOrder::kDescending);
  }

  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);

  if (mech == Mechanism::kArgMin) {
    std::stable_sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
      return scores[a] < scores[b];
    });
  } else if (mech == Mechanism::kArgMax) {
    std::stable_sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
      return scores[a] > scores[b];
    });
  } else {
    // argany: keep input order, but a threshold still sorts the survivors
    // by score per §3.8 ("sorts the values in increasing order of the
    // objective function") — we retain input order for pure argany[k=n].
    if (filter.t_above.has_value()) {
      std::stable_sort(order.begin(), order.end(),
                       [&scores](size_t a, size_t b) {
                         return scores[a] > scores[b];
                       });
    } else if (filter.t_below.has_value()) {
      std::stable_sort(order.begin(), order.end(),
                       [&scores](size_t a, size_t b) {
                         return scores[a] < scores[b];
                       });
    }
  }

  std::vector<size_t> out;
  for (size_t idx : order) {
    if (filter.t_above.has_value() && !(scores[idx] > *filter.t_above))
      continue;
    if (filter.t_below.has_value() && !(scores[idx] < *filter.t_below))
      continue;
    out.push_back(idx);
    if (filter.k.has_value() &&
        out.size() >= static_cast<size_t>(*filter.k)) {
      break;
    }
  }
  return out;
}

}  // namespace zv
