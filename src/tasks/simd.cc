#include "tasks/simd.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/strings.h"

#if !defined(ZV_SIMD_DISABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define ZV_SIMD_HAVE_AVX2 1
// zv-lint: raw-simd — this translation unit is the sanctioned intrinsic home.
#include <immintrin.h>
#else
#define ZV_SIMD_HAVE_AVX2 0
#endif

namespace zv::simd {

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "scalar";
}

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These define the accumulation order everything
// else reproduces: sixteen independent partial sums, lane k taking elements
// k, k+16, k+32, ...
//
// Sixteen lanes, not the historical four: with only four chains both tiers
// sit on the FP-add latency wall (four adds in flight regardless of vector
// width), so a 4-lane AVX2 kernel measures ~1.0x against the 4-sum scalar
// loop. Sixteen chains clear the latency bound and let the AVX2 tier run at
// port throughput.
//
// The reference is pinned un-vectorized: the `scalar` tier is the portable
// bit-reference and the ZV_SIMD=off escape hatch, and with auto-vectorization
// the compiler quietly turns this loop into SSE code — making the knob a
// no-op and the scalar-vs-vector comparison in bench_distance circular. The
// attribute only pins *this* function; it does not change the bits, only the
// instruction selection (verified lane-for-lane by param_tasks_test).
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize")))
#endif
void SumSqDiff16Scalar(const double* a, const double* b, size_t n16,
                       double s[kSumLanes]) {
  double t[kSumLanes];
  std::memcpy(t, s, sizeof t);
  for (size_t i = 0; i + kSumLanes <= n16; i += kSumLanes) {
#if defined(__clang__)
#pragma clang loop vectorize(disable)
#endif
    for (size_t k = 0; k < kSumLanes; ++k) {
      const double d = a[i + k] - b[i + k];
      t[k] += d * d;
    }
  }
  std::memcpy(s, t, sizeof t);
}

void AbsDiffRowScalar(double x, const double* b, size_t n, double* out) {
  for (size_t j = 0; j < n; ++j) out[j] = std::fabs(x - b[j]);
}

#if ZV_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with a per-function target attribute so the rest of
// the binary needs no -mavx2; only reachable after the cpuid probe passes.
//
// Bit-exactness notes:
//  - four __m256d accumulators whose lanes are exactly the scalar t[0..15]:
//    accumulator j holds lanes 4j..4j+3, and each vector step adds
//    (a[i+k]-b[i+k])^2 to lane k — the same per-lane order and rounding as
//    the scalar reference body (lanes are independent chains, so the order
//    *between* lanes within a block is immaterial to the bits);
//  - separate _mm256_mul_pd + _mm256_add_pd, never _mm256_fmadd_pd — FMA's
//    single rounding would change bits;
//  - |v| as andnot with the sign mask, IEEE-754 bit-exact (incl. NaN/inf).

__attribute__((target("avx2"))) void SumSqDiff16Avx2(const double* a,
                                                     const double* b,
                                                     size_t n16,
                                                     double s[kSumLanes]) {
  __m256d acc0 = _mm256_loadu_pd(s);
  __m256d acc1 = _mm256_loadu_pd(s + 4);
  __m256d acc2 = _mm256_loadu_pd(s + 8);
  __m256d acc3 = _mm256_loadu_pd(s + 12);
  for (size_t i = 0; i + kSumLanes <= n16; i += kSumLanes) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    const __m256d d2 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 8), _mm256_loadu_pd(b + i + 8));
    const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(a + i + 12),
                                     _mm256_loadu_pd(b + i + 12));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(d2, d2));
    acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(d3, d3));
  }
  _mm256_storeu_pd(s, acc0);
  _mm256_storeu_pd(s + 4, acc1);
  _mm256_storeu_pd(s + 8, acc2);
  _mm256_storeu_pd(s + 12, acc3);
}

__attribute__((target("avx2"))) void AbsDiffRowAvx2(double x, const double* b,
                                                    size_t n, double* out) {
  const __m256d vx = _mm256_set1_pd(x);
  const __m256d sign = _mm256_set1_pd(-0.0);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d d = _mm256_sub_pd(vx, _mm256_loadu_pd(b + j));
    _mm256_storeu_pd(out + j, _mm256_andnot_pd(sign, d));
  }
  for (; j < n; ++j) out[j] = std::fabs(x - b[j]);
}

#endif  // ZV_SIMD_HAVE_AVX2

const Kernels kScalarKernels = {&SumSqDiff16Scalar, &AbsDiffRowScalar};
#if ZV_SIMD_HAVE_AVX2
const Kernels kAvx2Kernels = {&SumSqDiff16Avx2, &AbsDiffRowAvx2};
#endif

Level ResolveLevel() {
  Level want = Level::kAvx2;  // auto: the widest tier we compiled
  if (const char* env = std::getenv("ZV_SIMD")) {
    const std::string v = ToLower(Trim(env));
    if (v == "off" || v == "scalar" || v == "0") {
      want = Level::kScalar;
    } else if (v == "avx2" || v == "auto" || v.empty()) {
      want = Level::kAvx2;
    } else {
      want = Level::kScalar;  // unknown spelling: fail safe, stay portable
    }
  }
  if (want == Level::kAvx2 && !Supported(Level::kAvx2)) want = Level::kScalar;
  return want;
}

}  // namespace

bool Supported(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
#if ZV_SIMD_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

Level ActiveLevel() {
  static const Level level = ResolveLevel();
  return level;
}

size_t ActiveWidth() {
  return ActiveLevel() == Level::kAvx2 ? 4 : 1;
}

const Kernels& KernelsFor(Level level) {
#if ZV_SIMD_HAVE_AVX2
  if (level == Level::kAvx2) return kAvx2Kernels;
#else
  (void)level;
#endif
  return kScalarKernels;
}

const Kernels& ActiveKernels() {
  static const Kernels& kernels = KernelsFor(ActiveLevel());
  return kernels;
}

}  // namespace zv::simd
