#include "tasks/context_pool.h"

#include <chrono>
#include <utility>

#include "common/cancel.h"
#include "common/sync.h"

namespace zv {

namespace {

/// How often a waiting caller re-checks its cancellation token; the wait
/// is otherwise event-driven (the builder notifies on completion).
constexpr std::chrono::milliseconds kCancelPollInterval{2};

}  // namespace

std::shared_ptr<const ScoringContext> ScoringContextPool::GetOrBuild(
    const std::string& fingerprint, const Builder& build, bool* reused) {
  if (reused != nullptr) *reused = false;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (cache_ != nullptr) {
      // Cache probe under the pool lock: cheap (sharded LRU lookup), and
      // it closes the window where a finished build has landed in the
      // cache but its in-flight entry is already gone.
      std::shared_ptr<const ScoringContext> cached = cache_->Get(fingerprint);
      if (cached != nullptr) {
        if (reused != nullptr) *reused = true;
        return cached;
      }
    }
    auto it = in_flight_.find(fingerprint);
    if (it == in_flight_.end()) break;  // become the builder
    // Someone is building this fingerprint right now: wait for their
    // round to finish, polling our own cancellation.
    const std::shared_ptr<InFlight> entry = it->second;
    while (!entry->done) {
      cv_.wait_for(lock, kCancelPollInterval);
      if (entry->done) break;
      if (CancellationRequested()) return nullptr;
    }
    if (entry->ctx != nullptr) {
      ++waits_shared_;
      if (reused != nullptr) *reused = true;
      return entry->ctx;
    }
    // The builder's round produced nothing (it was cancelled mid-build):
    // loop to re-elect — possibly us this time.
  }

  const auto entry = std::make_shared<InFlight>();
  in_flight_[fingerprint] = entry;
  std::shared_ptr<const ScoringContext> ctx;
  {
    // The build runs outside the pool lock so waiters can park and other
    // fingerprints can elect their own builders meanwhile.
    ScopedUnlock unlocked(lock);
    ctx = build();
  }
  entry->done = true;
  entry->ctx = ctx;
  // Erase our round so the next miss elects a fresh builder; waiters hold
  // the entry by shared_ptr and read its result regardless.
  auto it = in_flight_.find(fingerprint);
  if (it != in_flight_.end() && it->second == entry) in_flight_.erase(it);
  if (ctx != nullptr) {
    ++builds_;
    if (cache_ != nullptr) cache_->Put(fingerprint, ctx);
  }
  cv_.notify_all();
  return ctx;
}

uint64_t ScoringContextPool::builds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return builds_;
}

uint64_t ScoringContextPool::waits_shared() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waits_shared_;
}

}  // namespace zv
