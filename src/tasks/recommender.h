/// \file recommender.h
/// \brief The zenvisage Recommendation Service (§6.2): given the
/// visualizations for the data the user is currently viewing, surface the
/// k most *diverse* trends via k-means clustering (default k = 5).

#ifndef ZV_TASKS_RECOMMENDER_H_
#define ZV_TASKS_RECOMMENDER_H_

#include <vector>

#include "tasks/primitives.h"
#include "viz/visualization.h"

namespace zv {

struct RecommenderOptions {
  size_t k = 5;  ///< number of diverse clusters (paper default)
  TaskOptions task_options;
};

/// \brief One recommended visualization with its cluster context.
struct Recommendation {
  size_t index;        ///< into the candidate set
  size_t cluster_size; ///< how many candidates this trend represents
};

/// Returns up to k recommendations — the medoid of each k-means cluster,
/// ordered by descending cluster size (most common trend first).
std::vector<Recommendation> RecommendDiverse(
    const std::vector<const Visualization*>& candidates,
    const RecommenderOptions& opts = {});

}  // namespace zv

#endif  // ZV_TASKS_RECOMMENDER_H_
