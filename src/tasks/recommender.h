/// \file recommender.h
/// \brief The zenvisage Recommendation Service (§6.2): given the
/// visualizations for the data the user is currently viewing, surface the
/// k most *diverse* trends via k-means clustering (default k = 5), or the
/// k most *similar* ones to a probe visualization via top-k pruned
/// distance scoring (§6.1).

#ifndef ZV_TASKS_RECOMMENDER_H_
#define ZV_TASKS_RECOMMENDER_H_

#include <vector>

#include "tasks/primitives.h"
#include "viz/visualization.h"

namespace zv {

struct RecommenderOptions {
  size_t k = 5;  ///< number of diverse clusters (paper default)
  TaskOptions task_options;
};

/// \brief One recommended visualization with its cluster context.
struct Recommendation {
  size_t index;        ///< into the candidate set
  size_t cluster_size; ///< how many candidates this trend represents
};

/// Returns up to k recommendations — the medoid of each k-means cluster,
/// ordered by descending cluster size (most common trend first).
///
/// The candidate set is aligned and normalized exactly once over the shared
/// AlignmentLayout convention (the same layout ScoringContext caches for
/// the ZQL scoring loop); no per-pair re-alignment happens anywhere in the
/// clustering.
std::vector<Recommendation> RecommendDiverse(
    const std::vector<const Visualization*>& candidates,
    const RecommenderOptions& opts = {});

/// \brief One similarity-search hit: candidate index + its exact distance
/// to the query.
struct SimilarResult {
  size_t index;     ///< into the candidate set
  double distance;  ///< exact D(query, candidate) under opts
};

/// Returns the k candidates most similar to `query` (§6.1: the
/// drag-and-drop / sketch "find me more like this" interaction), ordered
/// most-similar first with ties broken by lower index — exactly the first
/// k of a stable argsort over D(query, candidate).
///
/// Scoring runs through a ScoringContext (every series aligned +
/// normalized once) with the early-terminating distance kernels: a shared,
/// only-ever-tightening top-k bound lets candidates that provably fall
/// outside the top k abandon their kernel mid-span. The scan parallelizes
/// over ZV_THREADS; the bound is a pure optimization, so results are
/// byte-identical to the full scan at any thread count.
std::vector<SimilarResult> RecommendSimilar(
    const Visualization& query,
    const std::vector<const Visualization*>& candidates, size_t k,
    const TaskOptions& opts = {});

}  // namespace zv

#endif  // ZV_TASKS_RECOMMENDER_H_
