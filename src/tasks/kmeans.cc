#include "tasks/kmeans.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "common/rng.h"

namespace zv {

namespace {

double Sq(double x) { return x * x; }

double SqDist(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) s += Sq(a[i] - b[i]);
  for (size_t i = n; i < a.size(); ++i) s += Sq(a[i]);
  for (size_t i = n; i < b.size(); ++i) s += Sq(b[i]);
  return s;
}

}  // namespace

KMeansResult KMeans(const std::vector<std::vector<double>>& points, size_t k,
                    uint64_t seed, int max_iters) {
  KMeansResult result;
  const size_t n = points.size();
  if (n == 0 || k == 0) return result;
  k = std::min(k, n);
  Rng rng(seed);

  // k-means++ seeding.
  std::vector<size_t> centers;
  centers.push_back(rng.Uniform(n));
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], SqDist(points[i], points[centers.back()]));
      total += d2[i];
    }
    if (total <= 0) {
      // All remaining points coincide with chosen centers; pick arbitrary.
      centers.push_back(centers.size() % n);
      continue;
    }
    double target = rng.UniformDouble() * total;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      target -= d2[i];
      if (target <= 0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(chosen);
  }

  const size_t dim = points[0].size();
  result.centroids.resize(k);
  for (size_t c = 0; c < k; ++c) result.centroids[c] = points[centers[c]];
  result.assignment.assign(n, 0);

  for (int iter = 0; iter < max_iters; ++iter) {
    // Assign. Each point's nearest centroid is independent; assignment[i]
    // is a preallocated slot, so the parallel result is identical to the
    // serial one at any thread count.
    std::atomic<bool> changed{false};
    ParallelFor(n, [&](size_t i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d = SqDist(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed.store(true, std::memory_order_relaxed);
      }
    });
    if (!changed.load(std::memory_order_relaxed) && iter > 0) break;
    // Update.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(result.assignment[i]);
      ++counts[c];
      for (size_t d = 0; d < dim && d < points[i].size(); ++d) {
        sums[c][d] += points[i][d];
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  // Inertia + medoids.
  result.inertia = 0;
  result.medoids.assign(k, 0);
  std::vector<double> best_d(k, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    const size_t c = static_cast<size_t>(result.assignment[i]);
    const double d = SqDist(points[i], result.centroids[c]);
    result.inertia += d;
    if (d < best_d[c]) {
      best_d[c] = d;
      result.medoids[c] = i;
    }
  }
  return result;
}

}  // namespace zv
