/// \file context_pool.h
/// \brief Single-flight ScoringContext construction across concurrent
/// queries — the in-flight generalization of ContextCache.
///
/// The cache (tasks/context_cache.h) deduplicates *completed* builds; it
/// does nothing for the thundering-herd case the serving layer actually
/// sees, where N sessions fire the same exploration query within one
/// window and all N miss, then all N build the same alignment matrix. The
/// pool closes that gap: the first caller for a fingerprint becomes the
/// builder, concurrent callers for the same fingerprint block and share
/// the built context, and the result lands in the cache (when one is
/// attached) for later queries.
///
/// Sharing is bit-exact for the same reason cache reuse is: fingerprints
/// (ScoringSetFingerprint) cover candidate identity, fetched data, and
/// scoring configuration, so two queries with equal fingerprints would
/// have built byte-identical contexts anyway.
///
/// Thread-safe. A caller cancelled while waiting gets nullptr back and
/// should build locally (its query is about to observe the cancel at the
/// next poll anyway); a builder never blocks on anyone.

#ifndef ZV_TASKS_CONTEXT_POOL_H_
#define ZV_TASKS_CONTEXT_POOL_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "tasks/context_cache.h"

namespace zv {

class ScoringContextPool {
 public:
  /// `cache` (optional) receives completed builds and answers lookups
  /// first; it must outlive the pool. Without a cache the pool still
  /// deduplicates concurrent in-flight builds.
  explicit ScoringContextPool(ContextCache* cache = nullptr)
      : cache_(cache) {}

  ScoringContextPool(const ScoringContextPool&) = delete;
  ScoringContextPool& operator=(const ScoringContextPool&) = delete;

  /// The context builder: runs at most once per GetOrBuild round, outside
  /// the pool lock, on the electing caller's thread. May return nullptr
  /// (the build observed cancellation); waiters then re-elect.
  using Builder =
      std::function<std::shared_ptr<const ScoringContext>()>;

  /// Returns the context for `fingerprint` — from the cache, from a
  /// concurrent builder, or by running `build` on this thread. `reused`
  /// (optional) is set true when the context arrived without this thread
  /// building it. Returns nullptr only when this caller was cancelled
  /// while waiting (or its own build returned nullptr).
  std::shared_ptr<const ScoringContext> GetOrBuild(
      const std::string& fingerprint, const Builder& build,
      bool* reused = nullptr);

  /// --- Monitoring ------------------------------------------------------
  uint64_t builds() const;
  uint64_t waits_shared() const;  ///< calls served by a concurrent builder

 private:
  struct InFlight {
    bool done = false;
    std::shared_ptr<const ScoringContext> ctx;
  };

  ContextCache* cache_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Fingerprint -> the build currently in flight. Entries are erased by
  /// their builder on completion; waiters keep theirs alive via
  /// shared_ptr, so a late waiter of a finished round simply retries.
  std::map<std::string, std::shared_ptr<InFlight>> in_flight_;
  uint64_t builds_ = 0;
  uint64_t waits_shared_ = 0;
};

}  // namespace zv

#endif  // ZV_TASKS_CONTEXT_POOL_H_
