#include "tasks/topk.h"

#include <algorithm>

namespace zv {

void TopKCollector::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!WorseThan(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void TopKCollector::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t l = 2 * i + 1;
    const size_t r = l + 1;
    size_t worst = i;
    if (l < n && WorseThan(heap_[l], heap_[worst])) worst = l;
    if (r < n && WorseThan(heap_[r], heap_[worst])) worst = r;
    if (worst == i) return;
    std::swap(heap_[i], heap_[worst]);
    i = worst;
  }
}

void TopKCollector::Offer(double score, size_t index) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    heap_.push_back({score, index});
    SiftUp(heap_.size() - 1);
    return;
  }
  // Full: the candidate enters only if it orders strictly before the worst
  // kept one (the root). Equal (score, index) pairs cannot occur — indices
  // are unique — so strictness matches the stable-argsort prefix exactly.
  if (!TopKBefore(order_, score, index, heap_[0].score, heap_[0].index)) {
    return;
  }
  heap_[0] = {score, index};
  SiftDown(0);
}

std::vector<ScoredIndex> TopKCollector::Sorted() const {
  std::vector<ScoredIndex> out = heap_;
  std::sort(out.begin(), out.end(),
            [this](const ScoredIndex& a, const ScoredIndex& b) {
              return TopKBefore(order_, a.score, a.index, b.score, b.index);
            });
  return out;
}

std::vector<size_t> TopKCollector::SortedIndices() const {
  std::vector<size_t> out;
  const std::vector<ScoredIndex> sorted = Sorted();
  out.reserve(sorted.size());
  for (const ScoredIndex& s : sorted) out.push_back(s.index);
  return out;
}

void SharedTopK::Offer(double score, size_t index) {
  // Fast reject: once the heap is full, a candidate strictly worse than the
  // published bound can never enter. Score ties still take the lock (the
  // index tie-break needs the real heap root), but those are rare.
  const double b = bound_.load(std::memory_order_relaxed);
  if (collector_.order() == TopKOrder::kAscending ? score > b : score < b) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  collector_.Offer(score, index);
  bound_.store(collector_.Bound(), std::memory_order_relaxed);
}

std::vector<size_t> TopKIndices(const std::vector<double>& scores, size_t k,
                                TopKOrder order) {
  TopKCollector topk(k, order);
  for (size_t i = 0; i < scores.size(); ++i) topk.Offer(scores[i], i);
  return topk.SortedIndices();
}

}  // namespace zv
