#ifndef ZV_TASKS_SIMD_H_
#define ZV_TASKS_SIMD_H_

/// The kernel layer: explicit SIMD inner loops behind a runtime-dispatched
/// function table, with a portable scalar fallback.
///
/// This header is the *only* sanctioned home for vector intrinsics in the
/// tree (enforced by the `raw-simd` zv-lint rule): everything above it —
/// distance kernels, scoring, pruning — calls through the kernel table and
/// stays intrinsic-free.
///
/// ## Bit-exactness contract
///
/// Every kernel here is a drop-in replacement for a specific scalar loop in
/// `tasks/distance.cc`, and the vector implementations reproduce that loop's
/// *exact* floating-point evaluation order:
///
///  - `sum_sq_diff16` carries `kSumLanes` (16) independent partial sums
///    where lane `k` accumulates elements `k, k+16, k+32, ...`. The AVX2
///    version holds the sixteen sums as four `__m256d` accumulators and uses
///    separate multiply and add (never FMA, which would skip the
///    intermediate rounding the scalar code performs). Sixteen lanes rather
///    than the historical four because four independent FP-add chains are
///    latency-bound at the *same* throughput at any vector width — the
///    scalar and vector tiers would tie; see the note in simd.cc.
///  - `abs_diff_row` computes `out[j] = |x - b[j]|`; clearing the sign bit
///    is bit-exact for every input including NaN and infinity.
///  - NaN carve-out: when an accumulator lane and its addend are *both*
///    NaN, which payload survives is pinned by neither C++ nor hardware
///    conventions (the compiler may commute an add; x86 keeps the first
///    source operand) — so raw `sum_sq_diff16` lanes promise only "NaN on
///    one tier iff NaN on every tier", not the NaN's bit pattern. The
///    public span kernels in tasks/distance.cc canonicalize a NaN distance
///    to the one quiet NaN before returning, restoring full byte-identity
///    for everything observable above the kernel table.
///  - `CombineSums` below is the one sanctioned reduction of the sixteen
///    partial sums to a scalar; every caller (unbounded span, bounded
///    checkpoints, tests, benches) must fold through it so the combine
///    order cannot drift between call sites.
///
/// Because the accumulation order is fixed, scalar/AVX2/bounded/unbounded
/// paths all return the same bits, so top-k pruning, ScoringContext reuse,
/// result fingerprints, and the ResultCache are untouched by dispatch.
///
/// ## Dispatch
///
/// The active level is resolved once per process: compile-time opt-out
/// (CMake `-DZV_SIMD=OFF` → `ZV_SIMD_DISABLED`), then the `ZV_SIMD`
/// environment knob (`off`/`scalar` forces the fallback, `avx2` requests
/// AVX2, `auto`/unset probes), then `__builtin_cpu_supports("avx2")`.
/// Requesting an unsupported level silently degrades to scalar — the
/// contract above makes that invisible except in throughput.

#include <cstddef>

namespace zv::simd {

/// Kernel implementation tiers, ordered by width.
enum class Level {
  kScalar,  ///< portable C++, one element per step
  kAvx2,    ///< 4 x double per vector (x86-64 AVX2)
};

/// Lowercase spelling used in EXPLAIN notes, stats docs and bench records.
const char* LevelName(Level level);

/// Independent partial sums every `sum_sq_diff16` tier carries. Enough
/// chains to clear the FP-add latency wall at AVX2 width; fixed by the
/// bit-exactness contract, so changing it changes distance bits.
inline constexpr size_t kSumLanes = 16;

/// The dispatchable inner loops. All pointers may be unaligned; `n16`
/// counts must be multiples of `kSumLanes` (callers handle the scalar tail
/// themselves so the tail order matches the reference kernel).
struct Kernels {
  /// Accumulates squared differences over the length-`n16` prefix into the
  /// sixteen partial sums `s[0..15]`: lane `k` adds `(a[i+k]-b[i+k])^2` for
  /// `i = 0, 16, 32, ...`. Sums are read-modify-write so bounded kernels
  /// can call once per check-stride block and keep accumulating.
  void (*sum_sq_diff16)(const double* a, const double* b, size_t n16,
                        double s[kSumLanes]);
  /// Writes `out[j] = |x - b[j]|` for `j in [0, n)` (any `n`). `out` must
  /// not alias `b`.
  void (*abs_diff_row)(double x, const double* b, size_t n, double* out);
};

/// The one sanctioned reduction of the sixteen partial sums: a fixed
/// pairwise tree (adjacent pairs, then pairs of pairs, ...). Part of the
/// bit-exactness contract — any other association would change bits.
inline double CombineSums(const double s[kSumLanes]) {
  const double q0 = (s[0] + s[1]) + (s[2] + s[3]);
  const double q1 = (s[4] + s[5]) + (s[6] + s[7]);
  const double q2 = (s[8] + s[9]) + (s[10] + s[11]);
  const double q3 = (s[12] + s[13]) + (s[14] + s[15]);
  return (q0 + q1) + (q2 + q3);
}

/// True when `level` has a compiled implementation *and* the CPU can run it.
bool Supported(Level level);

/// The level dispatch resolved for this process (env + cpuid, cached).
Level ActiveLevel();

/// Doubles processed per vector step at the active level (1 scalar, 4 AVX2).
/// Surfaced as the `simd_width` wire stat.
size_t ActiveWidth();

/// Kernel table for an explicit level. Pre: `Supported(level)`. Tests use
/// this to compare tiers bit-for-bit on one machine.
const Kernels& KernelsFor(Level level);

/// Kernel table for `ActiveLevel()` — what the distance kernels call.
const Kernels& ActiveKernels();

}  // namespace zv::simd

#endif  // ZV_TASKS_SIMD_H_
