#include "tasks/series_cache.h"

#include <algorithm>
#include <limits>
#include <map>

namespace zv {

ScoringContext::ScoringContext(const std::vector<const Visualization*>& set,
                               Normalization norm, Alignment align)
    : norm_(norm), align_(align) {
  const size_t n = set.size();
  // Global x-domain + widest series count, via the shared alignment
  // convention. This is the one layout pass the legacy path repeated per
  // pair.
  const AlignmentLayout layout = ComputeAlignmentLayout(set);
  width_ = layout.width;
  max_series_ = layout.max_series;
  const size_t cols = layout.row_size();

  raw_.Resize(n, cols);
  cell_present_.assign(n * cols, 0);
  x_present_.assign(n * width_, 0);
  series_count_.assign(n, 1);
  full_.assign(n, 0);

  for (size_t r = 0; r < n; ++r) {
    const Visualization* v = set[r];
    series_count_[r] =
        static_cast<uint32_t>(std::max<size_t>(1, v->series.size()));
    uint8_t* cp = cell_present_.data() + r * cols;
    uint8_t* xp = x_present_.data() + r * width_;
    for (const Value& x : v->xs) xp[layout.x_index.at(x)] = 1;
    FillAlignedRow(*v, layout, raw_.MutableRow(r), cp);
    uint8_t all = 1;
    for (size_t c = 0; c < cols; ++c) all &= cp[c];
    full_[r] = all;
  }

  // Precompute the global-domain rows every full-coverage pair (and the
  // k-means / outlier consumers) score against: interpolate gaps when the
  // alignment asks for it, then normalize each row once.
  normalized_ = raw_;
  for (size_t r = 0; r < n; ++r) {
    double* row = normalized_.MutableRow(r);
    if (align_ == Alignment::kInterpolate && !full_[r] && width_ > 0) {
      const uint8_t* cp = cell_present_.data() + r * cols;
      for (size_t si = 0; si < max_series_; ++si) {
        InterpolateMissingSpan(row + si * width_, cp + si * width_, width_);
      }
    }
    NormalizeSpan(row, cols, norm_);
  }
}

void ScoringContext::BuildPairRow(size_t r,
                                  const std::vector<uint32_t>& positions,
                                  size_t pair_series,
                                  std::vector<double>* out) const {
  const size_t pw = positions.size();
  out->assign(pw * pair_series, 0.0);
  const double* row = raw_.Row(r);
  const uint8_t* cp = cell_present_.data() + r * raw_.cols;
  for (size_t si = 0; si < pair_series; ++si) {
    double* seg = out->data() + si * pw;
    for (size_t k = 0; k < pw; ++k) {
      seg[k] = row[si * width_ + positions[k]];
    }
  }
  if (align_ == Alignment::kInterpolate) {
    std::vector<uint8_t> present(pw);
    for (size_t si = 0; si < pair_series; ++si) {
      for (size_t k = 0; k < pw; ++k) {
        present[k] = cp[si * width_ + positions[k]];
      }
      InterpolateMissingSpan(out->data() + si * pw, present.data(), pw);
    }
  }
  NormalizeSpan(out->data(), out->size(), norm_);
}

double ScoringContext::PairDistance(size_t i, size_t j,
                                    DistanceMetric metric) const {
  return PairDistanceBounded(i, j, metric,
                             std::numeric_limits<double>::infinity());
}

double ScoringContext::PairDistanceBounded(size_t i, size_t j,
                                           DistanceMetric metric,
                                           double bound) const {
  if (full_[i] && full_[j]) {
    // Both rows cover the whole global domain, so the pairwise union domain
    // equals the global domain and the cached normalized rows are exactly
    // what the legacy per-pair path would have built.
    return SpanDistanceBounded(normalized_.Row(i), normalized_.Row(j),
                               normalized_.cols, metric, bound);
  }
  // Pairwise restriction: the union of the two x sets, in global (sorted)
  // order, re-interpolated and re-normalized — the legacy computation minus
  // the per-pair map construction.
  std::vector<uint32_t> positions;
  positions.reserve(width_);
  const uint8_t* xi = x_present_.data() + i * width_;
  const uint8_t* xj = x_present_.data() + j * width_;
  for (size_t p = 0; p < width_; ++p) {
    if (xi[p] | xj[p]) positions.push_back(static_cast<uint32_t>(p));
  }
  const size_t pair_series =
      std::max<size_t>(series_count_[i], series_count_[j]);
  std::vector<double> a, b;
  BuildPairRow(i, positions, pair_series, &a);
  BuildPairRow(j, positions, pair_series, &b);
  if (metric == DistanceMetric::kDtw) {
    return DtwSpanBounded(a.data(), a.size(), b.data(), b.size(), bound);
  }
  return SpanDistanceBounded(a.data(), b.data(), a.size(), metric, bound);
}

size_t ScoringContext::MemoryBytes() const {
  return sizeof(*this) +
         (raw_.data.capacity() + normalized_.data.capacity()) *
             sizeof(double) +
         cell_present_.capacity() + x_present_.capacity() +
         full_.capacity() + series_count_.capacity() * sizeof(uint32_t);
}

}  // namespace zv
