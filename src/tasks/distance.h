/// \file distance.h
/// \brief The distance primitive D(f, f') (§3.8): pairwise visualization
/// comparison under several metrics, with optional per-visualization
/// normalization for scale-invariant pattern matching.

#ifndef ZV_TASKS_DISTANCE_H_
#define ZV_TASKS_DISTANCE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "viz/visualization.h"

namespace zv {

/// Supported distance metrics. The paper's prototype defaults to L2
/// (Euclidean) and mentions EMD, KL divergence, and dynamic time warping
/// as alternatives (§3.8, §10.1) — all four are implemented.
enum class DistanceMetric {
  kEuclidean,   ///< pointwise L2 on aligned series
  kDtw,         ///< dynamic time warping
  kKlDivergence,///< symmetrized KL on induced probability distributions
  kEmd,         ///< 1-D earth mover's distance (CDF difference)
};

const char* DistanceMetricToString(DistanceMetric m);
Result<DistanceMetric> DistanceMetricFromString(const std::string& s);

/// How series are normalized before comparison.
enum class Normalization {
  kNone,
  kZScore,    ///< (y - mean) / std — the prototype's default for trends
  kMinMax,    ///< map to [0, 1]
};

/// How missing x positions are filled when aligning two visualizations.
enum class Alignment {
  kZeroFill,     ///< absent points contribute 0 (the prototype's behaviour)
  kInterpolate,  ///< linear interpolation (§10.1 future work, implemented)
};

/// Distance between raw vectors (already aligned).
double VectorDistance(const std::vector<double>& a,
                      const std::vector<double>& b, DistanceMetric metric);

/// Normalizes in place.
void NormalizeSeries(std::vector<double>* ys, Normalization norm);

/// Distance between two visualizations: aligns them over the union of
/// their x values (zero-filling or interpolating gaps), normalizes, and
/// applies the metric.
double Distance(const Visualization& a, const Visualization& b,
                DistanceMetric metric = DistanceMetric::kEuclidean,
                Normalization norm = Normalization::kZScore,
                Alignment alignment = Alignment::kZeroFill);

}  // namespace zv

#endif  // ZV_TASKS_DISTANCE_H_
