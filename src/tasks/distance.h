/// \file distance.h
/// \brief The distance primitive D(f, f') (§3.8): pairwise visualization
/// comparison under several metrics, with optional per-visualization
/// normalization for scale-invariant pattern matching.

#ifndef ZV_TASKS_DISTANCE_H_
#define ZV_TASKS_DISTANCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "viz/visualization.h"

namespace zv {

/// Supported distance metrics. The paper's prototype defaults to L2
/// (Euclidean) and mentions EMD, KL divergence, and dynamic time warping
/// as alternatives (§3.8, §10.1) — all four are implemented.
enum class DistanceMetric {
  kEuclidean,   ///< pointwise L2 on aligned series
  kDtw,         ///< dynamic time warping
  kKlDivergence,///< symmetrized KL on induced probability distributions
  kEmd,         ///< 1-D earth mover's distance (CDF difference)
};

const char* DistanceMetricToString(DistanceMetric m);
Result<DistanceMetric> DistanceMetricFromString(const std::string& s);

/// How series are normalized before comparison.
enum class Normalization {
  kNone,
  kZScore,    ///< (y - mean) / std — the prototype's default for trends
  kMinMax,    ///< map to [0, 1]
};

/// How missing x positions are filled when aligning two visualizations.
enum class Alignment {
  kZeroFill,     ///< absent points contribute 0 (the prototype's behaviour)
  kInterpolate,  ///< linear interpolation (§10.1 future work, implemented)
};

/// --- Contiguous span kernels --------------------------------------------
///
/// The metric inner loops over pre-aligned, equal-length series. They take
/// raw pointers into contiguous buffers (no per-call allocation except the
/// DP/distribution scratch DTW/KL/EMD need), so the compiler can vectorize
/// them and ScoringContext can score straight out of its row-major matrix.
///
/// The L2 kernel accumulates into sixteen independent partial sums
/// (simd::kSumLanes), which breaks the loop-carried dependence; the inner
/// loop is dispatched through `tasks/simd.h`, whose AVX2 tier keeps the
/// sixteen sums as four vector registers in the *identical* per-lane
/// accumulation order (see simd.h for the bit-exactness contract and the
/// `ZV_SIMD` override). The bounded variants below reuse the same kernel
/// block-wise,
/// so a bounded call that runs to completion returns the exact same bits as
/// the unbounded kernel at every dispatch tier (topk_test.cc and
/// param_tasks_test.cc assert this) — the top-k pruned scan can mix the two
/// freely without perturbing results. DTW routes its elementwise |a-b| cost
/// row through the same dispatch layer; its min-chain recurrence stays
/// scalar (serial dependence, NaN-ordering sensitive).

/// Pointwise L2 over n aligned points.
double EuclideanSpan(const double* a, const double* b, size_t n);

/// EuclideanSpan with early termination: once the partial distance (the
/// sqrt of the growing sum of squares, checked every few unrolled blocks)
/// exceeds `bound`, the candidate is provably farther than `bound` and
/// +inf is returned. The comparison happens in distance space — see the
/// implementation for why a squared-bound comparison would mis-prune exact
/// ties. Completing calls are bit-identical to EuclideanSpan; bound = +inf
/// never terminates early.
double EuclideanSpanBounded(const double* a, const double* b, size_t n,
                            double bound);

/// Dynamic time warping between series of possibly different lengths.
double DtwSpan(const double* a, size_t na, const double* b, size_t nb);

/// DtwSpan with early abandoning: every warping path visits every row of
/// the DP table and step costs are non-negative, so once an entire DP row
/// exceeds `bound` the final distance must too — +inf is returned.
/// Completing calls are bit-identical to DtwSpan.
double DtwSpanBounded(const double* a, size_t na, const double* b, size_t nb,
                      double bound);

/// Symmetrized KL divergence of the induced probability distributions.
double SymmetricKlSpan(const double* a, const double* b, size_t n);

/// 1-D earth mover's distance (L1 of the induced CDFs).
double Emd1dSpan(const double* a, const double* b, size_t n);

/// Dispatches to the span kernel for `metric` (equal-length series).
double SpanDistance(const double* a, const double* b, size_t n,
                    DistanceMetric metric);

/// Bounded dispatch: Euclidean and DTW route to their early-termination
/// kernels (+inf once the distance provably exceeds `bound`); KL and EMD
/// have no monotone partial form and fall through to the exact kernels.
/// With bound = +inf this is bit-identical to SpanDistance for every
/// metric.
double SpanDistanceBounded(const double* a, const double* b, size_t n,
                           DistanceMetric metric, double bound);

/// Distance between raw vectors (already aligned). Vectors of unequal
/// length are zero-extended to the longer one (DTW compares the raw
/// lengths), matching the historical behaviour.
double VectorDistance(const std::vector<double>& a,
                      const std::vector<double>& b, DistanceMetric metric);

/// Normalizes in place.
void NormalizeSeries(std::vector<double>* ys, Normalization norm);

/// Normalizes a contiguous span in place (the kernel behind
/// NormalizeSeries; used by ScoringContext on its row-major buffer).
void NormalizeSpan(double* ys, size_t n, Normalization norm);

/// Distance between two visualizations: aligns them over the union of
/// their x values (zero-filling or interpolating gaps), normalizes, and
/// applies the metric.
double Distance(const Visualization& a, const Visualization& b,
                DistanceMetric metric = DistanceMetric::kEuclidean,
                Normalization norm = Normalization::kZScore,
                Alignment alignment = Alignment::kZeroFill);

}  // namespace zv

#endif  // ZV_TASKS_DISTANCE_H_
