#include "tasks/distance.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "common/strings.h"

namespace zv {

const char* DistanceMetricToString(DistanceMetric m) {
  switch (m) {
    case DistanceMetric::kEuclidean:
      return "euclidean";
    case DistanceMetric::kDtw:
      return "dtw";
    case DistanceMetric::kKlDivergence:
      return "kl";
    case DistanceMetric::kEmd:
      return "emd";
  }
  return "euclidean";
}

Result<DistanceMetric> DistanceMetricFromString(const std::string& s) {
  const std::string lower = ToLower(Trim(s));
  if (lower == "euclidean" || lower == "l2") return DistanceMetric::kEuclidean;
  if (lower == "dtw") return DistanceMetric::kDtw;
  if (lower == "kl") return DistanceMetric::kKlDivergence;
  if (lower == "emd") return DistanceMetric::kEmd;
  return Status::ParseError("unknown distance metric: " + s);
}

namespace {

double Euclidean(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = std::max(a.size(), b.size());
  double s = 0;
  for (size_t i = 0; i < n; ++i) {
    const double av = i < a.size() ? a[i] : 0;
    const double bv = i < b.size() ? b[i] : 0;
    s += (av - bv) * (av - bv);
  }
  return std::sqrt(s);
}

double Dtw(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return Euclidean(a, b);
  constexpr double kInf = 1e300;
  // Rolling two-row DP.
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = kInf;
    for (size_t j = 1; j <= m; ++j) {
      const double cost = std::fabs(a[i - 1] - b[j - 1]);
      cur[j] = cost + std::min({prev[j], cur[j - 1], prev[j - 1]});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

// Converts a series into a probability distribution: shift to non-negative
// and normalize to sum 1, with additive smoothing.
std::vector<double> ToDistribution(const std::vector<double>& a, size_t n) {
  std::vector<double> p(n, 0.0);
  double lo = 0;
  for (size_t i = 0; i < a.size(); ++i) lo = std::min(lo, a[i]);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    const double v = (i < a.size() ? a[i] : 0) - lo + 1e-9;
    p[i] = v;
    sum += v;
  }
  for (double& v : p) v /= sum;
  return p;
}

double SymmetricKl(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = std::max(a.size(), b.size());
  if (n == 0) return 0;
  const auto p = ToDistribution(a, n), q = ToDistribution(b, n);
  double kl_pq = 0, kl_qp = 0;
  for (size_t i = 0; i < n; ++i) {
    kl_pq += p[i] * std::log(p[i] / q[i]);
    kl_qp += q[i] * std::log(q[i] / p[i]);
  }
  return 0.5 * (kl_pq + kl_qp);
}

// 1-D EMD between induced distributions = L1 distance of their CDFs.
double Emd1d(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = std::max(a.size(), b.size());
  if (n == 0) return 0;
  const auto p = ToDistribution(a, n), q = ToDistribution(b, n);
  double cdf_p = 0, cdf_q = 0, emd = 0;
  for (size_t i = 0; i < n; ++i) {
    cdf_p += p[i];
    cdf_q += q[i];
    emd += std::fabs(cdf_p - cdf_q);
  }
  return emd;
}

}  // namespace

double VectorDistance(const std::vector<double>& a,
                      const std::vector<double>& b, DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kEuclidean:
      return Euclidean(a, b);
    case DistanceMetric::kDtw:
      return Dtw(a, b);
    case DistanceMetric::kKlDivergence:
      return SymmetricKl(a, b);
    case DistanceMetric::kEmd:
      return Emd1d(a, b);
  }
  return Euclidean(a, b);
}

void NormalizeSeries(std::vector<double>* ys, Normalization norm) {
  if (ys->empty() || norm == Normalization::kNone) return;
  switch (norm) {
    case Normalization::kZScore: {
      const double m = Mean(*ys);
      double sd = StdDev(*ys);
      if (sd < 1e-12) sd = 1;
      for (double& y : *ys) y = (y - m) / sd;
      break;
    }
    case Normalization::kMinMax: {
      double lo = (*ys)[0], hi = (*ys)[0];
      for (double y : *ys) {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
      }
      const double span = hi - lo < 1e-12 ? 1 : hi - lo;
      for (double& y : *ys) y = (y - lo) / span;
      break;
    }
    case Normalization::kNone:
      break;
  }
}

double Distance(const Visualization& a, const Visualization& b,
                DistanceMetric metric, Normalization norm,
                Alignment alignment) {
  auto matrix = alignment == Alignment::kInterpolate
                    ? AlignToMatrixInterpolated({&a, &b})
                    : AlignToMatrix({&a, &b});
  NormalizeSeries(&matrix[0], norm);
  NormalizeSeries(&matrix[1], norm);
  return VectorDistance(matrix[0], matrix[1], metric);
}

}  // namespace zv
