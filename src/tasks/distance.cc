#include "tasks/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.h"
#include "common/strings.h"
#include "tasks/simd.h"

namespace zv {

const char* DistanceMetricToString(DistanceMetric m) {
  switch (m) {
    case DistanceMetric::kEuclidean:
      return "euclidean";
    case DistanceMetric::kDtw:
      return "dtw";
    case DistanceMetric::kKlDivergence:
      return "kl";
    case DistanceMetric::kEmd:
      return "emd";
  }
  return "euclidean";
}

Result<DistanceMetric> DistanceMetricFromString(const std::string& s) {
  const std::string lower = ToLower(Trim(s));
  if (lower == "euclidean" || lower == "l2") return DistanceMetric::kEuclidean;
  if (lower == "dtw") return DistanceMetric::kDtw;
  if (lower == "kl") return DistanceMetric::kKlDivergence;
  if (lower == "emd") return DistanceMetric::kEmd;
  return Status::ParseError("unknown distance metric: " + s);
}

namespace {

/// Converts a series into a probability distribution: shift to non-negative
/// and normalize to sum 1, with additive smoothing. Reads n values from `a`
/// and writes n values to `out` (which may not alias `a`).
void ToDistributionSpan(const double* a, size_t n, double* out) {
  double lo = 0;
  for (size_t i = 0; i < n; ++i) lo = std::min(lo, a[i]);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    const double v = a[i] - lo + 1e-9;
    out[i] = v;
    sum += v;
  }
  for (size_t i = 0; i < n; ++i) out[i] /= sum;
}

}  // namespace

// Both Euclidean kernels accumulate through sixteen independent partial
// sums — lane k takes elements k, k+16, k+32, ... — which is exactly the
// contract of simd::Kernels::sum_sq_diff16, so the scalar and AVX2 tiers
// (and the bounded kernel's block-at-a-time calls) are all bit-exact with
// one another. Only the sub-16 tail lives here, outside the kernel table;
// the final fold goes through simd::CombineSums, the one sanctioned
// reduction order.

// Which NaN bit pattern an add chain propagates when *both* operands are
// NaN is pinned by neither C++ nor the kernel contract (the compiler may
// commute an add; x86 keeps the first source operand's payload), so a NaN
// distance is collapsed to the one canonical quiet NaN before it escapes —
// kernel tiers stay byte-identical even on NaN/inf data.
inline double CanonicalNaN(double d) {
  return std::isnan(d) ? std::numeric_limits<double>::quiet_NaN() : d;
}

// The sub-16 tail rotates through lanes 0..3 (element n16+j adds into lane
// j mod 4) rather than chaining serially into one lane: short series — the
// paper's month/week-shaped visualizations — are *all* tail, and a single
// serial FP-add chain would run at latency, not throughput.
inline void SumSqDiffTail(const double* a, const double* b, size_t n16,
                          size_t n, double s[simd::kSumLanes]) {
  for (size_t i = n16; i < n; ++i) {
    const double d = a[i] - b[i];
    s[(i - n16) & 3] += d * d;
  }
}

double EuclideanSpan(const double* a, const double* b, size_t n) {
  double s[simd::kSumLanes] = {};
  const size_t n16 = n & ~(simd::kSumLanes - 1);
  simd::ActiveKernels().sum_sq_diff16(a, b, n16, s);
  SumSqDiffTail(a, b, n16, n, s);
  return CanonicalNaN(std::sqrt(simd::CombineSums(s)));
}

double EuclideanSpanBounded(const double* a, const double* b, size_t n,
                            double bound) {
  // No finite bound => no check can ever fire; take the unbounded kernel
  // (bit-identical by construction) and spare the unpruned hot path the
  // strided loop + periodic sqrt.
  if (std::isinf(bound)) return EuclideanSpan(a, b, n);
  // Check cadence: often enough to abandon early, seldom enough that the
  // vector kernel amortizes its call between checks.
  constexpr size_t kCheckStride = 32;
  static_assert(kCheckStride % simd::kSumLanes == 0,
                "check blocks must be whole kernel blocks so checkpoint "
                "sums equal the unbounded kernel's prefix sums");
  const simd::Kernels& kernels = simd::ActiveKernels();
  double s[simd::kSumLanes] = {};
  const size_t n16 = n & ~(simd::kSumLanes - 1);
  size_t i = 0;
  while (i < n16) {
    const size_t block = std::min(kCheckStride, n16 - i);
    kernels.sum_sq_diff16(a + i, b + i, block, s);
    i += block;
    // The partial sum only grows and sqrt is monotone, so once
    // sqrt(partial) exceeds the bound the final distance must too. The
    // comparison happens in *distance* space — comparing against
    // bound*bound would spuriously abandon a candidate whose distance
    // equals the bound exactly (squaring a rounded sqrt can round below
    // the original sum), and exact ties must reach the collector for the
    // index tie-break. Strict >: never abandons at the bound itself.
    if (std::sqrt(simd::CombineSums(s)) > bound) {
      return std::numeric_limits<double>::infinity();
    }
  }
  SumSqDiffTail(a, b, i, n, s);
  return CanonicalNaN(std::sqrt(simd::CombineSums(s)));
}

double DtwSpan(const double* a, size_t na, const double* b, size_t nb) {
  if (na == 0 || nb == 0) {
    // Degenerate: fall back to L2 against an all-zero series.
    double s = 0;
    for (size_t i = 0; i < na; ++i) s += a[i] * a[i];
    for (size_t i = 0; i < nb; ++i) s += b[i] * b[i];
    return std::sqrt(s);
  }
  constexpr double kInf = 1e300;
  // Rolling two-row DP. The elementwise |ai - b[j]| cost row vectorizes
  // (fabs is bit-exact at any width); the min-chain recurrence stays scalar
  // because it carries a serial dependence — and reassociating std::min
  // would change NaN propagation.
  const simd::Kernels& kernels = simd::ActiveKernels();
  std::vector<double> prev(nb + 1, kInf), cur(nb + 1, kInf), row(nb);
  prev[0] = 0;
  for (size_t i = 1; i <= na; ++i) {
    cur[0] = kInf;
    kernels.abs_diff_row(a[i - 1], b, nb, row.data());
    for (size_t j = 1; j <= nb; ++j) {
      cur[j] = row[j - 1] + std::min({prev[j], cur[j - 1], prev[j - 1]});
    }
    std::swap(prev, cur);
  }
  return prev[nb];
}

double DtwSpanBounded(const double* a, size_t na, const double* b, size_t nb,
                      double bound) {
  // No finite bound => the row-min bookkeeping is pure overhead on the
  // dependence-bound DP loop; take the unbounded kernel (bit-identical).
  if (std::isinf(bound)) return DtwSpan(a, na, b, nb);
  if (na == 0 || nb == 0) return DtwSpan(a, na, b, nb);
  constexpr double kInf = 1e300;
  const simd::Kernels& kernels = simd::ActiveKernels();
  std::vector<double> prev(nb + 1, kInf), cur(nb + 1, kInf), row(nb);
  prev[0] = 0;
  for (size_t i = 1; i <= na; ++i) {
    cur[0] = kInf;
    kernels.abs_diff_row(a[i - 1], b, nb, row.data());
    double row_min = kInf;
    for (size_t j = 1; j <= nb; ++j) {
      cur[j] = row[j - 1] + std::min({prev[j], cur[j - 1], prev[j - 1]});
      row_min = std::min(row_min, cur[j]);
    }
    // Every warping path passes through row i and later steps only add
    // non-negative cost, so the final distance is >= min(cur row).
    if (row_min > bound) return std::numeric_limits<double>::infinity();
    std::swap(prev, cur);
  }
  return prev[nb];
}

double SymmetricKlSpan(const double* a, const double* b, size_t n) {
  if (n == 0) return 0;
  std::vector<double> scratch(2 * n);
  double* p = scratch.data();
  double* q = scratch.data() + n;
  ToDistributionSpan(a, n, p);
  ToDistributionSpan(b, n, q);
  double kl_pq = 0, kl_qp = 0;
  for (size_t i = 0; i < n; ++i) {
    kl_pq += p[i] * std::log(p[i] / q[i]);
    kl_qp += q[i] * std::log(q[i] / p[i]);
  }
  return 0.5 * (kl_pq + kl_qp);
}

double Emd1dSpan(const double* a, const double* b, size_t n) {
  if (n == 0) return 0;
  std::vector<double> scratch(2 * n);
  double* p = scratch.data();
  double* q = scratch.data() + n;
  ToDistributionSpan(a, n, p);
  ToDistributionSpan(b, n, q);
  double cdf_p = 0, cdf_q = 0, emd = 0;
  for (size_t i = 0; i < n; ++i) {
    cdf_p += p[i];
    cdf_q += q[i];
    emd += std::fabs(cdf_p - cdf_q);
  }
  return emd;
}

double SpanDistance(const double* a, const double* b, size_t n,
                    DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kEuclidean:
      return EuclideanSpan(a, b, n);
    case DistanceMetric::kDtw:
      return DtwSpan(a, n, b, n);
    case DistanceMetric::kKlDivergence:
      return SymmetricKlSpan(a, b, n);
    case DistanceMetric::kEmd:
      return Emd1dSpan(a, b, n);
  }
  return EuclideanSpan(a, b, n);
}

double SpanDistanceBounded(const double* a, const double* b, size_t n,
                           DistanceMetric metric, double bound) {
  switch (metric) {
    case DistanceMetric::kEuclidean:
      return EuclideanSpanBounded(a, b, n, bound);
    case DistanceMetric::kDtw:
      return DtwSpanBounded(a, n, b, n, bound);
    case DistanceMetric::kKlDivergence:
    case DistanceMetric::kEmd:
      // Distribution metrics renormalize over the whole span, so partial
      // prefixes bound nothing — compute exactly.
      return SpanDistance(a, b, n, metric);
  }
  return EuclideanSpanBounded(a, b, n, bound);
}

double VectorDistance(const std::vector<double>& a,
                      const std::vector<double>& b, DistanceMetric metric) {
  if (metric == DistanceMetric::kDtw) {
    return DtwSpan(a.data(), a.size(), b.data(), b.size());
  }
  if (a.size() == b.size()) {
    return SpanDistance(a.data(), b.data(), a.size(), metric);
  }
  // Zero-extend the shorter vector (the historical alignment behaviour for
  // the pointwise and distribution metrics).
  const size_t n = std::max(a.size(), b.size());
  std::vector<double> pa(n, 0.0), pb(n, 0.0);
  std::copy(a.begin(), a.end(), pa.begin());
  std::copy(b.begin(), b.end(), pb.begin());
  return SpanDistance(pa.data(), pb.data(), n, metric);
}

void NormalizeSeries(std::vector<double>* ys, Normalization norm) {
  if (ys->empty() || norm == Normalization::kNone) return;
  NormalizeSpan(ys->data(), ys->size(), norm);
}

void NormalizeSpan(double* ys, size_t n, Normalization norm) {
  if (n == 0 || norm == Normalization::kNone) return;
  switch (norm) {
    case Normalization::kZScore: {
      // Mean / sample standard deviation (n-1), bit-identical to the
      // historical Mean()/StdDev() path in common/stats.h.
      double sum = 0;
      for (size_t i = 0; i < n; ++i) sum += ys[i];
      const double m = sum / static_cast<double>(n);
      double sd = 0;
      if (n >= 2) {
        double sq = 0;
        for (size_t i = 0; i < n; ++i) sq += (ys[i] - m) * (ys[i] - m);
        sd = std::sqrt(sq / static_cast<double>(n - 1));
      }
      if (sd < 1e-12) sd = 1;
      for (size_t i = 0; i < n; ++i) ys[i] = (ys[i] - m) / sd;
      break;
    }
    case Normalization::kMinMax: {
      double lo = ys[0], hi = ys[0];
      for (size_t i = 0; i < n; ++i) {
        lo = std::min(lo, ys[i]);
        hi = std::max(hi, ys[i]);
      }
      const double span = hi - lo < 1e-12 ? 1 : hi - lo;
      for (size_t i = 0; i < n; ++i) ys[i] = (ys[i] - lo) / span;
      break;
    }
    case Normalization::kNone:
      break;
  }
}

double Distance(const Visualization& a, const Visualization& b,
                DistanceMetric metric, Normalization norm,
                Alignment alignment) {
  auto matrix = alignment == Alignment::kInterpolate
                    ? AlignToMatrixInterpolated({&a, &b})
                    : AlignToMatrix({&a, &b});
  NormalizeSeries(&matrix[0], norm);
  NormalizeSeries(&matrix[1], norm);
  if (metric == DistanceMetric::kDtw) {
    return DtwSpan(matrix[0].data(), matrix[0].size(), matrix[1].data(),
                   matrix[1].size());
  }
  return SpanDistance(matrix[0].data(), matrix[1].data(), matrix[0].size(),
                      metric);
}

}  // namespace zv
