#include "tasks/context_cache.h"

#include "common/hash.h"

namespace zv {

namespace {

/// Exact Value hashing: type tag + full-precision payload. ToString would
/// be lossy (%.6g doubles, untagged "NULL"/"5" collisions), and a
/// fingerprint collision here serves another query's alignment matrices.
/// Int(5) and Double(5.0) hash differently even though Value::Compare
/// treats them as equal — that can only split cache entries (missed
/// reuse), never merge distinct data.
void HashValue(Fingerprint128* fp, const Value& v) {
  fp->U64(static_cast<uint64_t>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kInt64:
      fp->U64(static_cast<uint64_t>(v.AsInt()));
      break;
    case DataType::kDouble:
      fp->F64(v.AsDouble());
      break;
    case DataType::kString:
      fp->Str(v.AsString());
      break;
  }
}

}  // namespace

std::string ScoringSetFingerprint(const std::vector<const Visualization*>& set,
                                  Normalization norm, Alignment align) {
  Fingerprint128 fp;
  fp.U64(static_cast<uint64_t>(norm));
  fp.U64(static_cast<uint64_t>(align));
  fp.U64(set.size());
  for (const Visualization* v : set) {
    // Identity — cheap disambiguation and debuggability…
    fp.Str(v->x_attr);
    fp.Str(v->y_attr);
    fp.Str(v->constraints);
    fp.Str(v->spec.ToString());
    fp.U64(v->slices.size());
    for (const Slice& s : v->slices) {
      fp.Str(s.attribute);
      HashValue(&fp, s.value);
    }
    // …and data — the part that actually makes reuse safe across table
    // mutations and user-drawn inputs.
    fp.U64(v->xs.size());
    for (const Value& x : v->xs) HashValue(&fp, x);
    fp.U64(v->series.size());
    for (const Series& s : v->series) {
      fp.Str(s.name);
      fp.U64(s.ys.size());
      for (double y : s.ys) fp.F64(y);
    }
  }
  return fp.Hex();
}

}  // namespace zv
