#include "tasks/recommender.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/parallel.h"
#include "tasks/series_cache.h"
#include "tasks/topk.h"

namespace zv {

std::vector<Recommendation> RecommendDiverse(
    const std::vector<const Visualization*>& candidates,
    const RecommenderOptions& opts) {
  std::vector<Recommendation> out;
  if (candidates.empty() || opts.k == 0) return out;
  // One global alignment + normalization pass (the shared AlignmentLayout
  // convention); k-means then works on plain row vectors.
  auto matrix = AlignToMatrix(candidates);
  for (auto& row : matrix) {
    NormalizeSeries(&row, opts.task_options.normalization);
  }
  const KMeansResult km =
      KMeans(matrix, opts.k, opts.task_options.kmeans_seed);
  std::vector<size_t> cluster_sizes(km.centroids.size(), 0);
  for (int a : km.assignment) ++cluster_sizes[static_cast<size_t>(a)];
  for (size_t c = 0; c < km.medoids.size(); ++c) {
    if (cluster_sizes[c] == 0) continue;
    out.push_back({km.medoids[c], cluster_sizes[c]});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.cluster_size > b.cluster_size;
                   });
  // Deduplicate medoids that collapsed to the same candidate.
  std::vector<Recommendation> dedup;
  dedup.reserve(out.size());
  std::unordered_set<size_t> seen;
  seen.reserve(out.size());
  for (const auto& r : out) {
    if (seen.insert(r.index).second) dedup.push_back(r);
  }
  return dedup;
}

std::vector<SimilarResult> RecommendSimilar(
    const Visualization& query,
    const std::vector<const Visualization*>& candidates, size_t k,
    const TaskOptions& opts) {
  std::vector<SimilarResult> out;
  if (candidates.empty() || k == 0) return out;
  // Context row 0 is the query; candidate i lands in row i + 1.
  std::vector<const Visualization*> pool;
  pool.reserve(candidates.size() + 1);
  pool.push_back(&query);
  for (const Visualization* c : candidates) pool.push_back(c);
  const ScoringContext ctx(pool, opts.normalization, opts.alignment);

  SharedTopK topk(std::min(k, candidates.size()), TopKOrder::kAscending);
  ParallelFor(candidates.size(), [&](size_t i) {
    const double bound = topk.bound();
    const double d = ctx.PairDistanceBounded(0, i + 1, opts.metric, bound);
    // +inf under a *finite* bound marks a kernel abandoned past it —
    // provably outside the top k, so dropping it cannot change the
    // selection. Under an infinite bound no abandonment is possible: +inf
    // is then the exact distance (overflowing un-normalized data) and must
    // still compete, ranked last with index tie-breaks like any score.
    if (!std::isinf(d) || std::isinf(bound)) topk.Offer(d, i);
  });
  for (const ScoredIndex& s : topk.Sorted()) {
    out.push_back({s.index, s.score});
  }
  return out;
}

}  // namespace zv
