#include "tasks/recommender.h"

#include <algorithm>
#include <unordered_set>

namespace zv {

std::vector<Recommendation> RecommendDiverse(
    const std::vector<const Visualization*>& candidates,
    const RecommenderOptions& opts) {
  std::vector<Recommendation> out;
  if (candidates.empty() || opts.k == 0) return out;
  auto matrix = AlignToMatrix(candidates);
  for (auto& row : matrix) {
    NormalizeSeries(&row, opts.task_options.normalization);
  }
  const KMeansResult km =
      KMeans(matrix, opts.k, opts.task_options.kmeans_seed);
  std::vector<size_t> cluster_sizes(km.centroids.size(), 0);
  for (int a : km.assignment) ++cluster_sizes[static_cast<size_t>(a)];
  for (size_t c = 0; c < km.medoids.size(); ++c) {
    if (cluster_sizes[c] == 0) continue;
    out.push_back({km.medoids[c], cluster_sizes[c]});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.cluster_size > b.cluster_size;
                   });
  // Deduplicate medoids that collapsed to the same candidate.
  std::vector<Recommendation> dedup;
  dedup.reserve(out.size());
  std::unordered_set<size_t> seen;
  seen.reserve(out.size());
  for (const auto& r : out) {
    if (seen.insert(r.index).second) dedup.push_back(r);
  }
  return dedup;
}

}  // namespace zv
