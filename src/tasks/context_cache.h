/// \file context_cache.h
/// \brief Cross-query reuse of ScoringContext alignment matrices.
///
/// Building a ScoringContext — sorting the union x-domain, aligning and
/// normalizing every candidate row — is the dominant setup cost of repeat
/// exploration: the same user tweaks one constraint and re-scores the same
/// candidate set dozens of times per minute. A ContextCache turns that
/// setup into a hash lookup shared across queries *and* sessions.
///
/// Keys are content-addressed: ScoringSetFingerprint hashes each
/// candidate's identity (axes, slices, constraints, spec) AND its fetched
/// data (x values, y series), plus the normalization/alignment
/// configuration. Hashing the data — not just the identity — makes reuse
/// unconditionally safe: a table mutation (dataset epoch bump) changes the
/// fetched series, so the fingerprint changes and the stale context simply
/// misses. User-drawn input sketches, whose data is not derivable from any
/// table, are covered by the same property.
///
/// Values are shared_ptr<const ScoringContext>: contexts are immutable and
/// internally thread-safe after construction, so many concurrent queries
/// can score out of one cached instance while the LRU evicts it for new
/// arrivals.

#ifndef ZV_TASKS_CONTEXT_CACHE_H_
#define ZV_TASKS_CONTEXT_CACHE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "tasks/series_cache.h"

namespace zv {

/// Content hash (identity + data + scoring configuration) of a candidate
/// set, in the set's order. Two queries that would build bit-identical
/// ScoringContexts produce equal fingerprints; any difference in shape,
/// identity, data, or configuration produces (with 128-bit probability)
/// different ones.
std::string ScoringSetFingerprint(const std::vector<const Visualization*>& set,
                                  Normalization norm, Alignment align);

/// \brief Byte-budgeted sharded LRU of immutable ScoringContexts, keyed by
/// ScoringSetFingerprint. Thread-safe; one instance serves every session.
class ContextCache {
 public:
  explicit ContextCache(size_t max_bytes, size_t shards = 4)
      : cache_(max_bytes, shards) {}

  std::shared_ptr<const ScoringContext> Get(const std::string& fingerprint) {
    return cache_.Get(fingerprint);
  }

  void Put(const std::string& fingerprint,
           std::shared_ptr<const ScoringContext> ctx) {
    const size_t bytes = ctx->MemoryBytes();
    cache_.Put(fingerprint, std::move(ctx), bytes);
  }

  void Clear() { cache_.Clear(); }
  size_t bytes() const { return cache_.bytes(); }
  size_t entries() const { return cache_.entries(); }
  uint64_t hits() const { return cache_.hits(); }
  uint64_t misses() const { return cache_.misses(); }
  size_t max_bytes_total() const { return cache_.max_bytes(); }

 private:
  ShardedLruCache<ScoringContext> cache_;
};

}  // namespace zv

#endif  // ZV_TASKS_CONTEXT_CACHE_H_
