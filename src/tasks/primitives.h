/// \file primitives.h
/// \brief The three ZQL functional primitives (§3.8) — T (trend),
/// D (distance), R (representatives) — plus the derived outlier scorer, and
/// the sorting/filtering mechanisms argmin / argmax / argany.

#ifndef ZV_TASKS_PRIMITIVES_H_
#define ZV_TASKS_PRIMITIVES_H_

#include <functional>
#include <optional>
#include <vector>

#include "tasks/distance.h"
#include "tasks/kmeans.h"
#include "viz/visualization.h"

namespace zv {

/// \brief Configuration for the default T / D / R implementations.
///
/// Users may swap in their own functions (§3.8: "the user is free to specify
/// their own variants... more suited to their application") via the
/// std::function hooks in TaskLibrary.
struct TaskOptions {
  DistanceMetric metric = DistanceMetric::kEuclidean;
  Normalization normalization = Normalization::kZScore;
  Alignment alignment = Alignment::kZeroFill;
  uint64_t kmeans_seed = 42;
};

/// T(f): overall trend of a visualization — positive = growth, negative =
/// decline. Default: slope of a least-squares line on the z-normalized
/// series (the paper's example implementation).
double Trend(const Visualization& f);

/// R(k, set): indices of the k most representative visualizations, computed
/// as k-means medoids on the aligned series matrix (the paper's example
/// implementation). Indices are into `set`.
std::vector<size_t> Representatives(
    const std::vector<const Visualization*>& set, size_t k,
    const TaskOptions& opts = {});

/// Outlier scores: distance from each visualization to its nearest of the
/// k representative centroids (§7.2's outlier search = representative
/// search + max-min-distance). Higher = more anomalous.
///
/// The set is aligned + normalized once (shared AlignmentLayout
/// convention) and the per-candidate reference distances fan out over the
/// ZV_THREADS pool into preallocated slots — no per-pair re-alignment, and
/// byte-identical scores at any thread count. Pair with
/// TopKIndices(scores, k, TopKOrder::kDescending) (tasks/topk.h) to pull
/// just the k strongest outliers without a full argsort.
std::vector<double> OutlierScores(const std::vector<const Visualization*>& set,
                                  size_t k_representatives,
                                  const TaskOptions& opts = {});

/// §10.1 future work, implemented: pick the number of representative trends
/// from the data instead of a fixed k, by the elbow (maximum curvature) of
/// the k-means inertia curve over k = 1..max_k. Returns a k in
/// [1, min(max_k, |set|)].
size_t AutoRepresentativeCount(const std::vector<const Visualization*>& set,
                               size_t max_k = 10,
                               const TaskOptions& opts = {});

/// \brief User-replaceable functional primitives, passed through the ZQL
/// executor to the Process column. Visual exploration completeness
/// (Theorem 1) is relative to a fixed choice of these.
struct TaskLibrary {
  std::function<double(const Visualization&)> trend = Trend;
  std::function<double(const Visualization&, const Visualization&)> distance;
  std::function<std::vector<size_t>(const std::vector<const Visualization*>&,
                                    size_t)>
      representatives;

  /// The options `Default()` built `distance` with. When
  /// `distance_is_default` is true, the ZQL executor may score D() calls
  /// through a shared ScoringContext constructed with these options instead
  /// of calling `distance` once per pair — identical results, one alignment
  /// pass. Installing a custom `distance` must clear the flag.
  ///
  /// The `*_is_default` flags also gate *parallel* scoring: the executor
  /// fans a Process declaration's combinations over the thread pool only
  /// when every call in its expression is a default (stateless, thread-
  /// safe) primitive. Custom trend/distance functions and user process
  /// functions are never required to be thread-safe — expressions using
  /// them are scored serially, exactly as before.
  TaskOptions default_options;
  bool distance_is_default = false;
  bool trend_is_default = false;

  /// Builds a library using the default primitives with `opts`.
  static TaskLibrary Default(const TaskOptions& opts = {});
};

/// --- Mechanisms (argmin / argmax / argany) ------------------------------

enum class Mechanism { kArgMin, kArgMax, kArgAny };

/// Filter clause: top-k ([k = 10]), threshold ([t > 0] / [t < 0]), or
/// neither (sort only).
struct MechanismFilter {
  std::optional<int64_t> k;            ///< k = n (k may be "inf" => nullopt k with sort_all)
  std::optional<double> t_above;       ///< t > value
  std::optional<double> t_below;       ///< t < value
};

/// Applies a mechanism to scored candidates: returns the indices of the
/// selected candidates, ordered as ZQL specifies (§3.8):
///  - argmin: increasing score; argmax: decreasing score;
///  - argany: input order (any k);
///  - with [k=n]: first n after ordering; with [t>v]/[t<v]: all passing,
///    ordered by score (increasing for t<, decreasing for t>; argany keeps
///    input order).
///
/// argmin/argmax with a [k=n] filter and no threshold select through a
/// bounded top-k heap (tasks/topk.h) — O(n log k), byte-identical indices
/// and order to the stable full argsort.
std::vector<size_t> ApplyMechanism(Mechanism mech,
                                   const std::vector<double>& scores,
                                   const MechanismFilter& filter);

}  // namespace zv

#endif  // ZV_TASKS_PRIMITIVES_H_
