/// \file topk.h
/// \brief Bounded top-k selection for the scoring hot path: a fixed-size
/// heap that keeps the k best (score, index) candidates seen so far, a
/// thread-safe variant whose current k-th-best score is published as a
/// relaxed atomic *pruning bound* for the early-termination distance
/// kernels, and a TopKIndices() helper that replaces full argsorts.
///
/// Selection contract (shared with ApplyMechanism): candidates are ordered
/// by score — ascending for argmin-style selection, descending for
/// argmax-style — with ties broken by the lower index. That is exactly the
/// order a stable argsort produces, so "the first k of the stable argsort"
/// and "the contents of a TopKCollector after offering every candidate"
/// are byte-identical, which topk_test.cc asserts.
///
/// The pruning bound is a pure optimization: at any moment it is >= the
/// *final* k-th best score (scores only improve as more candidates are
/// seen), so a candidate whose partial distance already exceeds it is
/// provably outside the final top-k and may be abandoned. Abandonment
/// timing therefore never changes the selected set — results are identical
/// at any ZV_THREADS, no matter how workers interleave bound updates.

#ifndef ZV_TASKS_TOPK_H_
#define ZV_TASKS_TOPK_H_

#include <atomic>
#include <cstddef>
#include <limits>
#include <mutex>
#include <vector>

namespace zv {

/// One scored candidate.
struct ScoredIndex {
  double score = 0;
  size_t index = 0;
};

/// Selection order: kAscending keeps the k *smallest* scores (argmin,
/// similarity search), kDescending the k largest (argmax).
enum class TopKOrder { kAscending, kDescending };

/// True when candidate (sa, ia) is selected before (sb, ib) under `order`
/// — the comparator behind every top-k path and the stable argsort it
/// must reproduce.
inline bool TopKBefore(TopKOrder order, double sa, size_t ia, double sb,
                       size_t ib) {
  if (sa != sb) return order == TopKOrder::kAscending ? sa < sb : sa > sb;
  return ia < ib;
}

/// \brief Fixed-capacity top-k accumulator: a binary heap whose root is the
/// *worst* kept candidate, so Offer() is O(1) for the common reject case
/// and O(log k) otherwise. Not thread-safe (see SharedTopK).
class TopKCollector {
 public:
  TopKCollector(size_t k, TopKOrder order) : k_(k), order_(order) {}

  size_t k() const { return k_; }
  TopKOrder order() const { return order_; }
  size_t size() const { return heap_.size(); }
  /// k = 0 never counts as full: Bound() must keep returning the no-op
  /// bound (nothing is ever kept, but nothing may be pruned by an empty
  /// heap either).
  bool full() const { return k_ > 0 && heap_.size() >= k_; }

  /// The current k-th best score: the score a candidate must beat to enter
  /// the heap. +inf (ascending) / -inf (descending) until k candidates have
  /// been offered — no pruning is possible before the heap is full.
  double Bound() const {
    if (!full()) {
      return order_ == TopKOrder::kAscending
                 ? std::numeric_limits<double>::infinity()
                 : -std::numeric_limits<double>::infinity();
    }
    return heap_.front().score;
  }

  /// Offers one candidate; keeps it iff it belongs to the k best seen.
  void Offer(double score, size_t index);

  /// The kept candidates in selection order (best first) — the first
  /// min(k, offered) entries of the stable argsort.
  std::vector<ScoredIndex> Sorted() const;

  /// Sorted(), indices only.
  std::vector<size_t> SortedIndices() const;

 private:
  /// True when a orders strictly after b — "worse first" heap order.
  bool WorseThan(const ScoredIndex& a, const ScoredIndex& b) const {
    return TopKBefore(order_, b.score, b.index, a.score, a.index);
  }
  void SiftDown(size_t i);
  void SiftUp(size_t i);

  size_t k_;
  TopKOrder order_;
  std::vector<ScoredIndex> heap_;  ///< root = worst kept candidate
};

/// \brief Thread-safe top-k accumulator shared by ParallelFor workers.
///
/// Offer() takes a mutex only when the candidate might enter the heap
/// (score not worse than the published bound), which becomes rare once the
/// heap warms up; the fast reject path is one relaxed atomic load. bound()
/// is monotone — it only ever tightens — and reading a slightly stale value
/// merely prunes less, never differently: the final selection is identical
/// regardless of interleaving (see file header).
class SharedTopK {
 public:
  SharedTopK(size_t k, TopKOrder order) : collector_(k, order) {
    bound_.store(collector_.Bound(), std::memory_order_relaxed);
  }

  /// The current pruning bound (>= the final k-th best score, ascending
  /// order; <= it for descending). Relaxed: staleness is safe.
  double bound() const { return bound_.load(std::memory_order_relaxed); }

  void Offer(double score, size_t index);

  /// Kept candidates in selection order. Call only after all Offer()ing
  /// threads have joined (ParallelFor provides that barrier).
  std::vector<ScoredIndex> Sorted() const { return collector_.Sorted(); }
  std::vector<size_t> SortedIndices() const {
    return collector_.SortedIndices();
  }

 private:
  mutable std::mutex mu_;
  TopKCollector collector_;  // guarded by mu_
  std::atomic<double> bound_;
};

/// The first k of the stable argsort of `scores` under `order` — identical
/// indices, in identical order, to sorting all of [0, n) and truncating,
/// computed in O(n log k) instead of O(n log n).
std::vector<size_t> TopKIndices(const std::vector<double>& scores, size_t k,
                                TopKOrder order);

}  // namespace zv

#endif  // ZV_TASKS_TOPK_H_
