#include "storage/csv_loader.h"

#include <cstdlib>
#include <set>

#include "common/strings.h"

namespace zv {

namespace {

enum class CellKind { kEmpty, kInt, kDouble, kOther };

CellKind ClassifyCell(const std::string& raw) {
  const std::string s = Trim(raw);
  if (s.empty()) return CellKind::kEmpty;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return CellKind::kOther;
  if (s.find_first_of(".eE") == std::string::npos) return CellKind::kInt;
  return CellKind::kDouble;
}

}  // namespace

Result<Schema> InferCsvSchema(const CsvTable& csv, const CsvLoadOptions& opts) {
  if (csv.header.empty()) return Status::InvalidArgument("CSV has no header");
  const size_t ncols = csv.header.size();
  std::vector<ColumnDef> defs(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    defs[c].name = Trim(csv.header[c]);
    if (defs[c].name.empty()) {
      return Status::InvalidArgument(
          StrFormat("CSV column %zu has an empty name", c));
    }
    bool any_other = false, any_double = false, any_value = false;
    std::set<std::string> distinct;
    for (const auto& row : csv.rows) {
      switch (ClassifyCell(row[c])) {
        case CellKind::kEmpty:
          break;
        case CellKind::kInt:
          any_value = true;
          break;
        case CellKind::kDouble:
          any_value = true;
          any_double = true;
          break;
        case CellKind::kOther:
          any_value = true;
          any_other = true;
          break;
      }
      if (distinct.size() <= opts.categorical_numeric_threshold) {
        distinct.insert(Trim(row[c]));
      }
    }
    if (any_other || !any_value) {
      defs[c].type = ColumnType::kCategorical;
    } else if (distinct.size() <= opts.categorical_numeric_threshold) {
      // Low-cardinality numeric (years, months, codes): categorical.
      defs[c].type = ColumnType::kCategorical;
    } else {
      defs[c].type = any_double ? ColumnType::kDouble : ColumnType::kInt;
    }
  }
  for (const auto& [name, type] : opts.overrides) {
    bool found = false;
    for (auto& def : defs) {
      if (def.name == name) {
        def.type = type;
        found = true;
      }
    }
    if (!found) {
      return Status::NotFound("override for unknown CSV column: " + name);
    }
  }
  return Schema(defs);
}

Result<std::shared_ptr<Table>> TableFromCsv(const std::string& table_name,
                                            const CsvTable& csv,
                                            const CsvLoadOptions& opts) {
  ZV_ASSIGN_OR_RETURN(Schema schema, InferCsvSchema(csv, opts));
  TableBuilder builder(table_name, schema);
  const size_t ncols = schema.num_columns();
  for (const auto& row : csv.rows) {
    for (size_t c = 0; c < ncols; ++c) {
      const std::string cell = Trim(row[c]);
      switch (schema.column(c).type) {
        case ColumnType::kCategorical: {
          // Keep numeric-looking categorical values as numbers so ZQL
          // constraints like year=2015 compare correctly.
          const CellKind kind = ClassifyCell(cell);
          if (kind == CellKind::kInt) {
            builder.AppendCategorical(
                c, Value::Int(std::strtoll(cell.c_str(), nullptr, 10)));
          } else if (kind == CellKind::kDouble) {
            builder.AppendCategorical(
                c, Value::Double(std::strtod(cell.c_str(), nullptr)));
          } else {
            builder.AppendCategorical(c, Value::Str(cell));
          }
          break;
        }
        case ColumnType::kInt:
          builder.AppendInt(
              c, cell.empty() ? 0 : std::strtoll(cell.c_str(), nullptr, 10));
          break;
        case ColumnType::kDouble:
          builder.AppendDouble(
              c, cell.empty() ? 0.0 : std::strtod(cell.c_str(), nullptr));
          break;
      }
    }
    builder.CommitRow();
  }
  return builder.Finish();
}

Result<std::shared_ptr<Table>> TableFromCsvFile(const std::string& table_name,
                                                const std::string& path,
                                                const CsvLoadOptions& opts) {
  ZV_ASSIGN_OR_RETURN(CsvTable csv, ReadCsvFile(path));
  return TableFromCsv(table_name, csv, opts);
}

}  // namespace zv
