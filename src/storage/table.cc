#include "storage/table.h"

#include <algorithm>

#include "common/strings.h"

namespace zv {

const char* ColumnTypeToString(ColumnType t) {
  switch (t) {
    case ColumnType::kCategorical:
      return "categorical";
    case ColumnType::kInt:
      return "int";
    case ColumnType::kDouble:
      return "double";
  }
  return "unknown";
}

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    index_[columns_[i].name] = static_cast<int>(i);
  }
}

int Schema::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

std::vector<std::string> Schema::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c.name);
  return names;
}

int32_t Table::LookupCode(size_t col, const Value& v) const {
  const auto& dict = dictionaries_[col];
  for (size_t i = 0; i < dict.size(); ++i) {
    if (dict[i] == v) return static_cast<int32_t>(i);
  }
  return -1;
}

double Table::NumericAt(size_t row, size_t col) const {
  switch (schema_.column(col).type) {
    case ColumnType::kDouble:
      return doubles_[col][row];
    case ColumnType::kInt:
      return static_cast<double>(ints_[col][row]);
    case ColumnType::kCategorical: {
      const Value& v = DictValue(col, categorical_[col][row]);
      return v.is_numeric() ? v.AsDouble() : 0.0;
    }
  }
  return 0.0;
}

Value Table::ValueAt(size_t row, size_t col) const {
  switch (schema_.column(col).type) {
    case ColumnType::kDouble:
      return Value::Double(doubles_[col][row]);
    case ColumnType::kInt:
      return Value::Int(ints_[col][row]);
    case ColumnType::kCategorical:
      return DictValue(col, categorical_[col][row]);
  }
  return Value::Null();
}

size_t Table::MemoryBytes() const {
  size_t n = 0;
  for (const auto& c : categorical_) n += c.size() * sizeof(int32_t);
  for (const auto& c : ints_) n += c.size() * sizeof(int64_t);
  for (const auto& c : doubles_) n += c.size() * sizeof(double);
  for (const auto& d : dictionaries_) n += d.size() * 32;  // rough
  return n;
}

TableBuilder::TableBuilder(std::string table_name, Schema schema)
    : table_(std::make_shared<Table>()) {
  table_->name_ = std::move(table_name);
  table_->schema_ = std::move(schema);
  const size_t n = table_->schema_.num_columns();
  table_->categorical_.resize(n);
  table_->dictionaries_.resize(n);
  table_->ints_.resize(n);
  table_->doubles_.resize(n);
  dict_index_.resize(n);
}

int32_t TableBuilder::EncodeDictionary(size_t col, const Value& v) {
  auto& index = dict_index_[col];
  auto it = index.find(v);
  if (it != index.end()) return it->second;
  const int32_t code = static_cast<int32_t>(table_->dictionaries_[col].size());
  table_->dictionaries_[col].push_back(v);
  index.emplace(v, code);
  return code;
}

void TableBuilder::AppendCategorical(size_t col, const Value& v) {
  table_->categorical_[col].push_back(EncodeDictionary(col, v));
}

void TableBuilder::AppendInt(size_t col, int64_t v) {
  table_->ints_[col].push_back(v);
}

void TableBuilder::AppendDouble(size_t col, double v) {
  table_->doubles_[col].push_back(v);
}

Status TableBuilder::AddRow(const std::vector<Value>& values) {
  const Schema& schema = table_->schema_;
  if (values.size() != schema.num_columns()) {
    return Status::InvalidArgument(StrFormat(
        "row arity %zu does not match schema arity %zu", values.size(),
        schema.num_columns()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    switch (schema.column(i).type) {
      case ColumnType::kCategorical:
        AppendCategorical(i, values[i]);
        break;
      case ColumnType::kInt:
        if (!values[i].is_numeric()) {
          return Status::TypeMismatch(StrFormat(
              "column '%s' expects int, got %s", schema.column(i).name.c_str(),
              DataTypeToString(values[i].type())));
        }
        AppendInt(i, values[i].is_int()
                         ? values[i].AsInt()
                         : static_cast<int64_t>(values[i].AsDouble()));
        break;
      case ColumnType::kDouble:
        if (!values[i].is_numeric()) {
          return Status::TypeMismatch(StrFormat(
              "column '%s' expects double, got %s",
              schema.column(i).name.c_str(),
              DataTypeToString(values[i].type())));
        }
        AppendDouble(i, values[i].AsDouble());
        break;
    }
  }
  CommitRow();
  return Status::OK();
}

std::shared_ptr<Table> TableBuilder::Finish() { return std::move(table_); }

Status Catalog::AddTable(std::shared_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name)) {
    return Status::AlreadyExists("table already in catalog: " + name);
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Result<std::shared_ptr<Table>> Catalog::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  // zv-lint: order-independent — sorted before returning. (The sort is
  // load-bearing: this used to return hash order, which leaks the
  // unordered_map's layout into anything that renders the catalog.)
  for (const auto& [name, t] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace zv
