/// \file table.h
/// \brief In-memory columnar relation with dictionary-encoded categorical
/// columns — the storage substrate under both database backends.
///
/// zenvisage's storage model (§6.2) is column-oriented: non-indexed
/// (measure) columns are plain arrays; categorical columns are
/// dictionary-encoded, which makes the per-distinct-value Roaring indexes of
/// the RoaringDatabase natural. ScanDatabase (the PostgreSQL stand-in)
/// operates on the same tables without indexes.

#ifndef ZV_STORAGE_TABLE_H_
#define ZV_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace zv {

/// Physical column type.
enum class ColumnType {
  kCategorical,  ///< dictionary-encoded Value codes (string or int values)
  kInt,          ///< int64 measure
  kDouble,       ///< double measure
};

const char* ColumnTypeToString(ColumnType t);

/// \brief A named, typed column declaration.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kCategorical;
};

/// \brief Ordered list of column definitions with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Returns the column index or -1 if absent.
  int Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) >= 0; }

  /// Names of all columns, in schema order.
  std::vector<std::string> ColumnNames() const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, int> index_;
};

/// \brief An immutable-after-build columnar table.
///
/// Row access is by (row index, column index). Categorical cells are read
/// either as dictionary codes (hot paths) or as Values (API boundaries).
class Table {
 public:
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  const std::string& name() const { return name_; }

  ColumnType column_type(size_t col) const { return schema_.column(col).type; }

  /// --- Categorical columns -------------------------------------------
  int32_t Code(size_t row, size_t col) const {
    return categorical_[col][row];
  }
  size_t DictSize(size_t col) const { return dictionaries_[col].size(); }
  const Value& DictValue(size_t col, int32_t code) const {
    return dictionaries_[col][static_cast<size_t>(code)];
  }
  /// Returns the code for `v` in column `col`, or -1 if not in dictionary.
  int32_t LookupCode(size_t col, const Value& v) const;

  /// --- Measure columns -----------------------------------------------
  double NumericAt(size_t row, size_t col) const;
  int64_t IntAt(size_t row, size_t col) const { return ints_[col][row]; }

  /// Generic (slow-path) cell access as a Value.
  Value ValueAt(size_t row, size_t col) const;

  /// Raw column storage for tight loops.
  const std::vector<int32_t>& CategoricalColumn(size_t col) const {
    return categorical_[col];
  }
  const std::vector<double>& DoubleColumn(size_t col) const {
    return doubles_[col];
  }
  const std::vector<int64_t>& IntColumn(size_t col) const {
    return ints_[col];
  }
  const std::vector<Value>& Dictionary(size_t col) const {
    return dictionaries_[col];
  }

  /// Approximate resident bytes (columns + dictionaries).
  size_t MemoryBytes() const;

 private:
  friend class TableBuilder;

  std::string name_;
  Schema schema_;
  size_t num_rows_ = 0;
  // Indexed by column position; only the vector matching the column's type
  // is populated.
  std::vector<std::vector<int32_t>> categorical_;
  std::vector<std::vector<Value>> dictionaries_;
  std::vector<std::vector<int64_t>> ints_;
  std::vector<std::vector<double>> doubles_;
};

/// \brief Row-at-a-time builder that performs dictionary encoding.
class TableBuilder {
 public:
  TableBuilder(std::string table_name, Schema schema);

  /// Appends one row; `values` must match the schema arity and cell types
  /// must be coercible to the column types.
  Status AddRow(const std::vector<Value>& values);

  /// Typed fast-path appenders (one call per column, then CommitRow()).
  void AppendCategorical(size_t col, const Value& v);
  void AppendInt(size_t col, int64_t v);
  void AppendDouble(size_t col, double v);
  void CommitRow() { ++table_->num_rows_; }

  size_t num_rows() const { return table_->num_rows_; }

  /// Finalizes and returns the table; the builder is consumed.
  std::shared_ptr<Table> Finish();

 private:
  int32_t EncodeDictionary(size_t col, const Value& v);

  std::shared_ptr<Table> table_;
  std::vector<std::unordered_map<Value, int32_t, ValueHash>> dict_index_;
};

/// \brief Named collection of tables shared by database backends.
class Catalog {
 public:
  Status AddTable(std::shared_ptr<Table> table);
  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace zv

#endif  // ZV_STORAGE_TABLE_H_
