/// \file csv_loader.h
/// \brief Builds a Table from CSV with column-type inference — the
/// practical ingestion path for users bringing their own data (the paper's
/// deployments loaded domain CSVs: housing, airline, census).

#ifndef ZV_STORAGE_CSV_LOADER_H_
#define ZV_STORAGE_CSV_LOADER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "storage/table.h"

namespace zv {

struct CsvLoadOptions {
  /// Columns forced to a specific type by name (overrides inference).
  std::vector<std::pair<std::string, ColumnType>> overrides;
  /// A numeric column whose distinct-value count is at most this is
  /// inferred as categorical (so year/month-style columns get dictionary
  /// encoding and, in the Roaring backend, bitmap indexes).
  size_t categorical_numeric_threshold = 64;
};

/// Infers a schema from the CSV content:
///  - all-numeric columns with few distinct values -> kCategorical,
///  - all-integer columns -> kInt, other numeric -> kDouble,
///  - anything else -> kCategorical (string dictionary).
Result<Schema> InferCsvSchema(const CsvTable& csv,
                              const CsvLoadOptions& opts = {});

/// Parses + loads in one step. Empty cells become NULL-like defaults
/// (0 for measures, "" for categoricals).
Result<std::shared_ptr<Table>> TableFromCsv(const std::string& table_name,
                                            const CsvTable& csv,
                                            const CsvLoadOptions& opts = {});

/// Reads a CSV file from disk and loads it.
Result<std::shared_ptr<Table>> TableFromCsvFile(
    const std::string& table_name, const std::string& path,
    const CsvLoadOptions& opts = {});

}  // namespace zv

#endif  // ZV_STORAGE_CSV_LOADER_H_
