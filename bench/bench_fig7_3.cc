/// \file bench_fig7_3.cc
/// \brief Figure 7.3: overall performance of the three task processors on
/// the two real-world datasets (census-income and airline).
///
/// Paper setup: census 300K x 40, airline 15M x 29; reported: total time
/// per task (similarity / representative / outlier). Paper shape: on real
/// data the group counts are small, so query execution dominates (>95%)
/// and the three tasks land close together, with outlier > representative
/// > similarity.
///
/// This reproduction uses the dataset generators at 1/6 paper scale by
/// default (ZV_BENCH_SCALE=6 for full size).

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "engine/scan_db.h"
#include "workload/datasets.h"
#include "zql/executor.h"

namespace {

using zv::bench::JsonRecorder;
using zv::bench::PrintHeader;

void RunTasks(zv::Database* db, const std::string& table,
              const std::string& x, const std::string& y,
              const std::string& z, const zv::Value& reference_z,
              JsonRecorder* recorder) {
  const std::string ref = reference_z.is_string()
                              ? "'" + reference_z.AsString() + "'"
                              : reference_z.ToString();
  const std::string viz = "bar.(y=agg('avg'))";
  const std::string similarity =
      "f1 | '" + x + "' | '" + y + "' | '" + z + "'." + ref + " | | " + viz +
      " |\n"
      "f2 | '" + x + "' | '" + y + "' | v1 <- '" + z + "'.(* - " + ref +
      ") | | " + viz + " | v2 <- argmin_v1[k=10] D(f1, f2)\n"
      "*f3 | '" + x + "' | '" + y + "' | v2 | | " + viz + " |";
  const std::string representative =
      "f1 | '" + x + "' | '" + y + "' | v1 <- '" + z + "'.* | | " + viz +
      " | v2 <- R(10, v1, f1)\n"
      "*f2 | '" + x + "' | '" + y + "' | v2 | | " + viz + " |";
  const std::string outlier =
      "f1 | '" + x + "' | '" + y + "' | v1 <- '" + z + "'.* | | " + viz +
      " | v2 <- R(10, v1, f1)\n"
      "f2 | '" + x + "' | '" + y + "' | v2 | | " + viz + " |\n"
      "f3 | '" + x + "' | '" + y + "' | v1 | | " + viz + " | v3 <- "
      "argmax_v1[k=10] min_v2 D(f3, f2)\n"
      "*f4 | '" + x + "' | '" + y + "' | v3 | | " + viz + " |";

  const std::pair<const char*, const std::string*> tasks[] = {
      {"Similarity", &similarity},
      {"Representative", &representative},
      {"Outlier", &outlier},
  };
  for (const auto& [name, query] : tasks) {
    zv::zql::ZqlExecutor exec(db, table);
    auto result = exec.ExecuteText(*query);
    if (!result.ok()) {
      std::printf("%-10s %-16s FAILED: %s\n", table.c_str(), name,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-10s %-16s %10.1f %14.1f %14.1f %9.0f%%\n", table.c_str(),
                name, result->stats.total_ms, result->stats.compute_ms,
                result->stats.exec_ms,
                100.0 * result->stats.exec_ms /
                    std::max(0.001, result->stats.total_ms));
    recorder->Record(table + "/" + name, result->stats.total_ms,
                     {{"kind", "task_processor"},
                      {"compute_ms", std::to_string(result->stats.compute_ms)},
                      {"exec_ms", std::to_string(result->stats.exec_ms)}});
  }
}

}  // namespace

int main() {
  JsonRecorder recorder("fig7_3");
  PrintHeader("Figure 7.3: task processors on real-world data");
  std::printf("%-10s %-16s %10s %14s %14s %10s\n", "dataset", "task",
              "total(ms)", "compute(ms)", "exec(ms)", "exec share");

  {
    zv::CensusDataOptions opts;
    opts.num_rows = zv::bench::ScaledRows(50000);
    auto census = zv::MakeCensusTable(opts);
    zv::ScanDatabase db;
    if (auto s = db.RegisterTable(census); !s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
    // X: a mid-cardinality attribute; Z: another; Y: income.
    const size_t zcol = static_cast<size_t>(census->schema().Find("attr3"));
    RunTasks(&db, "census", "attr1", "income", "attr3",
             census->DictValue(zcol, 0), &recorder);
  }
  {
    zv::AirlineDataOptions opts;
    opts.num_rows = zv::bench::ScaledRows(2000000);
    auto airline = zv::MakeAirlineTable(opts);
    zv::ScanDatabase db;
    if (auto s = db.RegisterTable(airline); !s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const size_t ocol = static_cast<size_t>(airline->schema().Find("origin"));
    RunTasks(&db, "airline", "year", "dep_delay", "origin",
             airline->DictValue(ocol, 0), &recorder);
  }
  return 0;
}
