/// \file bench_ch8_user_study.cc
/// \brief Chapter 8 reproduction: Table 8.1 (participant experience),
/// §8.1's Finding 1/2 means, Table 8.2 (Tukey's HSD on task completion
/// time), and Figure 8.2 (accuracy over time), from the analyst-agent
/// simulation (DESIGN.md §4, substitution 3).
///
/// Paper values for comparison:
///   times  : drag-drop 74s (sd 15.1), custom 115s (sd 51.6),
///            baseline 172.5s (sd 50.5)
///   accuracy: drag-drop 85.3%, custom 96.3%, baseline 69.9%
///   Tukey  : dd-vs-custom q=3.35 p=0.061 (insignificant),
///            dd-vs-baseline q=7.97 p=0.001, custom-vs-baseline q=4.62
///            p=0.007 (both significant at p<0.01)

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "study/user_study.h"

namespace {

using zv::bench::PrintHeader;
using zv::bench::PrintSubHeader;

const char* ShortName(zv::StudyInterface i) {
  switch (i) {
    case zv::StudyInterface::kDragDrop:
      return "drag-and-drop";
    case zv::StudyInterface::kCustomBuilder:
      return "custom builder";
    case zv::StudyInterface::kBaseline:
      return "baseline";
  }
  return "?";
}

}  // namespace

int main() {
  PrintHeader("Chapter 8: simulated user study");

  PrintSubHeader("Table 8.1: participants' prior tool experience");
  std::printf("%-45s %s\n", "Tools", "Count");
  for (const auto& row : zv::ParticipantExperience()) {
    std::printf("%-45s %d\n", row.tools.c_str(), row.count);
  }

  const zv::StudyResult result = zv::RunUserStudy();

  PrintSubHeader("Findings 1+2: completion time and accuracy by interface");
  std::printf("%-16s %10s %8s %11s\n", "interface", "time(s)", "sd", "accuracy");
  for (zv::StudyInterface iface :
       {zv::StudyInterface::kDragDrop, zv::StudyInterface::kCustomBuilder,
        zv::StudyInterface::kBaseline}) {
    const auto times = result.Times(iface);
    const auto accs = result.Accuracies(iface);
    std::printf("%-16s %10.1f %8.1f %10.1f%%\n", ShortName(iface),
                zv::Mean(times), zv::StdDev(times), 100 * zv::Mean(accs));
  }

  PrintSubHeader("Table 8.2: Tukey's HSD on task completion time");
  std::printf("ANOVA: F=%.2f, p=%.5f (df %g/%g)\n", result.anova.f_statistic,
              result.anova.p_value, result.anova.df_between,
              result.anova.df_within);
  std::printf("%-42s %12s %10s %s\n", "Treatments", "Q statistic", "p-value",
              "inference");
  for (const auto& c : result.tukey) {
    std::printf("%-20s vs. %-17s %12.4f %10.4f %s\n",
                ShortName(static_cast<zv::StudyInterface>(c.group_a)),
                ShortName(static_cast<zv::StudyInterface>(c.group_b)),
                c.q_statistic, c.p_value,
                c.significant_01   ? "significant (p<0.01)"
                : c.significant_05 ? "significant (p<0.05)"
                                   : "insignificant");
  }

  PrintSubHeader("Figure 8.2: accuracy over time");
  std::printf("%-8s %14s %16s %10s\n", "t(s)", "drag-and-drop",
              "custom builder", "baseline");
  const double max_t = 300;
  const size_t steps = 12;
  const auto dd = AccuracyOverTime(result, zv::StudyInterface::kDragDrop,
                                   max_t, steps);
  const auto cb = AccuracyOverTime(result, zv::StudyInterface::kCustomBuilder,
                                   max_t, steps);
  const auto base = AccuracyOverTime(result, zv::StudyInterface::kBaseline,
                                     max_t, steps);
  for (size_t i = 0; i <= steps; ++i) {
    std::printf("%-8.0f %13.1f%% %15.1f%% %9.1f%%\n", dd[i].first,
                100 * dd[i].second, 100 * cb[i].second,
                100 * base[i].second);
  }
  return 0;
}
