/// \file bench_util.h
/// \brief Shared helpers for the figure-reproduction harnesses: wall-clock
/// timing, table printing, and workload sizing via environment variables.
///
/// Every bench prints the rows/series of the paper figure it reproduces.
/// Absolute numbers differ from the paper (simulated substrate, different
/// hardware, scaled-down default datasets); the comparisons' *shape* is the
/// reproduction target. Set ZV_BENCH_SCALE=10 to run at full paper scale.

#ifndef ZV_BENCH_BENCH_UTIL_H_
#define ZV_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace zv::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Multiplier applied to default workload sizes (ZV_BENCH_SCALE, default 1;
/// 10 approximates the paper's full dataset sizes).
inline double Scale() {
  const char* env = std::getenv("ZV_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double s = std::atof(env);
  return s > 0 ? s : 1.0;
}

inline size_t ScaledRows(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * Scale());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintSubHeader(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

/// \brief Machine-readable benchmark output. Each Record() becomes one JSON
/// line — {"figure":"fig7_1","case":"...","ms":12.3,...} — appended to the
/// file named by ZV_BENCH_JSON (no-op when the variable is unset, so plain
/// bench runs stay untouched). tools/run_bench.sh points every fig7 harness
/// at one temp file and wraps the lines into BENCH_fig7.json, giving future
/// PRs a perf trajectory to diff against.
class JsonRecorder {
 public:
  explicit JsonRecorder(std::string figure) : figure_(std::move(figure)) {}
  JsonRecorder(const JsonRecorder&) = delete;
  JsonRecorder& operator=(const JsonRecorder&) = delete;
  ~JsonRecorder() { Flush(); }

  void Record(const std::string& name, double ms,
              std::map<std::string, std::string> extra = {}) {
    records_.push_back({name, ms, std::move(extra)});
  }

  void Flush() {
    if (records_.empty()) return;
    const char* path = std::getenv("ZV_BENCH_JSON");
    if (path == nullptr) {
      records_.clear();
      return;
    }
    std::FILE* f = std::fopen(path, "a");
    if (f == nullptr) {
      records_.clear();
      return;
    }
    for (const RecordEntry& r : records_) {
      std::fprintf(f, "{\"figure\":\"%s\",\"case\":\"%s\",\"ms\":%.3f",
                   Escape(figure_).c_str(), Escape(r.name).c_str(), r.ms);
      for (const auto& [k, v] : r.extra) {
        std::fprintf(f, ",\"%s\":\"%s\"", Escape(k).c_str(),
                     Escape(v).c_str());
      }
      std::fprintf(f, "}\n");
    }
    std::fclose(f);
    records_.clear();
  }

 private:
  struct RecordEntry {
    std::string name;
    double ms;
    std::map<std::string, std::string> extra;
  };

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string figure_;
  std::vector<RecordEntry> records_;
};

}  // namespace zv::bench

#endif  // ZV_BENCH_BENCH_UTIL_H_
