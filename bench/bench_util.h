/// \file bench_util.h
/// \brief Shared helpers for the figure-reproduction harnesses: wall-clock
/// timing, table printing, and workload sizing via environment variables.
///
/// Every bench prints the rows/series of the paper figure it reproduces.
/// Absolute numbers differ from the paper (simulated substrate, different
/// hardware, scaled-down default datasets); the comparisons' *shape* is the
/// reproduction target. Set ZV_BENCH_SCALE=10 to run at full paper scale.

#ifndef ZV_BENCH_BENCH_UTIL_H_
#define ZV_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace zv::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Multiplier applied to default workload sizes (ZV_BENCH_SCALE, default 1;
/// 10 approximates the paper's full dataset sizes).
inline double Scale() {
  const char* env = std::getenv("ZV_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double s = std::atof(env);
  return s > 0 ? s : 1.0;
}

inline size_t ScaledRows(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * Scale());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintSubHeader(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

}  // namespace zv::bench

#endif  // ZV_BENCH_BENCH_UTIL_H_
