/// \file bench_roaring.cc
/// \brief Adaptive-container ablation (DESIGN.md §3, docs/architecture.md
/// "Kernel layer"): bitmap-level AND/OR throughput at the container mixes
/// the RoaringDatabase actually sees (one bitmap per dictionary value),
/// decode throughput per representation, and the galloping vs linear
/// array-intersection walk. The `gallop_speedup` record asserts the >= 2x
/// win on skewed inputs the adaptive containers promise.
///
/// Emits one JSON record per case to ZV_BENCH_JSON (container mix in the
/// labels) so tools/run_bench.sh folds the container trajectory into
/// BENCH_fig7.json behind the >15% regression gate.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "roaring/container.h"
#include "roaring/roaring.h"

namespace {

using zv::Rng;
using zv::roaring::Container;
using zv::roaring::IntersectMode;
using zv::roaring::IntersectSorted;
using zv::roaring::RoaringBitmap;

RoaringBitmap RandomBitmap(uint32_t universe, uint32_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> vals;
  vals.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    vals.push_back(static_cast<uint32_t>(rng.Uniform(universe)));
  }
  return RoaringBitmap::FromValues(vals);
}

std::vector<uint16_t> RandomChunkValues(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::set<uint16_t> vals;
  while (vals.size() < count) {
    vals.insert(static_cast<uint16_t>(rng.Uniform(65536)));
  }
  return {vals.begin(), vals.end()};
}

}  // namespace

int main() {
  zv::bench::PrintHeader("roaring containers (mixes & galloping intersect)");
  zv::bench::JsonRecorder rec("roaring_containers");

  // --- bitmap-level ops across container mixes ----------------------------
  // Mix labels name the dominant container pair the cardinalities induce:
  // array&array (sparse), bitmap&bitmap (dense), array&bitmap (index
  // probe), inverted&array (a near-full WHERE against a sparse one), and
  // all&bitmap (a full chunk run against a dense filter).
  zv::bench::PrintSubHeader("And/Or by container mix");
  const uint32_t universe = 10'000'000;
  struct MixCase {
    const char* label;
    RoaringBitmap a;
    RoaringBitmap b;
  };
  const MixCase mixes[] = {
      {"and_array_array", RandomBitmap(universe, 10'000, 1),
       RandomBitmap(universe, 10'000, 2)},
      {"and_bitmap_bitmap", RandomBitmap(universe, 5'000'000, 3),
       RandomBitmap(universe, 5'000'000, 4)},
      {"and_array_bitmap", RandomBitmap(universe, 10'000, 5),
       RandomBitmap(universe, 5'000'000, 6)},
      {"and_inverted_array", RoaringBitmap::FromRange(50, universe),
       RandomBitmap(universe, 10'000, 7)},
      {"and_all_bitmap", RoaringBitmap::FromRange(0, universe),
       RandomBitmap(universe, 5'000'000, 8)},
  };
  for (const MixCase& m : mixes) {
    const size_t reps = zv::bench::ScaledRows(20);
    uint64_t sink = 0;
    const zv::bench::WallTimer timer;
    for (size_t r = 0; r < reps; ++r) {
      sink += RoaringBitmap::And(m.a, m.b).Cardinality();
    }
    const double ms = timer.ElapsedMs();
    if (sink == 0xffffffffffffffffULL) std::printf("impossible\n");
    rec.Record(m.label, ms, {{"mix", m.label + 4}});
    std::printf("  %-22s %9.1f ms  (|a|=%llu |b|=%llu)\n", m.label, ms,
                static_cast<unsigned long long>(m.a.Cardinality()),
                static_cast<unsigned long long>(m.b.Cardinality()));
  }

  // --- decode throughput per representation -------------------------------
  zv::bench::PrintSubHeader("ForEach decode by representation");
  struct DecodeCase {
    const char* label;
    RoaringBitmap bm;
  };
  const DecodeCase decodes[] = {
      {"foreach_array", RandomBitmap(universe, 100'000, 9)},
      {"foreach_bitmap", RandomBitmap(universe, 5'000'000, 10)},
      {"foreach_inverted", RoaringBitmap::FromRange(500, universe)},
      {"foreach_all", RoaringBitmap::FromRange(0, universe)},
  };
  for (const DecodeCase& d : decodes) {
    const size_t reps = zv::bench::ScaledRows(5);
    uint64_t sum = 0;
    const zv::bench::WallTimer timer;
    for (size_t r = 0; r < reps; ++r) {
      d.bm.ForEach([&sum](uint32_t v) { sum += v; });
    }
    const double ms = timer.ElapsedMs();
    if (sum == 0xffffffffffffffffULL) std::printf("impossible\n");
    rec.Record(d.label, ms, {{"mix", d.label + 8}});
    std::printf("  %-22s %9.1f ms  (%llu values/pass)\n", d.label, ms,
                static_cast<unsigned long long>(d.bm.Cardinality()));
  }

  // --- galloping vs linear array intersection -----------------------------
  // The skewed shape a dictionary-value probe produces: a handful of set
  // values against a populous container. Linear walks both lists; galloping
  // skips through the large one in log-sized hops.
  zv::bench::PrintSubHeader("array intersect: linear vs galloping (skewed)");
  const std::vector<uint16_t> small = RandomChunkValues(48, 11);
  const std::vector<uint16_t> large = RandomChunkValues(4096, 12);
  const size_t reps = zv::bench::ScaledRows(200'000);
  double ms_by_mode[3] = {0, 0, 0};
  const IntersectMode modes[] = {IntersectMode::kLinear,
                                 IntersectMode::kGalloping,
                                 IntersectMode::kAuto};
  const char* mode_names[] = {"linear", "galloping", "auto"};
  for (int mi = 0; mi < 3; ++mi) {
    size_t sink = 0;
    const zv::bench::WallTimer timer;
    for (size_t r = 0; r < reps; ++r) {
      sink += IntersectSorted(small, large, modes[mi]).size();
    }
    ms_by_mode[mi] = timer.ElapsedMs();
    if (sink == static_cast<size_t>(-1)) std::printf("impossible\n");
    rec.Record(std::string("intersect_") + mode_names[mi], ms_by_mode[mi],
               {{"mix", "skewed_48_4096"}, {"mode", mode_names[mi]}});
    std::printf("  %-22s %9.1f ms\n", mode_names[mi], ms_by_mode[mi]);
  }

  // The adaptive-container acceptance floor: galloping at least 2x over
  // linear on this skew. "pass":"no" warns; fails under ZV_BENCH_STRICT=1.
  const double speedup = ms_by_mode[0] / ms_by_mode[1];
  const bool pass = speedup >= 2.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", speedup);
  rec.Record("gallop_speedup", ms_by_mode[1],
             {{"mix", "skewed_48_4096"},
              {"speedup", buf},
              {"pass", pass ? "yes" : "no"}});
  std::printf("  gallop_speedup: %.2fx (%s)\n", speedup,
              pass ? "pass" : "FAIL: below the 2x floor");

  return 0;
}
