/// \file bench_roaring.cc
/// \brief Ablation (DESIGN.md §3): Roaring container-level costs — the
/// 4096 array/bitmap cutover and the run-container trade-off — plus
/// bitmap-level AND/OR throughput at the densities the RoaringDatabase
/// actually sees (one bitmap per dictionary value).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "roaring/roaring.h"

namespace {

using zv::Rng;
using zv::roaring::RoaringBitmap;

RoaringBitmap RandomBitmap(uint32_t universe, uint32_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> vals;
  vals.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    vals.push_back(static_cast<uint32_t>(rng.Uniform(universe)));
  }
  return RoaringBitmap::FromValues(vals);
}

// Intersection cost across density regimes: sparse&sparse (array
// containers), dense&dense (bitmap containers), sparse&dense (the common
// index-probe shape).
void BM_RoaringAnd(benchmark::State& state) {
  const uint32_t universe = 10'000'000;
  const auto a = RandomBitmap(universe, static_cast<uint32_t>(state.range(0)), 1);
  const auto b = RandomBitmap(universe, static_cast<uint32_t>(state.range(1)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoaringBitmap::And(a, b));
  }
  state.SetLabel("|a|=" + std::to_string(a.Cardinality()) +
                 " |b|=" + std::to_string(b.Cardinality()));
}
BENCHMARK(BM_RoaringAnd)
    ->Args({10'000, 10'000})
    ->Args({10'000, 5'000'000})
    ->Args({5'000'000, 5'000'000});

void BM_RoaringAndCardinality(benchmark::State& state) {
  const uint32_t universe = 10'000'000;
  const auto a = RandomBitmap(universe, static_cast<uint32_t>(state.range(0)), 1);
  const auto b = RandomBitmap(universe, static_cast<uint32_t>(state.range(1)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoaringBitmap::AndCardinality(a, b));
  }
}
BENCHMARK(BM_RoaringAndCardinality)
    ->Args({10'000, 5'000'000})
    ->Args({5'000'000, 5'000'000});

void BM_RoaringOr(benchmark::State& state) {
  const uint32_t universe = 10'000'000;
  const auto a = RandomBitmap(universe, static_cast<uint32_t>(state.range(0)), 1);
  const auto b = RandomBitmap(universe, static_cast<uint32_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoaringBitmap::Or(a, b));
  }
}
BENCHMARK(BM_RoaringOr)->Arg(10'000)->Arg(1'000'000);

// ForEach decode throughput — the row-id iteration driving every
// RoaringDatabase aggregation (Fig 7.5's 100%-selectivity regime).
void BM_RoaringForEach(benchmark::State& state) {
  const uint32_t universe = 10'000'000;
  const auto a = RandomBitmap(universe, static_cast<uint32_t>(state.range(0)), 1);
  for (auto _ : state) {
    uint64_t sum = 0;
    a.ForEach([&sum](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.Cardinality()));
}
BENCHMARK(BM_RoaringForEach)->Arg(100'000)->Arg(5'000'000);

// Run-container compression: contiguous ranges (sorted row ids from
// sequential loads) before and after RunOptimize.
void BM_RoaringRunOptimizedAnd(benchmark::State& state) {
  RoaringBitmap a = RoaringBitmap::FromRange(0, 5'000'000);
  RoaringBitmap b = RoaringBitmap::FromRange(2'500'000, 7'500'000);
  if (state.range(0) == 1) {
    a.RunOptimize();
    b.RunOptimize();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoaringBitmap::And(a, b));
  }
  state.SetLabel(state.range(0) == 1 ? "run-optimized" : "bitmap");
}
BENCHMARK(BM_RoaringRunOptimizedAnd)->Arg(0)->Arg(1);

void BM_RoaringContains(benchmark::State& state) {
  const auto a = RandomBitmap(10'000'000, 1'000'000, 1);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        a.Contains(static_cast<uint32_t>(rng.Uniform(10'000'000))));
  }
}
BENCHMARK(BM_RoaringContains);

}  // namespace

BENCHMARK_MAIN();
