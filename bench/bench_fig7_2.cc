/// \file bench_fig7_2.cc
/// \brief Figure 7.2: the same optimization study on the real airline
/// dataset, with the Table 7.1 (left) and Table 7.2 (right) queries.
///
/// Paper setup: 15M-row airline dataset [19]; queries over airport sets OA
/// and DA ({JFK, SFO, ...}). This reproduction uses the airline-like
/// generator (DESIGN.md §4) at 2M rows by default and 15 airports per set.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "engine/scan_db.h"
#include "workload/datasets.h"
#include "zql/executor.h"

namespace {

using zv::bench::JsonRecorder;
using zv::bench::PrintHeader;
using zv::bench::PrintSubHeader;
using zv::zql::OptLevel;

constexpr uint64_t kRequestLatencyMicros = 2000;

void RunQueryAtAllLevels(zv::Database* db, const std::string& name,
                         const std::string& json_case,
                         const std::string& query,
                         const zv::zql::NamedSets& sets,
                         const std::vector<OptLevel>& levels,
                         JsonRecorder* recorder) {
  PrintSubHeader(name);
  std::printf("%-11s %10s %12s %13s\n", "opt", "time(ms)", "SQL queries",
              "SQL requests");
  for (OptLevel level : levels) {
    zv::zql::ZqlOptions opts;
    opts.optimization = level;
    opts.named_sets = sets;
    zv::zql::ZqlExecutor exec(db, "airline", opts);
    zv::bench::WallTimer timer;
    auto result = exec.ExecuteText(query);
    const double ms = timer.ElapsedMs();
    if (!result.ok()) {
      std::printf("%-11s FAILED: %s\n", zv::zql::OptLevelToString(level),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-11s %10.1f %12llu %13llu\n",
                zv::zql::OptLevelToString(level), ms,
                static_cast<unsigned long long>(result->stats.sql_queries),
                static_cast<unsigned long long>(result->stats.sql_requests));
    recorder->Record(json_case + "/" + zv::zql::OptLevelToString(level), ms,
                     {{"kind", "zql_opt_levels"}});
  }
}

}  // namespace

int main() {
  JsonRecorder recorder("fig7_2");
  PrintHeader("Figure 7.2: query optimization levels (airline data)");
  zv::AirlineDataOptions data_opts;
  data_opts.num_rows = zv::bench::ScaledRows(2000000);
  data_opts.num_airports = 60;
  std::printf("dataset: %zu rows, %zu airports; request latency %.1f ms\n",
              data_opts.num_rows, data_opts.num_airports,
              kRequestLatencyMicros / 1000.0);

  zv::bench::WallTimer gen_timer;
  auto airline = zv::MakeAirlineTable(data_opts);
  zv::ScanDatabase db;
  if (auto s = db.RegisterTable(airline); !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }
  db.set_request_latency_micros(kRequestLatencyMicros);
  std::printf("generated + registered in %.0f ms\n", gen_timer.ElapsedMs());

  // OA / DA: 15 airports each (the paper's {JFK, SFO, ...} sets).
  zv::zql::NamedSets sets;
  const size_t origin_col =
      static_cast<size_t>(airline->schema().Find("origin"));
  std::vector<zv::Value> oa, da;
  for (size_t i = 0; i < 15 && i < airline->DictSize(origin_col); ++i) {
    oa.push_back(airline->DictValue(origin_col, static_cast<int32_t>(i)));
    da.push_back(airline->DictValue(origin_col, static_cast<int32_t>(i + 15)));
  }
  sets.value_sets["OA"] = {"origin", oa};
  sets.value_sets["DA"] = {"origin", da};

  // Table 7.1: airports whose average departure or weather delay has been
  // increasing over the years.
  const std::string table_7_1 =
      "f1 | 'year' | 'dep_delay' | v1 <- OA | | bar.(y=agg('avg')) | v2 <- "
      "argany_v1[t > 0] T(f1)\n"
      "f2 | 'year' | 'weather_delay' | v1 | | bar.(y=agg('avg')) | v3 <- "
      "argany_v1[t > 0] T(f2)\n"
      "*f3 | 'year' | y3 <- {'dep_delay', 'weather_delay'} | v4 <- "
      "(v2.range | v3.range) | | bar.(y=agg('avg')) |";
  // No adjacent task-less rows -> Intra-Task omitted (paper, left plot).
  RunQueryAtAllLevels(&db, "Table 7.1 (Fig 7.2 left)", "table_7_1",
                      table_7_1, sets,
                      {OptLevel::kNoOpt, OptLevel::kIntraLine,
                       OptLevel::kInterTask},
                      &recorder);

  // Table 7.2: airports where June vs December arrival delay differs most.
  const std::string table_7_2 =
      "f1 | 'day_of_month' | 'arr_delay' | v1 <- DA | month=6 | "
      "bar.(y=agg('avg')) |\n"
      "f2 | 'day_of_month' | 'arr_delay' | v1 | month=12 | "
      "bar.(y=agg('avg')) | v2 <- argmax_v1[k=10] D(f1, f2)\n"
      "*f3 | 'month' | y1 <- {'arr_delay', 'weather_delay'} | v2 | | "
      "bar.(y=agg('avg')) |";
  RunQueryAtAllLevels(&db, "Table 7.2 (Fig 7.2 right)", "table_7_2",
                      table_7_2, sets,
                      {OptLevel::kNoOpt, OptLevel::kIntraLine,
                       OptLevel::kIntraTask, OptLevel::kInterTask},
                      &recorder);
  return 0;
}
