/// \file bench_distance.cc
/// \brief Kernel-layer ablation (DESIGN.md §3, docs/architecture.md "Kernel
/// layer"): per-comparison cost of the distance metrics across series
/// lengths, and the explicit SIMD tiers against the portable scalar loops.
/// The Process column's computation time in Fig 7.4 is #comparisons x these
/// unit costs; the `simd_speedup` record asserts the raw-speed floor the
/// kernel layer promises (L2 >= 2x over scalar at n=512 on AVX2 hosts).
///
/// Emits one JSON record per case to ZV_BENCH_JSON (kernel variant and
/// series length in the labels) so tools/run_bench.sh folds the kernel
/// trajectory into BENCH_fig7.json behind the >15% regression gate.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "tasks/distance.h"
#include "tasks/simd.h"

namespace {

using zv::DistanceMetric;
using zv::Rng;

std::vector<double> MakeSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> ys(n);
  for (size_t i = 0; i < n; ++i) {
    ys[i] = rng.Normal(0, 1) + 0.1 * static_cast<double>(i);
  }
  return ys;
}

/// EuclideanSpan's exact composition with an explicit kernel table, so both
/// tiers can be timed in one process regardless of what dispatch resolved.
double EuclideanWith(const zv::simd::Kernels& kernels, const double* a,
                     const double* b, size_t n) {
  double s[zv::simd::kSumLanes] = {};
  const size_t n16 = n & ~(zv::simd::kSumLanes - 1);
  kernels.sum_sq_diff16(a, b, n16, s);
  for (size_t i = n16; i < n; ++i) {
    const double d = a[i] - b[i];
    s[(i - n16) & 3] += d * d;
  }
  return std::sqrt(zv::simd::CombineSums(s));
}

/// Ms for `reps` L2 evaluations at length `n` under `level`; the checksum
/// keeps the optimizer honest.
double TimeL2(zv::simd::Level level, size_t n, size_t reps) {
  const std::vector<double> a = MakeSeries(n, 1), b = MakeSeries(n, 2);
  const zv::simd::Kernels& kernels = zv::simd::KernelsFor(level);
  double sink = 0;
  const zv::bench::WallTimer timer;
  for (size_t r = 0; r < reps; ++r) {
    sink += EuclideanWith(kernels, a.data(), b.data(), n);
  }
  const double ms = timer.ElapsedMs();
  if (sink < 0) std::printf("impossible %f\n", sink);
  return ms;
}

}  // namespace

int main() {
  zv::bench::PrintHeader("distance kernels (unit costs & SIMD tiers)");
  zv::bench::JsonRecorder rec("distance_kernels");
  const char* active = zv::simd::LevelName(zv::simd::ActiveLevel());
  std::printf("dispatch: kernel=%s (width %zu)\n", active,
              zv::simd::ActiveWidth());

  // --- L2 tier sweep across series lengths --------------------------------
  zv::bench::PrintSubHeader("L2 scalar vs avx2 by series length");
  const bool have_avx2 = zv::simd::Supported(zv::simd::Level::kAvx2);
  double scalar512 = 0, avx512 = 0;
  for (const size_t n : {size_t{64}, size_t{512}, size_t{4096}}) {
    const size_t reps = zv::bench::ScaledRows(20'000'000 / n);
    const double ms_scalar = TimeL2(zv::simd::Level::kScalar, n, reps);
    rec.Record("l2_scalar_n" + std::to_string(n), ms_scalar,
               {{"kernel", "scalar"}, {"n", std::to_string(n)}});
    std::printf("  n=%-5zu scalar %8.1f ms", n, ms_scalar);
    if (have_avx2) {
      const double ms_avx2 = TimeL2(zv::simd::Level::kAvx2, n, reps);
      rec.Record("l2_avx2_n" + std::to_string(n), ms_avx2,
                 {{"kernel", "avx2"}, {"n", std::to_string(n)}});
      std::printf("   avx2 %8.1f ms   speedup %.2fx", ms_avx2,
                  ms_scalar / ms_avx2);
      if (n == 512) {
        scalar512 = ms_scalar;
        avx512 = ms_avx2;
      }
    }
    std::printf("\n");
  }

  // The kernel layer's acceptance floor: vectorized L2 at n=512 at least 2x
  // over scalar. Recorded like trace_overhead — "pass":"no" warns, and
  // fails under ZV_BENCH_STRICT=1 in tools/run_bench.sh.
  if (have_avx2) {
    const double speedup = scalar512 / avx512;
    const bool pass = speedup >= 2.0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", speedup);
    rec.Record("simd_speedup_n512", avx512,
               {{"kernel", "avx2"},
                {"n", "512"},
                {"speedup", buf},
                {"pass", pass ? "yes" : "no"}});
    std::printf("  simd_speedup n=512: %.2fx (%s)\n", speedup,
                pass ? "pass" : "FAIL: below the 2x floor");
  } else {
    std::printf("  simd_speedup n=512: skipped (no AVX2 tier)\n");
  }

  // --- full metric sweep through the dispatched path ----------------------
  zv::bench::PrintSubHeader("per-comparison metric cost (active kernel)");
  struct MetricCase {
    const char* label;
    DistanceMetric metric;
    size_t n;
    size_t reps;
  };
  const MetricCase cases[] = {
      {"euclidean_n256", DistanceMetric::kEuclidean, 256, 40'000},
      {"euclidean_n2048", DistanceMetric::kEuclidean, 2048, 8'000},
      {"dtw_n128", DistanceMetric::kDtw, 128, 400},
      {"dtw_n256", DistanceMetric::kDtw, 256, 100},
      {"kl_n256", DistanceMetric::kKlDivergence, 256, 8'000},
      {"emd_n256", DistanceMetric::kEmd, 256, 8'000},
  };
  for (const MetricCase& c : cases) {
    const std::vector<double> a = MakeSeries(c.n, 3), b = MakeSeries(c.n, 4);
    const size_t reps = zv::bench::ScaledRows(c.reps);
    double sink = 0;
    const zv::bench::WallTimer timer;
    for (size_t r = 0; r < reps; ++r) {
      sink += zv::SpanDistance(a.data(), b.data(), c.n, c.metric);
    }
    const double ms = timer.ElapsedMs();
    if (sink < 0) std::printf("impossible %f\n", sink);
    rec.Record(c.label, ms, {{"kernel", active}, {"n", std::to_string(c.n)}});
    std::printf("  %-16s %9.1f ms  (%zu reps, %.2f us/cmp)\n", c.label, ms,
                reps, ms * 1000.0 / static_cast<double>(reps));
  }

  return 0;
}
