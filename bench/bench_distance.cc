/// \file bench_distance.cc
/// \brief Ablation (DESIGN.md §3): per-comparison cost of the distance
/// metrics available for D and of the trend primitive T, across series
/// lengths. The Process column's computation time in Fig 7.4 is
/// #comparisons x these unit costs; DTW's quadratic cost explains why the
/// prototype defaults to L2.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "tasks/distance.h"
#include "tasks/kmeans.h"
#include "tasks/primitives.h"

namespace {

using zv::DistanceMetric;
using zv::Rng;
using zv::Visualization;

Visualization MakeSeries(size_t n, uint64_t seed) {
  Visualization v;
  v.x_attr = "t";
  v.y_attr = "y";
  Rng rng(seed);
  zv::Series s;
  s.name = "y";
  for (size_t i = 0; i < n; ++i) {
    v.xs.push_back(zv::Value::Int(static_cast<int64_t>(i)));
    s.ys.push_back(rng.Normal(0, 1) + 0.1 * static_cast<double>(i));
  }
  v.series.push_back(std::move(s));
  return v;
}

void BM_Distance(benchmark::State& state) {
  const auto metric = static_cast<DistanceMetric>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const Visualization a = MakeSeries(n, 1), b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zv::Distance(a, b, metric));
  }
  state.SetLabel(std::string(zv::DistanceMetricToString(metric)) + "/n=" +
                 std::to_string(n));
}
BENCHMARK(BM_Distance)
    ->Args({static_cast<int>(DistanceMetric::kEuclidean), 12})
    ->Args({static_cast<int>(DistanceMetric::kEuclidean), 100})
    ->Args({static_cast<int>(DistanceMetric::kDtw), 12})
    ->Args({static_cast<int>(DistanceMetric::kDtw), 100})
    ->Args({static_cast<int>(DistanceMetric::kKlDivergence), 100})
    ->Args({static_cast<int>(DistanceMetric::kEmd), 100});

void BM_Trend(benchmark::State& state) {
  const Visualization a = MakeSeries(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zv::Trend(a));
  }
}
BENCHMARK(BM_Trend)->Arg(12)->Arg(100);

// R's cost: k-means over n aligned visualizations of width w.
void BM_KMeansRepresentatives(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<std::vector<double>> points(n);
  for (auto& p : points) {
    p.resize(12);
    for (double& x : p) x = rng.Normal(0, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(zv::KMeans(points, 10, 42));
  }
}
BENCHMARK(BM_KMeansRepresentatives)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
