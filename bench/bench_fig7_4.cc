/// \file bench_fig7_4.cc
/// \brief Figure 7.4: task-processor performance as a function of the
/// number of groups (= distinct X values x distinct Z values), for the
/// three canonical task queries:
///   (i)  similarity search (Table 3.13 shape, argmin D vs a reference),
///   (ii) representative search (R = k-means, k = 10),
///   (iii) outlier search (representatives + argmax min-distance).
///
/// Paper setup: synthetic dataset fixed at 10M rows; groups swept
/// {1000, 10000, 50000, 100000} by varying the Z attribute's cardinality;
/// reported: (a) total time, (b) computation time, (c) query execution
/// time. Paper shape: query execution stays nearly flat (same data
/// fetched, more GROUP BY groups), computation grows with group count and
/// ordering outlier > representative > similarity.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "engine/scan_db.h"
#include "workload/datasets.h"
#include "zql/executor.h"

namespace {

using zv::bench::JsonRecorder;
using zv::bench::PrintHeader;

struct TaskTimes {
  double total = 0, compute = 0, exec = 0;
};

TaskTimes RunTask(zv::Database* db, const std::string& query) {
  zv::zql::ZqlExecutor exec(db, "sales");
  auto result = exec.ExecuteText(query);
  if (!result.ok()) {
    std::fprintf(stderr, "task failed: %s\n",
                 result.status().ToString().c_str());
    return {};
  }
  return {result->stats.total_ms, result->stats.compute_ms,
          result->stats.exec_ms};
}

}  // namespace

int main() {
  JsonRecorder recorder("fig7_4");
  PrintHeader("Figure 7.4: task processors vs number of groups");
  // X = year (10 distinct values); Z = product with swept cardinality, so
  // #groups = 10 * |product|.
  const size_t rows = zv::bench::ScaledRows(1000000);
  const std::vector<size_t> product_counts = {100, 1000, 5000, 10000};
  std::printf("dataset: %zu rows (fixed); groups = 10 years x |product|\n",
              rows);
  std::printf("\n%-8s %-16s %10s %14s %14s\n", "groups", "task", "total(ms)",
              "compute(ms)", "exec(ms)");

  for (size_t products : product_counts) {
    zv::SalesDataOptions opts;
    opts.num_rows = rows;
    opts.num_products = products;
    auto sales = zv::MakeSalesTable(opts);
    zv::ScanDatabase db;
    if (auto s = db.RegisterTable(sales); !s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const size_t groups = 10 * products;

    const std::string similarity =
        "f1 | 'year' | 'sales' | 'product'.'product0' | | "
        "bar.(y=agg('sum')) |\n"
        "f2 | 'year' | 'sales' | v1 <- 'product'.(* - 'product0') | | "
        "bar.(y=agg('sum')) | v2 <- argmin_v1[k=10] D(f1, f2)\n"
        "*f3 | 'year' | 'sales' | v2 | | bar.(y=agg('sum')) |";
    const std::string representative =
        "f1 | 'year' | 'sales' | v1 <- 'product'.* | | bar.(y=agg('sum')) | "
        "v2 <- R(10, v1, f1)\n"
        "*f2 | 'year' | 'sales' | v2 | | bar.(y=agg('sum')) |";
    const std::string outlier =
        "f1 | 'year' | 'sales' | v1 <- 'product'.* | | bar.(y=agg('sum')) | "
        "v2 <- R(10, v1, f1)\n"
        "f2 | 'year' | 'sales' | v2 | | bar.(y=agg('sum')) |\n"
        "f3 | 'year' | 'sales' | v1 | | bar.(y=agg('sum')) | v3 <- "
        "argmax_v1[k=10] min_v2 D(f3, f2)\n"
        "*f4 | 'year' | 'sales' | v3 | | bar.(y=agg('sum')) |";

    const std::pair<const char*, const std::string*> tasks[] = {
        {"Similarity", &similarity},
        {"Representative", &representative},
        {"Outlier", &outlier},
    };
    for (const auto& [name, query] : tasks) {
      const TaskTimes t = RunTask(&db, *query);
      std::printf("%-8zu %-16s %10.1f %14.1f %14.1f\n", groups, name, t.total,
                  t.compute, t.exec);
      recorder.Record("groups_" + std::to_string(groups) + "/" + name,
                      t.total,
                      {{"kind", "task_vs_groups"},
                       {"compute_ms", std::to_string(t.compute)},
                       {"exec_ms", std::to_string(t.exec)}});
    }
  }
  return 0;
}
