/// \file bench_fig7_5.cc
/// \brief Figure 7.5: RoaringDB vs PostgreSQL(-sim) execution time for the
/// representative aggregation query
///
///   SELECT X, SUM(Y), Z FROM t [WHERE P1=p1 AND P2=p2]
///   GROUP BY Z, X ORDER BY Z, X
///
/// on (a) 100% selectivity and (b) 10% selectivity over a synthetic table,
/// sweeping the number of groups {20, 100, 10000, 50000, 100000}, and (c)
/// on the census-like dataset at both selectivities.
///
/// Paper shape: at 10% selectivity the bitmap indexes win across all group
/// counts (paper: 30-80% better); at 100% selectivity Roaring wins only at
/// small group counts and loses as per-group overhead grows (paper: 30-50%
/// worse at high group counts).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "engine/roaring_db.h"
#include "engine/scan_db.h"
#include "sql/parser.h"
#include "workload/datasets.h"

namespace {

using zv::bench::JsonRecorder;
using zv::bench::PrintHeader;
using zv::bench::PrintSubHeader;

/// Synthetic table purpose-built for the Fig 7.5 sweep: two group columns
/// with configurable cardinalities, two 10-value predicate columns, one
/// measure.
std::shared_ptr<zv::Table> MakeGroupTable(size_t rows, size_t x_card,
                                          size_t z_card) {
  zv::Schema schema({
      {"x", zv::ColumnType::kCategorical},
      {"z", zv::ColumnType::kCategorical},
      {"p1", zv::ColumnType::kCategorical},
      {"p2", zv::ColumnType::kCategorical},
      {"y", zv::ColumnType::kDouble},
  });
  zv::TableBuilder b("t", schema);
  zv::Rng rng(17);
  for (size_t r = 0; r < rows; ++r) {
    b.AppendCategorical(0, zv::Value::Int(static_cast<int64_t>(
                               rng.Uniform(x_card))));
    b.AppendCategorical(1, zv::Value::Int(static_cast<int64_t>(
                               rng.Uniform(z_card))));
    b.AppendCategorical(2, zv::Value::Int(static_cast<int64_t>(
                               rng.Uniform(10))));
    b.AppendCategorical(3, zv::Value::Int(static_cast<int64_t>(
                               rng.Uniform(10))));
    b.AppendDouble(4, rng.UniformDouble(0, 100));
    b.CommitRow();
  }
  return b.Finish();
}

double TimeQuery(zv::Database* db, const std::string& sql, int reps) {
  // Warm once, then report the best-of-reps (steady-state) time.
  (void)db->ExecuteSql(sql);
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    zv::bench::WallTimer t;
    auto rs = db->ExecuteSql(sql);
    if (!rs.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   rs.status().ToString().c_str());
      return -1;
    }
    best = std::min(best, t.ElapsedMs());
  }
  return best;
}

void SweepGroups(size_t rows, JsonRecorder* recorder) {
  const std::vector<std::pair<size_t, size_t>> cards = {
      {4, 5}, {10, 10}, {100, 100}, {250, 200}, {500, 200}};
  for (bool full_selectivity : {true, false}) {
    PrintSubHeader(full_selectivity
                       ? "Fig 7.5(a): selectivity = 100% (synthetic)"
                       : "Fig 7.5(b): selectivity = 10% (synthetic)");
    std::printf("%-8s %14s %12s %10s\n", "groups", "postgresql(ms)",
                "roaring(ms)", "ratio");
    for (const auto& [xc, zc] : cards) {
      auto table = MakeGroupTable(rows, xc, zc);
      zv::ScanDatabase scan;
      zv::RoaringDatabase roaring;
      if (!scan.RegisterTable(table).ok() ||
          !roaring.RegisterTable(table).ok()) {
        return;
      }
      std::string sql = "SELECT x, SUM(y), z FROM t";
      if (!full_selectivity) sql += " WHERE p1 = 3";  // 1 of 10 values
      sql += " GROUP BY z, x ORDER BY z, x";
      const double pg = TimeQuery(&scan, sql, 3);
      const double rb = TimeQuery(&roaring, sql, 3);
      std::printf("%-8zu %14.1f %12.1f %9.2fx\n", xc * zc, pg, rb,
                  pg > 0 && rb > 0 ? pg / rb : 0.0);
      const std::string sel = full_selectivity ? "sel100" : "sel10";
      const std::string grp = std::to_string(xc * zc);
      recorder->Record(sel + "/groups_" + grp + "/scan", pg,
                       {{"kind", "backend_compare"}});
      recorder->Record(sel + "/groups_" + grp + "/roaring", rb,
                       {{"kind", "backend_compare"}});
    }
  }
}

void CensusComparison(JsonRecorder* recorder) {
  PrintSubHeader("Fig 7.5(c): census-like data");
  zv::CensusDataOptions opts;
  opts.num_rows = zv::bench::ScaledRows(200000);
  auto census = zv::MakeCensusTable(opts);
  zv::ScanDatabase scan;
  zv::RoaringDatabase roaring;
  if (!scan.RegisterTable(census).ok() ||
      !roaring.RegisterTable(census).ok()) {
    return;
  }
  std::printf("%-16s %14s %12s %10s\n", "selectivity", "postgresql(ms)",
              "roaring(ms)", "ratio");
  const struct {
    const char* label;
    const char* where;
  } cases[] = {
      {"100%", ""},
      {"~10%", " WHERE attr2 = 'v1' OR attr2 = 'v2'"},
  };
  for (const auto& c : cases) {
    const std::string sql = std::string("SELECT attr1, SUM(income), attr3 "
                                        "FROM census") +
                            c.where + " GROUP BY attr3, attr1 ORDER BY "
                            "attr3, attr1";
    const double pg = TimeQuery(&scan, sql, 3);
    const double rb = TimeQuery(&roaring, sql, 3);
    std::printf("%-16s %14.1f %12.1f %9.2fx\n", c.label, pg, rb,
                pg > 0 && rb > 0 ? pg / rb : 0.0);
    recorder->Record(std::string("census/") + c.label + "/scan", pg,
                     {{"kind", "backend_compare"}});
    recorder->Record(std::string("census/") + c.label + "/roaring", rb,
                     {{"kind", "backend_compare"}});
  }
}

}  // namespace

int main() {
  JsonRecorder recorder("fig7_5");
  PrintHeader("Figure 7.5: RoaringDB vs PostgreSQL(-sim)");
  const size_t rows = zv::bench::ScaledRows(2000000);
  std::printf("synthetic table: %zu rows; query: SELECT x, SUM(y), z FROM t "
              "[WHERE p1=c] GROUP BY z, x\n",
              rows);
  SweepGroups(rows, &recorder);
  CensusComparison(&recorder);
  return 0;
}
