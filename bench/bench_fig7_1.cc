/// \file bench_fig7_1.cc
/// \brief Figure 7.1: effect of the Chapter-5 query optimizations on the
/// Table 5.1 (top) and Table 5.2 (bottom) ZQL queries over the synthetic
/// sales dataset.
///
/// Paper setup: 10M-row synthetic dataset, PostgreSQL backend, 20 products
/// in the user-specified set P. Reported: total runtime and the number of
/// SQL requests per optimization level (NoOpT / Intra-Line / [Intra-Task] /
/// Inter-Task). Paper shape: Intra-Line gives the dominant speedup (it
/// collapses the 20 per-product queries of each row into one); Intra-Task
/// applies only to Table 5.2 (5.1 has no adjacent task-less rows); Inter-
/// Task shaves requests further.
///
/// This reproduction defaults to 2M rows (ZV_BENCH_SCALE=5 for paper
/// scale). A small per-request latency (2 ms) models the client/server
/// round trip of the paper's deployment; the query-count reduction itself
/// is hardware-independent.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "engine/scan_db.h"
#include "workload/datasets.h"
#include "zql/executor.h"

namespace {

using zv::bench::PrintHeader;
using zv::bench::PrintSubHeader;
using zv::zql::OptLevel;

constexpr uint64_t kRequestLatencyMicros = 2000;

void RunQueryAtAllLevels(zv::Database* db, const std::string& name,
                         const std::string& query,
                         const zv::zql::NamedSets& sets,
                         const std::vector<OptLevel>& levels) {
  PrintSubHeader(name);
  std::printf("%-11s %10s %12s %13s %12s\n", "opt", "time(ms)", "SQL queries",
              "SQL requests", "output viz");
  for (OptLevel level : levels) {
    zv::zql::ZqlOptions opts;
    opts.optimization = level;
    opts.named_sets = sets;
    zv::zql::ZqlExecutor exec(db, "sales", opts);
    zv::bench::WallTimer timer;
    auto result = exec.ExecuteText(query);
    const double ms = timer.ElapsedMs();
    if (!result.ok()) {
      std::printf("%-11s FAILED: %s\n", zv::zql::OptLevelToString(level),
                  result.status().ToString().c_str());
      continue;
    }
    size_t outputs = 0;
    for (const auto& o : result->outputs) outputs += o.visuals.size();
    std::printf("%-11s %10.1f %12llu %13llu %12zu\n",
                zv::zql::OptLevelToString(level), ms,
                static_cast<unsigned long long>(result->stats.sql_queries),
                static_cast<unsigned long long>(result->stats.sql_requests),
                outputs);
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 7.1: query optimization levels (synthetic sales)");
  zv::SalesDataOptions data_opts;
  data_opts.num_rows = zv::bench::ScaledRows(2000000);
  data_opts.num_products = 100;
  std::printf("dataset: %zu rows, %zu products; request latency %.1f ms "
              "(simulated round trip)\n",
              data_opts.num_rows, data_opts.num_products,
              kRequestLatencyMicros / 1000.0);

  zv::bench::WallTimer gen_timer;
  auto sales = zv::MakeSalesTable(data_opts);
  zv::ScanDatabase db;  // PostgreSQL stand-in, as in the paper's Fig 7.1
  if (auto s = db.RegisterTable(sales); !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }
  db.set_request_latency_micros(kRequestLatencyMicros);
  std::printf("generated + registered in %.0f ms\n", gen_timer.ElapsedMs());

  // P: the user-specified set of 20 products (paper: |P| = 20).
  zv::zql::NamedSets sets;
  std::vector<zv::Value> products;
  for (int i = 0; i < 20; ++i) {
    products.push_back(zv::Value::Str("product" + std::to_string(i)));
  }
  sets.value_sets["P"] = {"product", products};

  // Table 5.1: positive sales trend in the US, negative in the UK -> profit.
  const std::string table_5_1 =
      "f1 | 'year' | 'sales' | v1 <- P | location='US' | "
      "bar.(y=agg('sum')) | v2 <- argany_v1[t > 0] T(f1)\n"
      "f2 | 'year' | 'sales' | v1 | location='UK' | bar.(y=agg('sum')) | v3 "
      "<- argany_v1[t < 0] T(f2)\n"
      "*f3 | 'year' | 'profit' | v4 <- (v2.range | v3.range) | | "
      "bar.(y=agg('sum')) |";
  // Table 5.1 has no adjacent task-less rows, so Intra-Task is omitted,
  // exactly as in the paper's top plot.
  RunQueryAtAllLevels(&db, "Table 5.1 (Fig 7.1 top)", table_5_1, sets,
                      {OptLevel::kNoOpt, OptLevel::kIntraLine,
                       OptLevel::kInterTask});

  // Table 5.2: most-different sales-over-location between 2010 and 2015.
  const std::string table_5_2 =
      "f1 | 'country' | 'sales' | v1 <- P | year=2010 | bar.(y=agg('sum')) "
      "|\n"
      "f2 | 'country' | 'sales' | v1 | year=2015 | bar.(y=agg('sum')) | v2 "
      "<- argmax_v1[k=10] D(f1, f2)\n"
      "*f3 | 'country' | 'profit' | v2 | year=2010 | bar.(y=agg('sum')) |\n"
      "*f4 | 'country' | 'profit' | v2 | year=2015 | bar.(y=agg('sum')) |";
  RunQueryAtAllLevels(&db, "Table 5.2 (Fig 7.1 bottom)", table_5_2, sets,
                      {OptLevel::kNoOpt, OptLevel::kIntraLine,
                       OptLevel::kIntraTask, OptLevel::kInterTask});
  return 0;
}
