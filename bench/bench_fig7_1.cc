/// \file bench_fig7_1.cc
/// \brief Figure 7.1: effect of the Chapter-5 query optimizations on the
/// Table 5.1 (top) and Table 5.2 (bottom) ZQL queries over the synthetic
/// sales dataset — plus the scoring hot path that Figure 7 grows with the
/// candidate count: legacy per-pair D(f,g) vs the cached ScoringContext,
/// serially and at ZV_THREADS=4.
///
/// Paper setup: 10M-row synthetic dataset, PostgreSQL backend, 20 products
/// in the user-specified set P. Reported: total runtime and the number of
/// SQL requests per optimization level (NoOpT / Intra-Line / [Intra-Task] /
/// Inter-Task). Paper shape: Intra-Line gives the dominant speedup (it
/// collapses the 20 per-product queries of each row into one); Intra-Task
/// applies only to Table 5.2 (5.1 has no adjacent task-less rows); Inter-
/// Task shaves requests further.
///
/// This reproduction defaults to 2M rows (ZV_BENCH_SCALE=5 for paper
/// scale). A small per-request latency (2 ms) models the client/server
/// round trip of the paper's deployment; the query-count reduction itself
/// is hardware-independent.
///
/// Set ZV_BENCH_JSON=<file> to also emit machine-readable records (see
/// tools/run_bench.sh, which assembles BENCH_fig7.json).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "engine/scan_db.h"
#include "tasks/distance.h"
#include "tasks/series_cache.h"
#include "tasks/topk.h"
#include "workload/datasets.h"
#include "zql/executor.h"

namespace {

using zv::bench::JsonRecorder;
using zv::bench::PrintHeader;
using zv::bench::PrintSubHeader;
using zv::zql::OptLevel;

constexpr uint64_t kRequestLatencyMicros = 2000;

// Table 5.1: positive sales trend in the US, negative in the UK -> profit.
const char* const kTable5_1 =
    "f1 | 'year' | 'sales' | v1 <- P | location='US' | "
    "bar.(y=agg('sum')) | v2 <- argany_v1[t > 0] T(f1)\n"
    "f2 | 'year' | 'sales' | v1 | location='UK' | bar.(y=agg('sum')) | v3 "
    "<- argany_v1[t < 0] T(f2)\n"
    "*f3 | 'year' | 'profit' | v4 <- (v2.range | v3.range) | | "
    "bar.(y=agg('sum')) |";

// Table 5.2: most-different sales-over-location between 2010 and 2015.
const char* const kTable5_2 =
    "f1 | 'country' | 'sales' | v1 <- P | year=2010 | bar.(y=agg('sum')) "
    "|\n"
    "f2 | 'country' | 'sales' | v1 | year=2015 | bar.(y=agg('sum')) | v2 "
    "<- argmax_v1[k=10] D(f1, f2)\n"
    "*f3 | 'country' | 'profit' | v2 | year=2010 | bar.(y=agg('sum')) |\n"
    "*f4 | 'country' | 'profit' | v2 | year=2015 | bar.(y=agg('sum')) |";

void RunQueryAtAllLevels(zv::Database* db, const std::string& name,
                         const std::string& json_case,
                         const std::string& query,
                         const zv::zql::NamedSets& sets,
                         const std::vector<OptLevel>& levels,
                         JsonRecorder* recorder) {
  PrintSubHeader(name);
  std::printf("%-11s %10s %12s %13s %12s\n", "opt", "time(ms)", "SQL queries",
              "SQL requests", "output viz");
  for (OptLevel level : levels) {
    zv::zql::ZqlOptions opts;
    opts.optimization = level;
    opts.named_sets = sets;
    zv::zql::ZqlExecutor exec(db, "sales", opts);
    zv::bench::WallTimer timer;
    auto result = exec.ExecuteText(query);
    const double ms = timer.ElapsedMs();
    if (!result.ok()) {
      std::printf("%-11s FAILED: %s\n", zv::zql::OptLevelToString(level),
                  result.status().ToString().c_str());
      continue;
    }
    size_t outputs = 0;
    for (const auto& o : result->outputs) outputs += o.visuals.size();
    std::printf("%-11s %10.1f %12llu %13llu %12zu\n",
                zv::zql::OptLevelToString(level), ms,
                static_cast<unsigned long long>(result->stats.sql_queries),
                static_cast<unsigned long long>(result->stats.sql_requests),
                outputs);
    recorder->Record(json_case + "/" + zv::zql::OptLevelToString(level), ms,
                     {{"threads", std::to_string(zv::ParallelWorkerCount())},
                      {"kind", "zql_opt_levels"}});
  }
}

/// Synthetic candidate set for the scoring sweep: n series over a shared
/// 0..points-1 x domain with distinct planted shapes.
std::vector<zv::Visualization> MakeCandidates(size_t n, size_t points) {
  std::vector<zv::Visualization> out;
  out.reserve(n);
  for (size_t c = 0; c < n; ++c) {
    zv::Visualization v;
    v.x_attr = "t";
    v.y_attr = "y";
    zv::Series s;
    s.name = "y";
    for (size_t i = 0; i < points; ++i) {
      v.xs.push_back(zv::Value::Int(static_cast<int64_t>(i)));
      const double phase = static_cast<double>(c) * 0.37;
      const double trend = (static_cast<double>(c % 17) - 8.0) *
                           static_cast<double>(i) / 40.0;
      s.ys.push_back(trend +
                     5.0 * std::sin(static_cast<double>(i) * 0.21 + phase));
    }
    v.series.push_back(std::move(s));
    out.push_back(std::move(v));
  }
  return out;
}

/// The Figure-7 hot loop in isolation: score a query visualization against
/// every candidate, (a) with the legacy per-pair Distance() that re-aligns
/// and re-normalizes both series on each call, (b) through a ScoringContext
/// (each series aligned + normalized once), (c) the same context scored
/// under ParallelFor at ZV_THREADS=4. The checksum proves all three compute
/// the same scores.
void ScoringHotPath(JsonRecorder* recorder, zv::DistanceMetric metric,
                    const char* metric_name) {
  const size_t n = zv::bench::ScaledRows(600);
  const size_t points = 80;
  const int rounds = metric == zv::DistanceMetric::kDtw ? 1 : 20;
  const std::vector<zv::Visualization> candidates = MakeCandidates(n, points);
  std::vector<const zv::Visualization*> set;
  set.reserve(n);
  for (const auto& v : candidates) set.push_back(&v);
  const zv::Visualization& query = candidates[0];

  std::vector<double> legacy_scores(n, 0.0), cached_scores(n, 0.0),
      parallel_scores(n, 0.0);

  zv::SetParallelThreads(1);
  zv::bench::WallTimer legacy_timer;
  for (int r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < n; ++i) {
      legacy_scores[i] = zv::Distance(query, candidates[i], metric,
                                      zv::Normalization::kZScore,
                                      zv::Alignment::kZeroFill);
    }
  }
  const double legacy_ms = legacy_timer.ElapsedMs();

  zv::bench::WallTimer cached_timer;  // includes context construction
  const zv::ScoringContext ctx(set, zv::Normalization::kZScore,
                               zv::Alignment::kZeroFill);
  for (int r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < n; ++i) {
      cached_scores[i] = ctx.PairDistance(0, i, metric);
    }
  }
  const double cached_ms = cached_timer.ElapsedMs();

  zv::SetParallelThreads(4);
  zv::bench::WallTimer parallel_timer;
  const zv::ScoringContext pctx(set, zv::Normalization::kZScore,
                                zv::Alignment::kZeroFill);
  for (int r = 0; r < rounds; ++r) {
    zv::ParallelFor(n, [&](size_t i) {
      parallel_scores[i] = pctx.PairDistance(0, i, metric);
    });
  }
  const double parallel_ms = parallel_timer.ElapsedMs();
  zv::SetParallelThreads(0);

  bool identical = true;
  for (size_t i = 0; i < n; ++i) {
    identical &= legacy_scores[i] == cached_scores[i] &&
                 cached_scores[i] == parallel_scores[i];
  }

  std::printf(
      "%-10s %4zu cand x %3d rounds: legacy %8.1f ms | cached(T1) %8.1f ms "
      "(%.2fx) | cached(T4) %8.1f ms (%.2fx) | identical: %s\n",
      metric_name, n, rounds, legacy_ms, cached_ms, legacy_ms / cached_ms,
      parallel_ms, legacy_ms / parallel_ms, identical ? "yes" : "NO");
  const std::string prefix = std::string("scoring_") + metric_name;
  recorder->Record(prefix + "/legacy_t1", legacy_ms,
                   {{"threads", "1"}, {"kind", "scoring"}});
  recorder->Record(prefix + "/cached_t1", cached_ms,
                   {{"threads", "1"}, {"kind", "scoring"}});
  recorder->Record(prefix + "/cached_t4", parallel_ms,
                   {{"threads", "4"}, {"kind", "scoring"}});
}

/// Top-k pruned scoring vs the full scan on the same fig7 candidate
/// workload: select the k visualizations nearest to the query. full =
/// every exact ScoringContext distance + bounded-heap select; pruned =
/// the SharedTopK bound feeding the early-termination kernels
/// (PairDistanceBounded), serially and under ParallelFor at ZV_THREADS=4.
/// The selected indices are asserted identical across all three — returns
/// false (failing the harness) on any mismatch, so BENCH_fig7.json can
/// never record speedups for a scan that stopped computing the right
/// answer.
bool TopKScoring(JsonRecorder* recorder, zv::DistanceMetric metric,
                 const char* metric_name) {
  const size_t n = zv::bench::ScaledRows(600);
  const size_t points = 160;
  const int rounds = metric == zv::DistanceMetric::kDtw ? 1 : 20;
  const std::vector<zv::Visualization> candidates = MakeCandidates(n, points);
  std::vector<const zv::Visualization*> set;
  set.reserve(n);
  for (const auto& v : candidates) set.push_back(&v);
  const zv::ScoringContext ctx(set, zv::Normalization::kZScore,
                               zv::Alignment::kZeroFill);

  bool all_identical = true;
  for (const size_t k : {size_t{1}, size_t{5}, size_t{20}}) {
    zv::SetParallelThreads(1);
    std::vector<size_t> full_sel, pruned_sel, parallel_sel;

    zv::bench::WallTimer full_timer;
    for (int r = 0; r < rounds; ++r) {
      std::vector<double> scores(n);
      for (size_t i = 0; i < n; ++i) {
        scores[i] = ctx.PairDistance(0, i, metric);
      }
      full_sel = zv::TopKIndices(scores, k, zv::TopKOrder::kAscending);
    }
    const double full_ms = full_timer.ElapsedMs();

    zv::bench::WallTimer pruned_timer;
    for (int r = 0; r < rounds; ++r) {
      zv::SharedTopK topk(k, zv::TopKOrder::kAscending);
      for (size_t i = 0; i < n; ++i) {
        const double d = ctx.PairDistanceBounded(0, i, metric, topk.bound());
        if (!std::isinf(d)) topk.Offer(d, i);
      }
      pruned_sel = topk.SortedIndices();
    }
    const double pruned_ms = pruned_timer.ElapsedMs();

    zv::SetParallelThreads(4);
    zv::bench::WallTimer parallel_timer;
    for (int r = 0; r < rounds; ++r) {
      zv::SharedTopK topk(k, zv::TopKOrder::kAscending);
      zv::ParallelFor(n, [&](size_t i) {
        const double d = ctx.PairDistanceBounded(0, i, metric, topk.bound());
        if (!std::isinf(d)) topk.Offer(d, i);
      });
      parallel_sel = topk.SortedIndices();
    }
    const double parallel_ms = parallel_timer.ElapsedMs();
    zv::SetParallelThreads(0);

    const bool identical = full_sel == pruned_sel && full_sel == parallel_sel;
    all_identical &= identical;
    std::printf(
        "%-10s k=%-3zu %4zu cand x %3d rounds: full %8.1f ms | pruned(T1) "
        "%8.1f ms (%.2fx) | pruned(T4) %8.1f ms (%.2fx) | identical: %s\n",
        metric_name, k, n, rounds, full_ms, pruned_ms, full_ms / pruned_ms,
        parallel_ms, full_ms / parallel_ms, identical ? "yes" : "NO");
    const std::string prefix =
        std::string("topk_") + metric_name + "/k" + std::to_string(k);
    recorder->Record(prefix + "/full_t1", full_ms,
                     {{"threads", "1"}, {"kind", "topk"}});
    recorder->Record(prefix + "/pruned_t1", pruned_ms,
                     {{"threads", "1"}, {"kind", "topk"}});
    recorder->Record(prefix + "/pruned_t4", parallel_ms,
                     {{"threads", "4"}, {"kind", "topk"}});
  }
  return all_identical;
}

/// The paper's deployment runs against a *remote* PostgreSQL: each
/// statement's execution happens server-side, so the client core is idle
/// while it waits. This stand-in adds that per-statement service delay on
/// top of the local scan — the wait is exactly what the pipelined
/// schedule overlaps with scoring (and the only overlap a single-core
/// machine can realize; multi-core machines additionally overlap the scan
/// CPU itself).
class RemoteScanDatabase : public zv::ScanDatabase {
 public:
  explicit RemoteScanDatabase(uint64_t stmt_micros)
      : stmt_micros_(stmt_micros) {}
  std::string name() const override { return "scan-remote"; }

 protected:
  zv::Result<zv::ResultSet> ExecuteInternal(
      const zv::sql::SelectStatement& stmt) override {
    std::this_thread::sleep_for(std::chrono::microseconds(stmt_micros_));
    return ScanDatabase::ExecuteInternal(stmt);
  }

 private:
  uint64_t stmt_micros_;
};

/// The pipeline section: fetch/score overlap on a fetch-heavy workload.
/// K independent (fetch, fetch + score) row pairs land in one Inter-Task
/// wave against the remote-backend stand-in; each pair fetches two
/// month*year series sets and then runs a quadratic DTW scoring task
/// (argmin over va with an inner min over vb -> |P|^2 DTW pairs at width
/// ~120). Staged execution performs every fetch, then every scoring pass;
/// pipelined execution scores pair i on the coordinator while the fetch
/// thread works through pair i+1's statements, so end-to-end time
/// approaches max(fetch, score) instead of their sum. Outputs are compared
/// byte-for-byte between the two schedules — a false speedup fails the
/// harness (returns false) rather than landing in BENCH_fig7.json.
bool PipelineOverlap(const std::shared_ptr<zv::Table>& sales,
                     JsonRecorder* recorder) {
  PrintSubHeader("pipelined fetch/score overlap (fetch-heavy, DTW tasks)");
  constexpr uint64_t kStmtServiceMicros = 30000;  // remote statement time
  RemoteScanDatabase db(kStmtServiceMicros);
  if (auto s = db.RegisterTable(sales); !s.ok()) {
    std::printf("register failed: %s\n", s.ToString().c_str());
    return false;
  }
  db.set_request_latency_micros(kRequestLatencyMicros);
  constexpr int kPairs = 5;
  constexpr int kProducts = 32;
  const char* const countries[] = {"US", "UK", "country2", "country3",
                                   "country4", "country5", "country6",
                                   "country7"};
  zv::zql::NamedSets sets;
  std::vector<zv::Value> products;
  for (int i = 0; i < kProducts; ++i) {
    products.push_back(zv::Value::Str("product" + std::to_string(i)));
  }
  sets.value_sets["P"] = {"product", products};

  std::string query;
  for (int i = 0; i < kPairs; ++i) {
    query += zv::StrFormat(
        "*a%d | 'month'*'year' | 'sales' | va%d <- P | country='%s' | "
        "bar.(y=agg('sum')) |\n",
        i, i, countries[(2 * i) % 8]);
    query += zv::StrFormat(
        "*b%d | 'month'*'year' | 'sales' | vb%d <- P | country='%s' | "
        "bar.(y=agg('sum')) | o%d <- argmin_va%d[k=3] min_vb%d D(a%d, b%d)\n",
        i, i, countries[(2 * i + 1) % 8], i, i, i, i, i);
  }

  auto identical = [](const zv::zql::ZqlResult& a,
                      const zv::zql::ZqlResult& b) {
    if (a.outputs.size() != b.outputs.size()) return false;
    for (size_t o = 0; o < a.outputs.size(); ++o) {
      const auto& av = a.outputs[o].visuals;
      const auto& bv = b.outputs[o].visuals;
      if (a.outputs[o].name != b.outputs[o].name || av.size() != bv.size()) {
        return false;
      }
      for (size_t i = 0; i < av.size(); ++i) {
        if (!(av[i].xs == bv[i].xs) || !(av[i].series == bv[i].series) ||
            !(av[i].slices == bv[i].slices)) {
          return false;
        }
      }
    }
    return true;
  };

  std::printf("%-10s %-10s %10s %10s %10s %10s\n", "threads", "schedule",
              "total(ms)", "fetch(ms)", "score(ms)", "speedup");
  bool all_identical = true;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    zv::SetParallelThreads(threads);
    double staged_ms = 0;
    zv::zql::ZqlResult staged_result;
    for (const bool pipelined : {false, true}) {
      zv::zql::ZqlOptions opts;
      opts.optimization = OptLevel::kInterTask;
      opts.named_sets = sets;
      opts.pipelined_execution = pipelined;
      // The per-statement service delay lives in ExecuteInternal, which the
      // chunk-sharded scan path bypasses; this section measures fetch/score
      // overlap in isolation, so keep the scan unsharded.
      opts.shards = 1;
      opts.tasks.default_options.metric = zv::DistanceMetric::kDtw;
      zv::zql::ZqlExecutor exec(&db, "sales", opts);
      auto result = exec.ExecuteText(query);
      if (!result.ok()) {
        std::printf("FAILED: %s\n", result.status().ToString().c_str());
        return false;
      }
      const char* schedule = pipelined ? "pipelined" : "staged";
      double speedup = 0;
      if (!pipelined) {
        staged_ms = result->stats.total_ms;
        staged_result = std::move(result).value();
        std::printf("%-10zu %-10s %10.1f %10.1f %10.1f %10s\n", threads,
                    schedule, staged_ms, staged_result.stats.fetch_ms,
                    staged_result.stats.score_ms, "-");
        recorder->Record(
            "pipeline/staged_t" + std::to_string(threads), staged_ms,
            {{"threads", std::to_string(threads)}, {"kind", "pipeline"}});
        continue;
      }
      speedup = staged_ms / result->stats.total_ms;
      all_identical &= identical(staged_result, result.value());
      std::printf("%-10zu %-10s %10.1f %10.1f %10.1f %9.2fx\n", threads,
                  schedule, result->stats.total_ms, result->stats.fetch_ms,
                  result->stats.score_ms, speedup);
      recorder->Record(
          "pipeline/pipelined_t" + std::to_string(threads),
          result->stats.total_ms,
          {{"threads", std::to_string(threads)},
           {"kind", "pipeline"},
           {"fetch_ms", std::to_string(result->stats.fetch_ms)},
           {"score_ms", std::to_string(result->stats.score_ms)}});
    }
  }
  zv::SetParallelThreads(0);
  std::printf("outputs identical across schedules: %s\n",
              all_identical ? "yes" : "NO");
  return all_identical;
}

/// The shard section models the deployment the ChunkMap fan-out is built
/// for: each chunk is a partition of a *remote* store (the paper's
/// PostgreSQL serves scans server-side), so a chunk scan costs a service
/// wait proportional to the rows it covers plus the local row-id
/// extraction. An unsharded statement pays the whole table's service time
/// in one serial wait; N shard workers overlap N partition waits — the
/// same overlap PipelineOverlap's RemoteScanDatabase realizes one level
/// up, and the only scan speedup any machine sees once the store is
/// remote (multi-core machines additionally overlap the extraction CPU).
class PartitionedScanDatabase : public zv::ScanDatabase {
 public:
  PartitionedScanDatabase(uint64_t service_ns_per_row, size_t table_rows)
      : service_ns_per_row_(service_ns_per_row), table_rows_(table_rows) {}
  std::string name() const override { return "scan-partitioned"; }

  zv::Result<std::unique_ptr<zv::ChunkScanner>> PrepareChunkScan(
      const zv::sql::SelectStatement& stmt) override {
    auto base = zv::ScanDatabase::PrepareChunkScan(stmt);
    if (!base.ok()) return base;
    return {std::make_unique<PartitionScanner>(std::move(base).value(),
                                               service_ns_per_row_)};
  }

 protected:
  zv::Result<zv::ResultSet> ExecuteInternal(
      const zv::sql::SelectStatement& stmt) override {
    // The unsharded path scans every partition through one connection:
    // the service waits accumulate serially.
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(service_ns_per_row_ * table_rows_));
    return ScanDatabase::ExecuteInternal(stmt);
  }

 private:
  class PartitionScanner : public zv::ChunkScanner {
   public:
    PartitionScanner(std::unique_ptr<zv::ChunkScanner> base, uint64_t ns)
        : base_(std::move(base)), service_ns_per_row_(ns) {}
    zv::Status ScanRange(uint32_t begin, uint32_t end,
                         std::vector<uint32_t>* out) const override {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(service_ns_per_row_ * (end - begin)));
      return base_->ScanRange(begin, end, out);
    }

   private:
    std::unique_ptr<zv::ChunkScanner> base_;
    uint64_t service_ns_per_row_;
  };

  uint64_t service_ns_per_row_;
  size_t table_rows_;
};

/// Sharded-scan scaling: one selective statement over a 10M-row table
/// (paper scale), swept over chunk size x shard count. Every sharded run
/// is compared byte-for-byte against the unsharded oracle; a divergence
/// fails the harness (returns false) so BENCH_fig7.json can never record
/// a speedup for a scan that changed the answer.
bool ShardScaling(JsonRecorder* recorder) {
  PrintSubHeader("sharded scan scaling (remote partitions, 10M rows)");
  constexpr uint64_t kServiceNsPerRow = 100;  // ~10M rows/s remote scan rate
  zv::SalesDataOptions data_opts;
  data_opts.num_rows = zv::bench::ScaledRows(10000000);
  data_opts.num_products = 100;
  zv::bench::WallTimer gen_timer;
  auto sales = zv::MakeSalesTable(data_opts);
  PartitionedScanDatabase db(kServiceNsPerRow, sales->num_rows());
  if (auto s = db.RegisterTable(sales); !s.ok()) {
    std::printf("register failed: %s\n", s.ToString().c_str());
    return false;
  }
  std::printf("dataset: %zu rows generated in %.0f ms; partition service "
              "rate %.0f ns/row\n",
              sales->num_rows(), gen_timer.ElapsedMs(),
              static_cast<double>(kServiceNsPerRow));

  const char* const query =
      "*f1 | 'year' | 'sales' | | location='US' | bar.(y=agg('sum')) |";
  zv::SetParallelThreads(1);  // isolate the shard pool's contribution
  auto run = [&](size_t shards) -> zv::Result<zv::zql::ZqlResult> {
    zv::zql::ZqlOptions opts;
    opts.shards = shards;
    zv::zql::ZqlExecutor exec(&db, "sales", opts);
    return exec.ExecuteText(query);
  };

  auto oracle = run(1);
  if (!oracle.ok()) {
    std::printf("FAILED: %s\n", oracle.status().ToString().c_str());
    return false;
  }
  auto identical = [&](const zv::zql::ZqlResult& got) {
    const auto& a = oracle->outputs;
    const auto& b = got.outputs;
    if (a.size() != b.size()) return false;
    for (size_t o = 0; o < a.size(); ++o) {
      if (a[o].visuals.size() != b[o].visuals.size()) return false;
      for (size_t i = 0; i < a[o].visuals.size(); ++i) {
        if (!(a[o].visuals[i].xs == b[o].visuals[i].xs) ||
            !(a[o].visuals[i].series == b[o].visuals[i].series)) {
          return false;
        }
      }
    }
    return true;
  };

  std::printf("%-12s %8s %8s %10s %10s %10s\n", "chunk_rows", "chunks",
              "shards", "total(ms)", "speedup", "identical");
  bool all_identical = true;
  for (const size_t chunk_rows :
       {size_t{65536}, size_t{262144}, size_t{1048576}}) {
    if (auto s = db.RebuildChunkMap("sales", chunk_rows); !s.ok()) {
      std::printf("rebuild failed: %s\n", s.ToString().c_str());
      return false;
    }
    const size_t chunks =
        (sales->num_rows() + chunk_rows - 1) / chunk_rows;
    double base_ms = 0;
    for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      auto result = run(shards);
      if (!result.ok()) {
        std::printf("FAILED: %s\n", result.status().ToString().c_str());
        return false;
      }
      const double ms = result->stats.total_ms;
      if (shards == 1) base_ms = ms;
      const bool same = identical(result.value());
      all_identical &= same;
      std::printf("%-12zu %8zu %8zu %10.1f %9.2fx %10s\n", chunk_rows,
                  chunks, shards, ms, base_ms / ms, same ? "yes" : "NO");
      recorder->Record(
          zv::StrFormat("shard/c%zu_s%zu", chunk_rows, shards), ms,
          {{"threads", "1"},
           {"kind", "shard"},
           {"chunk_rows", std::to_string(chunk_rows)},
           {"chunks", std::to_string(chunks)},
           {"shards", std::to_string(shards)},
           {"speedup_vs_unsharded",
            zv::StrFormat("%.2f", base_ms / ms)}});
    }
  }
  zv::SetParallelThreads(0);
  std::printf("outputs identical across all shard/chunk settings: %s\n",
              all_identical ? "yes" : "NO");
  return all_identical;
}

/// End-to-end Table 5.2 run (Inter-Task batching) at ZV_THREADS=1 vs 4:
/// the scoring loop, the k-means paths, and the partitioned table scan all
/// ride the same pool.
void EndToEndThreads(zv::Database* db, const zv::zql::NamedSets& sets,
                     JsonRecorder* recorder) {
  PrintSubHeader("end-to-end Table 5.2 (Inter-Task) vs ZV_THREADS");
  std::printf("%-10s %10s %14s %12s\n", "threads", "total(ms)", "compute(ms)",
              "exec(ms)");
  for (size_t threads : {size_t{1}, size_t{4}}) {
    zv::SetParallelThreads(threads);
    zv::zql::ZqlOptions opts;
    opts.optimization = OptLevel::kInterTask;
    opts.named_sets = sets;
    zv::zql::ZqlExecutor exec(db, "sales", opts);
    auto result = exec.ExecuteText(kTable5_2);
    if (!result.ok()) {
      std::printf("ZV_THREADS=%zu FAILED: %s\n", threads,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-10zu %10.1f %14.1f %12.1f\n", threads,
                result->stats.total_ms, result->stats.compute_ms,
                result->stats.exec_ms);
    recorder->Record("zql_e2e_t" + std::to_string(threads),
                     result->stats.total_ms,
                     {{"threads", std::to_string(threads)},
                      {"kind", "zql_end_to_end"},
                      {"compute_ms", std::to_string(result->stats.compute_ms)},
                      {"exec_ms", std::to_string(result->stats.exec_ms)}});
  }
  zv::SetParallelThreads(0);
}

}  // namespace

int main() {
  JsonRecorder recorder("fig7_1");
  PrintHeader("Figure 7.1: query optimization levels (synthetic sales)");
  zv::SalesDataOptions data_opts;
  data_opts.num_rows = zv::bench::ScaledRows(2000000);
  data_opts.num_products = 100;
  std::printf("dataset: %zu rows, %zu products; request latency %.1f ms "
              "(simulated round trip)\n",
              data_opts.num_rows, data_opts.num_products,
              kRequestLatencyMicros / 1000.0);

  zv::bench::WallTimer gen_timer;
  auto sales = zv::MakeSalesTable(data_opts);
  zv::ScanDatabase db;  // PostgreSQL stand-in, as in the paper's Fig 7.1
  if (auto s = db.RegisterTable(sales); !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }
  db.set_request_latency_micros(kRequestLatencyMicros);
  std::printf("generated + registered in %.0f ms\n", gen_timer.ElapsedMs());

  // P: the user-specified set of 20 products (paper: |P| = 20).
  zv::zql::NamedSets sets;
  std::vector<zv::Value> products;
  for (int i = 0; i < 20; ++i) {
    products.push_back(zv::Value::Str("product" + std::to_string(i)));
  }
  sets.value_sets["P"] = {"product", products};

  // Table 5.1 has no adjacent task-less rows, so Intra-Task is omitted,
  // exactly as in the paper's top plot.
  RunQueryAtAllLevels(&db, "Table 5.1 (Fig 7.1 top)", "table_5_1", kTable5_1,
                      sets,
                      {OptLevel::kNoOpt, OptLevel::kIntraLine,
                       OptLevel::kInterTask},
                      &recorder);
  RunQueryAtAllLevels(&db, "Table 5.2 (Fig 7.1 bottom)", "table_5_2",
                      kTable5_2, sets,
                      {OptLevel::kNoOpt, OptLevel::kIntraLine,
                       OptLevel::kIntraTask, OptLevel::kInterTask},
                      &recorder);

  PrintSubHeader("ZQL scoring hot path: legacy pairwise vs ScoringContext");
  std::printf("(cached = series aligned + normalized once; T4 = ZV_THREADS=4 "
              "ParallelFor)\n");
  ScoringHotPath(&recorder, zv::DistanceMetric::kEuclidean, "euclidean");
  ScoringHotPath(&recorder, zv::DistanceMetric::kDtw, "dtw");

  PrintSubHeader("top-k pruned scoring vs full scan (argmin k nearest)");
  std::printf("(pruned = early-termination kernels against the shared "
              "k-th-best bound)\n");
  bool topk_ok = TopKScoring(&recorder, zv::DistanceMetric::kEuclidean,
                             "euclidean");
  topk_ok &= TopKScoring(&recorder, zv::DistanceMetric::kDtw, "dtw");

  EndToEndThreads(&db, sets, &recorder);
  const bool pipeline_ok = PipelineOverlap(sales, &recorder);
  const bool shard_ok = ShardScaling(&recorder);
  if (!topk_ok) {
    std::fprintf(stderr,
                 "FATAL: pruned top-k selection diverged from the full "
                 "scan\n");
    return 1;
  }
  if (!pipeline_ok) {
    std::fprintf(stderr,
                 "FATAL: pipelined execution diverged from the staged "
                 "schedule\n");
    return 1;
  }
  if (!shard_ok) {
    std::fprintf(stderr,
                 "FATAL: sharded scan diverged from the unsharded oracle\n");
    return 1;
  }
  return 0;
}
