/// \file bench_serve.cc
/// \brief Serving-layer bench: a closed-loop multi-session load generator
/// against one QueryService, reporting end-to-end latency percentiles and
/// cache effectiveness — the serving analogue of the Figure-7 harnesses.
///
/// The workload models the paper's interactive front end: S sessions (one
/// per simulated user), each issuing its query mix in a closed loop
/// (submit, wait, submit the next — per-session FIFO makes this the
/// natural client shape). Queries are similarity searches and trend scans
/// over disjoint product slices, so:
///
///   pass 1 (cold) — first issuance of every query: result-cache misses
///     except where sessions genuinely share a query (the trend scan is
///     product-independent, so same-measure sessions share it — cross-
///     session sharing working as designed);
///   pass 2 (warm) — the same queries re-issued: result-cache hits, the
///     paper's "user tweaks one knob and re-runs" steady state.
///
/// Reported per pass: p50 / p99 / mean latency and the service cache hit
/// rate; plus the repeat-query speedup (cold mean / warm mean — the
/// acceptance bar for this layer is >= 10x). A third pass re-issues the
/// queries with one constraint changed, isolating the ContextCache's
/// contribution (result cache misses, alignment matrices reused).
///
/// Knobs: ZV_BENCH_SCALE (rows), ZV_THREADS (scoring pool), ZV_CACHE_MB /
/// ZV_MAX_INFLIGHT / ZV_MAX_QUEUE (service), ZV_SERVE_SESSIONS (default 8).
/// Set ZV_BENCH_JSON=<file> for machine-readable records (figure "serve").

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "server/query_service.h"
#include "workload/datasets.h"

namespace {

using zv::bench::JsonRecorder;
using zv::bench::PrintHeader;
using zv::bench::PrintSubHeader;

struct Percentiles {
  double p50 = 0;
  double p99 = 0;
  double mean = 0;
};

Percentiles Summarize(std::vector<double> ms) {
  Percentiles out;
  if (ms.empty()) return out;
  std::sort(ms.begin(), ms.end());
  out.p50 = ms[ms.size() / 2];
  out.p99 = ms[std::min(ms.size() - 1,
                        static_cast<size_t>(
                            static_cast<double>(ms.size()) * 0.99))];
  double sum = 0;
  for (double v : ms) sum += v;
  out.mean = sum / static_cast<double>(ms.size());
  return out;
}

/// The per-user query mix over one slice of products: a similarity search
/// (argmin D over all products), a trend filter, and a top-k against a
/// fixed reference product — the Table 5.1 / §7.2 shapes.
std::vector<std::string> SessionQueries(const std::string& product,
                                        const std::string& measure,
                                        const std::string& constraint) {
  std::vector<std::string> queries;
  queries.push_back(zv::StrFormat(
      "f1 | 'year' | '%s' | 'product'.'%s' | %s | |\n"
      "*f2 | 'year' | '%s' | v1 <- 'product'.* | %s | | v2 <- "
      "argmin_v1[k=3] D(f2, f1)",
      measure.c_str(), product.c_str(), constraint.c_str(), measure.c_str(),
      constraint.c_str()));
  queries.push_back(zv::StrFormat(
      "*f1 | 'year' | '%s' | v1 <- 'product'.* | %s | | v2 <- "
      "argany_v1[t > 0] T(f1)",
      measure.c_str(), constraint.c_str()));
  queries.push_back(zv::StrFormat(
      "f1 | 'year' | '%s' | 'product'.'%s' | %s | |\n"
      "*f2 | 'year' | '%s' | v1 <- 'product'.* | %s | | v2 <- "
      "argmax_v1[k=2] D(f2, f1)",
      measure.c_str(), product.c_str(), constraint.c_str(), measure.c_str(),
      constraint.c_str()));
  return queries;
}

/// One closed-loop pass: every session thread submits its queries in
/// order, waiting on each. Returns all end-to-end latencies.
std::vector<double> RunPass(zv::server::QueryService& service,
                            const std::vector<zv::server::SessionId>& sessions,
                            const std::string& dataset,
                            const std::vector<std::vector<std::string>>& mixes,
                            std::atomic<uint64_t>* errors) {
  std::vector<double> latencies;
  std::mutex mu;
  std::vector<std::thread> threads;
  threads.reserve(sessions.size());
  for (size_t s = 0; s < sessions.size(); ++s) {
    threads.emplace_back([&, s] {
      std::vector<double> local;
      for (const std::string& q : mixes[s]) {
        zv::bench::WallTimer timer;
        auto submitted = service.Submit(sessions[s], dataset, q);
        if (!submitted.ok()) {
          errors->fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        zv::server::QueryHandle handle = std::move(submitted).value();
        if (!handle.Wait().ok()) {
          errors->fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        local.push_back(timer.ElapsedMs());
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  return latencies;
}

size_t EnvSessions() {
  if (const char* env = std::getenv("ZV_SERVE_SESSIONS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 8;
}

void PrintPass(const char* name, const Percentiles& p, size_t queries) {
  std::printf("  %-18s %6zu queries   p50 %8.3f ms   p99 %8.3f ms   mean "
              "%8.3f ms\n",
              name, queries, p.p50, p.p99, p.mean);
}

}  // namespace

int main() {
  PrintHeader("serving layer: multi-session closed-loop load");

  zv::SalesDataOptions data_opts;
  data_opts.num_rows = zv::bench::ScaledRows(200000);
  data_opts.num_products = 40;
  auto table = zv::MakeSalesTable(data_opts);

  zv::server::QueryService service;
  if (auto s = service.RegisterDataset(table); !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const size_t num_sessions = EnvSessions();
  std::vector<zv::server::SessionId> sessions;
  std::vector<std::vector<std::string>> mixes;       // distinct per session
  std::vector<std::vector<std::string>> remixed;     // constraint tweaked
  for (size_t s = 0; s < num_sessions; ++s) {
    sessions.push_back(std::move(service.CreateSession()).value());
    // Disjoint product slices keep the similarity searches distinct per
    // session (the shared trend scan demonstrates cross-session hits);
    // measures alternate for extra key diversity.
    const std::string product =
        "product_" + std::to_string(s % data_opts.num_products);
    const std::string measure = s % 2 == 0 ? "sales" : "profit";
    mixes.push_back(SessionQueries(product, measure, "country='US'"));
    remixed.push_back(SessionQueries(product, measure, "country='UK'"));
  }
  std::printf("dataset: %zu rows, %zu products; %zu sessions x %zu queries; "
              "%zu workers, %.0f MB cache\n",
              table->num_rows(), data_opts.num_products, num_sessions,
              mixes[0].size(), service.max_inflight(),
              static_cast<double>(service.cache_bytes()) / (1 << 20));

  JsonRecorder json("serve");
  std::atomic<uint64_t> errors{0};

  PrintSubHeader("pass 1: cold (first issuance)");
  const auto before_cold = service.stats();
  const auto t_cold = zv::bench::WallTimer();
  std::vector<double> cold =
      RunPass(service, sessions, table->name(), mixes, &errors);
  const double cold_wall = t_cold.ElapsedMs();
  const Percentiles cold_p = Summarize(cold);
  auto stats = service.stats();
  const uint64_t cold_hits = stats.cache_hits - before_cold.cache_hits;
  const uint64_t cold_misses = stats.cache_misses - before_cold.cache_misses;
  PrintPass("cold", cold_p, cold.size());
  std::printf("  wall %.1f ms; cache this pass: %llu hits / %llu misses\n",
              cold_wall, static_cast<unsigned long long>(cold_hits),
              static_cast<unsigned long long>(cold_misses));

  PrintSubHeader("pass 2: warm (same queries re-issued)");
  const auto before_warm = stats;
  std::vector<double> warm =
      RunPass(service, sessions, table->name(), mixes, &errors);
  const Percentiles warm_p = Summarize(warm);
  stats = service.stats();
  const uint64_t warm_hits = stats.cache_hits - before_warm.cache_hits;
  const uint64_t warm_misses = stats.cache_misses - before_warm.cache_misses;
  const double speedup = warm_p.mean > 0 ? cold_p.mean / warm_p.mean : 0;
  PrintPass("warm", warm_p, warm.size());
  std::printf("  cache this pass: %llu hits / %llu misses; repeat-query "
              "speedup (mean cold/warm): %.1fx\n",
              static_cast<unsigned long long>(warm_hits),
              static_cast<unsigned long long>(warm_misses), speedup);

  PrintSubHeader("pass 3: tweaked constraint (result misses, contexts hit)");
  const uint64_t reused_before = stats.contexts_reused;
  std::vector<double> tweaked =
      RunPass(service, sessions, table->name(), remixed, &errors);
  const Percentiles tweaked_p = Summarize(tweaked);
  stats = service.stats();
  PrintPass("tweaked", tweaked_p, tweaked.size());
  std::printf("  contexts reused this pass: %llu (cache: %zu entries, "
              "%.1f KB)\n",
              static_cast<unsigned long long>(stats.contexts_reused -
                                              reused_before),
              stats.context_cache_entries,
              static_cast<double>(stats.context_cache_bytes) / 1024.0);

  if (errors.load() > 0) {
    std::printf("\n!! %llu queries failed\n",
                static_cast<unsigned long long>(errors.load()));
  }
  const uint64_t probes = stats.cache_hits + stats.cache_misses;
  std::printf("\noverall: %llu submitted, hit rate %.0f%%, %llu contexts "
              "reused, 0 rejected expected (got %llu)\n",
              static_cast<unsigned long long>(stats.submitted),
              probes > 0 ? 100.0 * static_cast<double>(stats.cache_hits) /
                               static_cast<double>(probes)
                         : 0.0,
              static_cast<unsigned long long>(stats.contexts_reused),
              static_cast<unsigned long long>(stats.rejected));

  auto extra = [&](const Percentiles& p, uint64_t hits, uint64_t misses) {
    return std::map<std::string, std::string>{
        {"p50_ms", zv::StrFormat("%.3f", p.p50)},
        {"p99_ms", zv::StrFormat("%.3f", p.p99)},
        {"sessions", std::to_string(num_sessions)},
        {"hits", std::to_string(hits)},
        {"misses", std::to_string(misses)},
    };
  };
  json.Record("cold", cold_p.mean, extra(cold_p, cold_hits, cold_misses));
  json.Record("warm", warm_p.mean, extra(warm_p, warm_hits, warm_misses));
  json.Record("tweaked", tweaked_p.mean,
              {{"contexts_reused",
                std::to_string(stats.contexts_reused - reused_before)},
               {"sessions", std::to_string(num_sessions)}});
  json.Record("repeat_speedup", speedup,
              {{"threshold", "10"},
               {"pass", speedup >= 10.0 ? "yes" : "no"}});
  return 0;
}
