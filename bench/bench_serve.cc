/// \file bench_serve.cc
/// \brief Serving-layer bench: a closed-loop multi-session load generator
/// against one QueryService, reporting end-to-end latency percentiles and
/// cache effectiveness — the serving analogue of the Figure-7 harnesses.
///
/// The workload models the paper's interactive front end: S sessions (one
/// per simulated user), each issuing its query mix in a closed loop
/// (submit, wait, submit the next — per-session FIFO makes this the
/// natural client shape). Queries are similarity searches and trend scans
/// over disjoint product slices, so:
///
///   pass 1 (cold) — first issuance of every query: result-cache misses
///     except where sessions genuinely share a query (the trend scan is
///     product-independent, so same-measure sessions share it — cross-
///     session sharing working as designed);
///   pass 2 (warm) — the same queries re-issued: result-cache hits, the
///     paper's "user tweaks one knob and re-runs" steady state.
///
/// Reported per pass: p50 / p99 / mean latency and the service cache hit
/// rate; plus the repeat-query speedup (cold mean / warm mean — the
/// acceptance bar for this layer is >= 10x). A third pass re-issues the
/// queries with one constraint changed, isolating the ContextCache's
/// contribution (result cache misses, alignment matrices reused). A fourth
/// "wire" pass re-issues the warm mix through the typed JSON protocol
/// (api/service.h) with a UI-sized page, measuring the codec-only cost
/// (request encode+decode, response encode+decode) per request — the
/// acceptance bar is codec overhead < 10% of the warm-query p50.
///
/// Knobs: ZV_BENCH_SCALE (rows), ZV_THREADS (scoring pool), ZV_CACHE_MB /
/// ZV_MAX_INFLIGHT / ZV_MAX_QUEUE (service), ZV_SERVE_SESSIONS (default 8).
/// Set ZV_BENCH_JSON=<file> for machine-readable records (figure "serve").

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/protocol.h"
#include "api/service.h"
#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "engine/scan_db.h"
#include "server/query_service.h"
#include "workload/datasets.h"

namespace {

using zv::bench::JsonRecorder;
using zv::bench::PrintHeader;
using zv::bench::PrintSubHeader;

struct Percentiles {
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
  double mean = 0;
};

/// Percentiles through the metrics histogram (common/metrics.h), not an
/// ad-hoc vector sort — the same fixed bucket ladder the registry reports,
/// so bench numbers and a live `:metrics` snapshot are directly
/// comparable (and order-independent).
Percentiles Summarize(const std::vector<double>& ms) {
  Percentiles out;
  if (ms.empty()) return out;
  zv::Histogram hist;
  for (double v : ms) hist.Record(v);
  const zv::Histogram::Snapshot snap = hist.snapshot();
  out.p50 = snap.Percentile(0.5);
  out.p99 = snap.Percentile(0.99);
  out.p999 = snap.Percentile(0.999);
  out.mean = snap.mean_ms();
  return out;
}

/// The per-user query mix over one slice of products: a similarity search
/// (argmin D over all products), a trend filter, and a top-k against a
/// fixed reference product — the Table 5.1 / §7.2 shapes.
std::vector<std::string> SessionQueries(const std::string& product,
                                        const std::string& measure,
                                        const std::string& constraint) {
  std::vector<std::string> queries;
  queries.push_back(zv::StrFormat(
      "f1 | 'year' | '%s' | 'product'.'%s' | %s | |\n"
      "*f2 | 'year' | '%s' | v1 <- 'product'.* | %s | | v2 <- "
      "argmin_v1[k=3] D(f2, f1)",
      measure.c_str(), product.c_str(), constraint.c_str(), measure.c_str(),
      constraint.c_str()));
  queries.push_back(zv::StrFormat(
      "*f1 | 'year' | '%s' | v1 <- 'product'.* | %s | | v2 <- "
      "argany_v1[t > 0] T(f1)",
      measure.c_str(), constraint.c_str()));
  queries.push_back(zv::StrFormat(
      "f1 | 'year' | '%s' | 'product'.'%s' | %s | |\n"
      "*f2 | 'year' | '%s' | v1 <- 'product'.* | %s | | v2 <- "
      "argmax_v1[k=2] D(f2, f1)",
      measure.c_str(), product.c_str(), constraint.c_str(), measure.c_str(),
      constraint.c_str()));
  return queries;
}

/// One closed-loop pass: every session thread submits its queries in
/// order, waiting on each. Returns all end-to-end latencies.
std::vector<double> RunPass(zv::server::QueryService& service,
                            const std::vector<zv::server::SessionId>& sessions,
                            const std::string& dataset,
                            const std::vector<std::vector<std::string>>& mixes,
                            std::atomic<uint64_t>* errors,
                            bool trace = false) {
  std::vector<double> latencies;
  std::mutex mu;
  std::vector<std::thread> threads;
  threads.reserve(sessions.size());
  for (size_t s = 0; s < sessions.size(); ++s) {
    threads.emplace_back([&, s] {
      std::vector<double> local;
      for (const std::string& q : mixes[s]) {
        zv::bench::WallTimer timer;
        auto submitted = service.Submit(sessions[s], dataset, q, {}, trace);
        if (!submitted.ok()) {
          errors->fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        zv::server::QueryHandle handle = std::move(submitted).value();
        if (!handle.Wait().ok()) {
          errors->fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        local.push_back(timer.ElapsedMs());
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  return latencies;
}

size_t EnvSessions() {
  if (const char* env = std::getenv("ZV_SERVE_SESSIONS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 8;
}

void PrintPass(const char* name, const Percentiles& p, size_t queries) {
  std::printf("  %-18s %6zu queries   p50 %8.3f ms   p99 %8.3f ms   p999 "
              "%8.3f ms   mean %8.3f ms\n",
              name, queries, p.p50, p.p99, p.p999, p.mean);
}

}  // namespace

int main() {
  PrintHeader("serving layer: multi-session closed-loop load");

  zv::SalesDataOptions data_opts;
  data_opts.num_rows = zv::bench::ScaledRows(200000);
  data_opts.num_products = 40;
  auto table = zv::MakeSalesTable(data_opts);

  // A private registry isolates this run's histograms from anything else
  // in the process; Summarize() uses the same bucket ladder, so per-pass
  // numbers and the registry view agree.
  zv::MetricsRegistry registry;
  zv::server::ServiceOptions main_opts;
  main_opts.metrics = &registry;
  zv::server::QueryService service(main_opts);
  if (auto s = service.RegisterDataset(table); !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const size_t num_sessions = EnvSessions();
  std::vector<zv::server::SessionId> sessions;
  std::vector<std::vector<std::string>> mixes;       // distinct per session
  std::vector<std::vector<std::string>> remixed;     // constraint tweaked
  for (size_t s = 0; s < num_sessions; ++s) {
    sessions.push_back(std::move(service.CreateSession()).value());
    // Disjoint product slices keep the similarity searches distinct per
    // session (the shared trend scan demonstrates cross-session hits);
    // measures alternate for extra key diversity.
    const std::string product =
        "product_" + std::to_string(s % data_opts.num_products);
    const std::string measure = s % 2 == 0 ? "sales" : "profit";
    mixes.push_back(SessionQueries(product, measure, "country='US'"));
    remixed.push_back(SessionQueries(product, measure, "country='UK'"));
  }
  std::printf("dataset: %zu rows, %zu products; %zu sessions x %zu queries; "
              "%zu workers, %.0f MB cache\n",
              table->num_rows(), data_opts.num_products, num_sessions,
              mixes[0].size(), service.max_inflight(),
              static_cast<double>(service.cache_bytes()) / (1 << 20));

  JsonRecorder json("serve");
  std::atomic<uint64_t> errors{0};

  PrintSubHeader("pass 1: cold (first issuance)");
  const auto before_cold = service.stats();
  const auto t_cold = zv::bench::WallTimer();
  std::vector<double> cold =
      RunPass(service, sessions, table->name(), mixes, &errors);
  const double cold_wall = t_cold.ElapsedMs();
  const Percentiles cold_p = Summarize(cold);
  auto stats = service.stats();
  const uint64_t cold_hits = stats.cache_hits - before_cold.cache_hits;
  const uint64_t cold_misses = stats.cache_misses - before_cold.cache_misses;
  PrintPass("cold", cold_p, cold.size());
  std::printf("  wall %.1f ms; cache this pass: %llu hits / %llu misses\n",
              cold_wall, static_cast<unsigned long long>(cold_hits),
              static_cast<unsigned long long>(cold_misses));

  PrintSubHeader("pass 2: warm (same queries re-issued)");
  const auto before_warm = stats;
  std::vector<double> warm =
      RunPass(service, sessions, table->name(), mixes, &errors);
  const Percentiles warm_p = Summarize(warm);
  stats = service.stats();
  const uint64_t warm_hits = stats.cache_hits - before_warm.cache_hits;
  const uint64_t warm_misses = stats.cache_misses - before_warm.cache_misses;
  const double speedup = warm_p.mean > 0 ? cold_p.mean / warm_p.mean : 0;
  PrintPass("warm", warm_p, warm.size());
  std::printf("  cache this pass: %llu hits / %llu misses; repeat-query "
              "speedup (mean cold/warm): %.1fx\n",
              static_cast<unsigned long long>(warm_hits),
              static_cast<unsigned long long>(warm_misses), speedup);

  PrintSubHeader("pass 3: tweaked constraint (result misses, contexts hit)");
  const uint64_t reused_before = stats.contexts_reused;
  std::vector<double> tweaked =
      RunPass(service, sessions, table->name(), remixed, &errors);
  const Percentiles tweaked_p = Summarize(tweaked);
  stats = service.stats();
  const uint64_t tweaked_reused = stats.contexts_reused - reused_before;
  PrintPass("tweaked", tweaked_p, tweaked.size());
  std::printf("  contexts reused this pass: %llu (cache: %zu entries, "
              "%.1f KB)\n",
              static_cast<unsigned long long>(stats.contexts_reused -
                                              reused_before),
              stats.context_cache_entries,
              static_cast<double>(stats.context_cache_bytes) / 1024.0);

  PrintSubHeader("pass 4: wire protocol (warm queries through the JSON codec)");
  // The wire pass models the paper's steady state — the user tweaks one
  // knob (here: a fresh constraint) and re-runs, so ScoringContexts are
  // warm but the query actually executes — issued through the full JSON
  // protocol with a UI-sized page (a front end renders a handful of charts
  // per gesture; pagination is what keeps wire payloads small). Codec time
  // = request encode+dump+parse+decode plus response encode+dump+parse+
  // decode — everything the wire adds on top of a typed C++ Submit. The
  // acceptance bar: codec < 10% of this pass's end-to-end warm-query p50.
  std::vector<std::vector<std::string>> wire_mixes;
  for (size_t s = 0; s < num_sessions; ++s) {
    const std::string product =
        "product_" + std::to_string(s % data_opts.num_products);
    wire_mixes.push_back(SessionQueries(product,
                                        s % 2 == 0 ? "sales" : "profit",
                                        "country='DE'"));
  }
  std::vector<double> wire_total_ms;
  std::vector<double> wire_codec_ms;
  std::atomic<uint64_t> wire_errors{0};
  {
    std::mutex wire_mu;
    std::vector<std::thread> wire_threads;
    for (size_t s = 0; s < num_sessions; ++s) {
      wire_threads.emplace_back([&, s] {
        std::vector<double> totals, codecs;
        for (const std::string& q : wire_mixes[s]) {
          auto request = zv::api::QueryRequest::FromText(table->name(), q);
          if (!request.ok()) {
            wire_errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          request->page.limit = 5;
          request->include_vega = false;
          zv::bench::WallTimer total;
          zv::bench::WallTimer enc_req;
          const std::string req_wire =
              zv::api::EncodeRequest(*request).Dump();
          double codec = enc_req.ElapsedMs();
          zv::bench::WallTimer dec_req;
          auto req_json = zv::Json::Parse(req_wire);
          auto decoded = req_json.ok()
                             ? zv::api::DecodeRequest(*req_json)
                             : zv::Result<zv::api::QueryRequest>(
                                   req_json.status());
          codec += dec_req.ElapsedMs();
          if (!decoded.ok()) {
            wire_errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const zv::api::QueryResponse response =
              zv::api::ExecuteRequest(service, sessions[s], *decoded);
          if (!response.ok()) {
            wire_errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          zv::bench::WallTimer enc_resp;
          const std::string resp_wire =
              zv::api::EncodeResponse(response).Dump();
          auto resp_json = zv::Json::Parse(resp_wire);
          const bool resp_ok =
              resp_json.ok() && zv::api::DecodeResponse(*resp_json).ok();
          codec += enc_resp.ElapsedMs();
          if (!resp_ok) {
            wire_errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          totals.push_back(total.ElapsedMs());
          codecs.push_back(codec);
        }
        std::lock_guard<std::mutex> lock(wire_mu);
        wire_total_ms.insert(wire_total_ms.end(), totals.begin(),
                             totals.end());
        wire_codec_ms.insert(wire_codec_ms.end(), codecs.begin(),
                             codecs.end());
      });
    }
    for (std::thread& t : wire_threads) t.join();
  }
  const Percentiles wire_p = Summarize(wire_total_ms);
  const Percentiles codec_p = Summarize(wire_codec_ms);
  PrintPass("wire (end-to-end)", wire_p, wire_total_ms.size());
  const double overhead_ratio =
      wire_p.p50 > 0 ? codec_p.mean / wire_p.p50 : 0;
  std::printf("  codec only: mean %.4f ms, p99 %.4f ms — %.1f%% of the "
              "warm-query p50 (%.3f ms); bar < 10%%: %s\n",
              codec_p.mean, codec_p.p99, 100.0 * overhead_ratio, wire_p.p50,
              overhead_ratio < 0.10 ? "pass" : "FAIL");
  std::printf("  (for scale: a pure repeat-hit lookup is %.3f ms — the "
              "codec costs %.1fx that; clients wanting lookup-speed repeats "
              "keep the typed C++ path)\n",
              warm_p.p50, warm_p.p50 > 0 ? codec_p.mean / warm_p.p50 : 0);
  if (wire_errors.load() > 0) {
    std::printf("  !! %llu wire requests failed\n",
                static_cast<unsigned long long>(wire_errors.load()));
  }

  PrintSubHeader("pass 5: batched (concurrent distinct queries share scan "
                 "passes)");
  // Fresh services with the result cache off, so every query really scans
  // the table. The bar: eight concurrent *distinct* queries (different
  // measures and thresholds — no cache identity anywhere) finish within
  // 2x the wall of a single query, possible only because their eight full
  // scans collapse into shared passes (ServiceOptions::shared_scans; a
  // short ZV_BATCH_WINDOW_MS-style window widens the coalescing).
  // The setup where batching earns its keep — the paper's remote-store
  // scenario: a scan backend with simulated per-request latency (the same
  // stand-in the fig7 shard sweeps use), so every redundant pass costs a
  // round trip plus a full row loop. One fixed visualization per query
  // keeps each query scan-dominated (materializing 40 per-product charts
  // would measure the single CPU, not the batching). Both measurements run
  // the *same* service configuration — only the concurrency differs.
  const size_t kBatchN = 8;
  std::vector<std::string> batch_queries;
  for (size_t i = 0; i < kBatchN; ++i) {
    batch_queries.push_back(zv::StrFormat(
        "*f1 | 'year' | '%s' | 'product'.'product_%zu' | | "
        "bar.(y=agg('sum')) |",
        i % 2 == 0 ? "sales" : "profit", i));
  }
  std::atomic<uint64_t> batch_errors{0};
  double single_wall = 0;
  double batch_wall = 0;
  zv::server::ServiceStats batch_stats;
  {
    zv::server::ServiceOptions sopts;
    sopts.result_cache = false;
    sopts.max_inflight = kBatchN;  // all N execute (and coalesce) at once
    sopts.batch_window_ms = 2;
    sopts.metrics = &registry;
    zv::server::QueryService batched(sopts);
    auto remote_db = std::make_shared<zv::ScanDatabase>();
    remote_db->set_request_latency_micros(10000);  // 10 ms round trips
    if (auto s = remote_db->RegisterTable(table); !s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (auto s = batched.RegisterDataset(table, remote_db); !s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<zv::server::SessionId> bsessions;
    for (size_t s = 0; s < kBatchN; ++s) {
      bsessions.push_back(std::move(batched.CreateSession()).value());
    }
    for (int rep = 0; rep < 3; ++rep) {  // best of 3: the lone-scan floor
      zv::bench::WallTimer timer;
      auto submitted =
          batched.Submit(bsessions[0], table->name(), batch_queries[0]);
      if (!submitted.ok() || !submitted->Wait().ok()) {
        batch_errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const double ms = timer.ElapsedMs();
      if (single_wall == 0 || ms < single_wall) single_wall = ms;
    }
    zv::bench::WallTimer timer;
    std::vector<std::thread> threads;
    for (size_t s = 0; s < kBatchN; ++s) {
      threads.emplace_back([&, s] {
        auto submitted =
            batched.Submit(bsessions[s], table->name(), batch_queries[s]);
        if (!submitted.ok() || !submitted->Wait().ok()) {
          batch_errors.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    batch_wall = timer.ElapsedMs();
    batch_stats = batched.stats();
  }
  const double batch_ratio = single_wall > 0 ? batch_wall / single_wall : 0;
  std::printf("  single scan (best of 3): %.3f ms; %zu concurrent distinct: "
              "%.3f ms — %.2fx (bar <= 2x: %s)\n",
              single_wall, kBatchN, batch_wall, batch_ratio,
              batch_ratio <= 2.0 ? "pass" : "FAIL");
  std::printf("  shared-scan passes: %llu (%llu carried >1 query) serving "
              "%llu statements\n",
              static_cast<unsigned long long>(batch_stats.batch_passes),
              static_cast<unsigned long long>(
                  batch_stats.batch_passes_shared),
              static_cast<unsigned long long>(batch_stats.batch_statements));
  if (batch_errors.load() > 0) {
    std::printf("  !! %llu batched queries failed\n",
                static_cast<unsigned long long>(batch_errors.load()));
  }

  PrintSubHeader("pass 6: tracing overhead (warm repeats, traced vs "
                 "untraced)");
  // Warm repeats are the steady state where observability overhead would
  // be most visible (microsecond cache-hit lookups — nothing to hide
  // behind). The gate carries an absolute floor (+0.05 ms) because
  // histogram percentiles are fixed ladder values at ~9% resolution: a
  // one-bucket step on a microsecond-scale p50 is quantization, not
  // overhead. tools/run_bench.sh warns on a "no" verdict (fails under
  // ZV_BENCH_STRICT=1).
  std::vector<double> untraced =
      RunPass(service, sessions, table->name(), mixes, &errors);
  std::vector<double> traced = RunPass(service, sessions, table->name(),
                                       mixes, &errors, /*trace=*/true);
  const Percentiles untraced_p = Summarize(untraced);
  const Percentiles traced_p = Summarize(traced);
  const double trace_budget = untraced_p.p50 * 1.05 + 0.05;
  const bool trace_ok = traced_p.p50 <= trace_budget;
  PrintPass("untraced", untraced_p, untraced.size());
  PrintPass("traced", traced_p, traced.size());
  std::printf("  traced p50 %.3f ms vs budget %.3f ms (untraced p50 * 1.05 "
              "+ 0.05 ms) — %s\n",
              traced_p.p50, trace_budget, trace_ok ? "pass" : "FAIL");
  stats = service.stats();

  if (errors.load() > 0) {
    std::printf("\n!! %llu queries failed\n",
                static_cast<unsigned long long>(errors.load()));
  }
  const uint64_t probes = stats.cache_hits + stats.cache_misses;
  std::printf("\noverall: %llu submitted, hit rate %.0f%%, %llu contexts "
              "reused, 0 rejected expected (got %llu)\n",
              static_cast<unsigned long long>(stats.submitted),
              probes > 0 ? 100.0 * static_cast<double>(stats.cache_hits) /
                               static_cast<double>(probes)
                         : 0.0,
              static_cast<unsigned long long>(stats.contexts_reused),
              static_cast<unsigned long long>(stats.rejected));

  auto extra = [&](const Percentiles& p, uint64_t hits, uint64_t misses) {
    return std::map<std::string, std::string>{
        {"p50_ms", zv::StrFormat("%.3f", p.p50)},
        {"p99_ms", zv::StrFormat("%.3f", p.p99)},
        {"p999_ms", zv::StrFormat("%.3f", p.p999)},
        {"sessions", std::to_string(num_sessions)},
        {"hits", std::to_string(hits)},
        {"misses", std::to_string(misses)},
    };
  };
  json.Record("cold", cold_p.mean, extra(cold_p, cold_hits, cold_misses));
  json.Record("warm", warm_p.mean, extra(warm_p, warm_hits, warm_misses));
  json.Record("tweaked", tweaked_p.mean,
              {{"contexts_reused", std::to_string(tweaked_reused)},
               {"sessions", std::to_string(num_sessions)}});
  json.Record("repeat_speedup", speedup,
              {{"threshold", "10"},
               {"pass", speedup >= 10.0 ? "yes" : "no"}});
  json.Record("wire", wire_p.mean,
              {{"p50_ms", zv::StrFormat("%.4f", wire_p.p50)},
               {"p99_ms", zv::StrFormat("%.4f", wire_p.p99)},
               {"sessions", std::to_string(num_sessions)}});
  json.Record("batched_single", single_wall,
              {{"reps", "3"}, {"sessions", std::to_string(kBatchN)}});
  json.Record("batched_concurrent", batch_wall,
              {{"n", std::to_string(kBatchN)},
               {"single_ms", zv::StrFormat("%.3f", single_wall)},
               {"ratio", zv::StrFormat("%.2f", batch_ratio)},
               {"passes", std::to_string(batch_stats.batch_passes)},
               {"passes_shared",
                std::to_string(batch_stats.batch_passes_shared)},
               {"threshold", "2.0"},
               {"pass", batch_ratio <= 2.0 ? "yes" : "no"}});
  json.Record("wire_codec", codec_p.mean,
              {{"p99_ms", zv::StrFormat("%.4f", codec_p.p99)},
               {"warm_p50_ms", zv::StrFormat("%.4f", wire_p.p50)},
               {"repeat_hit_p50_ms", zv::StrFormat("%.4f", warm_p.p50)},
               {"overhead_ratio", zv::StrFormat("%.4f", overhead_ratio)},
               {"threshold", "0.10"},
               {"pass", overhead_ratio < 0.10 ? "yes" : "no"}});
  json.Record("trace_overhead", traced_p.p50,
              {{"untraced_p50_ms", zv::StrFormat("%.4f", untraced_p.p50)},
               {"budget_ms", zv::StrFormat("%.4f", trace_budget)},
               {"p999_ms", zv::StrFormat("%.4f", traced_p.p999)},
               {"threshold", "1.05x+0.05ms"},
               {"pass", trace_ok ? "yes" : "no"}});
  return 0;
}
