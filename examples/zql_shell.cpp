/// \file zql_shell.cpp
/// \brief Interactive ZQL shell — the terminal stand-in for the zenvisage
/// custom query builder (§6.1).
///
///   $ ./zql_shell [sales|census|airline|housing]
///
/// Enter a ZQL query (multiple lines); finish with a blank line. Lines
/// starting with ':' are commands:
///   :tables          list columns of the active table
///   :sql SELECT ...  run raw SQL against the backend
///   :opt LEVEL       set optimization (noopt|intraline|intratask|intertask)
///   :quit

#include <cstdio>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "engine/roaring_db.h"
#include "viz/vega_emitter.h"
#include "workload/datasets.h"
#include "zql/executor.h"

namespace {

std::shared_ptr<zv::Table> LoadDataset(const std::string& name) {
  if (name == "census") {
    zv::CensusDataOptions opts;
    opts.num_rows = 50000;
    return zv::MakeCensusTable(opts);
  }
  if (name == "airline") {
    zv::AirlineDataOptions opts;
    opts.num_rows = 100000;
    return zv::MakeAirlineTable(opts);
  }
  if (name == "housing") {
    zv::HousingDataOptions opts;
    opts.num_rows = 60000;
    return zv::MakeHousingTable(opts);
  }
  zv::SalesDataOptions opts;
  opts.num_rows = 100000;
  opts.num_products = 20;
  return zv::MakeSalesTable(opts);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "sales";
  auto table = LoadDataset(dataset);
  zv::RoaringDatabase db;
  if (auto s = db.RegisterTable(table); !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }
  zv::zql::ZqlOptions opts;
  std::printf("zenvisage ZQL shell — table '%s' (%zu rows).\n",
              table->name().c_str(), table->num_rows());
  std::printf("Enter ZQL rows (Name | X | Y | Z | Constraints | Viz | "
              "Process), blank line to run, :quit to exit.\n\n");

  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "zql> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed = zv::Trim(line);
    if (trimmed == ":quit" || trimmed == ":q") break;
    if (trimmed == ":tables") {
      for (const auto& col : table->schema().columns()) {
        std::printf("  %-20s %s\n", col.name.c_str(),
                    zv::ColumnTypeToString(col.type));
      }
      continue;
    }
    if (zv::StartsWith(trimmed, ":opt")) {
      const std::string level = zv::ToLower(zv::Trim(trimmed.substr(4)));
      if (level == "noopt") opts.optimization = zv::zql::OptLevel::kNoOpt;
      else if (level == "intraline")
        opts.optimization = zv::zql::OptLevel::kIntraLine;
      else if (level == "intratask")
        opts.optimization = zv::zql::OptLevel::kIntraTask;
      else opts.optimization = zv::zql::OptLevel::kInterTask;
      std::printf("optimization: %s\n",
                  zv::zql::OptLevelToString(opts.optimization));
      continue;
    }
    if (zv::StartsWith(trimmed, ":sql")) {
      auto rs = db.ExecuteSql(trimmed.substr(4));
      if (!rs.ok()) std::printf("error: %s\n", rs.status().ToString().c_str());
      else std::printf("%s\n", rs->ToString().c_str());
      continue;
    }
    if (!trimmed.empty()) {
      buffer += line;
      buffer += '\n';
      continue;
    }
    if (buffer.empty()) continue;
    // Blank line: execute the buffered query.
    zv::zql::ZqlExecutor executor(&db, table->name(), opts);
    auto result = executor.ExecuteText(buffer);
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    for (const auto& output : result->outputs) {
      std::printf("=== %s: %zu visualizations ===\n", output.name.c_str(),
                  output.visuals.size());
      size_t shown = 0;
      for (const auto& viz : output.visuals) {
        if (++shown > 5) {
          std::printf("  ... and %zu more\n", output.visuals.size() - 5);
          break;
        }
        std::printf("%s\n", zv::ToAsciiChart(viz).c_str());
      }
    }
    std::printf("(%llu SQL queries, %llu requests, %.1f ms — exec %.1f ms, "
                "task processor %.1f ms)\n",
                static_cast<unsigned long long>(result->stats.sql_queries),
                static_cast<unsigned long long>(result->stats.sql_requests),
                result->stats.total_ms, result->stats.exec_ms,
                result->stats.compute_ms);
  }
  std::printf("\nbye.\n");
  return 0;
}
